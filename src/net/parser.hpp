#pragma once
/// \file parser.hpp
/// \brief Text description format for network models, mirroring the platform
/// grid-file format so benchmarked link tables can be fed to the scheduler.
///
/// Format (line-oriented, '#' starts a comment):
///
///   network 5                   # cluster count, must come first
///   inter_default 125 0.008     # bandwidth [MB/s], latency [s]: all pairs
///   intra_default 1000 0.0001   # every cluster's internal fabric
///   link 0 1 50 0.02            # one pair, symmetric (both directions)
///   intra 2 500 0.001           # one cluster's fabric
///
/// Bandwidth accepts `inf` for an uncongested link. Directives after the
/// `network` header may appear in any order; later directives override
/// earlier ones (so defaults first, then per-link exceptions).

#include <iosfwd>
#include <string>

#include "net/network.hpp"

namespace oagrid::net {

/// Parses a network description. Throws oagrid::ParseError (a
/// std::invalid_argument) with a "<source>:<line>: message" diagnostic on any
/// malformed input; pass the file path as `source` for clickable errors.
[[nodiscard]] NetworkModel parse_network(std::istream& in,
                                         const std::string& source = "network");

/// Convenience overload over an in-memory string.
[[nodiscard]] NetworkModel parse_network_string(
    const std::string& text, const std::string& source = "network");

/// Serializes a model back to the same format (round-trips with
/// parse_network): one `link` line per unordered pair, one `intra` line per
/// cluster.
void write_network(std::ostream& out, const NetworkModel& model);

}  // namespace oagrid::net
