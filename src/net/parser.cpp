#include "net/parser.hpp"

#include <optional>
#include <ostream>
#include <sstream>

#include "common/parse_error.hpp"

namespace oagrid::net {
namespace {

/// Reads "<bandwidth> <latency>" where bandwidth may be `inf`.
LinkSpec read_spec(std::istringstream& in, const std::string& source,
                   int line) {
  std::string bw_token;
  LinkSpec spec;
  if (!(in >> bw_token))
    throw_parse_error(source, line, "expected a bandwidth [MB/s]");
  if (bw_token == "inf") {
    spec.bandwidth_mbps = kInfiniteBandwidth;
  } else {
    std::istringstream bw(bw_token);
    if (!(bw >> spec.bandwidth_mbps) || spec.bandwidth_mbps <= 0.0)
      throw_parse_error(source, line,
                        "bandwidth must be a positive number or 'inf'");
  }
  if (!(in >> spec.latency) || spec.latency < 0.0)
    throw_parse_error(source, line, "expected a latency >= 0 [s]");
  return spec;
}

ClusterId read_cluster(std::istringstream& in, const std::string& source,
                       int line, int count) {
  ClusterId c = -1;
  if (!(in >> c) || c < 0 || c >= count)
    throw_parse_error(source, line, "expected a cluster id in [0, " +
                                        std::to_string(count) + ")");
  return c;
}

}  // namespace

NetworkModel parse_network(std::istream& in, const std::string& source) {
  std::optional<NetworkModel> model;
  std::string raw;
  int line_no = 0;

  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank / comment-only line

    if (keyword == "network") {
      if (model)
        throw_parse_error(source, line_no, "duplicate 'network' directive");
      int clusters = 0;
      if (!(line >> clusters) || clusters < 1)
        throw_parse_error(source, line_no,
                          "'network' needs a positive cluster count");
      model.emplace(clusters);
      continue;
    }
    if (!model)
      throw_parse_error(source, line_no, "directive '" + keyword +
                                             "' before 'network <count>'");

    if (keyword == "inter_default") {
      model->set_default_inter(read_spec(line, source, line_no));
    } else if (keyword == "intra_default") {
      model->set_default_intra(read_spec(line, source, line_no));
    } else if (keyword == "link") {
      const ClusterId a =
          read_cluster(line, source, line_no, model->cluster_count());
      const ClusterId b =
          read_cluster(line, source, line_no, model->cluster_count());
      if (a == b)
        throw_parse_error(source, line_no,
                          "'link' endpoints must differ (use 'intra')");
      model->set_link(a, b, read_spec(line, source, line_no));
    } else if (keyword == "intra") {
      const ClusterId c =
          read_cluster(line, source, line_no, model->cluster_count());
      model->set_intra(c, read_spec(line, source, line_no));
    } else {
      throw_parse_error(source, line_no,
                        "unknown directive '" + keyword + "'");
    }
  }
  if (!model) throw_parse_error(source, "no 'network <count>' line");
  return *model;
}

NetworkModel parse_network_string(const std::string& text,
                                  const std::string& source) {
  std::istringstream in(text);
  return parse_network(in, source);
}

void write_network(std::ostream& out, const NetworkModel& model) {
  // 17 significant digits round-trip any double exactly.
  out.precision(17);
  const auto spec_of = [&out](const LinkSpec& spec) {
    if (spec.bandwidth_mbps == kInfiniteBandwidth)
      out << "inf";
    else
      out << spec.bandwidth_mbps;
    out << ' ' << spec.latency << '\n';
  };
  out << "network " << model.cluster_count() << '\n';
  for (ClusterId a = 0; a < model.cluster_count(); ++a)
    for (ClusterId b = a + 1; b < model.cluster_count(); ++b) {
      out << "link " << a << ' ' << b << ' ';
      spec_of(model.link(a, b));
    }
  for (ClusterId c = 0; c < model.cluster_count(); ++c) {
    out << "intra " << c << ' ';
    spec_of(model.link(c, c));
  }
}

}  // namespace oagrid::net
