#pragma once
/// \file network.hpp
/// \brief Inter-cluster network model for the §5 heterogeneous grid.
///
/// The paper forbids scenario migration ("once a scenario has been scheduled
/// on a cluster, it can not change location") because shipping the ~120 MB
/// monthly restart file between Grid'5000 sites is an unmodeled cost. This
/// module makes those links first-class simulated resources so the
/// schedulers can *price* data movement instead of forbidding it:
///
///  * NetworkModel — a symmetric per-cluster-pair bandwidth/latency matrix
///    plus one intra-cluster fabric spec per cluster. Every link defaults to
///    the *free* link (infinite bandwidth, zero latency), under which every
///    transfer takes exactly 0.0 s and all network-aware code paths
///    reproduce the pre-net results bit for bit.
///  * Built-in profiles matching the Grid'5000-era RENATER topology the
///    paper ran on (renater_network) and uniform synthetic grids
///    (uniform_network) for sweeps.
///  * A text description format (net/parser.hpp) mirroring the platform
///    grid-file format, so benchmarked link tables can be fed to the
///    scheduler the same way benchmarked T[G] tables are.
///
/// Links are full duplex: the (a, b) spec describes each direction's
/// capacity independently (staging home->c does not contend with collection
/// c->home). Concurrent transfers *on the same directed link* share its
/// bandwidth fairly — that allocator lives in net/fairshare.hpp.

#include <limits>
#include <vector>

#include "common/types.hpp"

namespace oagrid::net {

/// Bandwidth sentinel for an uncongested link.
inline constexpr double kInfiniteBandwidth =
    std::numeric_limits<double>::infinity();

/// One directed channel: sustained bandwidth in MB/s plus a flat per-transfer
/// latency (propagation + connection setup).
struct LinkSpec {
  double bandwidth_mbps = kInfiniteBandwidth;  ///< MB/s
  Seconds latency = 0.0;                       ///< per transfer

  /// True when a transfer over this link costs exactly 0.0 simulated seconds.
  [[nodiscard]] bool is_free() const noexcept {
    return bandwidth_mbps == kInfiniteBandwidth && latency == 0.0;
  }

  [[nodiscard]] friend bool operator==(const LinkSpec&,
                                       const LinkSpec&) = default;
};

/// Per-cluster-pair link matrix + per-cluster intra fabric. Value type;
/// cheap to copy for cluster counts in the paper's range (n <= dozens).
class NetworkModel {
 public:
  NetworkModel() = default;

  /// `clusters` nodes, every link free (the degenerate no-network model).
  explicit NetworkModel(int clusters);

  [[nodiscard]] int cluster_count() const noexcept { return clusters_; }

  /// Sets every inter-cluster pair (both directions) to `spec`.
  void set_default_inter(LinkSpec spec);
  /// Sets every cluster's intra fabric to `spec`.
  void set_default_intra(LinkSpec spec);
  /// Sets the (a, b) pair symmetrically (a != b).
  void set_link(ClusterId a, ClusterId b, LinkSpec spec);
  /// Sets cluster c's intra fabric.
  void set_intra(ClusterId c, LinkSpec spec);

  /// The spec governing a transfer src -> dst (src == dst: intra fabric).
  [[nodiscard]] const LinkSpec& link(ClusterId src, ClusterId dst) const;

  /// Uncontended time to move `size_mb` MB src -> dst: latency + size/bw.
  /// Exactly 0.0 for size <= 0 or over a free link.
  [[nodiscard]] Seconds transfer_time(ClusterId src, ClusterId dst,
                                      double size_mb) const;

  /// True when every link (inter and intra) is free — all network-aware
  /// results collapse bit-identically onto the pre-net ones.
  [[nodiscard]] bool is_free() const noexcept;

  /// Dense index of the directed link src -> dst (for allocator/metric
  /// bookkeeping): src * cluster_count() + dst.
  [[nodiscard]] std::size_t link_index(ClusterId src,
                                       ClusterId dst) const noexcept {
    return static_cast<std::size_t>(src) *
               static_cast<std::size_t>(clusters_) +
           static_cast<std::size_t>(dst);
  }

  [[nodiscard]] friend bool operator==(const NetworkModel&,
                                       const NetworkModel&) = default;

 private:
  void require_cluster(ClusterId c) const;

  int clusters_ = 0;
  std::vector<LinkSpec> inter_;  ///< n*n, symmetric, diagonal unused
  std::vector<LinkSpec> intra_;  ///< n
};

/// All links free: the identity network (pre-net behavior, bit for bit).
[[nodiscard]] NetworkModel free_network(int clusters);

/// Uniform synthetic grid: every inter-cluster pair shares one spec, every
/// intra fabric another.
[[nodiscard]] NetworkModel uniform_network(int clusters, LinkSpec inter,
                                           LinkSpec intra = LinkSpec{});

/// Built-in profile matching the Grid'5000-era RENATER links the paper's
/// experiments crossed: ~10 Gbit/s shared dark-fiber backbone between sites
/// (effective per-flow ~125 MB/s, ~8 ms RTT-dominated setup) and a ~1 GB/s,
/// ~0.1 ms intra-cluster fabric (GigE/Myrinet through shared storage).
[[nodiscard]] NetworkModel renater_network(int clusters);

}  // namespace oagrid::net
