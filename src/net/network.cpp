#include "net/network.hpp"

namespace oagrid::net {

NetworkModel::NetworkModel(int clusters) : clusters_(clusters) {
  OAGRID_REQUIRE(clusters >= 1, "network needs at least one cluster");
  inter_.assign(static_cast<std::size_t>(clusters) *
                    static_cast<std::size_t>(clusters),
                LinkSpec{});
  intra_.assign(static_cast<std::size_t>(clusters), LinkSpec{});
}

void NetworkModel::require_cluster(ClusterId c) const {
  OAGRID_REQUIRE(c >= 0 && c < clusters_, "cluster id outside the network");
}

void NetworkModel::set_default_inter(LinkSpec spec) {
  OAGRID_REQUIRE(spec.bandwidth_mbps > 0.0, "bandwidth must be positive");
  OAGRID_REQUIRE(spec.latency >= 0.0, "latency must be >= 0");
  for (ClusterId a = 0; a < clusters_; ++a)
    for (ClusterId b = 0; b < clusters_; ++b)
      if (a != b) inter_[link_index(a, b)] = spec;
}

void NetworkModel::set_default_intra(LinkSpec spec) {
  OAGRID_REQUIRE(spec.bandwidth_mbps > 0.0, "bandwidth must be positive");
  OAGRID_REQUIRE(spec.latency >= 0.0, "latency must be >= 0");
  for (LinkSpec& link : intra_) link = spec;
}

void NetworkModel::set_link(ClusterId a, ClusterId b, LinkSpec spec) {
  require_cluster(a);
  require_cluster(b);
  OAGRID_REQUIRE(a != b, "use set_intra for a cluster's own fabric");
  OAGRID_REQUIRE(spec.bandwidth_mbps > 0.0, "bandwidth must be positive");
  OAGRID_REQUIRE(spec.latency >= 0.0, "latency must be >= 0");
  inter_[link_index(a, b)] = spec;
  inter_[link_index(b, a)] = spec;
}

void NetworkModel::set_intra(ClusterId c, LinkSpec spec) {
  require_cluster(c);
  OAGRID_REQUIRE(spec.bandwidth_mbps > 0.0, "bandwidth must be positive");
  OAGRID_REQUIRE(spec.latency >= 0.0, "latency must be >= 0");
  intra_[static_cast<std::size_t>(c)] = spec;
}

const LinkSpec& NetworkModel::link(ClusterId src, ClusterId dst) const {
  require_cluster(src);
  require_cluster(dst);
  if (src == dst) return intra_[static_cast<std::size_t>(src)];
  return inter_[link_index(src, dst)];
}

Seconds NetworkModel::transfer_time(ClusterId src, ClusterId dst,
                                    double size_mb) const {
  if (size_mb <= 0.0) return 0.0;
  const LinkSpec& spec = link(src, dst);
  // inf bandwidth -> size/bw == 0.0 exactly; free link -> exactly 0.0.
  return spec.latency + size_mb / spec.bandwidth_mbps;
}

bool NetworkModel::is_free() const noexcept {
  for (const LinkSpec& spec : intra_)
    if (!spec.is_free()) return false;
  for (ClusterId a = 0; a < clusters_; ++a)
    for (ClusterId b = 0; b < clusters_; ++b)
      if (a != b && !inter_[link_index(a, b)].is_free()) return false;
  return true;
}

NetworkModel free_network(int clusters) { return NetworkModel(clusters); }

NetworkModel uniform_network(int clusters, LinkSpec inter, LinkSpec intra) {
  NetworkModel model(clusters);
  model.set_default_inter(inter);
  model.set_default_intra(intra);
  return model;
}

NetworkModel renater_network(int clusters) {
  return uniform_network(clusters, LinkSpec{125.0, 0.008},
                         LinkSpec{1000.0, 0.0001});
}

}  // namespace oagrid::net
