#pragma once
/// \file fairshare.hpp
/// \brief Fair-share link allocator: serializes concurrent transfers.
///
/// The NetworkModel prices a single uncontended transfer. Real campaigns
/// move data in bursts — a deployment stages NS restart files at t=0, a
/// repartition ships several states over the same backbone link at once.
/// This allocator simulates a batch of transfers under *max-min fair
/// sharing per directed link*: at any instant, a directed link carrying n
/// active transfers gives each exactly bandwidth/n (the fluid approximation
/// of TCP fairness on a shared bottleneck). Transfers on different directed
/// links never interact (links are full duplex and independent).
///
/// The simulation is event-driven: between consecutive arrivals/completions
/// the share is constant, so remaining bytes integrate linearly. Cost is
/// O(E * A) for E events and A concurrently active transfers — trivial for
/// campaign-sized batches (hundreds of files).
///
/// Determinism: results depend only on the request batch and the model;
/// ties (equal finish times) resolve by request index.

#include <span>
#include <vector>

#include "net/network.hpp"

namespace oagrid::net {

/// One file movement: `size_mb` MB from cluster `src` to cluster `dst`,
/// injected into the network at simulated time `start`.
struct TransferRequest {
  ClusterId src = 0;
  ClusterId dst = 0;
  double size_mb = 0.0;
  Seconds start = 0.0;
};

/// Per-request outcome. `finish - start` includes the link latency and any
/// queueing slowdown from sharing; over a free link finish == start exactly.
struct TransferResult {
  Seconds finish = 0.0;
};

/// Batch outcome plus link accounting for the obs layer.
struct TransferPlan {
  std::vector<TransferResult> results;  ///< parallel to the request span
  Seconds makespan = 0.0;               ///< max finish over all requests
  double total_mb = 0.0;                ///< bytes entering the network
  /// Busy time summed over non-free directed links divided by the span
  /// [earliest start, makespan] times the number of such links that carried
  /// at least one transfer. 1.0 = every used link saturated the whole time;
  /// 0.0 when nothing moved or every link was free.
  double link_utilization = 0.0;
};

/// Simulates `requests` through `model` under per-directed-link fair
/// sharing. Also records net.* metrics when obs is enabled:
///   net.transfers (counter), net.bytes_mb (counter, whole MB),
///   net.transfer_mb / net.transfer_seconds (histograms),
///   net.link_utilization (gauge, last batch).
[[nodiscard]] TransferPlan simulate_transfers(
    const NetworkModel& model, std::span<const TransferRequest> requests);

}  // namespace oagrid::net
