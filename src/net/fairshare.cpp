#include "net/fairshare.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/obs.hpp"

namespace oagrid::net {
namespace {

struct ActiveTransfer {
  std::size_t request = 0;    ///< index into the request span
  std::size_t link = 0;       ///< dense directed link id
  double remaining_mb = 0.0;  ///< bytes still to move
  double bandwidth = 0.0;     ///< the link's full (unshared) bandwidth
  Seconds finish_at = 0.0;    ///< projected finish under current shares
};

}  // namespace

TransferPlan simulate_transfers(const NetworkModel& model,
                                std::span<const TransferRequest> requests) {
  TransferPlan plan;
  plan.results.resize(requests.size());
  if (requests.empty()) return plan;

  const std::size_t link_count =
      static_cast<std::size_t>(model.cluster_count()) *
      static_cast<std::size_t>(model.cluster_count());
  std::vector<std::size_t> sharers(link_count, 0);  ///< active per link
  std::vector<Seconds> busy(link_count, 0.0);
  std::vector<bool> used(link_count, false);

  // Arrival order: a request enters its link at start + latency. Stable
  // sort keeps ties in request order for determinism.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<Seconds> arrival(requests.size());
  Seconds earliest_start = std::numeric_limits<Seconds>::infinity();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const TransferRequest& req = requests[i];
    OAGRID_REQUIRE(req.start >= 0.0, "transfer start must be >= 0");
    arrival[i] = req.start + model.link(req.src, req.dst).latency;
    earliest_start = std::min(earliest_start, req.start);
    plan.total_mb += std::max(0.0, req.size_mb);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return arrival[a] < arrival[b];
                   });

  std::vector<ActiveTransfer> active;
  active.reserve(requests.size());
  std::size_t next = 0;  // cursor into `order`
  Seconds now = 0.0;

  const auto admit_until = [&](Seconds t) {
    while (next < order.size() && arrival[order[next]] <= t) {
      const std::size_t i = order[next++];
      const TransferRequest& req = requests[i];
      const LinkSpec& spec = model.link(req.src, req.dst);
      if (req.size_mb <= 0.0 || spec.bandwidth_mbps == kInfiniteBandwidth) {
        // Completes the instant it arrives; never contends. Over a free
        // link arrival == start exactly, preserving bit-identity.
        plan.results[i].finish = arrival[i];
        continue;
      }
      const std::size_t link = model.link_index(req.src, req.dst);
      active.push_back({i, link, req.size_mb, spec.bandwidth_mbps});
      ++sharers[link];
      if (!spec.is_free()) used[link] = true;
    }
  };

  while (next < order.size() || !active.empty()) {
    if (active.empty()) {
      now = std::max(now, arrival[order[next]]);
      admit_until(now);
      continue;
    }
    // Shares are constant until the next event; find the earliest finish.
    Seconds next_finish = std::numeric_limits<Seconds>::infinity();
    for (ActiveTransfer& t : active) {
      const double share = t.bandwidth / static_cast<double>(sharers[t.link]);
      t.finish_at = now + t.remaining_mb / share;
      next_finish = std::min(next_finish, t.finish_at);
    }
    const Seconds next_arrival = next < order.size()
                                     ? arrival[order[next]]
                                     : std::numeric_limits<Seconds>::infinity();
    const Seconds event = std::min(next_finish, next_arrival);
    const Seconds dt = event - now;

    // Integrate remaining bytes and link busy time over [now, event].
    if (dt > 0.0) {
      for (ActiveTransfer& t : active)
        t.remaining_mb = std::max(
            0.0, t.remaining_mb -
                     dt * t.bandwidth / static_cast<double>(sharers[t.link]));
      std::vector<bool> seen(link_count, false);
      for (const ActiveTransfer& t : active) {
        if (!seen[t.link]) {
          seen[t.link] = true;
          busy[t.link] += dt;
        }
      }
    }
    now = event;

    if (next_finish <= next_arrival) {
      // Retire by projected finish, not by a remaining-bytes epsilon: the
      // argmin's integrated remainder can be off by ulp(now) * share, but
      // its finish_at is <= the event by construction, so at least one
      // transfer retires per completion event (termination guarantee).
      for (std::size_t k = active.size(); k-- > 0;) {
        if (active[k].finish_at <= next_finish) {
          plan.results[active[k].request].finish = now;
          --sharers[active[k].link];
          active[k] = active.back();
          active.pop_back();
        }
      }
    }
    admit_until(now);
  }

  for (const TransferResult& r : plan.results)
    plan.makespan = std::max(plan.makespan, r.finish);

  std::size_t used_links = 0;
  Seconds busy_total = 0.0;
  for (std::size_t l = 0; l < link_count; ++l) {
    if (used[l]) {
      ++used_links;
      busy_total += busy[l];
    }
  }
  const Seconds span = plan.makespan - earliest_start;
  if (used_links > 0 && span > 0.0)
    plan.link_utilization = busy_total / (span * static_cast<double>(used_links));

  if (obs::enabled()) {
    auto& reg = obs::metrics();
    reg.counter("net.transfers").add(requests.size());
    reg.counter("net.bytes_mb").add(static_cast<std::uint64_t>(plan.total_mb));
    auto& mb = reg.histogram("net.transfer_mb");
    auto& secs = reg.histogram("net.transfer_seconds");
    for (std::size_t i = 0; i < requests.size(); ++i) {
      mb.record(requests[i].size_mb);
      secs.record(plan.results[i].finish - requests[i].start);
    }
    reg.gauge("net.link_utilization").set(plan.link_utilization);
  }
  return plan;
}

}  // namespace oagrid::net
