#pragma once
/// \file scenario_runner.hpp
/// \brief Runs one full scenario through the *real* pipeline — the paper's
/// §2 experiment, executed rather than just scheduled: every month is
/// pre-processing, a coupled-model integration, format conversion, regional
/// extraction, and compression, chained by restart state.

#include <vector>

#include "climate/compress.hpp"
#include "climate/diagnostics.hpp"
#include "climate/model.hpp"

namespace oagrid::climate {

struct ScenarioConfig {
  ModelParams model;        ///< includes the ensemble's cloud_feedback knob
  int months = 24;          ///< the paper runs 1800 (150 years)
  double ghg_ramp = 0.02;   ///< W/m^2 added per month (the 21st-century ramp)
  std::size_t threads = 1;  ///< atmosphere parallelism
  bool verify_restart = false;  ///< exercise a restart round-trip mid-run
};

struct ScenarioResult {
  std::vector<MonthlyState> states;          ///< one per month
  std::vector<ExtractedInfo> extracted;      ///< emi output per month
  double warming = 0.0;  ///< last-year minus first-year global mean [C]
  std::size_t raw_diag_bytes = 0;         ///< cof output volume
  std::size_t compressed_diag_bytes = 0;  ///< cd output volume
  std::size_t restart_bytes_per_month = 0;
};

/// Runs the scenario to completion. Throws on invalid config.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

/// Climate sensitivity proxy of a parametrization, computed the way
/// climatologists do: a forced (ramped) run minus a control (no-forcing)
/// run with identical parameters, compared over the final year. Subtracting
/// the control cancels any residual spin-up drift, isolating the greenhouse
/// response the paper's ensemble studies.
[[nodiscard]] double warming_of(double cloud_feedback, int months,
                                std::size_t threads = 1);

}  // namespace oagrid::climate
