#include "climate/calibration.hpp"

#include <chrono>
#include <sstream>

#include "climate/compress.hpp"
#include "climate/diagnostics.hpp"

namespace oagrid::climate {
namespace {

using clock_type = std::chrono::steady_clock;

Seconds elapsed_seconds(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

}  // namespace

platform::Cluster CalibrationResult::to_cluster(std::string name,
                                                ProcCount resources) const {
  return platform::Cluster(std::move(name), resources, kMinGroupSize,
                           main_times, post_time);
}

ModelParams calibration_grade_params() {
  ModelParams params;
  params.nlat = 96;
  params.nlon = 192;
  params.substeps = 70;  // CFL at the (96/24)^2 diffusion scale
  return params;
}

CalibrationResult calibrate_pipeline(const ModelParams& params,
                                     int repetitions) {
  OAGRID_REQUIRE(repetitions >= 1, "need at least one repetition");
  CalibrationResult result;
  result.main_times.reserve(kNumGroupSizes);

  // Main task: G processors = G - 3 atmosphere threads + the pinned ocean,
  // runoff and coupler (their cost is the sequential remainder of step()).
  for (ProcCount g = kMinGroupSize; g <= kMaxGroupSize; ++g) {
    const auto threads = static_cast<std::size_t>(g - 3);
    CoupledModel model(params);
    const auto start = clock_type::now();
    for (int rep = 0; rep < repetitions; ++rep) model.step(threads);
    result.main_times.push_back(elapsed_seconds(start) / repetitions);
  }

  // Post chain on a representative month.
  CoupledModel model(params);
  const MonthlyState state = model.step(1);
  DiagnosticRecord record;
  record.name = "tas";
  record.month = state.month;
  record.field = model.atmosphere();

  const auto start = clock_type::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    std::stringstream sink;
    write_oasf(sink, record);                       // cof
    (void)extract_minimum_information(record);      // emi
    (void)compress_field(record.field);             // cd
  }
  result.post_time = elapsed_seconds(start) / repetitions;
  // Guard against a zero measurement on very fast machines/tiny grids: the
  // cluster model requires positive times.
  if (result.post_time <= 0.0) result.post_time = 1e-9;
  for (Seconds& t : result.main_times)
    if (t <= 0.0) t = 1e-9;
  return result;
}

}  // namespace oagrid::climate
