#pragma once
/// \file restart.hpp
/// \brief Restart state: "The results from the nth monthly simulation are
/// the starting point of the (n+1)th" (paper §2) — the 120 MB inter-month
/// exchange, scaled to the toy model.

#include <iosfwd>

#include "climate/model.hpp"

namespace oagrid::climate {

/// Serializes the full model state (both fields, month counter, the
/// parameters needed to resume bit-identically).
void write_restart(std::ostream& out, const CoupledModel& model);

/// Reconstructs a model from a restart stream; throws std::invalid_argument
/// on malformed input. The returned model continues exactly where the
/// written one stopped.
[[nodiscard]] CoupledModel read_restart(std::istream& in);

/// Restart size in bytes for a given grid (what the 120 MB corresponds to).
[[nodiscard]] std::size_t restart_size(const ModelParams& params);

}  // namespace oagrid::climate
