#pragma once
/// \file restart.hpp
/// \brief Restart state: "The results from the nth monthly simulation are
/// the starting point of the (n+1)th" (paper §2) — the 120 MB inter-month
/// exchange, scaled to the toy model.

#include <iosfwd>
#include <string>

#include "climate/model.hpp"

namespace oagrid::climate {

/// Serializes the full model state (both fields, month counter, the
/// parameters needed to resume bit-identically).
void write_restart(std::ostream& out, const CoupledModel& model);

/// Reconstructs a model from a restart stream; throws oagrid::ParseError (a
/// std::invalid_argument) with a "<source>: message" diagnostic on malformed
/// input — the stream is binary, so the diagnostic carries no line number.
/// Pass the file path as `source` for clickable errors. The returned model
/// continues exactly where the written one stopped.
[[nodiscard]] CoupledModel read_restart(std::istream& in,
                                        const std::string& source = "restart");

/// Restart size in bytes for a given grid (what the 120 MB corresponds to).
[[nodiscard]] std::size_t restart_size(const ModelParams& params);

}  // namespace oagrid::climate
