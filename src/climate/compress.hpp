#pragma once
/// \file compress.hpp
/// \brief `compress_diags`: "the volume of model diagnostic files is
/// drastically reduced to facilitate storage and transfers" (paper §2).
///
/// Climate fields are spatially smooth, so the codec is quantize ->
/// horizontal delta -> zigzag -> LEB128 varint: smooth fields produce tiny
/// deltas that fit in one byte. Lossy only up to the declared quantum
/// (default 1 mK); decompression reproduces the quantized values exactly.

#include <cstdint>
#include <vector>

#include "climate/field.hpp"

namespace oagrid::climate {

struct CompressedField {
  int nlat = 0;
  int nlon = 0;
  double quantum = 0.0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t byte_size() const noexcept {
    return payload.size() + 3 * sizeof(std::int32_t) + sizeof(double);
  }
};

/// Compresses with the given quantum (maximum absolute reconstruction
/// error is quantum / 2). Throws on non-positive quantum.
[[nodiscard]] CompressedField compress_field(const Field& field,
                                             double quantum = 1e-3);

/// Exact inverse on the quantized lattice. Throws std::invalid_argument on a
/// corrupt payload (truncated varint, wrong element count).
[[nodiscard]] Field decompress_field(const CompressedField& compressed);

/// Convenience: compression ratio (raw float64 bytes / compressed bytes).
[[nodiscard]] double compression_ratio(const Field& field,
                                       const CompressedField& compressed);

}  // namespace oagrid::climate
