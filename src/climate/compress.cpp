#include "climate/compress.hpp"

#include <cmath>
#include <stdexcept>

namespace oagrid::climate {
namespace {

constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::vector<std::uint8_t>& in,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= in.size())
      throw std::invalid_argument("oagrid: truncated varint in payload");
    const std::uint8_t byte = in[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63)
      throw std::invalid_argument("oagrid: varint overflow in payload");
  }
}

}  // namespace

CompressedField compress_field(const Field& field, double quantum) {
  OAGRID_REQUIRE(quantum > 0.0, "quantum must be positive");
  CompressedField out;
  out.nlat = field.nlat();
  out.nlon = field.nlon();
  out.quantum = quantum;
  out.payload.reserve(field.size());

  std::int64_t previous = 0;
  for (const double value : field.data()) {
    const auto quantized = static_cast<std::int64_t>(std::llround(value / quantum));
    put_varint(out.payload, zigzag(quantized - previous));
    previous = quantized;
  }
  return out;
}

Field decompress_field(const CompressedField& compressed) {
  OAGRID_REQUIRE(compressed.quantum > 0.0, "quantum must be positive");
  Field field(compressed.nlat, compressed.nlon);
  std::size_t pos = 0;
  std::int64_t previous = 0;
  for (double& value : field.data()) {
    previous += unzigzag(get_varint(compressed.payload, pos));
    value = static_cast<double>(previous) * compressed.quantum;
  }
  if (pos != compressed.payload.size())
    throw std::invalid_argument("oagrid: trailing bytes in compressed payload");
  return field;
}

double compression_ratio(const Field& field,
                         const CompressedField& compressed) {
  return static_cast<double>(field.size() * sizeof(double)) /
         static_cast<double>(compressed.byte_size());
}

}  // namespace oagrid::climate
