#include "climate/scenario_runner.hpp"

#include <sstream>

#include "climate/restart.hpp"

namespace oagrid::climate {

ScenarioResult run_scenario(const ScenarioConfig& config) {
  OAGRID_REQUIRE(config.months >= 1, "scenario needs at least one month");
  OAGRID_REQUIRE(config.ghg_ramp >= 0.0, "negative greenhouse ramp");

  CoupledModel model(config.model);
  ScenarioResult result;
  result.states.reserve(static_cast<std::size_t>(config.months));
  result.restart_bytes_per_month = restart_size(config.model);

  for (int m = 0; m < config.months; ++m) {
    // Pre-processing (caif + mp): update the forcing parametrization for
    // this month — the greenhouse ramp.
    model.set_ghg_forcing(config.ghg_ramp * m);

    // Main-processing (pcr): one coupled month.
    const MonthlyState state = model.step(config.threads);
    result.states.push_back(state);

    if (config.verify_restart && m == config.months / 2) {
      // Mid-run restart round trip: the resumed model must be bit-identical.
      std::stringstream buffer;
      write_restart(buffer, model);
      CoupledModel resumed = read_restart(buffer);
      OAGRID_REQUIRE(resumed.atmosphere() == model.atmosphere() &&
                         resumed.ocean() == model.ocean() &&
                         resumed.month() == model.month(),
                     "restart round trip diverged");
      model = std::move(resumed);
    }

    // Post-processing. cof: self-describing record of the month's surface
    // air temperature.
    DiagnosticRecord record;
    record.name = "tas";
    record.month = state.month;
    record.field = model.atmosphere();
    result.raw_diag_bytes += oasf_size(record);

    // emi: regional means.
    result.extracted.push_back(extract_minimum_information(record));

    // cd: compression for storage/transfer.
    const CompressedField compressed = compress_field(record.field);
    result.compressed_diag_bytes += compressed.byte_size();
  }

  // Warming: last year vs first year of global-mean air temperature (or the
  // single first/last months when the run is shorter than two years).
  const auto window = static_cast<std::size_t>(
      std::min(12, std::max(1, config.months / 2)));
  double first = 0.0, last = 0.0;
  for (std::size_t i = 0; i < window; ++i) {
    first += result.states[i].global_mean_atm;
    last += result.states[result.states.size() - 1 - i].global_mean_atm;
  }
  result.warming = (last - first) / static_cast<double>(window);
  return result;
}

double warming_of(double cloud_feedback, int months, std::size_t threads) {
  ScenarioConfig forced;
  forced.model.cloud_feedback = cloud_feedback;
  forced.months = months;
  forced.threads = threads;
  ScenarioConfig control = forced;
  control.ghg_ramp = 0.0;

  const ScenarioResult forced_run = run_scenario(forced);
  const ScenarioResult control_run = run_scenario(control);

  const auto window =
      static_cast<std::size_t>(std::min(12, std::max(1, months / 2)));
  double forced_mean = 0.0, control_mean = 0.0;
  for (std::size_t i = 0; i < window; ++i) {
    forced_mean +=
        forced_run.states[forced_run.states.size() - 1 - i].global_mean_atm;
    control_mean +=
        control_run.states[control_run.states.size() - 1 - i].global_mean_atm;
  }
  return (forced_mean - control_mean) / static_cast<double>(window);
}

}  // namespace oagrid::climate
