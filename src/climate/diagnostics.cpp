#include "climate/diagnostics.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace oagrid::climate {
namespace {

constexpr char kMagic[4] = {'O', 'A', 'S', 'F'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::invalid_argument("oagrid: truncated OASF stream");
  return value;
}

}  // namespace

void write_oasf(std::ostream& out, const DiagnosticRecord& record) {
  out.write(kMagic, sizeof kMagic);
  write_pod(out, kVersion);
  const auto name_len = static_cast<std::uint32_t>(record.name.size());
  write_pod(out, name_len);
  out.write(record.name.data(), static_cast<std::streamsize>(name_len));
  write_pod(out, static_cast<std::int32_t>(record.month));
  write_pod(out, static_cast<std::int32_t>(record.field.nlat()));
  write_pod(out, static_cast<std::int32_t>(record.field.nlon()));
  out.write(reinterpret_cast<const char*>(record.field.data().data()),
            static_cast<std::streamsize>(record.field.size() * sizeof(double)));
  if (!out) throw std::runtime_error("oagrid: OASF write failed");
}

DiagnosticRecord read_oasf(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::invalid_argument("oagrid: not an OASF stream (bad magic)");
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion)
    throw std::invalid_argument("oagrid: unsupported OASF version " +
                                std::to_string(version));
  const auto name_len = read_pod<std::uint32_t>(in);
  if (name_len > 4096)
    throw std::invalid_argument("oagrid: implausible OASF name length");
  std::string name(name_len, '\0');
  in.read(name.data(), static_cast<std::streamsize>(name_len));
  const auto month = read_pod<std::int32_t>(in);
  const auto nlat = read_pod<std::int32_t>(in);
  const auto nlon = read_pod<std::int32_t>(in);
  if (nlat < 2 || nlon < 4 || nlat > 100000 || nlon > 100000)
    throw std::invalid_argument("oagrid: implausible OASF dimensions");

  DiagnosticRecord record;
  record.name = std::move(name);
  record.month = month;
  record.field = Field(nlat, nlon);
  in.read(reinterpret_cast<char*>(record.field.data().data()),
          static_cast<std::streamsize>(record.field.size() * sizeof(double)));
  if (!in) throw std::invalid_argument("oagrid: truncated OASF payload");
  return record;
}

std::size_t oasf_size(const DiagnosticRecord& record) {
  return sizeof kMagic + sizeof kVersion + sizeof(std::uint32_t) +
         record.name.size() + 3 * sizeof(std::int32_t) +
         record.field.size() * sizeof(double);
}

ExtractedInfo extract_minimum_information(const DiagnosticRecord& record,
                                          const std::vector<Region>& regions) {
  ExtractedInfo info;
  info.month = record.month;
  info.means.reserve(regions.size());
  for (const Region& region : regions)
    info.means.emplace_back(region.name, record.field.regional_mean(region));
  return info;
}

}  // namespace oagrid::climate
