#pragma once
/// \file field.hpp
/// \brief Latitude-longitude scalar fields — the data the Ocean-Atmosphere
/// pipeline actually moves.
///
/// The scheduling paper treats `process_coupled_run` and its diagnostics as
/// opaque timed boxes; this substrate opens them up. A Field is a regular
/// lat-lon grid (degrees, cell centers) with the handful of operations the
/// pipeline needs: area-weighted statistics (grid cells shrink towards the
/// poles by cos(latitude) — unweighted means over a lat-lon grid
/// over-represent the poles), regional reductions, and Laplacian stencils
/// for the model's diffusion.

#include <string>
#include <vector>

#include "common/types.hpp"

namespace oagrid::climate {

/// A geographic box in degrees; longitudes in [-180, 180), latitudes in
/// [-90, 90]. Boxes may wrap the date line (lon_west > lon_east).
struct Region {
  std::string name;
  double lat_south = -90.0;
  double lat_north = 90.0;
  double lon_west = -180.0;
  double lon_east = 180.0;

  [[nodiscard]] bool contains(double lat, double lon) const noexcept;
};

/// The regions the paper's `extract_minimum_information` step reduces over
/// ("global or regional means on key regions").
[[nodiscard]] const std::vector<Region>& key_regions();

/// Dense lat-lon field, row-major by latitude (south to north).
class Field {
 public:
  Field(int nlat, int nlon, double fill = 0.0);

  [[nodiscard]] int nlat() const noexcept { return nlat_; }
  [[nodiscard]] int nlon() const noexcept { return nlon_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] double& at(int ilat, int ilon);
  [[nodiscard]] double at(int ilat, int ilon) const;

  /// Latitude/longitude of a cell center, degrees.
  [[nodiscard]] double latitude(int ilat) const noexcept;
  [[nodiscard]] double longitude(int ilon) const noexcept;

  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

  /// Area-weighted (cos latitude) mean over the whole globe.
  [[nodiscard]] double weighted_mean() const;

  /// Area-weighted mean over a region; throws if the region covers no cell.
  [[nodiscard]] double regional_mean(const Region& region) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Fills from a function of (latitude, longitude) in degrees. A template
  /// so the callable is invoked directly — no std::function erasure on what
  /// can be an inner-loop path.
  template <typename F>
  void fill_with(F&& f) {
    for (int i = 0; i < nlat_; ++i)
      for (int j = 0; j < nlon_; ++j) at(i, j) = f(latitude(i), longitude(j));
  }

  /// Five-point Laplacian with periodic longitude and insulated (reflective)
  /// latitude boundaries, written into `out` (must have equal dims).
  void laplacian(Field& out) const;

  bool operator==(const Field& other) const = default;

 private:
  [[nodiscard]] std::size_t index(int ilat, int ilon) const;

  int nlat_;
  int nlon_;
  std::vector<double> data_;
};

}  // namespace oagrid::climate
