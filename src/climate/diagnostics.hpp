#pragma once
/// \file diagnostics.hpp
/// \brief The post-processing pipeline of §2: `convert_output_format`,
/// `extract_minimum_information`, and the serialization format they share.
///
/// The real application converts every component's diagnostic files into a
/// self-describing format (NetCDF). Here that format is "OASF", a minimal
/// self-describing binary container: magic, version, a named field with its
/// dimensions and a month stamp, little-endian float64 payload. Round-trips
/// exactly.

#include <iosfwd>
#include <string>
#include <vector>

#include "climate/field.hpp"

namespace oagrid::climate {

/// A serializable diagnostic record (one field of one month).
struct DiagnosticRecord {
  std::string name;   ///< variable name, e.g. "tas" (near-surface air temp)
  int month = 0;      ///< simulation month stamp
  Field field{2, 4};
};

/// convert_output_format: writes the record in OASF. Throws on stream
/// failure.
void write_oasf(std::ostream& out, const DiagnosticRecord& record);

/// Reads one OASF record; throws std::invalid_argument on malformed input
/// (bad magic, unsupported version, truncated payload).
[[nodiscard]] DiagnosticRecord read_oasf(std::istream& in);

/// Serialized size in bytes of a record (header + payload).
[[nodiscard]] std::size_t oasf_size(const DiagnosticRecord& record);

/// extract_minimum_information: the regional-mean reductions of §2 ("global
/// or regional means on key regions are processed").
struct ExtractedInfo {
  int month = 0;
  std::vector<std::pair<std::string, double>> means;  ///< region -> mean
};

[[nodiscard]] ExtractedInfo extract_minimum_information(
    const DiagnosticRecord& record,
    const std::vector<Region>& regions = key_regions());

}  // namespace oagrid::climate
