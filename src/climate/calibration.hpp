#pragma once
/// \file calibration.hpp
/// \brief Benchmarks the real pipeline on the current machine and emits the
/// cluster description the scheduler consumes — the exact workflow of the
/// paper's authors ("The times have been obtained by performing
/// benchmarks", §2): measure pcr at every admissible parallelism, measure
/// the post chain, write the T[G] table.

#include "climate/model.hpp"
#include "platform/cluster.hpp"

namespace oagrid::climate {

struct CalibrationResult {
  /// Measured wall-clock of one model month for G in [4, 11] (atmosphere
  /// threads = G - 3, the three pinned sequential components contributing
  /// their serial share).
  std::vector<Seconds> main_times;
  /// Measured wall-clock of cof + emi + cd on one month's diagnostics.
  Seconds post_time = 0.0;

  /// Packages the measurements as a scheduler-ready cluster.
  [[nodiscard]] platform::Cluster to_cluster(std::string name,
                                             ProcCount resources) const;
};

/// Times `repetitions` months per thread count and returns the median-free
/// simple averages. Wall-clock based: results vary with machine load; use
/// for demonstration, not assertions.
[[nodiscard]] CalibrationResult calibrate_pipeline(const ModelParams& params,
                                                   int repetitions = 3);

/// A grid heavy enough that per-substep stencil work dominates the pool
/// handshake, so the measured T[G] table actually decreases with G (the
/// default 24x48 grid is overhead-bound and would measure negative
/// speedups).
[[nodiscard]] ModelParams calibration_grade_params();

}  // namespace oagrid::climate
