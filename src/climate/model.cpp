#include "climate/model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace oagrid::climate {
namespace {

/// Second Legendre polynomial of sin(latitude): the standard meridional
/// insolation profile Q(lat) = S/4 * (1 - 0.48 * P2(sin lat)) — warm tropics,
/// cold poles.
double insolation_shape(double lat_deg) {
  const double s = std::sin(lat_deg * std::numbers::pi / 180.0);
  const double p2 = 0.5 * (3.0 * s * s - 1.0);
  // Coefficient above the canonical 0.48 so the polar ocean actually crosses
  // the freezing threshold and the ice-albedo feedback is active.
  return 1.0 - 0.60 * p2;
}

constexpr double kClampLow = -80.0;
constexpr double kClampHigh = 80.0;

}  // namespace

CoupledModel::CoupledModel(ModelParams params)
    : params_(params),
      atm_(params.nlat, params.nlon),
      ocn_(params.nlat, params.nlon),
      lap_atm_(params.nlat, params.nlon),
      lap_ocn_(params.nlat, params.nlon) {
  OAGRID_REQUIRE(params_.substeps >= 1, "need at least one substep per month");
  OAGRID_REQUIRE(params_.atm_heat_capacity > 0 && params_.ocn_heat_capacity > 0,
                 "heat capacities must be positive");
  OAGRID_REQUIRE(params_.olr_b - params_.cloud_feedback > 0.05,
                 "cloud feedback too strong: radiative damping must stay "
                 "positive (runaway climate)");
  // Explicit-Euler stability of the diffusion term: dt * 4 * D_eff / C < 2.
  const double grid_scale =
      (params_.nlat / 24.0) * (params_.nlat / 24.0);
  const double dt = 1.0 / params_.substeps;
  const double atm_cfl = dt * 4.0 * params_.atm_diffusion * grid_scale /
                         params_.atm_heat_capacity;
  const double ocn_cfl = dt * 4.0 * params_.ocn_diffusion * grid_scale /
                         params_.ocn_heat_capacity;
  OAGRID_REQUIRE(atm_cfl < 1.8 && ocn_cfl < 1.8,
                 "diffusion unstable at this resolution: raise substeps");
  // Initialize near a plausible zonal profile so spin-up is short.
  atm_.fill_with([](double lat, double) {
    return 28.0 - 40.0 * std::pow(std::sin(lat * std::numbers::pi / 180.0), 2);
  });
  ocn_ = atm_;
}

MonthlyState CoupledModel::step(std::size_t threads) {
  const double dt = 1.0 / params_.substeps;  // months
  const double b_eff = params_.olr_b - params_.cloud_feedback;
  const double grid_scale = (params_.nlat / 24.0) * (params_.nlat / 24.0);
  const double d_atm = params_.atm_diffusion * grid_scale;
  const double d_ocn = params_.ocn_diffusion * grid_scale;

  // Persistent workers (caller participates, so `threads` total).
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  if (workers > 0 && (!pool_ || pool_->worker_count() != workers))
    pool_ = std::make_unique<ThreadPool>(workers);

  // The row updater is a plain callable built once per step (not per
  // substep, and never erased behind a std::function): the per-substep
  // inputs it needs are captured by reference and assigned below.
  const auto nlat = static_cast<std::size_t>(atm_.nlat());
  double atm_mean = 0.0;
  double season = 0.0;
  const auto update_row = [&](std::size_t row) {
    const int i = static_cast<int>(row);
    const double lat = atm_.latitude(i);
    const double q_shape =
        insolation_shape(lat) *
        (1.0 + season * std::sin(lat * std::numbers::pi / 180.0));
    for (int j = 0; j < atm_.nlon(); ++j) {
      const double to = ocn_.at(i, j);
      const double albedo =
          to < params_.ice_threshold ? params_.ice_albedo : 0.0;
      const double absorbed =
          0.25 * params_.solar * q_shape * (1.0 - albedo) -
          0.25 * params_.solar;  // anomaly form: 0 at global ref
      const double ta = atm_.at(i, j);
      const double flux = absorbed - (params_.olr_a - 202.0) -
                          params_.olr_b * (ta - atm_mean) -
                          b_eff * (atm_mean - 14.0) +
                          params_.exchange * (to - ta) +
                          params_.ghg_forcing;
      const double tendency =
          (flux / 10.0 + d_atm * lap_atm_.at(i, j)) /
          params_.atm_heat_capacity;
      atm_.at(i, j) =
          std::clamp(ta + dt * tendency, kClampLow, kClampHigh);
    }
  };

  for (int sub = 0; sub < params_.substeps; ++sub) {
    atm_.laplacian(lap_atm_);
    ocn_.laplacian(lap_ocn_);
    // The planetary-mean anomaly is damped at B_eff (cloud feedback), zonal
    // deviations at the full B — see the header note. Computed before the
    // parallel loop so results are thread-count independent.
    atm_mean = atm_.weighted_mean();

    // Seasonal modulation for this substep's position within the year.
    const double year_phase =
        2.0 * std::numbers::pi *
        ((month_ + static_cast<double>(sub) / params_.substeps -
          params_.seasonal_peak_month) /
         12.0);
    season = params_.seasonal_amplitude * std::cos(year_phase);

    // Atmosphere rows fan out over the pool (the parallel component); the
    // ocean update is cheap and stays sequential, like OPA in the paper's
    // configuration.
    if (workers > 0) {
      pool_->parallel_for(0, nlat, update_row);
    } else {
      for (std::size_t row = 0; row < nlat; ++row) update_row(row);
    }

    for (int i = 0; i < ocn_.nlat(); ++i) {
      for (int j = 0; j < ocn_.nlon(); ++j) {
        const double ta = atm_.at(i, j);
        const double to = ocn_.at(i, j);
        const double tendency =
            (params_.exchange * (ta - to) / 10.0 +
             d_ocn * lap_ocn_.at(i, j)) /
            params_.ocn_heat_capacity;
        ocn_.at(i, j) = std::clamp(to + dt * tendency, kClampLow, kClampHigh);
      }
    }
  }

  ++month_;
  MonthlyState state;
  state.month = month_;
  state.global_mean_atm = atm_.weighted_mean();
  state.global_mean_ocn = ocn_.weighted_mean();
  int frozen = 0;
  for (const double t : ocn_.data()) frozen += (t < params_.ice_threshold);
  state.ice_fraction =
      static_cast<double>(frozen) / static_cast<double>(ocn_.size());
  return state;
}

}  // namespace oagrid::climate
