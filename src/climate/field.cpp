#include "climate/field.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace oagrid::climate {
namespace {

constexpr double deg2rad(double deg) {
  return deg * std::numbers::pi / 180.0;
}

}  // namespace

bool Region::contains(double lat, double lon) const noexcept {
  if (lat < lat_south || lat > lat_north) return false;
  if (lon_west <= lon_east) return lon >= lon_west && lon <= lon_east;
  // Wraps the date line.
  return lon >= lon_west || lon <= lon_east;
}

const std::vector<Region>& key_regions() {
  static const std::vector<Region> regions{
      {"global", -90, 90, -180, 180},
      {"tropics", -23.5, 23.5, -180, 180},
      {"arctic", 66.5, 90, -180, 180},
      {"north-atlantic", 30, 65, -70, 0},
      // Box widened vs the canonical +-5 deg so it covers cells even on the
      // coarse test grids (15-degree latitude bands).
      {"nino34", -10, 10, -170, -120},
  };
  return regions;
}

Field::Field(int nlat, int nlon, double fill)
    : nlat_(nlat), nlon_(nlon) {
  OAGRID_REQUIRE(nlat >= 2 && nlon >= 4, "grid too small to be meaningful");
  data_.assign(static_cast<std::size_t>(nlat) * static_cast<std::size_t>(nlon),
               fill);
}

std::size_t Field::index(int ilat, int ilon) const {
  OAGRID_REQUIRE(ilat >= 0 && ilat < nlat_ && ilon >= 0 && ilon < nlon_,
                 "cell index out of range");
  return static_cast<std::size_t>(ilat) * static_cast<std::size_t>(nlon_) +
         static_cast<std::size_t>(ilon);
}

double& Field::at(int ilat, int ilon) { return data_[index(ilat, ilon)]; }
double Field::at(int ilat, int ilon) const { return data_[index(ilat, ilon)]; }

double Field::latitude(int ilat) const noexcept {
  // Cell centers from -90+d/2 to 90-d/2.
  const double step = 180.0 / nlat_;
  return -90.0 + step * (ilat + 0.5);
}

double Field::longitude(int ilon) const noexcept {
  const double step = 360.0 / nlon_;
  return -180.0 + step * (ilon + 0.5);
}

double Field::weighted_mean() const {
  double num = 0.0, den = 0.0;
  for (int i = 0; i < nlat_; ++i) {
    const double w = std::cos(deg2rad(latitude(i)));
    for (int j = 0; j < nlon_; ++j) {
      num += w * at(i, j);
      den += w;
    }
  }
  return num / den;
}

double Field::regional_mean(const Region& region) const {
  double num = 0.0, den = 0.0;
  for (int i = 0; i < nlat_; ++i) {
    const double lat = latitude(i);
    const double w = std::cos(deg2rad(lat));
    for (int j = 0; j < nlon_; ++j) {
      if (!region.contains(lat, longitude(j))) continue;
      num += w * at(i, j);
      den += w;
    }
  }
  OAGRID_REQUIRE(den > 0.0, "region '" + region.name + "' covers no grid cell");
  return num / den;
}

double Field::min() const {
  return *std::min_element(data_.begin(), data_.end());
}

double Field::max() const {
  return *std::max_element(data_.begin(), data_.end());
}

void Field::laplacian(Field& out) const {
  OAGRID_REQUIRE(out.nlat_ == nlat_ && out.nlon_ == nlon_,
                 "laplacian output dims mismatch");
  for (int i = 0; i < nlat_; ++i) {
    // Insulated poles: reflect the latitude index at the boundaries.
    const int in = std::min(i + 1, nlat_ - 1);
    const int is = std::max(i - 1, 0);
    for (int j = 0; j < nlon_; ++j) {
      const int je = (j + 1) % nlon_;
      const int jw = (j + nlon_ - 1) % nlon_;
      out.at(i, j) = at(in, j) + at(is, j) + at(i, je) + at(i, jw) -
                     4.0 * at(i, j);
    }
  }
}

}  // namespace oagrid::climate
