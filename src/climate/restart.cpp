#include "climate/restart.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/parse_error.hpp"

namespace oagrid::climate {
namespace {

constexpr char kMagic[4] = {'O', 'A', 'R', 'S'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in, const std::string& source) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw_parse_error(source, "truncated restart stream");
  return value;
}

void write_field(std::ostream& out, const Field& field) {
  out.write(reinterpret_cast<const char*>(field.data().data()),
            static_cast<std::streamsize>(field.size() * sizeof(double)));
}

void read_field(std::istream& in, const std::string& source, Field& field) {
  in.read(reinterpret_cast<char*>(field.data().data()),
          static_cast<std::streamsize>(field.size() * sizeof(double)));
  if (!in)
    throw_parse_error(source,
                      "truncated restart stream (field payload cut short)");
}

/// A flipped bit in the header would otherwise surface as a huge allocation
/// in CoupledModel's constructor (or silent nonsense physics), so the
/// structural fields are sanity-checked before any state is built. The grid
/// bound is generous — the reference resolution is 24x48.
void validate_params(const ModelParams& params, const std::string& source) {
  constexpr int kMaxGridDim = 1 << 14;
  constexpr int kMaxSubsteps = 1 << 20;
  if (params.nlat < 1 || params.nlat > kMaxGridDim || params.nlon < 1 ||
      params.nlon > kMaxGridDim)
    throw_parse_error(source,
                      "corrupt restart header (grid dimensions out of range)");
  if (params.substeps < 1 || params.substeps > kMaxSubsteps)
    throw_parse_error(source,
                      "corrupt restart header (substeps out of range)");
  for (const double value :
       {params.solar, params.olr_a, params.olr_b, params.cloud_feedback,
        params.exchange, params.atm_diffusion, params.ocn_diffusion,
        params.atm_heat_capacity, params.ocn_heat_capacity, params.ice_albedo,
        params.ice_threshold, params.ghg_forcing, params.seasonal_amplitude})
    if (!std::isfinite(value))
      throw_parse_error(
          source, "corrupt restart header (non-finite physics parameter)");
}

}  // namespace

void write_restart(std::ostream& out, const CoupledModel& model) {
  out.write(kMagic, sizeof kMagic);
  write_pod(out, model.params());
  write_pod(out, static_cast<std::int32_t>(model.month()));
  write_field(out, model.atmosphere());
  write_field(out, model.ocean());
  if (!out) throw std::runtime_error("oagrid: restart write failed");
}

CoupledModel read_restart(std::istream& in, const std::string& source) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw_parse_error(source, "not a restart stream (bad magic)");
  const auto params = read_pod<ModelParams>(in, source);
  validate_params(params, source);
  const auto month = read_pod<std::int32_t>(in, source);
  if (month < 0)
    throw_parse_error(source,
                      "corrupt restart header (negative month counter)");
  CoupledModel model(params);
  read_field(in, source, model.atmosphere());
  read_field(in, source, model.ocean());
  // The stream must end exactly at the last field: trailing bytes mean the
  // reader and writer disagree about the layout.
  if (in.peek() != std::istream::traits_type::eof())
    throw_parse_error(source, "trailing bytes after restart payload");
  model.restore_month(month);
  return model;
}

std::size_t restart_size(const ModelParams& params) {
  return sizeof kMagic + sizeof(ModelParams) + sizeof(std::int32_t) +
         2 * static_cast<std::size_t>(params.nlat) *
             static_cast<std::size_t>(params.nlon) * sizeof(double);
}

}  // namespace oagrid::climate
