#include "climate/restart.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace oagrid::climate {
namespace {

constexpr char kMagic[4] = {'O', 'A', 'R', 'S'};

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::invalid_argument("oagrid: truncated restart stream");
  return value;
}

void write_field(std::ostream& out, const Field& field) {
  out.write(reinterpret_cast<const char*>(field.data().data()),
            static_cast<std::streamsize>(field.size() * sizeof(double)));
}

void read_field(std::istream& in, Field& field) {
  in.read(reinterpret_cast<char*>(field.data().data()),
          static_cast<std::streamsize>(field.size() * sizeof(double)));
  if (!in) throw std::invalid_argument("oagrid: truncated restart payload");
}

}  // namespace

void write_restart(std::ostream& out, const CoupledModel& model) {
  out.write(kMagic, sizeof kMagic);
  write_pod(out, model.params());
  write_pod(out, static_cast<std::int32_t>(model.month()));
  write_field(out, model.atmosphere());
  write_field(out, model.ocean());
  if (!out) throw std::runtime_error("oagrid: restart write failed");
}

CoupledModel read_restart(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::invalid_argument("oagrid: not a restart stream (bad magic)");
  const auto params = read_pod<ModelParams>(in);
  const auto month = read_pod<std::int32_t>(in);
  CoupledModel model(params);
  read_field(in, model.atmosphere());
  read_field(in, model.ocean());
  model.restore_month(month);
  return model;
}

std::size_t restart_size(const ModelParams& params) {
  return sizeof kMagic + sizeof(ModelParams) + sizeof(std::int32_t) +
         2 * static_cast<std::size_t>(params.nlat) *
             static_cast<std::size_t>(params.nlon) * sizeof(double);
}

}  // namespace oagrid::climate
