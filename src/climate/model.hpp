#pragma once
/// \file model.hpp
/// \brief The coupled ocean-atmosphere integrator standing in for
/// ARPEGE + OPA/NEMO + TRIP + OASIS (`process_coupled_run`).
///
/// A two-layer energy-balance model on the sphere — the classic
/// Budyko/Sellers family, which is the standard laptop-scale surrogate for a
/// GCM: it has the pieces whose *interaction* the paper's application is
/// about (a parallelizable atmosphere stencil, a slow ocean, an ice-albedo
/// feedback, greenhouse forcing, and a cloud-feedback parameter that
/// controls climate sensitivity — the knob the paper's ensemble varies).
///
///   C_a dTa/dt = Q(lat) * (1 - albedo(To)) - B * (Ta - Tmean)
///                - B_eff * (Tmean - Tref) + k_ex (To - Ta)
///                + D_a lap(Ta) + F_ghg
///   C_o dTo/dt = k_ex (Ta - To) + D_o lap(To)
///   B_eff      = B - cloud_feedback
///
/// Zonal deviations are damped at the full coefficient B (the meridional
/// structure — and hence the ice line — is parametrization-independent),
/// while the *global-mean* anomaly is damped at B_eff: the cloud feedback
/// acts on the planetary energy balance, so equilibrium warming under a
/// forcing F is F / B_eff. That is exactly the paper's ensemble premise —
/// same present climate, different sensitivity per cloud parametrization.
///
/// Temperatures in degrees Celsius; one step() integrates one month in
/// `substeps` explicit-Euler substeps. The atmosphere stencil update is the
/// parallel part (rows fan out over threads), mirroring ARPEGE being the
/// only MPI-parallel component of the real coupled model.

#include <cstdint>
#include <memory>

#include "climate/field.hpp"
#include "common/thread_pool.hpp"

namespace oagrid::climate {

/// Physical parameters. Defaults give a ~14 C preindustrial global mean and
/// a plausible warming response; the ensemble varies cloud_feedback.
struct ModelParams {
  int nlat = 24;
  int nlon = 48;
  int substeps = 30;            ///< explicit substeps per month (~1/day)
  double solar = 340.0;         ///< W/m^2, global-mean insolation
  double olr_a = 202.0;         ///< W/m^2 (A in A + B T)
  double olr_b = 1.9;           ///< W/m^2/C
  double cloud_feedback = 0.0;  ///< W/m^2/C subtracted from olr_b
  double exchange = 0.7;        ///< W/m^2/C air-sea coupling
  /// Diffusion coefficients, calibrated at the 24x48 reference resolution;
  /// the stencil coefficient scales with (nlat/24)^2 so physics is
  /// grid-independent.
  double atm_diffusion = 0.55;
  double ocn_diffusion = 0.12;
  double atm_heat_capacity = 0.3;  ///< months to relax (small = fast)
  /// Ocean mixed-layer capacity: relaxation ~ 35 months — slow enough to lag
  /// the atmosphere visibly, fast enough that century runs equilibrate.
  double ocn_heat_capacity = 2.5;
  double ice_albedo = 0.25;         ///< extra albedo where the ocean freezes
  double ice_threshold = -2.0;      ///< C
  double ghg_forcing = 0.0;         ///< W/m^2, set per month by the scenario
  /// Seasonal cycle: hemisphere-antisymmetric insolation modulation with a
  /// 12-month period, sin(lat) * amplitude * cos(2*pi*(month - peak)/12).
  /// Zero disables it (annual-mean climate, the configuration the scheduling
  /// analysis uses); ~0.3 gives realistic mid-latitude summer/winter swings.
  double seasonal_amplitude = 0.0;
  int seasonal_peak_month = 6;  ///< northern-summer solstice position
};

/// Monthly diagnostics emitted by one step (consumed by the post-processing
/// pipeline).
struct MonthlyState {
  int month = 0;
  double global_mean_atm = 0.0;
  double global_mean_ocn = 0.0;
  double ice_fraction = 0.0;  ///< fraction of ocean cells below freezing
};

class CoupledModel {
 public:
  explicit CoupledModel(ModelParams params);

  [[nodiscard]] const ModelParams& params() const noexcept { return params_; }
  [[nodiscard]] const Field& atmosphere() const noexcept { return atm_; }
  [[nodiscard]] const Field& ocean() const noexcept { return ocn_; }
  [[nodiscard]] Field& atmosphere() noexcept { return atm_; }
  [[nodiscard]] Field& ocean() noexcept { return ocn_; }
  [[nodiscard]] int month() const noexcept { return month_; }

  /// Sets the greenhouse forcing for subsequent months (the 21st-century
  /// ramp of the paper's scenarios).
  void set_ghg_forcing(double wm2) noexcept { params_.ghg_forcing = wm2; }

  /// Integrates one month; `threads` > 1 parallelizes the atmosphere stencil
  /// rows (the ARPEGE analogue). Results are thread-count independent.
  MonthlyState step(std::size_t threads = 1);

  /// Restores the month counter when resuming from a restart file (the
  /// fields are restored separately through the mutable accessors).
  void restore_month(int month) noexcept { month_ = month; }

 private:
  ModelParams params_;
  Field atm_;
  Field ocn_;
  Field lap_atm_;
  Field lap_ocn_;
  int month_ = 0;
  /// Persistent workers reused across the month's substeps (spawning per
  /// substep would dwarf the stencil work); sized lazily to threads - 1.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace oagrid::climate
