#include "sched/baselines.hpp"

#include <algorithm>

namespace oagrid::sched {
namespace {

/// Nodes on a static critical path under the current allotment: every node
/// with top_level + bottom_level == critical path length (within epsilon).
std::vector<dag::NodeId> critical_path_nodes(const dag::Dag& graph,
                                             const Allotment& allotment,
                                             const MoldableDuration& duration) {
  const auto n = static_cast<std::size_t>(graph.node_count());
  const std::vector<Seconds> bottom = bottom_levels(graph, allotment, duration);

  std::vector<Seconds> top(n, 0.0);  // longest path strictly above the node
  for (const dag::NodeId v : graph.topological_order()) {
    for (const dag::NodeId w : graph.successors(v)) {
      const Seconds through =
          top[static_cast<std::size_t>(v)] +
          duration(v, allotment.procs[static_cast<std::size_t>(v)]);
      top[static_cast<std::size_t>(w)] =
          std::max(top[static_cast<std::size_t>(w)], through);
    }
  }
  Seconds cp = 0.0;
  for (std::size_t v = 0; v < n; ++v) cp = std::max(cp, top[v] + bottom[v]);

  std::vector<dag::NodeId> nodes;
  const Seconds eps = 1e-9 * std::max(1.0, cp);
  for (std::size_t v = 0; v < n; ++v)
    if (top[v] + bottom[v] >= cp - eps)
      nodes.push_back(static_cast<dag::NodeId>(v));
  return nodes;
}

bool can_grow(const dag::Dag& graph, const Allotment& allotment,
              dag::NodeId v, ProcCount resources) {
  const dag::TaskSpec& spec = graph.task(v);
  if (spec.shape != dag::TaskShape::kMoldable) return false;
  const ProcCount current = allotment.procs[static_cast<std::size_t>(v)];
  return current < spec.max_procs && current < resources;
}

double total_area(const dag::Dag& graph, const Allotment& allotment,
                  const MoldableDuration& duration) {
  double area = 0.0;
  for (dag::NodeId v = 0; v < graph.node_count(); ++v) {
    const ProcCount p = allotment.procs[static_cast<std::size_t>(v)];
    area += duration(v, p) * static_cast<double>(p);
  }
  return area;
}

Seconds critical_path_length(const dag::Dag& graph, const Allotment& allotment,
                             const MoldableDuration& duration) {
  return graph.critical_path([&](dag::NodeId v) {
    return duration(v, allotment.procs[static_cast<std::size_t>(v)]);
  });
}

}  // namespace

BaselineResult cpa_schedule(const dag::Dag& graph, ProcCount resources,
                            const MoldableDuration& duration) {
  BaselineResult result;
  result.allotment = Allotment::minimal(graph);

  // Allocation loop: balance the two lower bounds on the makespan — the
  // critical path and the average work per processor.
  for (;;) {
    const Seconds cp = critical_path_length(graph, result.allotment, duration);
    const double avg_area =
        total_area(graph, result.allotment, duration) /
        static_cast<double>(resources);
    if (cp <= avg_area) break;

    dag::NodeId best = dag::kInvalidNode;
    double best_gain = 0.0;
    for (const dag::NodeId v :
         critical_path_nodes(graph, result.allotment, duration)) {
      if (!can_grow(graph, result.allotment, v, resources)) continue;
      const ProcCount p = result.allotment.procs[static_cast<std::size_t>(v)];
      // CPA's gain criterion: decrease of t(v)/p when adding one processor.
      const double gain = duration(v, p) / static_cast<double>(p) -
                          duration(v, p + 1) / static_cast<double>(p + 1);
      if (best == dag::kInvalidNode || gain > best_gain) {
        best = v;
        best_gain = gain;
      }
    }
    if (best == dag::kInvalidNode) break;  // nothing on the CP can grow
    ++result.allotment.procs[static_cast<std::size_t>(best)];
    ++result.growth_steps;
  }

  result.schedule = list_schedule(graph, result.allotment, resources, duration);
  return result;
}

BaselineResult cpr_schedule(const dag::Dag& graph, ProcCount resources,
                            const MoldableDuration& duration, int max_steps) {
  BaselineResult result;
  result.allotment = Allotment::minimal(graph);
  result.schedule = list_schedule(graph, result.allotment, resources, duration);

  while (result.growth_steps < max_steps) {
    dag::NodeId best = dag::kInvalidNode;
    Seconds best_makespan = result.schedule.makespan;
    ListScheduleResult best_schedule;

    for (const dag::NodeId v :
         critical_path_nodes(graph, result.allotment, duration)) {
      if (!can_grow(graph, result.allotment, v, resources)) continue;
      Allotment trial = result.allotment;
      ++trial.procs[static_cast<std::size_t>(v)];
      ListScheduleResult trial_schedule =
          list_schedule(graph, trial, resources, duration);
      if (trial_schedule.makespan < best_makespan - 1e-9) {
        best = v;
        best_makespan = trial_schedule.makespan;
        best_schedule = std::move(trial_schedule);
      }
    }
    if (best == dag::kInvalidNode) break;  // no single growth improves
    ++result.allotment.procs[static_cast<std::size_t>(best)];
    result.schedule = std::move(best_schedule);
    ++result.growth_steps;
  }
  return result;
}

BaselineResult minimal_schedule(const dag::Dag& graph, ProcCount resources,
                                const MoldableDuration& duration) {
  BaselineResult result;
  result.allotment = Allotment::minimal(graph);
  result.schedule = list_schedule(graph, result.allotment, resources, duration);
  return result;
}

}  // namespace oagrid::sched
