#pragma once
/// \file list_scheduler.hpp
/// \brief Bottom-level list scheduling of an allotted moldable DAG.
///
/// The related-work baselines the paper cites (CPR [8], CPA [9]) both reduce
/// to: (1) pick a processor allotment per moldable task, (2) list-schedule
/// the now-rigid DAG on R processors by descending bottom level. This module
/// is step (2), shared by both baselines and their bench.
///
/// Processor allocation is the standard non-contiguous variant: a task
/// needing p processors starts at max(ready time, p-th earliest processor
/// release) on the p earliest-released processors.

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "dag/dag.hpp"
#include "platform/cluster.hpp"

namespace oagrid::sched {

/// Duration of node v when executed on p processors. Implementations must be
/// defined for every p in the node's admissible range (rigid nodes are only
/// queried at their fixed width).
using MoldableDuration = std::function<Seconds(dag::NodeId, ProcCount)>;

/// Per-node processor allotment.
struct Allotment {
  std::vector<ProcCount> procs;

  /// Every moldable node at its minimum width, rigid nodes at their width.
  [[nodiscard]] static Allotment minimal(const dag::Dag& graph);
};

/// Result of one list-scheduling pass.
struct ListScheduleResult {
  Seconds makespan = 0.0;
  std::vector<Seconds> start;
  std::vector<Seconds> finish;
};

/// Bottom level per node: longest duration-weighted path from the node to an
/// exit, inclusive of the node itself, under the given allotment.
[[nodiscard]] std::vector<Seconds> bottom_levels(
    const dag::Dag& graph, const Allotment& allotment,
    const MoldableDuration& duration);

/// Schedules the allotted DAG on `resources` processors. Throws if any
/// allotment exceeds `resources` or the DAG is not frozen.
[[nodiscard]] ListScheduleResult list_schedule(
    const dag::Dag& graph, const Allotment& allotment, ProcCount resources,
    const MoldableDuration& duration);

/// Duration functor over a platform cluster: moldable nodes use the
/// cluster's main-task table (clamped to its range), rigid nodes their
/// ref_duration scaled to the cluster's speed via the post-time ratio.
[[nodiscard]] MoldableDuration cluster_duration(
    const dag::Dag& graph, const platform::Cluster& cluster);

}  // namespace oagrid::sched
