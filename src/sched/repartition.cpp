#include "sched/repartition.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "obs/obs.hpp"

namespace oagrid::sched {
namespace {

void validate_inputs(std::span<const PerformanceVector> performance,
                     Count scenarios) {
  OAGRID_REQUIRE(!performance.empty(), "need at least one cluster");
  OAGRID_REQUIRE(scenarios >= 1, "need at least one scenario");
  for (const auto& vec : performance)
    OAGRID_REQUIRE(static_cast<Count>(vec.size()) >= scenarios,
                   "performance vector shorter than the scenario count");
}

/// Makespan of a distribution with an optional per-cluster placement charge
/// folded in: max over clusters of performance[c][k-1] (+ charge(c, k)).
/// The single source of truth for both repartition_makespan and the charged
/// greedy's finalization tail.
Seconds charged_makespan(std::span<const PerformanceVector> performance,
                         std::span<const Count> dags_per_cluster,
                         const PlacementCharge* charge) {
  OAGRID_REQUIRE(performance.size() == dags_per_cluster.size(),
                 "cluster count mismatch");
  Seconds worst = 0.0;
  for (std::size_t c = 0; c < performance.size(); ++c) {
    const Count k = dags_per_cluster[c];
    if (k <= 0) continue;
    OAGRID_REQUIRE(static_cast<std::size_t>(k) <= performance[c].size(),
                   "distribution exceeds performance vector length");
    Seconds load = performance[c][static_cast<std::size_t>(k) - 1];
    if (charge != nullptr) load += (*charge)(c, k);
    worst = std::max(worst, load);
  }
  return worst;
}

/// One candidate placement: cluster `cluster` receiving its
/// (count_at_push + 1)-th scenario would drive its makespan to `value`.
struct HeapEntry {
  Seconds value;
  std::size_t cluster;
  Count count_at_push;
};

/// Min-heap order on (value, cluster id): the pop is the lowest candidate
/// makespan, ties to the lowest cluster id — exactly the first-argmin a
/// strict '<' scan in cluster order produces, so assignments match the
/// paper's pseudocode byte for byte.
struct HeapAfter {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
    if (a.value != b.value) return a.value > b.value;
    return a.cluster > b.cluster;
  }
};

using CandidateHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapAfter>;

/// Algorithm 1 driven by a lazy-deletion min-heap instead of a per-scenario
/// full-cluster scan: O(NS log C) pops instead of O(NS * C) comparisons.
/// Only the cluster that receives a scenario sees its candidate change, so
/// each placement invalidates exactly one entry — which is immediately
/// replaced. Entries carry the cluster's dag count at push time and any
/// entry whose count went stale is recomputed on pop (`charge` may capture
/// state, so stale values are never trusted).
Repartition heap_repartition(std::span<const PerformanceVector> performance,
                             Count scenarios, const PlacementCharge* charge) {
  validate_inputs(performance, scenarios);
  const auto n = performance.size();
  Repartition result;
  result.dags_per_cluster.assign(n, 0);
  result.assignment.reserve(static_cast<std::size_t>(scenarios));

  const auto candidate_for = [&](std::size_t c) {
    const auto next = static_cast<std::size_t>(result.dags_per_cluster[c]);
    Seconds value = performance[c][next];  // makespan of next+1 dags
    if (charge != nullptr) value += (*charge)(c, static_cast<Count>(next) + 1);
    return HeapEntry{value, c, result.dags_per_cluster[c]};
  };

  CandidateHeap heap;
  for (std::size_t c = 0; c < n; ++c) heap.push(candidate_for(c));

  std::uint64_t pops = 0;
  for (Count dag = 0; dag < scenarios; ++dag) {
    HeapEntry top = heap.top();
    heap.pop();
    ++pops;
    while (top.count_at_push != result.dags_per_cluster[top.cluster]) {
      heap.push(candidate_for(top.cluster));  // lazy deletion: refresh + retry
      top = heap.top();
      heap.pop();
      ++pops;
    }
    ++result.dags_per_cluster[top.cluster];
    result.assignment.push_back(static_cast<ClusterId>(top.cluster));
    // The assigned cluster's candidate is the only one that moved; its next
    // entry stays in bounds because counts never exceed the vector length
    // while scenarios remain.
    if (dag + 1 < scenarios) heap.push(candidate_for(top.cluster));
  }
  if (obs::enabled())
    obs::metrics().counter("sched.repartition.heap_pops").add(pops);
  result.makespan =
      charged_makespan(performance, result.dags_per_cluster, charge);
  return result;
}

}  // namespace

Seconds repartition_makespan(std::span<const PerformanceVector> performance,
                             std::span<const Count> dags_per_cluster) {
  return charged_makespan(performance, dags_per_cluster, nullptr);
}

Repartition greedy_repartition(std::span<const PerformanceVector> performance,
                               Count scenarios) {
  return heap_repartition(performance, scenarios, nullptr);
}

Repartition greedy_repartition_charged(
    std::span<const PerformanceVector> performance, Count scenarios,
    const PlacementCharge& charge) {
  if (!charge) return greedy_repartition(performance, scenarios);
  return heap_repartition(performance, scenarios, &charge);
}

namespace {

void enumerate(std::span<const PerformanceVector> performance,
               std::size_t cluster, Count remaining, std::vector<Count>& counts,
               Repartition& best) {
  if (cluster + 1 == performance.size()) {
    counts[cluster] = remaining;
    const Seconds ms = repartition_makespan(performance, counts);
    if (ms < best.makespan) {
      best.makespan = ms;
      best.dags_per_cluster = counts;
    }
    counts[cluster] = 0;
    return;
  }
  for (Count take = 0; take <= remaining; ++take) {
    counts[cluster] = take;
    enumerate(performance, cluster + 1, remaining - take, counts, best);
  }
  counts[cluster] = 0;
}

}  // namespace

Repartition brute_force_repartition(
    std::span<const PerformanceVector> performance, Count scenarios) {
  validate_inputs(performance, scenarios);
  Repartition best;
  best.makespan = std::numeric_limits<Seconds>::infinity();
  std::vector<Count> counts(performance.size(), 0);
  enumerate(performance, 0, scenarios, counts, best);
  // Synthesize an assignment consistent with the counts (cluster by cluster).
  best.assignment.clear();
  for (std::size_t c = 0; c < best.dags_per_cluster.size(); ++c)
    for (Count k = 0; k < best.dags_per_cluster[c]; ++k)
      best.assignment.push_back(static_cast<ClusterId>(c));
  return best;
}

bool is_locally_optimal(std::span<const PerformanceVector> performance,
                        const Repartition& repartition) {
  const Seconds base = repartition_makespan(performance,
                                            repartition.dags_per_cluster);
  std::vector<Count> counts = repartition.dags_per_cluster;
  for (std::size_t from = 0; from < counts.size(); ++from) {
    if (counts[from] == 0) continue;
    for (std::size_t to = 0; to < counts.size(); ++to) {
      if (to == from) continue;
      if (static_cast<std::size_t>(counts[to]) + 1 > performance[to].size())
        continue;  // move impossible: vector too short
      --counts[from];
      ++counts[to];
      const Seconds moved = repartition_makespan(performance, counts);
      ++counts[from];
      --counts[to];
      if (moved < base - 1e-9) return false;
    }
  }
  return true;
}

}  // namespace oagrid::sched
