#include "sched/repartition.hpp"

#include <algorithm>
#include <limits>

namespace oagrid::sched {
namespace {

void validate_inputs(std::span<const PerformanceVector> performance,
                     Count scenarios) {
  OAGRID_REQUIRE(!performance.empty(), "need at least one cluster");
  OAGRID_REQUIRE(scenarios >= 1, "need at least one scenario");
  for (const auto& vec : performance)
    OAGRID_REQUIRE(static_cast<Count>(vec.size()) >= scenarios,
                   "performance vector shorter than the scenario count");
}

}  // namespace

Seconds repartition_makespan(std::span<const PerformanceVector> performance,
                             std::span<const Count> dags_per_cluster) {
  OAGRID_REQUIRE(performance.size() == dags_per_cluster.size(),
                 "cluster count mismatch");
  Seconds worst = 0.0;
  for (std::size_t c = 0; c < performance.size(); ++c) {
    const Count k = dags_per_cluster[c];
    if (k <= 0) continue;
    OAGRID_REQUIRE(static_cast<std::size_t>(k) <= performance[c].size(),
                   "distribution exceeds performance vector length");
    worst = std::max(worst, performance[c][static_cast<std::size_t>(k) - 1]);
  }
  return worst;
}

Repartition greedy_repartition(std::span<const PerformanceVector> performance,
                               Count scenarios) {
  validate_inputs(performance, scenarios);
  const auto n = performance.size();
  Repartition result;
  result.dags_per_cluster.assign(n, 0);
  result.assignment.reserve(static_cast<std::size_t>(scenarios));

  for (Count dag = 0; dag < scenarios; ++dag) {
    Seconds best = std::numeric_limits<Seconds>::infinity();
    std::size_t best_cluster = 0;
    for (std::size_t c = 0; c < n; ++c) {
      const auto next = static_cast<std::size_t>(result.dags_per_cluster[c]);
      const Seconds candidate = performance[c][next];  // makespan of next+1 dags
      if (candidate < best) {
        best = candidate;
        best_cluster = c;
      }
    }
    ++result.dags_per_cluster[best_cluster];
    result.assignment.push_back(static_cast<ClusterId>(best_cluster));
  }
  result.makespan = repartition_makespan(performance, result.dags_per_cluster);
  return result;
}

Repartition greedy_repartition_charged(
    std::span<const PerformanceVector> performance, Count scenarios,
    const PlacementCharge& charge) {
  if (!charge) return greedy_repartition(performance, scenarios);
  validate_inputs(performance, scenarios);
  const auto n = performance.size();
  Repartition result;
  result.dags_per_cluster.assign(n, 0);
  result.assignment.reserve(static_cast<std::size_t>(scenarios));

  for (Count dag = 0; dag < scenarios; ++dag) {
    Seconds best = std::numeric_limits<Seconds>::infinity();
    std::size_t best_cluster = 0;
    for (std::size_t c = 0; c < n; ++c) {
      const auto next = static_cast<std::size_t>(result.dags_per_cluster[c]);
      const Seconds candidate =
          performance[c][next] + charge(c, static_cast<Count>(next) + 1);
      if (candidate < best) {
        best = candidate;
        best_cluster = c;
      }
    }
    ++result.dags_per_cluster[best_cluster];
    result.assignment.push_back(static_cast<ClusterId>(best_cluster));
  }
  for (std::size_t c = 0; c < n; ++c) {
    const Count k = result.dags_per_cluster[c];
    if (k > 0)
      result.makespan = std::max(
          result.makespan,
          performance[c][static_cast<std::size_t>(k) - 1] + charge(c, k));
  }
  return result;
}

namespace {

void enumerate(std::span<const PerformanceVector> performance,
               std::size_t cluster, Count remaining, std::vector<Count>& counts,
               Repartition& best) {
  if (cluster + 1 == performance.size()) {
    counts[cluster] = remaining;
    const Seconds ms = repartition_makespan(performance, counts);
    if (ms < best.makespan) {
      best.makespan = ms;
      best.dags_per_cluster = counts;
    }
    counts[cluster] = 0;
    return;
  }
  for (Count take = 0; take <= remaining; ++take) {
    counts[cluster] = take;
    enumerate(performance, cluster + 1, remaining - take, counts, best);
  }
  counts[cluster] = 0;
}

}  // namespace

Repartition brute_force_repartition(
    std::span<const PerformanceVector> performance, Count scenarios) {
  validate_inputs(performance, scenarios);
  Repartition best;
  best.makespan = std::numeric_limits<Seconds>::infinity();
  std::vector<Count> counts(performance.size(), 0);
  enumerate(performance, 0, scenarios, counts, best);
  // Synthesize an assignment consistent with the counts (cluster by cluster).
  best.assignment.clear();
  for (std::size_t c = 0; c < best.dags_per_cluster.size(); ++c)
    for (Count k = 0; k < best.dags_per_cluster[c]; ++k)
      best.assignment.push_back(static_cast<ClusterId>(c));
  return best;
}

bool is_locally_optimal(std::span<const PerformanceVector> performance,
                        const Repartition& repartition) {
  const Seconds base = repartition_makespan(performance,
                                            repartition.dags_per_cluster);
  std::vector<Count> counts = repartition.dags_per_cluster;
  for (std::size_t from = 0; from < counts.size(); ++from) {
    if (counts[from] == 0) continue;
    for (std::size_t to = 0; to < counts.size(); ++to) {
      if (to == from) continue;
      if (static_cast<std::size_t>(counts[to]) + 1 > performance[to].size())
        continue;  // move impossible: vector too short
      --counts[from];
      ++counts[to];
      const Seconds moved = repartition_makespan(performance, counts);
      ++counts[from];
      --counts[to];
      if (moved < base - 1e-9) return false;
    }
  }
  return true;
}

}  // namespace oagrid::sched
