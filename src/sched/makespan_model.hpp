#pragma once
/// \file makespan_model.hpp
/// \brief Closed-form makespan of the basic uniform-grouping heuristic —
/// Equations 1-5 of the paper (§4.1), all four regimes.
///
/// With a uniform group size G, the nbmax = min(NS, floor(R/G)) groups stay
/// synchronized: sets of main tasks start and finish in lockstep every TG
/// seconds, which is what makes a closed form possible. The model computes,
/// for a given G:
///
///   nbtasks = NS*NM            R1 = nbmax*G          R2 = R - R1
///   nbused  = nbtasks mod nbmax (groups busy in the last, incomplete set)
///   n       = ceil(nbtasks / nbmax) (number of sets)
///   MSmulti = n * TG  (Equation 1)
///
/// and then one of four post-processing completions:
///   R2 = 0, nbused = 0  -> Equation 2
///   R2 = 0, nbused != 0 -> Equation 3 (posts catch up on the processors of
///                          the groups idle during the last set)
///   R2 != 0, nbused = 0 -> Equation 4 (pool of R2; backlog "overpasses" by
///                          (nbmax - Npossible) per set when the pool is too
///                          small, Figure 4/5)
///   R2 != 0, nbused != 0 -> Equation 5 (both effects, Figure 6)
///
/// The closed form slightly over-approximates a real execution when TP does
/// not divide TG (it re-buckets in-flight posts at set boundaries); tests
/// verify exact agreement with the discrete-event simulator under
/// divisibility and a one-sided bound otherwise.

#include "appmodel/ensemble.hpp"
#include "common/types.hpp"
#include "platform/cluster.hpp"

namespace oagrid::sched {

/// Which of the paper's four formula regimes applied.
enum class MakespanRegime {
  kNoPoolExact,     ///< Eq 2: R2 = 0, nbused = 0
  kNoPoolPartial,   ///< Eq 3: R2 = 0, nbused != 0
  kPoolExact,       ///< Eq 4: R2 != 0, nbused = 0
  kPoolPartial,     ///< Eq 5: R2 != 0, nbused != 0
  kInfeasible,      ///< R < G: no group fits
};

[[nodiscard]] const char* to_string(MakespanRegime regime) noexcept;

/// Full decomposition of one evaluation, exposing every intermediate the
/// paper names so tests and benches can check them individually.
struct MakespanEstimate {
  MakespanRegime regime = MakespanRegime::kInfeasible;
  Seconds makespan = kInfiniteTime;
  Seconds main_phase = kInfiniteTime;  ///< Equation 1 (MSmulti)
  Count nbmax = 0;
  ProcCount r1 = 0;
  ProcCount r2 = 0;
  Count nbused = 0;
  Count sets = 0;           ///< n
  Count overpass = 0;       ///< Noverpass (0 in the no-pool regimes)
  Count rem_post = 0;       ///< posts left for the final catch-up phase
};

/// Evaluates the closed form for one uniform group size G. TG is
/// cluster.main_time(G), TP is cluster.post_time(). Returns kInfeasible when
/// floor(R/G) = 0.
[[nodiscard]] MakespanEstimate evaluate_uniform_grouping(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble,
    ProcCount group_size);

/// The §4.1 heuristic: evaluate every admissible G and keep the best (ties
/// broken toward smaller G, which uses fewer processors per group). Throws if
/// no G is feasible (R < min group size).
struct UniformChoice {
  ProcCount group_size = 0;
  MakespanEstimate estimate;
};
[[nodiscard]] UniformChoice best_uniform_grouping(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble);

}  // namespace oagrid::sched
