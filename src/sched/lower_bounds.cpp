#include "sched/lower_bounds.hpp"

#include <algorithm>

namespace oagrid::sched {

Seconds min_main_time(const platform::Cluster& cluster) {
  Seconds best = kInfiniteTime;
  for (ProcCount g = cluster.min_group(); g <= cluster.max_group(); ++g)
    best = std::min(best, cluster.main_time(g));
  return best;
}

double min_main_area(const platform::Cluster& cluster) {
  double best = kInfiniteTime;
  for (ProcCount g = cluster.min_group(); g <= cluster.max_group(); ++g)
    best = std::min(best, static_cast<double>(g) * cluster.main_time(g));
  return best;
}

MakespanBounds ensemble_lower_bounds(const platform::Cluster& cluster,
                                     const appmodel::Ensemble& ensemble) {
  ensemble.validate();
  MakespanBounds bounds;
  // Chain: NM serialized mains + the final month's post.
  bounds.chain_bound =
      static_cast<double>(ensemble.months) * min_main_time(cluster) +
      cluster.post_time();
  // Area: all mains at their cheapest area, all posts, over R processors.
  const double total_work =
      static_cast<double>(ensemble.total_tasks()) *
      (min_main_area(cluster) + cluster.post_time());
  bounds.area_bound = total_work / static_cast<double>(cluster.resources());
  return bounds;
}

MakespanBounds grid_lower_bounds(const platform::Grid& grid,
                                 const appmodel::Ensemble& ensemble) {
  ensemble.validate();
  OAGRID_REQUIRE(grid.cluster_count() >= 1, "grid needs at least one cluster");
  MakespanBounds bounds;
  Seconds best_chain = kInfiniteTime;
  double cheapest_area = kInfiniteTime;
  for (const auto& cluster : grid.clusters()) {
    best_chain = std::min(
        best_chain,
        static_cast<double>(ensemble.months) * min_main_time(cluster) +
            cluster.post_time());
    cheapest_area =
        std::min(cheapest_area, min_main_area(cluster) + cluster.post_time());
  }
  bounds.chain_bound = best_chain;
  bounds.area_bound = static_cast<double>(ensemble.total_tasks()) *
                      cheapest_area /
                      static_cast<double>(grid.total_resources());
  return bounds;
}

}  // namespace oagrid::sched
