#pragma once
/// \file generic_chain.hpp
/// \brief The paper's announced future work (§7): "a generic heuristic that
/// can schedule the same kind of workflow, made of independent chains of
/// identical DAGs composed of moldable tasks."
///
/// GenericChainScheduler generalizes the knapsack grouping from the fused
/// (main, post) month to an arbitrary template DAG:
///
///  1. *Tail peeling* — the maximal set of template nodes that are rigid,
///     have no moldable descendant, and do not source a cross-instance link
///     is peeled off into a pooled tail (the generalization of the paper's
///     post-processing fusion). Those tasks never gate the next instance, so
///     they can run on leftover processors.
///  2. *Body timing* — the remaining body executed by one group of g
///     processors takes the body's critical-path time with every moldable
///     node at g processors (within-group branch overlap allowed).
///  3. *Knapsack grouping* — group sizes are chosen exactly as in
///     Improvement 3: maximize sum 1/T_body(g_i) under the resource and
///     chain-count constraints.
///
/// On the Ocean-Atmosphere fused template this reduces *exactly* to
/// knapsack_grouping (tests assert it), and the produced virtual cluster
/// (body table + tail duration) can be executed by the same ensemble
/// simulator.

#include <optional>
#include <vector>

#include "dag/chain.hpp"
#include "dag/dag.hpp"
#include "platform/cluster.hpp"
#include "sched/group_schedule.hpp"
#include "sched/list_scheduler.hpp"

namespace oagrid::sched {

/// A workload of `chains` independent chains, each `instances` stampings of
/// `template_dag` linked by `links`.
struct ChainWorkload {
  dag::Dag template_dag;                   ///< frozen
  std::vector<dag::CrossLink> links;
  Count chains = 1;
  Count instances = 1;
};

class GenericChainScheduler {
 public:
  /// `duration(v, p)` gives node v's time on p processors; group sizes are
  /// searched in [min_group, max_group].
  GenericChainScheduler(ChainWorkload workload, MoldableDuration duration,
                        ProcCount min_group, ProcCount max_group);

  /// Template nodes peeled into the pooled tail (rigid, no moldable
  /// descendant, not a cross-link source).
  [[nodiscard]] const std::vector<dag::NodeId>& tail_nodes() const noexcept {
    return tail_;
  }

  /// Critical-path time of the body on a group of g processors.
  [[nodiscard]] Seconds body_time(ProcCount g) const;

  /// Sequential time of one instance's tail on one pool processor.
  [[nodiscard]] Seconds tail_time() const noexcept { return tail_time_; }

  /// The knapsack grouping for `resources` processors.
  [[nodiscard]] GroupSchedule schedule(ProcCount resources) const;

  /// Equivalent (body-table, tail-duration) cluster so the ensemble
  /// simulator can execute the generic schedule unchanged.
  [[nodiscard]] platform::Cluster virtual_cluster(std::string name,
                                                  ProcCount resources) const;

 private:
  ChainWorkload workload_;
  MoldableDuration duration_;
  ProcCount min_group_;
  ProcCount max_group_;
  std::vector<dag::NodeId> tail_;
  std::vector<bool> in_tail_;
  Seconds tail_time_ = 0.0;
};

}  // namespace oagrid::sched
