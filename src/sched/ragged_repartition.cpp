#include "sched/ragged_repartition.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "sched/lower_bounds.hpp"
#include "sched/throughput.hpp"

namespace oagrid::sched {

Seconds ragged_cluster_estimate(const platform::Cluster& cluster,
                                std::span<const Count> chain_months) {
  if (chain_months.empty()) return 0.0;
  Count total = 0;
  Count longest = 0;
  for (const Count m : chain_months) {
    OAGRID_REQUIRE(m >= 1, "chains need at least one month");
    total += m;
    longest = std::max(longest, m);
  }
  const double throughput =
      best_throughput(cluster, static_cast<Count>(chain_months.size()));
  if (throughput <= 0.0) return kInfiniteTime;
  const double cap = 1.0 / min_main_time(cluster);
  const double aggregate = static_cast<double>(total) / throughput;
  const double chain = static_cast<double>(longest) / cap;
  return std::max(aggregate, chain) + cluster.post_time();
}

namespace {

Seconds evaluate(const platform::Grid& grid,
                 std::span<const Count> months,
                 const std::vector<ClusterId>& assignment,
                 std::vector<Seconds>* estimates) {
  std::vector<std::vector<Count>> per_cluster(
      static_cast<std::size_t>(grid.cluster_count()));
  for (std::size_t s = 0; s < assignment.size(); ++s)
    per_cluster[static_cast<std::size_t>(assignment[s])].push_back(months[s]);
  Seconds worst = 0.0;
  if (estimates)
    estimates->assign(static_cast<std::size_t>(grid.cluster_count()), 0.0);
  for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
    const Seconds estimate = ragged_cluster_estimate(
        grid.cluster(c), per_cluster[static_cast<std::size_t>(c)]);
    if (estimates) (*estimates)[static_cast<std::size_t>(c)] = estimate;
    worst = std::max(worst, estimate);
  }
  return worst;
}

void validate_inputs(const platform::Grid& grid,
                     std::span<const Count> months) {
  OAGRID_REQUIRE(grid.cluster_count() >= 1, "grid needs at least one cluster");
  OAGRID_REQUIRE(!months.empty(), "need at least one scenario");
  for (const Count m : months)
    OAGRID_REQUIRE(m >= 1, "chains need at least one month");
}

}  // namespace

RaggedRepartition ragged_repartition(const platform::Grid& grid,
                                     std::span<const Count> months) {
  validate_inputs(grid, months);

  // Longest chains first: they constrain placement the most (LPT).
  std::vector<std::size_t> order(months.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (months[a] != months[b]) return months[a] > months[b];
    return a < b;
  });

  std::vector<std::vector<Count>> hosted(
      static_cast<std::size_t>(grid.cluster_count()));
  RaggedRepartition result;
  result.assignment.assign(months.size(), 0);

  for (const std::size_t s : order) {
    ClusterId best = 0;
    Seconds best_estimate = std::numeric_limits<Seconds>::infinity();
    for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
      auto& set = hosted[static_cast<std::size_t>(c)];
      set.push_back(months[s]);
      const Seconds estimate = ragged_cluster_estimate(grid.cluster(c), set);
      set.pop_back();
      if (estimate < best_estimate) {
        best_estimate = estimate;
        best = c;
      }
    }
    hosted[static_cast<std::size_t>(best)].push_back(months[s]);
    result.assignment[s] = best;
  }
  result.makespan =
      evaluate(grid, months, result.assignment, &result.cluster_estimates);
  return result;
}

namespace {

void enumerate_assignments(const platform::Grid& grid,
                           std::span<const Count> months, std::size_t index,
                           std::vector<ClusterId>& assignment,
                           RaggedRepartition& best) {
  if (index == months.size()) {
    const Seconds ms = evaluate(grid, months, assignment, nullptr);
    if (ms < best.makespan) {
      best.makespan = ms;
      best.assignment = assignment;
    }
    return;
  }
  for (ClusterId c = 0; c < grid.cluster_count(); ++c) {
    assignment[index] = c;
    enumerate_assignments(grid, months, index + 1, assignment, best);
  }
}

}  // namespace

RaggedRepartition ragged_repartition_brute_force(
    const platform::Grid& grid, std::span<const Count> months) {
  validate_inputs(grid, months);
  RaggedRepartition best;
  best.makespan = std::numeric_limits<Seconds>::infinity();
  std::vector<ClusterId> assignment(months.size(), 0);
  enumerate_assignments(grid, months, 0, assignment, best);
  evaluate(grid, months, best.assignment, &best.cluster_estimates);
  return best;
}

}  // namespace oagrid::sched
