#include "sched/group_schedule.hpp"

#include <algorithm>
#include <map>

namespace oagrid::sched {

const char* to_string(PostPolicy policy) noexcept {
  switch (policy) {
    case PostPolicy::kPoolThenRetired: return "pool+retired";
    case PostPolicy::kAllAtEnd: return "all-at-end";
  }
  return "?";
}

void GroupSchedule::validate(const platform::Cluster& cluster) const {
  OAGRID_REQUIRE(!group_sizes.empty(), "schedule needs at least one group");
  for (const ProcCount g : group_sizes)
    OAGRID_REQUIRE(g >= cluster.min_group() && g <= cluster.max_group(),
                   "group size outside the cluster's admissible range");
  OAGRID_REQUIRE(post_pool >= 0, "negative post pool");
  OAGRID_REQUIRE(total_resources() <= cluster.resources(),
                 "schedule uses more processors than the cluster has");
}

std::string GroupSchedule::describe() const {
  // Histogram in descending size order reads like the paper's prose
  // ("3 groups with 8 resources and 4 groups with 7").
  std::map<ProcCount, int, std::greater<>> histogram;
  for (const ProcCount g : group_sizes) ++histogram[g];
  std::string out;
  for (const auto& [size, count] : histogram) {
    if (!out.empty()) out += " + ";
    out += std::to_string(count) + "x" + std::to_string(size);
  }
  if (out.empty()) out = "(no groups)";
  out += " | pool=" + std::to_string(post_pool) + " (" +
         to_string(post_policy) + ")";
  return out;
}

}  // namespace oagrid::sched
