#include "sched/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "knapsack/knapsack.hpp"
#include "obs/obs.hpp"

namespace oagrid::sched {
namespace {

/// Spreads `extra` processors over `sizes` one at a time (round-robin over
/// the groups, largest-first so growth stays balanced), never exceeding
/// `cap`. Returns the number of processors that could not be placed.
ProcCount spread_over_groups(std::vector<ProcCount>& sizes, ProcCount extra,
                             ProcCount cap) {
  if (sizes.empty()) return extra;
  bool progress = true;
  while (extra > 0 && progress) {
    progress = false;
    for (ProcCount& size : sizes) {
      if (extra == 0) break;
      if (size < cap) {
        ++size;
        --extra;
        progress = true;
      }
    }
  }
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return extra;
}

/// Smallest dedicated pool able to absorb one set's posts within one set
/// (ceil(nbmax / floor(TG/TP))); falls back to the basic pool when a post
/// outlasts a main task (floor = 0, impossible with the paper's durations
/// but reachable with synthetic tables).
ProcCount steady_state_pool(const platform::Cluster& cluster,
                            const UniformChoice& choice) {
  const Seconds tg = cluster.main_time(choice.group_size);
  const auto per_proc =
      static_cast<Count>(std::floor(tg / cluster.post_time() + 1e-9));
  if (per_proc <= 0) return choice.estimate.r2;
  const Count pool = (choice.estimate.nbmax + per_proc - 1) / per_proc;
  return static_cast<ProcCount>(std::min<Count>(pool, choice.estimate.r2));
}

}  // namespace

const char* to_string(Heuristic heuristic) noexcept {
  switch (heuristic) {
    case Heuristic::kBasic: return "basic";
    case Heuristic::kRedistribute: return "redistribute (imp.1)";
    case Heuristic::kAllForMain: return "all-for-main (imp.2)";
    case Heuristic::kKnapsack: return "knapsack (imp.3)";
  }
  return "?";
}

GroupSchedule basic_grouping(const platform::Cluster& cluster,
                             const appmodel::Ensemble& ensemble) {
  const UniformChoice choice = best_uniform_grouping(cluster, ensemble);
  GroupSchedule schedule;
  schedule.group_sizes.assign(static_cast<std::size_t>(choice.estimate.nbmax),
                              choice.group_size);
  schedule.post_pool = choice.estimate.r2;
  schedule.post_policy = PostPolicy::kPoolThenRetired;
  schedule.validate(cluster);
  return schedule;
}

GroupSchedule redistribute_grouping(const platform::Cluster& cluster,
                                    const appmodel::Ensemble& ensemble) {
  const UniformChoice choice = best_uniform_grouping(cluster, ensemble);
  GroupSchedule schedule;
  schedule.group_sizes.assign(static_cast<std::size_t>(choice.estimate.nbmax),
                              choice.group_size);
  const ProcCount pool = steady_state_pool(cluster, choice);
  ProcCount spare = choice.estimate.r2 - pool;
  spare = spread_over_groups(schedule.group_sizes, spare, cluster.max_group());
  // Whatever the saturated groups could not take stays with the pool.
  schedule.post_pool = pool + spare;
  schedule.post_policy = PostPolicy::kPoolThenRetired;
  schedule.validate(cluster);
  return schedule;
}

GroupSchedule all_for_main_grouping(const platform::Cluster& cluster,
                                    const appmodel::Ensemble& ensemble) {
  const UniformChoice choice = best_uniform_grouping(cluster, ensemble);
  GroupSchedule schedule;
  schedule.group_sizes.assign(static_cast<std::size_t>(choice.estimate.nbmax),
                              choice.group_size);
  spread_over_groups(schedule.group_sizes, choice.estimate.r2,
                     cluster.max_group());
  schedule.post_pool = 0;
  schedule.post_policy = PostPolicy::kAllAtEnd;
  schedule.validate(cluster);
  return schedule;
}

namespace {

/// The §4.2 item universe for `cluster` with a cardinality cap of
/// `scenarios` groups (never more groups than runnable scenarios).
knapsack::Problem knapsack_problem_for(const platform::Cluster& cluster,
                                       Count scenarios) {
  knapsack::Problem problem;
  for (ProcCount g = cluster.min_group(); g <= cluster.max_group(); ++g)
    problem.items.push_back(knapsack::Item{g, 1.0 / cluster.main_time(g)});
  problem.capacity = cluster.resources();
  problem.max_items = scenarios;
  return problem;
}

/// DP state space (k <= capacity/min_weight cardinality rows, capacity+1
/// weight columns, one relaxation per item kind) — the work a DP sweep does.
void count_dp_cells(const knapsack::Problem& problem, ProcCount min_group) {
  const long long k_rows =
      std::min<long long>(problem.max_items, problem.capacity / min_group) + 1;
  obs::metrics()
      .counter("sched.knapsack.dp_cells")
      .add(static_cast<std::uint64_t>(
          k_rows * (static_cast<long long>(problem.capacity) + 1) *
          static_cast<long long>(problem.items.size())));
}

/// Turns one knapsack solution into the paper's grouping decision: one group
/// per selected item (sizes descending), leftovers to the post pool.
GroupSchedule schedule_from_solution(const platform::Cluster& cluster,
                                     const knapsack::Solution& solution) {
  GroupSchedule schedule;
  for (std::size_t i = 0; i < solution.counts.size(); ++i) {
    const ProcCount size = cluster.min_group() + static_cast<ProcCount>(i);
    for (Count c = 0; c < solution.counts[i]; ++c)
      schedule.group_sizes.push_back(size);
  }
  std::sort(schedule.group_sizes.begin(), schedule.group_sizes.end(),
            std::greater<>());
  schedule.post_pool = cluster.resources() - solution.weight_used;
  schedule.post_policy = PostPolicy::kPoolThenRetired;
  schedule.validate(cluster);
  return schedule;
}

}  // namespace

GroupSchedule knapsack_grouping(const platform::Cluster& cluster,
                                const appmodel::Ensemble& ensemble) {
  ensemble.validate();
  OAGRID_REQUIRE(cluster.resources() >= cluster.min_group(),
                 "cluster too small for any group");
  const knapsack::Problem problem =
      knapsack_problem_for(cluster, ensemble.scenarios);
  if (obs::enabled()) count_dp_cells(problem, cluster.min_group());
  return schedule_from_solution(cluster, knapsack::solve_dp(problem));
}

std::vector<GroupSchedule> knapsack_grouping_family(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble) {
  ensemble.validate();
  OAGRID_REQUIRE(cluster.resources() >= cluster.min_group(),
                 "cluster too small for any group");
  const knapsack::Problem problem =
      knapsack_problem_for(cluster, ensemble.scenarios);
  if (obs::enabled()) {
    count_dp_cells(problem, cluster.min_group());
    // Solves the per-k route would have paid but the shared sweep does not.
    obs::metrics()
        .counter("sched.knapsack.family_reuse")
        .add(static_cast<std::uint64_t>(ensemble.scenarios - 1));
  }
  const std::vector<knapsack::Solution> family =
      knapsack::solve_dp_family(problem);
  std::vector<GroupSchedule> schedules;
  schedules.reserve(family.size());
  for (const knapsack::Solution& solution : family)
    schedules.push_back(schedule_from_solution(cluster, solution));
  return schedules;
}

namespace {

/// Metric-name slug per heuristic ("knapsack (imp.3)" is no metric name).
const char* metric_slug(Heuristic heuristic) noexcept {
  switch (heuristic) {
    case Heuristic::kBasic: return "basic";
    case Heuristic::kRedistribute: return "redistribute";
    case Heuristic::kAllForMain: return "all_for_main";
    case Heuristic::kKnapsack: return "knapsack";
  }
  return "unknown";
}

}  // namespace

GroupSchedule make_schedule(Heuristic heuristic,
                            const platform::Cluster& cluster,
                            const appmodel::Ensemble& ensemble) {
  const bool observed = obs::enabled();
  obs::ScopedTimer timer(
      observed ? &obs::metrics().histogram(std::string("sched.") +
                                           metric_slug(heuristic) + "_us")
               : nullptr);
  if (observed)
    obs::metrics()
        .counter(std::string("sched.") + metric_slug(heuristic) + ".schedules")
        .add();
  switch (heuristic) {
    case Heuristic::kBasic: return basic_grouping(cluster, ensemble);
    case Heuristic::kRedistribute: return redistribute_grouping(cluster, ensemble);
    case Heuristic::kAllForMain: return all_for_main_grouping(cluster, ensemble);
    case Heuristic::kKnapsack: return knapsack_grouping(cluster, ensemble);
  }
  throw std::invalid_argument("oagrid: unknown heuristic");
}

}  // namespace oagrid::sched
