#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <queue>

namespace oagrid::sched {

Allotment Allotment::minimal(const dag::Dag& graph) {
  Allotment a;
  a.procs.reserve(static_cast<std::size_t>(graph.node_count()));
  for (dag::NodeId v = 0; v < graph.node_count(); ++v) {
    const dag::TaskSpec& spec = graph.task(v);
    a.procs.push_back(spec.shape == dag::TaskShape::kMoldable ? spec.min_procs
                                                              : spec.procs);
  }
  return a;
}

std::vector<Seconds> bottom_levels(const dag::Dag& graph,
                                   const Allotment& allotment,
                                   const MoldableDuration& duration) {
  OAGRID_REQUIRE(graph.frozen(), "DAG must be frozen");
  OAGRID_REQUIRE(allotment.procs.size() ==
                     static_cast<std::size_t>(graph.node_count()),
                 "allotment size mismatch");
  std::vector<Seconds> level(static_cast<std::size_t>(graph.node_count()), 0.0);
  const auto topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dag::NodeId v = *it;
    Seconds below = 0.0;
    for (const dag::NodeId w : graph.successors(v))
      below = std::max(below, level[static_cast<std::size_t>(w)]);
    level[static_cast<std::size_t>(v)] =
        below + duration(v, allotment.procs[static_cast<std::size_t>(v)]);
  }
  return level;
}

ListScheduleResult list_schedule(const dag::Dag& graph,
                                 const Allotment& allotment,
                                 ProcCount resources,
                                 const MoldableDuration& duration) {
  OAGRID_REQUIRE(graph.frozen(), "DAG must be frozen");
  OAGRID_REQUIRE(resources >= 1, "need at least one processor");
  const auto n = static_cast<std::size_t>(graph.node_count());
  OAGRID_REQUIRE(allotment.procs.size() == n, "allotment size mismatch");
  for (const ProcCount p : allotment.procs)
    OAGRID_REQUIRE(p >= 1 && p <= resources,
                   "allotment outside [1, resources]");

  const std::vector<Seconds> priority = bottom_levels(graph, allotment, duration);

  ListScheduleResult result;
  result.start.assign(n, 0.0);
  result.finish.assign(n, 0.0);

  // Ready tasks ordered by bottom level descending (ties by id ascending for
  // determinism).
  auto better = [&](dag::NodeId a, dag::NodeId b) {
    const Seconds pa = priority[static_cast<std::size_t>(a)];
    const Seconds pb = priority[static_cast<std::size_t>(b)];
    if (pa != pb) return pa < pb;  // priority_queue: "less" => b on top
    return a > b;
  };
  std::priority_queue<dag::NodeId, std::vector<dag::NodeId>, decltype(better)>
      ready(better);

  std::vector<int> missing_preds(n, 0);
  std::vector<Seconds> ready_time(n, 0.0);
  for (dag::NodeId v = 0; v < graph.node_count(); ++v) {
    missing_preds[static_cast<std::size_t>(v)] =
        static_cast<int>(graph.predecessors(v).size());
    if (missing_preds[static_cast<std::size_t>(v)] == 0) ready.push(v);
  }

  // Per-processor release times; kept sorted ascending before each pick.
  std::vector<Seconds> release(static_cast<std::size_t>(resources), 0.0);

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const dag::NodeId v = ready.top();
    ready.pop();
    const auto p = static_cast<std::size_t>(
        allotment.procs[static_cast<std::size_t>(v)]);
    std::sort(release.begin(), release.end());
    const Seconds start =
        std::max(ready_time[static_cast<std::size_t>(v)], release[p - 1]);
    const Seconds dur =
        duration(v, allotment.procs[static_cast<std::size_t>(v)]);
    const Seconds finish = start + dur;
    for (std::size_t k = 0; k < p; ++k) release[k] = finish;
    result.start[static_cast<std::size_t>(v)] = start;
    result.finish[static_cast<std::size_t>(v)] = finish;
    result.makespan = std::max(result.makespan, finish);
    ++scheduled;
    for (const dag::NodeId w : graph.successors(v)) {
      ready_time[static_cast<std::size_t>(w)] =
          std::max(ready_time[static_cast<std::size_t>(w)], finish);
      if (--missing_preds[static_cast<std::size_t>(w)] == 0) ready.push(w);
    }
  }
  OAGRID_REQUIRE(scheduled == n, "list scheduler did not reach every node");
  return result;
}

MoldableDuration cluster_duration(const dag::Dag& graph,
                                  const platform::Cluster& cluster) {
  // Rigid durations are calibrated on the reference platform; the cluster's
  // relative speed is its post_time over the reference 180 s.
  const double speed = cluster.post_time() / 180.0;
  return [&graph, &cluster, speed](dag::NodeId v, ProcCount p) -> Seconds {
    const dag::TaskSpec& spec = graph.task(v);
    if (spec.shape == dag::TaskShape::kMoldable) {
      const ProcCount g =
          std::clamp(p, cluster.min_group(), cluster.max_group());
      return cluster.main_time(g);
    }
    return spec.ref_duration * speed;
  };
}

}  // namespace oagrid::sched
