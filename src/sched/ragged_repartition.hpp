#pragma once
/// \file ragged_repartition.hpp
/// \brief Algorithm 1 generalized to scenarios of unequal length.
///
/// The paper's performance vectors assume interchangeable scenarios (all NM
/// months). With ragged chains, what a cluster costs depends on *which*
/// scenarios it hosts, not just how many: the aggregate months determine the
/// throughput-bound term and the longest chain the serialization bound
/// (restart dependencies admit no parallelism within a scenario).
///
/// The estimate per cluster c hosting a set S of chain lengths m_s:
///
///   makespan(c, S) ~ max( sum_S m_s / thr_c(|S|),  max_S m_s / cap_c ) + TP
///
/// with thr_c the knapsack throughput for |S| groups and cap_c = 1/min T[G]
/// the single-chain rate. Scenarios are placed longest-first (LPT-style),
/// each on the cluster minimizing the resulting estimate — exactly
/// Algorithm 1's structure with the richer cost.

#include <span>
#include <vector>

#include "common/types.hpp"
#include "platform/grid.hpp"

namespace oagrid::sched {

struct RaggedRepartition {
  std::vector<ClusterId> assignment;  ///< scenario index -> cluster
  std::vector<Seconds> cluster_estimates;
  Seconds makespan = 0.0;  ///< max of the estimates
};

/// Estimated makespan of hosting `chain_months` (any order) on `cluster`.
[[nodiscard]] Seconds ragged_cluster_estimate(
    const platform::Cluster& cluster, std::span<const Count> chain_months);

/// Longest-processing-time greedy placement over the grid. Throws if any
/// chain is non-positive or the grid is empty.
[[nodiscard]] RaggedRepartition ragged_repartition(
    const platform::Grid& grid, std::span<const Count> months_per_scenario);

/// Exhaustive optimum under the same estimate (test/bench oracle;
/// exponential in the scenario count).
[[nodiscard]] RaggedRepartition ragged_repartition_brute_force(
    const platform::Grid& grid, std::span<const Count> months_per_scenario);

}  // namespace oagrid::sched
