#pragma once
/// \file throughput.hpp
/// \brief Steady-state throughput analysis — the analytic core behind the
/// knapsack heuristic, exposed directly.
///
/// A set of groups with times T[g_i] completes sum_i 1/T[g_i] main tasks per
/// second in steady state. best_throughput() maximizes that (the knapsack
/// objective); throughput_performance_vector() turns it into the §5
/// performance vectors *without simulation*: k scenarios of NM months are
/// k*NM main tasks, so makespan ~ k*NM / throughput(k). bench_perfvector
/// quantifies how close this cheap estimate gets to the simulated vectors.

#include "appmodel/ensemble.hpp"
#include "platform/cluster.hpp"
#include "sched/repartition.hpp"

namespace oagrid::sched {

/// Maximum steady-state main-task throughput (tasks/second) achievable on
/// `cluster` with at most `max_groups` groups. Zero when no group fits.
[[nodiscard]] double best_throughput(const platform::Cluster& cluster,
                                     Count max_groups);

/// Analytic §5 performance vector: perf[k-1] ~ k * months /
/// best_throughput(k) + the post tail of the final set. Monotone
/// non-decreasing in k by construction.
[[nodiscard]] PerformanceVector throughput_performance_vector(
    const platform::Cluster& cluster, Count max_scenarios, Count months);

}  // namespace oagrid::sched
