#include "sched/makespan_model.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace oagrid::sched {
namespace {

constexpr Count ceil_div(Count a, Count b) { return (a + b - 1) / b; }

/// floor(TG / TP) with a relative guard so that exact ratios (the paper's
/// 1260 / 180 = 7) are not lost to floating-point representation.
Count floor_time_ratio(Seconds tg, Seconds tp) {
  return static_cast<Count>(std::floor(tg / tp + 1e-9));
}

}  // namespace

const char* to_string(MakespanRegime regime) noexcept {
  switch (regime) {
    case MakespanRegime::kNoPoolExact: return "Eq2 (R2=0, nbused=0)";
    case MakespanRegime::kNoPoolPartial: return "Eq3 (R2=0, nbused!=0)";
    case MakespanRegime::kPoolExact: return "Eq4 (R2!=0, nbused=0)";
    case MakespanRegime::kPoolPartial: return "Eq5 (R2!=0, nbused!=0)";
    case MakespanRegime::kInfeasible: return "infeasible";
  }
  return "?";
}

MakespanEstimate evaluate_uniform_grouping(const platform::Cluster& cluster,
                                           const appmodel::Ensemble& ensemble,
                                           ProcCount group_size) {
  ensemble.validate();
  OAGRID_REQUIRE(group_size >= cluster.min_group() &&
                     group_size <= cluster.max_group(),
                 "group size outside the cluster's admissible range");

  MakespanEstimate e;
  const ProcCount r = cluster.resources();
  if (r < group_size) return e;  // kInfeasible

  const Count nbtasks = ensemble.total_tasks();
  const Seconds tg = cluster.main_time(group_size);
  const Seconds tp = cluster.post_time();
  OAGRID_REQUIRE(tp > 0.0,
                 "the closed-form model needs a positive post-task time");
  const Count q = floor_time_ratio(tg, tp);  // posts per processor per set

  e.nbmax = std::min<Count>(ensemble.scenarios, r / group_size);
  e.r1 = static_cast<ProcCount>(e.nbmax) * group_size;
  e.r2 = r - e.r1;
  e.nbused = nbtasks % e.nbmax;
  e.sets = ceil_div(nbtasks, e.nbmax);
  e.main_phase = static_cast<double>(e.sets) * tg;  // Equation 1

  if (e.r2 == 0) {
    if (e.nbused == 0) {
      // Equation 2: every set saturates all R processors, so every post waits
      // for the end; they then run in ceil(nbtasks/R) waves on the full
      // cluster.
      e.regime = MakespanRegime::kNoPoolExact;
      e.rem_post = nbtasks;
      e.makespan = e.main_phase +
                   static_cast<double>(ceil_div(nbtasks, r)) * tp;
    } else {
      // Equation 3: during the last (incomplete) set, the groups left idle
      // free Rleft processors which absorb floor(TG/TP) posts each.
      e.regime = MakespanRegime::kNoPoolPartial;
      const ProcCount r_left = r - static_cast<ProcCount>(e.nbused) * group_size;
      const Count absorbed = q * static_cast<Count>(r_left);
      e.rem_post =
          e.nbused + std::max<Count>(0, nbtasks - e.nbused - absorbed);
      e.makespan = e.main_phase +
                   static_cast<double>(ceil_div(e.rem_post, r)) * tp;
    }
    return e;
  }

  // Pool regimes: R2 processors absorb Npossible posts per TG window; when
  // the window produces nbmax posts, the backlog grows by the difference
  // (the "overpassing" of Figures 4-5).
  const Count n_possible = q * static_cast<Count>(e.r2);
  if (e.nbused == 0) {
    // Equation 4.
    e.regime = MakespanRegime::kPoolExact;
    e.overpass = std::max<Count>(0, (e.sets - 1) * (e.nbmax - n_possible));
    e.rem_post = e.overpass + e.nbmax;
    e.makespan =
        e.main_phase + static_cast<double>(ceil_div(e.rem_post, r)) * tp;
  } else {
    // Equation 5. The paper's expression assumes at least one complete set
    // (n >= 2); with n = 1 there are no complete-set posts to carry over, so
    // the overpass terms vanish (documented clamp).
    e.regime = MakespanRegime::kPoolPartial;
    Count overtot = 0;
    if (e.sets >= 2) {
      e.overpass = std::max<Count>(0, (e.sets - 2) * (e.nbmax - n_possible));
      overtot = e.overpass + e.nbmax;
    }
    const ProcCount r_left = r - group_size * static_cast<ProcCount>(e.nbused);
    const Count absorbed = q * static_cast<Count>(r_left);
    e.rem_post = e.nbused + std::max<Count>(0, overtot - absorbed);
    e.makespan =
        e.main_phase + static_cast<double>(ceil_div(e.rem_post, r)) * tp;
  }
  return e;
}

UniformChoice best_uniform_grouping(const platform::Cluster& cluster,
                                    const appmodel::Ensemble& ensemble) {
  OAGRID_REQUIRE(cluster.resources() >= cluster.min_group(),
                 "cluster too small for any group");
  UniformChoice best;
  std::uint64_t evaluations = 0;
  for (ProcCount g = cluster.min_group(); g <= cluster.max_group(); ++g) {
    if (cluster.resources() < g) break;
    MakespanEstimate e = evaluate_uniform_grouping(cluster, ensemble, g);
    ++evaluations;
    if (e.regime == MakespanRegime::kInfeasible) continue;
    if (best.group_size == 0 || e.makespan < best.estimate.makespan) {
      best.group_size = g;
      best.estimate = e;
    }
  }
  if (obs::enabled())
    obs::metrics().counter("sched.uniform_evals").add(evaluations);
  OAGRID_REQUIRE(best.group_size != 0, "no feasible uniform grouping");
  return best;
}

}  // namespace oagrid::sched
