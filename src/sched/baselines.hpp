#pragma once
/// \file baselines.hpp
/// \brief Related-work mixed-parallelism baselines the paper compares its
/// design against in §3: CPA (Radulescu & van Gemund, ICPP'01) and CPR
/// (Radulescu et al., IPDPS'01).
///
/// Both schedule a *single* DAG of moldable tasks on R homogeneous
/// processors; the paper argues they do not fit its workload because an
/// ensemble has "as many critical paths as simulations". The bench
/// bench_baselines runs them on the merged ensemble DAG (all scenario chains
/// side by side) to quantify exactly that argument.
///
/// Implementation notes:
///  * CPA: start every moldable task at its minimum allotment; while the
///    critical-path length exceeds the average area per processor, grow the
///    allotment of the critical-path task whose growth shrinks its time the
///    most; then list-schedule.
///  * CPR: start minimal; repeatedly try +1 processor on each critical-path
///    task, keep the change that most reduces the *list-scheduled* makespan;
///    stop when no single growth improves it. (We recompute the static
///    critical path from current durations rather than the dynamic schedule
///    path — a simplification documented here; it preserves the algorithm's
///    one-step structure and monotone-improvement property.)

#include "sched/list_scheduler.hpp"

namespace oagrid::sched {

/// Result of a baseline run: final allotment and its schedule.
struct BaselineResult {
  Allotment allotment;
  ListScheduleResult schedule;
  int growth_steps = 0;  ///< allotment increments performed
};

/// CPA — two-step: allocate by critical-path/average-area balance, then
/// list-schedule.
[[nodiscard]] BaselineResult cpa_schedule(const dag::Dag& graph,
                                          ProcCount resources,
                                          const MoldableDuration& duration);

/// CPR — one-step: grow allotments only while the evaluated makespan
/// improves. `max_steps` bounds the optimization loop (each step costs one
/// list-scheduling pass per critical-path candidate).
[[nodiscard]] BaselineResult cpr_schedule(const dag::Dag& graph,
                                          ProcCount resources,
                                          const MoldableDuration& duration,
                                          int max_steps = 1 << 20);

/// Convenience: minimal-allotment pure list scheduling (the "data
/// parallelism off" reference point).
[[nodiscard]] BaselineResult minimal_schedule(const dag::Dag& graph,
                                              ProcCount resources,
                                              const MoldableDuration& duration);

}  // namespace oagrid::sched
