#include "sched/generic_chain.hpp"

#include <algorithm>

#include "knapsack/knapsack.hpp"

namespace oagrid::sched {

GenericChainScheduler::GenericChainScheduler(ChainWorkload workload,
                                             MoldableDuration duration,
                                             ProcCount min_group,
                                             ProcCount max_group)
    : workload_(std::move(workload)),
      duration_(std::move(duration)),
      min_group_(min_group),
      max_group_(max_group) {
  OAGRID_REQUIRE(workload_.template_dag.frozen(), "template must be frozen");
  OAGRID_REQUIRE(workload_.chains >= 1, "need at least one chain");
  OAGRID_REQUIRE(workload_.instances >= 1, "need at least one instance");
  OAGRID_REQUIRE(min_group_ >= 1 && min_group_ <= max_group_,
                 "invalid group-size range");

  const dag::Dag& tmpl = workload_.template_dag;
  const auto n = static_cast<std::size_t>(tmpl.node_count());

  // A node is tail-eligible when rigid and every descendant is too; walk the
  // reverse topological order so descendants are classified first.
  std::vector<bool> eligible(n, false);
  const auto topo = tmpl.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dag::NodeId v = *it;
    if (tmpl.task(v).shape == dag::TaskShape::kMoldable) continue;
    bool all_succ_ok = true;
    for (const dag::NodeId w : tmpl.successors(v))
      all_succ_ok = all_succ_ok && eligible[static_cast<std::size_t>(w)];
    eligible[static_cast<std::size_t>(v)] = all_succ_ok;
  }
  // Cross-link sources gate the next instance and must stay in the body.
  for (const auto& link : workload_.links)
    eligible[static_cast<std::size_t>(link.from_prev)] = false;
  // Re-close under "no ineligible descendant": a predecessor of a body node
  // cannot be tail.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dag::NodeId v = *it;
    if (!eligible[static_cast<std::size_t>(v)]) continue;
    for (const dag::NodeId w : tmpl.successors(v))
      if (!eligible[static_cast<std::size_t>(w)]) {
        eligible[static_cast<std::size_t>(v)] = false;
        break;
      }
  }

  in_tail_ = eligible;
  for (dag::NodeId v = 0; v < tmpl.node_count(); ++v)
    if (in_tail_[static_cast<std::size_t>(v)]) {
      tail_.push_back(v);
      tail_time_ += duration_(v, tmpl.task(v).procs);
    }
}

Seconds GenericChainScheduler::body_time(ProcCount g) const {
  OAGRID_REQUIRE(g >= min_group_ && g <= max_group_, "group size out of range");
  return workload_.template_dag.critical_path([&](dag::NodeId v) -> Seconds {
    if (in_tail_[static_cast<std::size_t>(v)]) return 0.0;
    const dag::TaskSpec& spec = workload_.template_dag.task(v);
    if (spec.shape == dag::TaskShape::kMoldable) {
      const ProcCount p = std::clamp(g, spec.min_procs, spec.max_procs);
      return duration_(v, p);
    }
    return duration_(v, spec.procs);
  });
}

GroupSchedule GenericChainScheduler::schedule(ProcCount resources) const {
  OAGRID_REQUIRE(resources >= min_group_, "too few processors for any group");
  knapsack::Problem problem;
  for (ProcCount g = min_group_; g <= max_group_; ++g)
    problem.items.push_back(knapsack::Item{g, 1.0 / body_time(g)});
  problem.capacity = resources;
  problem.max_items = workload_.chains;
  const knapsack::Solution solution = knapsack::solve_dp(problem);

  GroupSchedule schedule;
  for (std::size_t i = 0; i < solution.counts.size(); ++i) {
    const ProcCount size = min_group_ + static_cast<ProcCount>(i);
    for (Count c = 0; c < solution.counts[i]; ++c)
      schedule.group_sizes.push_back(size);
  }
  std::sort(schedule.group_sizes.begin(), schedule.group_sizes.end(),
            std::greater<>());
  schedule.post_pool = resources - solution.weight_used;
  schedule.post_policy = PostPolicy::kPoolThenRetired;
  return schedule;
}

platform::Cluster GenericChainScheduler::virtual_cluster(
    std::string name, ProcCount resources) const {
  std::vector<Seconds> body;
  for (ProcCount g = min_group_; g <= max_group_; ++g)
    body.push_back(body_time(g));
  return platform::Cluster(std::move(name), resources, min_group_,
                           std::move(body), tail_time_);
}

}  // namespace oagrid::sched
