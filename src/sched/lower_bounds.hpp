#pragma once
/// \file lower_bounds.hpp
/// \brief Makespan lower bounds for the ensemble-scheduling problem.
///
/// The paper evaluates heuristics against each other; these bounds let the
/// reproduction also report *absolute* optimality gaps (bench_optimality):
///
///  * chain bound  — months of one scenario are serialized by restart
///    dependencies, so no schedule beats NM x (fastest main time) plus one
///    trailing post task;
///  * area bound   — every main task occupies G x T(G) processor-seconds
///    (minimized over G) and every post TP processor-seconds; R processors
///    cannot absorb work faster than R seconds per second;
///  * combined     — max of the two (both are valid simultaneously).
///
/// A grid variant bounds the §5 heterogeneous problem.

#include "appmodel/ensemble.hpp"
#include "platform/cluster.hpp"
#include "platform/grid.hpp"

namespace oagrid::sched {

struct MakespanBounds {
  Seconds chain_bound = 0.0;
  Seconds area_bound = 0.0;
  /// max(chain, area) — the reportable lower bound.
  [[nodiscard]] Seconds combined() const noexcept {
    return chain_bound > area_bound ? chain_bound : area_bound;
  }
};

/// Bounds for `ensemble` on a single cluster.
[[nodiscard]] MakespanBounds ensemble_lower_bounds(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble);

/// Bounds for `ensemble` on a heterogeneous grid (scenarios never split
/// across clusters, so the chain bound may use the fastest cluster; the area
/// bound charges each task its cheapest area anywhere and divides by the
/// grid's total processor count).
[[nodiscard]] MakespanBounds grid_lower_bounds(
    const platform::Grid& grid, const appmodel::Ensemble& ensemble);

/// Smallest main-task execution time over the admissible group sizes.
[[nodiscard]] Seconds min_main_time(const platform::Cluster& cluster);

/// Smallest main-task area (G x T(G)) over the admissible group sizes.
[[nodiscard]] double min_main_area(const platform::Cluster& cluster);

}  // namespace oagrid::sched
