#include "sched/throughput.hpp"

#include <algorithm>

#include "knapsack/knapsack.hpp"

namespace oagrid::sched {

double best_throughput(const platform::Cluster& cluster, Count max_groups) {
  OAGRID_REQUIRE(max_groups >= 0, "negative group cap");
  if (max_groups == 0 || cluster.resources() < cluster.min_group()) return 0.0;
  knapsack::Problem problem;
  for (ProcCount g = cluster.min_group(); g <= cluster.max_group(); ++g)
    problem.items.push_back(knapsack::Item{g, 1.0 / cluster.main_time(g)});
  problem.capacity = cluster.resources();
  problem.max_items = max_groups;
  return knapsack::solve_dp(problem).value;
}

PerformanceVector throughput_performance_vector(
    const platform::Cluster& cluster, Count max_scenarios, Count months) {
  OAGRID_REQUIRE(max_scenarios >= 1, "need at least one scenario");
  OAGRID_REQUIRE(months >= 1, "need at least one month");
  // One shared DP sweep yields the optimal throughput under every group cap
  // k = 1..NS (bit-identical to calling best_throughput per k, which would
  // re-run the whole DP each time). A cluster below the minimum group size
  // has no family to solve: every throughput is zero.
  std::vector<knapsack::Solution> family;
  if (cluster.resources() >= cluster.min_group()) {
    knapsack::Problem problem;
    for (ProcCount g = cluster.min_group(); g <= cluster.max_group(); ++g)
      problem.items.push_back(knapsack::Item{g, 1.0 / cluster.main_time(g)});
    problem.capacity = cluster.resources();
    problem.max_items = max_scenarios;
    family = knapsack::solve_dp_family(problem);
  }
  PerformanceVector vec;
  vec.reserve(static_cast<std::size_t>(max_scenarios));
  Seconds prev = 0.0;
  for (Count k = 1; k <= max_scenarios; ++k) {
    const double throughput =
        family.empty() ? 0.0
                       : family[static_cast<std::size_t>(k) - 1].value;
    Seconds estimate = kInfiniteTime;
    if (throughput > 0.0) {
      const double mains = static_cast<double>(k * months);
      // Steady-state main phase plus the last month's post task.
      estimate = mains / throughput + cluster.post_time();
    }
    // Enforce monotonicity explicitly: adding a scenario cannot speed up the
    // campaign (guards against rounding in the throughput DP).
    estimate = std::max(estimate, prev);
    vec.push_back(estimate);
    prev = estimate;
  }
  return vec;
}

}  // namespace oagrid::sched
