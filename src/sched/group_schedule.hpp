#pragma once
/// \file group_schedule.hpp
/// \brief The common output vocabulary of every grouping heuristic.
///
/// All four heuristics of the paper (§4.1 basic, §4.2 improvements 1-3)
/// reduce to the same decision: a multiset of processor-group sizes for the
/// moldable main tasks, plus a policy for where post-processing tasks run.
/// GroupSchedule captures that decision; the discrete-event simulator
/// (sim::simulate_ensemble) executes it.

#include <numeric>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "platform/cluster.hpp"

namespace oagrid::sched {

/// Where single-processor post-processing tasks execute.
enum class PostPolicy {
  /// Posts run on the dedicated pool (post_pool processors) at any time, and
  /// additionally on the processors of any group that has retired (finished
  /// its last main task). This models the paper's basic heuristic and
  /// improvements 1 and 3.
  kPoolThenRetired,
  /// No post runs before the last main task completes; then all processors
  /// of the cluster process posts (the paper's Improvement 2).
  kAllAtEnd,
};

[[nodiscard]] const char* to_string(PostPolicy policy) noexcept;

/// A grouping decision for one cluster.
struct GroupSchedule {
  std::vector<ProcCount> group_sizes;  ///< one entry per main-task group
  ProcCount post_pool = 0;             ///< dedicated post processors (R2-like)
  PostPolicy post_policy = PostPolicy::kPoolThenRetired;

  [[nodiscard]] ProcCount main_resources() const noexcept {
    return std::accumulate(group_sizes.begin(), group_sizes.end(), ProcCount{0});
  }
  [[nodiscard]] ProcCount total_resources() const noexcept {
    return main_resources() + post_pool;
  }
  [[nodiscard]] int group_count() const noexcept {
    return static_cast<int>(group_sizes.size());
  }

  /// Throws unless every group size is admissible on `cluster` and the
  /// schedule fits in the cluster's processor count.
  void validate(const platform::Cluster& cluster) const;

  /// Compact human-readable form, e.g. "3x8 + 4x7 | pool=1 (pool+retired)".
  [[nodiscard]] std::string describe() const;
};

}  // namespace oagrid::sched
