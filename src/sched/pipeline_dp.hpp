#pragma once
/// \file pipeline_dp.hpp
/// \brief Pipelined data-parallel chain partitioning (Subhlok & Vondran
/// style, the paper's related work [13], §3.3).
///
/// A scenario is a pipeline of (fused) data-parallel stages processing NM
/// monthly data sets. The classic approach clusters consecutive stages into
/// modules, gives each module a processor share, and runs the modules in
/// pipeline: throughput is limited by the slowest module, latency is the sum
/// of module periods, and the makespan for M items is
/// latency + (M - 1) * period.
///
/// Two exact dynamic programs over (stage prefix, processors used):
///  * max_throughput_partition — minimize the bottleneck period;
///  * min_latency_partition    — minimize latency subject to a period bound
///                               (the paper [13]'s dual problem).
///
/// bench_baselines uses these to show why a per-scenario pipeline split
/// loses to the paper's group-based scheme on this workload.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace oagrid::sched {

/// One pipeline stage: a moldable task applied to every data set.
struct PipelineStage {
  std::string name;
  std::function<Seconds(ProcCount)> time;  ///< defined on [min_procs, max_procs]
  ProcCount min_procs = 1;
  ProcCount max_procs = 1;

  /// Time on p processors, clamped above (extra processors idle) and
  /// infinite below min_procs (infeasible).
  [[nodiscard]] Seconds time_clamped(ProcCount p) const;
};

/// A consecutive-stage clustering with processor shares.
struct PipelinePlan {
  struct Module {
    int first_stage = 0;
    int last_stage = 0;   ///< inclusive
    ProcCount procs = 0;
    Seconds period = 0.0;  ///< per-data-set time of this module
  };
  std::vector<Module> modules;
  Seconds period = kInfiniteTime;   ///< bottleneck (max module period)
  Seconds latency = kInfiniteTime;  ///< one data set end-to-end

  [[nodiscard]] bool feasible() const noexcept { return !modules.empty(); }

  /// Steady-state pipeline makespan for `items` data sets.
  [[nodiscard]] Seconds makespan_for(Count items) const;
};

/// Minimizes the bottleneck period over all consecutive partitions and
/// processor splits of `resources`. Returns an infeasible plan when even the
/// whole machine cannot host one stage.
[[nodiscard]] PipelinePlan max_throughput_partition(
    std::span<const PipelineStage> stages, ProcCount resources);

/// Minimizes latency subject to period <= max_period.
[[nodiscard]] PipelinePlan min_latency_partition(
    std::span<const PipelineStage> stages, ProcCount resources,
    Seconds max_period);

/// Ensemble adaptation used as a baseline: split `resources` evenly over
/// `scenarios` identical pipelines (remainder spread one-by-one), each
/// optimized for throughput, and return the worst per-scenario makespan for
/// `items` data sets each. Infinite when some scenario gets too few
/// processors.
[[nodiscard]] Seconds pipeline_ensemble_makespan(
    std::span<const PipelineStage> stages, ProcCount resources,
    Count scenarios, Count items);

}  // namespace oagrid::sched
