#pragma once
/// \file repartition.hpp
/// \brief Scenario repartition across heterogeneous clusters — the paper's
/// Algorithm 1 (§5) plus the oracle used to test its optimality claim.
///
/// Inputs are per-cluster *performance vectors*: performance[c][k-1] is the
/// makespan of running k scenarios on cluster c (computed by whichever
/// grouping heuristic is in force — step 2 of the Figure 9 protocol). The
/// algorithm itself is pure; computing the vectors lives in sim::.

#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace oagrid::sched {

/// performance[k-1] = makespan of k scenarios on one cluster (k = 1..NS).
using PerformanceVector = std::vector<Seconds>;

/// A scenario-to-cluster distribution.
struct Repartition {
  std::vector<Count> dags_per_cluster;     ///< nbDags[c]
  std::vector<ClusterId> assignment;       ///< scenario s -> cluster
  Seconds makespan = 0.0;                  ///< max over clusters

  [[nodiscard]] Count total_dags() const noexcept {
    Count total = 0;
    for (const Count d : dags_per_cluster) total += d;
    return total;
  }
};

/// Overall makespan of a distribution: the slowest cluster's makespan.
[[nodiscard]] Seconds repartition_makespan(
    std::span<const PerformanceVector> performance,
    std::span<const Count> dags_per_cluster);

/// Algorithm 1: each scenario in turn goes to the cluster whose makespan
/// after receiving it is smallest (ties to the lowest cluster id, as the
/// paper's pseudocode does with its strict '<'). Requires every vector to
/// have at least `scenarios` entries.
[[nodiscard]] Repartition greedy_repartition(
    std::span<const PerformanceVector> performance, Count scenarios);

/// Extra completion time charged to a cluster for hosting k scenarios —
/// typically the cost of shipping k restart/input files to it and k result
/// archives back (priced by net::NetworkModel at the call site; this module
/// stays network-agnostic). Must be monotone in k for the greedy argument
/// to keep its local-optimality flavor.
using PlacementCharge = std::function<Seconds(std::size_t cluster, Count k)>;

/// Algorithm 1 with data movement folded into each candidate: scenario after
/// scenario goes to the cluster minimizing performance[c][k] + charge(c, k+1).
/// A null charge — or one that returns exactly 0.0 everywhere — reproduces
/// greedy_repartition bit for bit, ties included (0.0 + x == x in IEEE
/// arithmetic). The returned makespan includes the charges.
[[nodiscard]] Repartition greedy_repartition_charged(
    std::span<const PerformanceVector> performance, Count scenarios,
    const PlacementCharge& charge);

/// Exhaustive optimum over all compositions of `scenarios` into
/// performance.size() parts. Exponential in cluster count — test/bench
/// oracle only (the paper argues n and NS are small, §5).
[[nodiscard]] Repartition brute_force_repartition(
    std::span<const PerformanceVector> performance, Count scenarios);

/// The paper's local-optimality claim: "if we map a scenario onto another
/// cluster, the total makespan cannot decrease". True when moving any single
/// scenario between clusters does not reduce the makespan.
[[nodiscard]] bool is_locally_optimal(
    std::span<const PerformanceVector> performance,
    const Repartition& repartition);

}  // namespace oagrid::sched
