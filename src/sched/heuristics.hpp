#pragma once
/// \file heuristics.hpp
/// \brief The paper's four grouping heuristics (§4.1 and the three
/// improvements of §4.2), each producing a GroupSchedule.

#include "appmodel/ensemble.hpp"
#include "sched/group_schedule.hpp"
#include "sched/makespan_model.hpp"

namespace oagrid::sched {

/// Heuristic selector used by benches and the middleware.
enum class Heuristic {
  kBasic,         ///< §4.1 — uniform G, leftovers to the post pool
  kRedistribute,  ///< Improvement 1 — idle leftovers spread over the groups
  kAllForMain,    ///< Improvement 2 — everything to groups, posts at the end
  kKnapsack,      ///< Improvement 3 — group multiset chosen by knapsack
};

[[nodiscard]] const char* to_string(Heuristic heuristic) noexcept;

/// §4.1: nbmax identical groups of the best uniform size; R2 leftover
/// processors form the dedicated post pool.
[[nodiscard]] GroupSchedule basic_grouping(const platform::Cluster& cluster,
                                           const appmodel::Ensemble& ensemble);

/// Improvement 1: compute the basic grouping, shrink the post pool to the
/// smallest size that keeps up with one set's posts (ceil(nbmax /
/// floor(TG/TP)) processors), and hand the freed processors to the groups,
/// one each in round-robin, never exceeding the cluster's max group size.
/// Reproduces the paper's example: R = 53, NS = 10 -> 3x8 + 4x7, pool 1.
[[nodiscard]] GroupSchedule redistribute_grouping(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble);

/// Improvement 2: like redistribute, but the pool is emptied entirely (posts
/// wait for the end of all main tasks and then run on the whole cluster).
[[nodiscard]] GroupSchedule all_for_main_grouping(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble);

/// Improvement 3: the knapsack formulation — maximize sum n_i / T[i] with
/// sum i*n_i <= R and sum n_i <= NS; leftover processors form the post pool.
[[nodiscard]] GroupSchedule knapsack_grouping(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble);

/// Family form of Improvement 3: the knapsack grouping for *every* scenario
/// count k = 1..ensemble.scenarios, all extracted from a single DP sweep
/// (knapsack::solve_dp_family). result[k-1] is bit-identical to
/// knapsack_grouping on an ensemble of k scenarios; one call replaces NS
/// independent DP solves when building a §5 performance vector. Emits the
/// `sched.knapsack.family_reuse` counter (solves avoided) when observability
/// is on.
[[nodiscard]] std::vector<GroupSchedule> knapsack_grouping_family(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble);

/// Dispatch by enum.
[[nodiscard]] GroupSchedule make_schedule(Heuristic heuristic,
                                          const platform::Cluster& cluster,
                                          const appmodel::Ensemble& ensemble);

}  // namespace oagrid::sched
