#include "sched/pipeline_dp.hpp"

#include <algorithm>
#include <limits>

namespace oagrid::sched {
namespace {

/// Sum of stage times [a..b] on m processors; infinite if any stage cannot
/// run on m.
Seconds module_time(std::span<const PipelineStage> stages, int a, int b,
                    ProcCount m) {
  Seconds total = 0.0;
  for (int s = a; s <= b; ++s) {
    const Seconds t = stages[static_cast<std::size_t>(s)].time_clamped(m);
    if (t == kInfiniteTime) return kInfiniteTime;
    total += t;
  }
  return total;
}

struct DpCell {
  Seconds objective = kInfiniteTime;
  int prev_stage = -1;   ///< split point: previous prefix ends here
  ProcCount prev_procs = -1;
  ProcCount module_procs = 0;
};

/// (k+1) x (resources+1) DP table in one contiguous arena (row stride
/// resources+1) instead of a vector-of-vectors — one allocation, and the
/// p-inner relaxation walks a single cache line stream.
struct DpTable {
  std::size_t stride;
  std::vector<DpCell> cells;

  DpTable(int k, ProcCount resources)
      : stride(static_cast<std::size_t>(resources) + 1),
        cells((static_cast<std::size_t>(k) + 1) * stride) {}

  [[nodiscard]] DpCell& at(int stage_count, ProcCount p) {
    return cells[static_cast<std::size_t>(stage_count) * stride +
                 static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const DpCell& at(int stage_count, ProcCount p) const {
    return cells[static_cast<std::size_t>(stage_count) * stride +
                 static_cast<std::size_t>(p)];
  }
};

PipelinePlan reconstruct(std::span<const PipelineStage> stages,
                         const DpTable& dp, int last_stage, ProcCount procs) {
  PipelinePlan plan;
  if (dp.at(last_stage + 1, procs).objective == kInfiniteTime)
    return plan;  // infeasible

  int stage = last_stage;
  ProcCount p = procs;
  std::vector<PipelinePlan::Module> reversed;
  while (stage >= 0) {
    const DpCell& cell = dp.at(stage + 1, p);
    PipelinePlan::Module mod;
    mod.first_stage = cell.prev_stage + 1;
    mod.last_stage = stage;
    mod.procs = cell.module_procs;
    mod.period = module_time(stages, mod.first_stage, mod.last_stage, mod.procs);
    reversed.push_back(mod);
    stage = cell.prev_stage;
    p = cell.prev_procs;
  }
  plan.modules.assign(reversed.rbegin(), reversed.rend());
  plan.period = 0.0;
  plan.latency = 0.0;
  for (const auto& mod : plan.modules) {
    plan.period = std::max(plan.period, mod.period);
    plan.latency += mod.period;
  }
  return plan;
}

}  // namespace

Seconds PipelineStage::time_clamped(ProcCount p) const {
  if (p < min_procs) return kInfiniteTime;
  return time(std::min(p, max_procs));
}

Seconds PipelinePlan::makespan_for(Count items) const {
  if (!feasible() || items <= 0) return kInfiniteTime;
  return latency + static_cast<double>(items - 1) * period;
}

PipelinePlan max_throughput_partition(std::span<const PipelineStage> stages,
                                      ProcCount resources) {
  OAGRID_REQUIRE(!stages.empty(), "pipeline needs at least one stage");
  OAGRID_REQUIRE(resources >= 1, "need at least one processor");
  const int k = static_cast<int>(stages.size());

  // dp.at(i, p): minimal bottleneck period for stages [0, i) using exactly
  // <= p processors (monotone in p by construction, we allow slack by letting
  // the final answer read dp.at(k, resources)).
  DpTable dp(k, resources);
  for (ProcCount p = 0; p <= resources; ++p) dp.at(0, p).objective = 0.0;

  for (int i = 1; i <= k; ++i) {
    for (ProcCount p = 1; p <= resources; ++p) {
      DpCell& cell = dp.at(i, p);
      // Last module covers stages [j, i-1] on m processors.
      for (int j = 0; j < i; ++j) {
        for (ProcCount m = 1; m <= p; ++m) {
          const Seconds mod_t = module_time(stages, j, i - 1, m);
          if (mod_t == kInfiniteTime) continue;
          const DpCell& prev = dp.at(j, p - m);
          if (prev.objective == kInfiniteTime) continue;
          const Seconds candidate = std::max(prev.objective, mod_t);
          if (candidate < cell.objective) {
            cell.objective = candidate;
            cell.prev_stage = j - 1;
            cell.prev_procs = p - m;
            cell.module_procs = m;
          }
        }
      }
    }
  }
  return reconstruct(stages, dp, k - 1, resources);
}

PipelinePlan min_latency_partition(std::span<const PipelineStage> stages,
                                   ProcCount resources, Seconds max_period) {
  OAGRID_REQUIRE(!stages.empty(), "pipeline needs at least one stage");
  OAGRID_REQUIRE(resources >= 1, "need at least one processor");
  OAGRID_REQUIRE(max_period > 0.0, "period bound must be positive");
  const int k = static_cast<int>(stages.size());

  // Same recurrence with sum instead of max, modules over the period bound
  // rejected.
  DpTable dp(k, resources);
  for (ProcCount p = 0; p <= resources; ++p) dp.at(0, p).objective = 0.0;

  for (int i = 1; i <= k; ++i) {
    for (ProcCount p = 1; p <= resources; ++p) {
      DpCell& cell = dp.at(i, p);
      for (int j = 0; j < i; ++j) {
        for (ProcCount m = 1; m <= p; ++m) {
          const Seconds mod_t = module_time(stages, j, i - 1, m);
          if (mod_t == kInfiniteTime || mod_t > max_period) continue;
          const DpCell& prev = dp.at(j, p - m);
          if (prev.objective == kInfiniteTime) continue;
          const Seconds candidate = prev.objective + mod_t;
          if (candidate < cell.objective) {
            cell.objective = candidate;
            cell.prev_stage = j - 1;
            cell.prev_procs = p - m;
            cell.module_procs = m;
          }
        }
      }
    }
  }
  return reconstruct(stages, dp, k - 1, resources);
}

Seconds pipeline_ensemble_makespan(std::span<const PipelineStage> stages,
                                   ProcCount resources, Count scenarios,
                                   Count items) {
  OAGRID_REQUIRE(scenarios >= 1, "need at least one scenario");
  const auto base = static_cast<ProcCount>(resources / scenarios);
  const auto extra = static_cast<Count>(resources % scenarios);
  Seconds worst = 0.0;
  for (Count s = 0; s < scenarios; ++s) {
    const ProcCount share = base + (s < extra ? 1 : 0);
    if (share < 1) return kInfiniteTime;
    const PipelinePlan plan = max_throughput_partition(stages, share);
    if (!plan.feasible()) return kInfiniteTime;
    worst = std::max(worst, plan.makespan_for(items));
  }
  return worst;
}

}  // namespace oagrid::sched
