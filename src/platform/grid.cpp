#include "platform/grid.hpp"

namespace oagrid::platform {

Grid::Grid(std::vector<Cluster> clusters) : clusters_(std::move(clusters)) {}

ClusterId Grid::add_cluster(Cluster cluster) {
  clusters_.push_back(std::move(cluster));
  return static_cast<ClusterId>(clusters_.size()) - 1;
}

const Cluster& Grid::cluster(ClusterId id) const {
  OAGRID_REQUIRE(id >= 0 && id < cluster_count(), "cluster id out of range");
  return clusters_[static_cast<std::size_t>(id)];
}

ProcCount Grid::total_resources() const noexcept {
  ProcCount total = 0;
  for (const auto& c : clusters_) total += c.resources();
  return total;
}

Grid Grid::with_uniform_resources(ProcCount r) const {
  std::vector<Cluster> out;
  out.reserve(clusters_.size());
  for (const auto& c : clusters_) out.push_back(c.with_resources(r));
  return Grid(std::move(out));
}

Grid Grid::prefix(int n) const {
  OAGRID_REQUIRE(n >= 0 && n <= cluster_count(), "prefix size out of range");
  return Grid(std::vector<Cluster>(clusters_.begin(), clusters_.begin() + n));
}

}  // namespace oagrid::platform
