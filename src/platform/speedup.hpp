#pragma once
/// \file speedup.hpp
/// \brief Execution-time models for the moldable main-processing task.
///
/// The paper's `process_coupled_run` (pcr) couples one MPI-parallel
/// atmosphere (ARPEGE) with three sequential components (OPA ocean, TRIP
/// runoff, OASIS coupler), each pinning a processor; hence a group of G
/// processors gives the atmosphere G-3 workers, and "with more than 8
/// processors, the speedup stops" (§2). The authors benchmarked T[G] on
/// Grid'5000 clusters; we do not have those tables, so CoupledModel
/// reconstructs them from the published anchor points (T[11] in [1177, 1622]
/// seconds across clusters, pcr ~ 1260 s on the reference machine), and
/// MeasuredTable holds any explicit table. Amdahl and power-law models are
/// provided for the sensitivity ablation (bench_ablation_speedup).

#include <memory>
#include <vector>

#include "common/types.hpp"

namespace oagrid::platform {

/// Interface: execution time of the (fused) main task on g processors.
/// Implementations must be valid for every g in [min_procs(), max_procs()]
/// and throw std::invalid_argument outside that range.
class SpeedupModel {
 public:
  virtual ~SpeedupModel() = default;

  [[nodiscard]] virtual Seconds time_on(ProcCount g) const = 0;
  [[nodiscard]] virtual ProcCount min_procs() const noexcept = 0;
  [[nodiscard]] virtual ProcCount max_procs() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<SpeedupModel> clone() const = 0;

  /// Materializes the model into a dense table (index 0 = min_procs()).
  [[nodiscard]] std::vector<Seconds> tabulate() const;

 protected:
  void require_in_range(ProcCount g) const;
};

/// Explicit benchmarked table, index 0 <-> min_procs.
class MeasuredTable final : public SpeedupModel {
 public:
  MeasuredTable(ProcCount min_procs, std::vector<Seconds> times);

  [[nodiscard]] Seconds time_on(ProcCount g) const override;
  [[nodiscard]] ProcCount min_procs() const noexcept override { return min_; }
  [[nodiscard]] ProcCount max_procs() const noexcept override {
    return min_ + static_cast<ProcCount>(times_.size()) - 1;
  }
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;

 private:
  ProcCount min_;
  std::vector<Seconds> times_;
};

/// Physical model of the coupled run:
///   T(G) = speed_factor * (seq_floor + atm_work / S(min(G - pinned, sat)))
/// with S(n) = n / (1 + beta*(n-1)) — linear-overhead parallel efficiency —
/// and `pinned` sequential components (3 in the paper), saturating at `sat`
/// atmosphere workers (8 in the paper). Defaults reproduce the published
/// anchors: T(11) = 1258 s at speed_factor 1.
class CoupledModel final : public SpeedupModel {
 public:
  struct Params {
    double speed_factor = 1.0;   ///< cluster slowness multiplier
    Seconds seq_floor = 420.0;   ///< ocean+runoff+coupler time per month
    Seconds atm_work = 4300.0;   ///< sequential atmosphere work per month
    double beta = 0.08;          ///< parallel-overhead coefficient
    ProcCount pinned = 3;        ///< sequential components pinning processors
    ProcCount saturation = 8;    ///< max useful atmosphere workers
    ProcCount max_group = kMaxGroupSize;
  };

  /// Default-constructs with the reference parameters above.
  CoupledModel();
  explicit CoupledModel(Params params);

  [[nodiscard]] Seconds time_on(ProcCount g) const override;
  [[nodiscard]] ProcCount min_procs() const noexcept override {
    return params_.pinned + 1;
  }
  [[nodiscard]] ProcCount max_procs() const noexcept override {
    return params_.max_group;
  }
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

/// Amdahl's law: T(G) = t1 * (alpha + (1 - alpha) / G) on [min, max].
class AmdahlModel final : public SpeedupModel {
 public:
  AmdahlModel(Seconds t1, double serial_fraction, ProcCount min_procs,
              ProcCount max_procs);

  [[nodiscard]] Seconds time_on(ProcCount g) const override;
  [[nodiscard]] ProcCount min_procs() const noexcept override { return min_; }
  [[nodiscard]] ProcCount max_procs() const noexcept override { return max_; }
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;

 private:
  Seconds t1_;
  double alpha_;
  ProcCount min_;
  ProcCount max_;
};

/// Power law: T(G) = t1 / G^alpha on [min, max] (alpha in (0, 1]).
class PowerLawModel final : public SpeedupModel {
 public:
  PowerLawModel(Seconds t1, double alpha, ProcCount min_procs,
                ProcCount max_procs);

  [[nodiscard]] Seconds time_on(ProcCount g) const override;
  [[nodiscard]] ProcCount min_procs() const noexcept override { return min_; }
  [[nodiscard]] ProcCount max_procs() const noexcept override { return max_; }
  [[nodiscard]] std::unique_ptr<SpeedupModel> clone() const override;

 private:
  Seconds t1_;
  double alpha_;
  ProcCount min_;
  ProcCount max_;
};

}  // namespace oagrid::platform
