#include "platform/speedup.hpp"

#include <algorithm>
#include <cmath>

namespace oagrid::platform {

std::vector<Seconds> SpeedupModel::tabulate() const {
  std::vector<Seconds> out;
  out.reserve(static_cast<std::size_t>(max_procs() - min_procs() + 1));
  for (ProcCount g = min_procs(); g <= max_procs(); ++g)
    out.push_back(time_on(g));
  return out;
}

void SpeedupModel::require_in_range(ProcCount g) const {
  OAGRID_REQUIRE(g >= min_procs() && g <= max_procs(),
                 "group size outside the model's admissible range");
}

MeasuredTable::MeasuredTable(ProcCount min_procs, std::vector<Seconds> times)
    : min_(min_procs), times_(std::move(times)) {
  OAGRID_REQUIRE(min_ >= 1, "min_procs must be >= 1");
  OAGRID_REQUIRE(!times_.empty(), "measured table must not be empty");
  for (const Seconds t : times_)
    OAGRID_REQUIRE(t > 0.0, "measured times must be positive");
}

Seconds MeasuredTable::time_on(ProcCount g) const {
  require_in_range(g);
  return times_[static_cast<std::size_t>(g - min_)];
}

std::unique_ptr<SpeedupModel> MeasuredTable::clone() const {
  return std::make_unique<MeasuredTable>(*this);
}

CoupledModel::CoupledModel() : CoupledModel(Params{}) {}

CoupledModel::CoupledModel(Params params) : params_(params) {
  OAGRID_REQUIRE(params_.speed_factor > 0.0, "speed factor must be positive");
  OAGRID_REQUIRE(params_.seq_floor >= 0.0, "sequential floor must be >= 0");
  OAGRID_REQUIRE(params_.atm_work > 0.0, "atmosphere work must be positive");
  OAGRID_REQUIRE(params_.beta >= 0.0, "overhead coefficient must be >= 0");
  OAGRID_REQUIRE(params_.pinned >= 0, "pinned count must be >= 0");
  OAGRID_REQUIRE(params_.saturation >= 1, "saturation must be >= 1");
  OAGRID_REQUIRE(params_.max_group > params_.pinned,
                 "max group must exceed pinned components");
}

Seconds CoupledModel::time_on(ProcCount g) const {
  require_in_range(g);
  const ProcCount atm = std::min(g - params_.pinned, params_.saturation);
  // Linear-overhead efficiency: S(n) = n / (1 + beta*(n-1)).
  const double speedup =
      static_cast<double>(atm) / (1.0 + params_.beta * static_cast<double>(atm - 1));
  return params_.speed_factor * (params_.seq_floor + params_.atm_work / speedup);
}

std::unique_ptr<SpeedupModel> CoupledModel::clone() const {
  return std::make_unique<CoupledModel>(*this);
}

AmdahlModel::AmdahlModel(Seconds t1, double serial_fraction, ProcCount min_procs,
                         ProcCount max_procs)
    : t1_(t1), alpha_(serial_fraction), min_(min_procs), max_(max_procs) {
  OAGRID_REQUIRE(t1_ > 0.0, "t1 must be positive");
  OAGRID_REQUIRE(alpha_ >= 0.0 && alpha_ <= 1.0, "serial fraction in [0,1]");
  OAGRID_REQUIRE(min_ >= 1 && min_ <= max_, "invalid processor range");
}

Seconds AmdahlModel::time_on(ProcCount g) const {
  require_in_range(g);
  return t1_ * (alpha_ + (1.0 - alpha_) / static_cast<double>(g));
}

std::unique_ptr<SpeedupModel> AmdahlModel::clone() const {
  return std::make_unique<AmdahlModel>(*this);
}

PowerLawModel::PowerLawModel(Seconds t1, double alpha, ProcCount min_procs,
                             ProcCount max_procs)
    : t1_(t1), alpha_(alpha), min_(min_procs), max_(max_procs) {
  OAGRID_REQUIRE(t1_ > 0.0, "t1 must be positive");
  OAGRID_REQUIRE(alpha_ > 0.0 && alpha_ <= 1.0, "power-law exponent in (0,1]");
  OAGRID_REQUIRE(min_ >= 1 && min_ <= max_, "invalid processor range");
}

Seconds PowerLawModel::time_on(ProcCount g) const {
  require_in_range(g);
  return t1_ / std::pow(static_cast<double>(g), alpha_);
}

std::unique_ptr<SpeedupModel> PowerLawModel::clone() const {
  return std::make_unique<PowerLawModel>(*this);
}

}  // namespace oagrid::platform
