#include "platform/profiles.hpp"

#include <array>

namespace oagrid::platform {
namespace {

// Shapes differ (beta, seq_floor) so percentage gains scatter across
// profiles; anchors follow §6: fastest T(11) = 1177 s, slowest = 1622 s,
// reference pcr ~ 1260 s (Figure 1). Names are 2008-era Grid'5000 clusters.
constexpr std::array<ClusterProfile, 5> kProfiles{{
    {"capricorne", 0.055, 380.0, 1177.0},  // Lyon — fastest, scales well
    {"sagittaire", 0.080, 420.0, 1260.0},  // Lyon — the reference machine
    {"chicon", 0.100, 450.0, 1359.0},      // Lille
    {"grelon", 0.120, 470.0, 1485.0},      // Nancy — worst parallel overhead
    {"azur", 0.090, 520.0, 1622.0},        // Sophia — slowest sequential parts
}};

/// Unscaled T(11) of a profile's shape (speed factor 1, pre tasks included).
Seconds base_t11(const ClusterProfile& profile) {
  CoupledModel::Params params = reference_coupled_params();
  params.beta = profile.beta;
  params.seq_floor = profile.seq_floor;
  const CoupledModel model(params);
  return model.time_on(kMaxGroupSize) + kReferencePreTime;
}

Cluster build_cluster(const ClusterProfile& profile, ProcCount resources) {
  const double speed_factor = profile.t11_target / base_t11(profile);
  CoupledModel::Params params = reference_coupled_params();
  params.beta = profile.beta;
  params.seq_floor = profile.seq_floor;
  params.speed_factor = speed_factor;
  const CoupledModel model(params);
  // The scheduler's "main task" is pcr with the two 1 s pre tasks fused in
  // (paper §4.1); pre tasks are sequential, so they scale with the cluster.
  std::vector<Seconds> times = model.tabulate();
  for (Seconds& t : times) t += kReferencePreTime * speed_factor;
  // Post time proportional to overall cluster speed, normalized so the
  // reference profile keeps the paper's exact 180 s (and 1260/180 = 7).
  const Seconds post = kReferencePostTime * profile.t11_target / 1260.0;
  return Cluster(profile.name, resources, model.min_procs(), std::move(times),
                 post);
}

}  // namespace

CoupledModel::Params reference_coupled_params() {
  CoupledModel::Params p;
  p.speed_factor = 1.0;
  p.seq_floor = 420.0;
  p.atm_work = 4300.0;
  p.beta = 0.08;
  p.pinned = 3;
  p.saturation = 8;
  p.max_group = kMaxGroupSize;
  return p;
}

std::span<const ClusterProfile> builtin_profiles() noexcept {
  return kProfiles;
}

Cluster make_builtin_cluster(int index, ProcCount resources) {
  OAGRID_REQUIRE(index >= 0 && index < static_cast<int>(kProfiles.size()),
                 "profile index out of range");
  return build_cluster(kProfiles[static_cast<std::size_t>(index)], resources);
}

Grid make_builtin_grid(ProcCount resources) {
  std::vector<Cluster> clusters;
  clusters.reserve(kProfiles.size());
  for (int i = 0; i < static_cast<int>(kProfiles.size()); ++i)
    clusters.push_back(make_builtin_cluster(i, resources));
  return Grid(std::move(clusters));
}

Grid make_random_grid(int n, ProcCount min_resources, ProcCount max_resources,
                      Rng& rng) {
  OAGRID_REQUIRE(n >= 1, "grid needs at least one cluster");
  OAGRID_REQUIRE(min_resources >= 1 && min_resources <= max_resources,
                 "invalid resource range");
  std::vector<Cluster> clusters;
  clusters.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ClusterProfile profile;
    profile.name = "";  // unused; named below
    profile.beta = rng.uniform(0.05, 0.13);
    profile.seq_floor = rng.uniform(350.0, 550.0);
    profile.t11_target = rng.uniform(1100.0, 1700.0);
    const auto r = static_cast<ProcCount>(
        rng.uniform_int(min_resources, max_resources));
    Cluster c = build_cluster(profile, r);
    clusters.emplace_back("random-" + std::to_string(i), r, c.min_group(),
                          std::vector<Seconds>(c.main_times().begin(),
                                               c.main_times().end()),
                          c.post_time());
  }
  return Grid(std::move(clusters));
}

}  // namespace oagrid::platform
