#pragma once
/// \file profiles.hpp
/// \brief Built-in Grid'5000-like cluster profiles.
///
/// The paper benchmarked the application on "numerous clusters of
/// Grid'5000"; it publishes only two anchor points — the fastest cluster runs
/// one main task on 11 processors in 1177 s, the slowest in 1622 s — and the
/// per-task durations of Figure 1 (pcr ~ 1260 s, three 60 s post tasks, two
/// 1 s pre tasks). The five profiles here are synthesized from CoupledModel
/// with speed factors spanning exactly that range (substitution documented in
/// DESIGN.md §2). Names follow real 2008-era Grid'5000 clusters for flavor.

#include <vector>

#include "common/rng.hpp"
#include "platform/grid.hpp"

namespace oagrid::platform {

/// The fused post-processing task on the reference machine:
/// cof (60 s) + emi (60 s) + cd (60 s).
inline constexpr Seconds kReferencePostTime = 180.0;

/// The fused pre-processing contribution folded into the main task:
/// caif (1 s) + mp (1 s).
inline constexpr Seconds kReferencePreTime = 2.0;

/// Reference coupled-model parameters calibrated so that T(11) ~ 1260 s
/// (the paper's pcr benchmark) at speed factor 1.
[[nodiscard]] CoupledModel::Params reference_coupled_params();

/// One profile: a named machine *shape* (parallel-overhead coefficient and
/// sequential-component floor differ per cluster, as real benchmark tables
/// do) anchored to a published T(11) target. The speed factor is derived so
/// that the fused main task takes exactly `t11_target` seconds on 11
/// processors; the post task scales proportionally to overall speed
/// (TP = 180 s x t11_target / 1260).
struct ClusterProfile {
  const char* name;
  double beta;          ///< parallel-overhead coefficient of CoupledModel
  Seconds seq_floor;    ///< sequential ocean/runoff/coupler time
  Seconds t11_target;   ///< anchored fused-main time on 11 processors
};

/// The five simulation profiles. T(11) spans the published 1177 s (fastest)
/// .. 1622 s (slowest); shapes differ so the five gain samples per resource
/// count genuinely scatter (the paper's Figure 8 error bars).
[[nodiscard]] std::span<const ClusterProfile> builtin_profiles() noexcept;

/// Builds cluster `index` (0..4) of the built-in set with `resources`
/// processors. Main-task times include the fused 2 s pre-processing.
[[nodiscard]] Cluster make_builtin_cluster(int index, ProcCount resources);

/// The full five-cluster grid, each cluster with `resources` processors.
[[nodiscard]] Grid make_builtin_grid(ProcCount resources);

/// Random heterogeneous grid for property tests and ablations: `n` clusters,
/// speed factors uniform in [0.8, 1.7], resources uniform in
/// [min_resources, max_resources].
[[nodiscard]] Grid make_random_grid(int n, ProcCount min_resources,
                                    ProcCount max_resources, Rng& rng);

}  // namespace oagrid::platform
