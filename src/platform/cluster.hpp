#pragma once
/// \file cluster.hpp
/// \brief Homogeneous cluster description consumed by the schedulers.
///
/// The paper's §4 heuristics see a cluster as exactly three things: a
/// processor count R, the execution-time table T[G] of the (fused) main task
/// for every admissible group size G, and the duration TP of the (fused)
/// post-processing task. Cluster is that triple, as a value type: the
/// speedup model is tabulated once at construction so the schedulers index a
/// dense array instead of virtual-dispatching in their inner loops.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "platform/speedup.hpp"

namespace oagrid::platform {

/// One homogeneous cluster (all nodes identical, shared storage so data
/// access time is folded into task durations — the paper's §4.1 assumption).
class Cluster {
 public:
  /// Builds from an explicit time table. `main_times[0]` is the time on
  /// `min_group` processors.
  Cluster(std::string name, ProcCount resources, ProcCount min_group,
          std::vector<Seconds> main_times, Seconds post_time);

  /// Builds by tabulating a speedup model.
  Cluster(std::string name, ProcCount resources, const SpeedupModel& model,
          Seconds post_time);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ProcCount resources() const noexcept { return resources_; }
  [[nodiscard]] ProcCount min_group() const noexcept { return min_group_; }
  [[nodiscard]] ProcCount max_group() const noexcept {
    return min_group_ + static_cast<ProcCount>(main_times_.size()) - 1;
  }

  /// T[G]: execution time of one main task on a group of g processors.
  [[nodiscard]] Seconds main_time(ProcCount g) const;

  /// Dense T table, index 0 <-> min_group().
  [[nodiscard]] std::span<const Seconds> main_times() const noexcept {
    return main_times_;
  }

  /// TP: execution time of one post-processing task (single processor).
  [[nodiscard]] Seconds post_time() const noexcept { return post_time_; }

  /// Copy with a different processor count (used by resource sweeps).
  [[nodiscard]] Cluster with_resources(ProcCount r) const;

  /// Copy with all times scaled by `factor` (heterogeneity perturbations).
  [[nodiscard]] Cluster scaled(double factor) const;

  /// True when T is monotone non-increasing in G — the natural shape for a
  /// moldable task and an assumption some baselines exploit. The paper's
  /// heuristics do not require it; the knapsack treats any table correctly.
  [[nodiscard]] bool monotone_speedup() const noexcept;

 private:
  std::string name_;
  ProcCount resources_;
  ProcCount min_group_;
  std::vector<Seconds> main_times_;
  Seconds post_time_;
};

}  // namespace oagrid::platform
