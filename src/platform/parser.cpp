#include "platform/parser.hpp"

#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace oagrid::platform {
namespace {

struct PendingCluster {
  std::string name;
  std::optional<ProcCount> resources;
  std::optional<ProcCount> min_group;
  std::vector<Seconds> main_times;
  std::optional<Seconds> post_time;
  int start_line = 0;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("oagrid: grid file line " + std::to_string(line) +
                              ": " + message);
}

Cluster finish(const PendingCluster& p) {
  if (!p.resources) fail(p.start_line, "cluster '" + p.name + "' missing 'resources'");
  if (!p.min_group) fail(p.start_line, "cluster '" + p.name + "' missing 'min_group'");
  if (p.main_times.empty())
    fail(p.start_line, "cluster '" + p.name + "' missing 'main_times'");
  if (!p.post_time) fail(p.start_line, "cluster '" + p.name + "' missing 'post_time'");
  return Cluster(p.name, *p.resources, *p.min_group, p.main_times, *p.post_time);
}

}  // namespace

Grid parse_grid(std::istream& in) {
  Grid grid;
  std::optional<PendingCluster> current;
  std::string raw;
  int line_no = 0;

  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank / comment-only line

    if (keyword == "cluster") {
      if (current) grid.add_cluster(finish(*current));
      current.emplace();
      current->start_line = line_no;
      if (!(line >> current->name)) fail(line_no, "'cluster' needs a name");
      continue;
    }
    if (!current) fail(line_no, "directive '" + keyword + "' before any 'cluster'");

    if (keyword == "resources") {
      ProcCount r = 0;
      if (!(line >> r) || r < 1) fail(line_no, "'resources' needs a positive integer");
      current->resources = r;
    } else if (keyword == "min_group") {
      ProcCount g = 0;
      if (!(line >> g) || g < 1) fail(line_no, "'min_group' needs a positive integer");
      current->min_group = g;
    } else if (keyword == "main_times") {
      Seconds t = 0;
      while (line >> t) {
        if (t <= 0) fail(line_no, "'main_times' entries must be positive");
        current->main_times.push_back(t);
      }
      if (current->main_times.empty()) fail(line_no, "'main_times' needs >= 1 value");
    } else if (keyword == "post_time") {
      Seconds t = 0;
      if (!(line >> t) || t <= 0) fail(line_no, "'post_time' needs a positive number");
      current->post_time = t;
    } else {
      fail(line_no, "unknown directive '" + keyword + "'");
    }
  }
  if (current) grid.add_cluster(finish(*current));
  if (grid.cluster_count() == 0)
    throw std::invalid_argument("oagrid: grid file contains no cluster");
  return grid;
}

Grid parse_grid_string(const std::string& text) {
  std::istringstream in(text);
  return parse_grid(in);
}

void write_grid(std::ostream& out, const Grid& grid) {
  // 17 significant digits round-trip any double exactly.
  out.precision(17);
  for (const auto& c : grid.clusters()) {
    out << "cluster " << c.name() << '\n';
    out << "resources " << c.resources() << '\n';
    out << "min_group " << c.min_group() << '\n';
    out << "main_times";
    for (const Seconds t : c.main_times()) out << ' ' << t;
    out << '\n';
    out << "post_time " << c.post_time() << "\n\n";
  }
}

}  // namespace oagrid::platform
