#include "platform/cluster.hpp"

namespace oagrid::platform {

Cluster::Cluster(std::string name, ProcCount resources, ProcCount min_group,
                 std::vector<Seconds> main_times, Seconds post_time)
    : name_(std::move(name)),
      resources_(resources),
      min_group_(min_group),
      main_times_(std::move(main_times)),
      post_time_(post_time) {
  OAGRID_REQUIRE(resources_ >= 1, "cluster needs at least one processor");
  OAGRID_REQUIRE(min_group_ >= 1, "minimum group size must be >= 1");
  OAGRID_REQUIRE(!main_times_.empty(), "main-task time table must not be empty");
  for (const Seconds t : main_times_)
    OAGRID_REQUIRE(t > 0.0, "main-task times must be positive");
  // Zero is allowed for synthetic workloads with no post phase (the generic
  // chain scheduler); the closed-form makespan model separately requires > 0.
  OAGRID_REQUIRE(post_time_ >= 0.0, "post-processing time must be >= 0");
}

Cluster::Cluster(std::string name, ProcCount resources,
                 const SpeedupModel& model, Seconds post_time)
    : Cluster(std::move(name), resources, model.min_procs(), model.tabulate(),
              post_time) {}

Seconds Cluster::main_time(ProcCount g) const {
  OAGRID_REQUIRE(g >= min_group() && g <= max_group(),
                 "group size outside the cluster's admissible range");
  return main_times_[static_cast<std::size_t>(g - min_group_)];
}

Cluster Cluster::with_resources(ProcCount r) const {
  Cluster copy = *this;
  OAGRID_REQUIRE(r >= 1, "cluster needs at least one processor");
  copy.resources_ = r;
  return copy;
}

Cluster Cluster::scaled(double factor) const {
  OAGRID_REQUIRE(factor > 0.0, "scale factor must be positive");
  Cluster copy = *this;
  for (Seconds& t : copy.main_times_) t *= factor;
  copy.post_time_ *= factor;
  return copy;
}

bool Cluster::monotone_speedup() const noexcept {
  for (std::size_t i = 1; i < main_times_.size(); ++i)
    if (main_times_[i] > main_times_[i - 1]) return false;
  return true;
}

}  // namespace oagrid::platform
