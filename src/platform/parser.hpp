#pragma once
/// \file parser.hpp
/// \brief Text description format for grids, so experiments can run against
/// user-supplied benchmark tables (the workflow the paper's authors used:
/// benchmark each Grid'5000 cluster, feed the tables to the scheduler).
///
/// Format (line-oriented, '#' starts a comment):
///
///   cluster sagittaire
///   resources 53
///   min_group 4
///   main_times 4722 2902 2175 1852 1660 1537 1454 1258
///   post_time 180
///
///   cluster azur
///   ...
///
/// Every `cluster` directive opens a new cluster; the other four directives
/// must all appear before the next `cluster` or end of input.

#include <iosfwd>
#include <string>

#include "platform/grid.hpp"

namespace oagrid::platform {

/// Parses a grid description. Throws std::invalid_argument with a
/// line-numbered message on any malformed input.
[[nodiscard]] Grid parse_grid(std::istream& in);

/// Convenience overload over an in-memory string.
[[nodiscard]] Grid parse_grid_string(const std::string& text);

/// Serializes a grid back to the same format (round-trips with parse_grid).
void write_grid(std::ostream& out, const Grid& grid);

}  // namespace oagrid::platform
