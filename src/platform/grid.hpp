#pragma once
/// \file grid.hpp
/// \brief A grid = a set of heterogeneous homogeneous clusters (the
/// Grid'5000 structure the paper targets in §5).

#include <span>
#include <string>
#include <vector>

#include "platform/cluster.hpp"

namespace oagrid::platform {

/// Heterogeneous collection of clusters. The grid itself carries only
/// cluster membership; the links between clusters (staging, result
/// collection, restart-file migration — all priced since the relaxation of
/// the paper's no-migration rule) are modeled separately by
/// net::NetworkModel, keyed by the same ClusterId order as this class.
class Grid {
 public:
  Grid() = default;
  explicit Grid(std::vector<Cluster> clusters);

  ClusterId add_cluster(Cluster cluster);

  [[nodiscard]] int cluster_count() const noexcept {
    return static_cast<int>(clusters_.size());
  }
  [[nodiscard]] const Cluster& cluster(ClusterId id) const;
  [[nodiscard]] std::span<const Cluster> clusters() const noexcept {
    return clusters_;
  }
  [[nodiscard]] ProcCount total_resources() const noexcept;

  /// Grid with every cluster resized to `r` processors (the homogeneous-size
  /// sweeps of Figure 10: "clusters have all the same number of resources").
  [[nodiscard]] Grid with_uniform_resources(ProcCount r) const;

  /// Grid keeping only the first `n` clusters.
  [[nodiscard]] Grid prefix(int n) const;

 private:
  std::vector<Cluster> clusters_;
};

}  // namespace oagrid::platform
