#pragma once
/// \file queue.hpp
/// \brief Multi-tenant admission queue with a pluggable ordering policy.
///
/// The queue holds submitted-but-not-yet-admitted campaigns. Admission
/// control is two-staged: a bounded queue rejects submissions outright when
/// the service is saturated (back-pressure to the tenant), and the ordering
/// policy decides *which* queued campaign is admitted when grid capacity
/// frees up:
///  * kFifo — submission order (the single-tenant baseline);
///  * kWeightedFairShare — the owner with the least weight-normalized
///    consumed processor-seconds goes first (classic fair-share decay-free
///    accounting; Beránek et al. evaluate schedulers under exactly this
///    kind of long-lived multi-workflow service);
///  * kShortestRemaining — smallest estimated remaining makespan first
///    (latency/throughput trade-off of Benoit et al.; the estimate comes
///    from the sched performance vectors).
///
/// The queue itself is deliberately persistence-free: its contents and
/// order are fully re-derivable from the journal (submitted minus
/// admitted/rejected, in submission order), which recovery exploits.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "service/campaign.hpp"

namespace oagrid::service {

enum class QueuePolicy : std::uint8_t {
  kFifo = 0,
  kWeightedFairShare = 1,
  kShortestRemaining = 2,
};

[[nodiscard]] const char* to_string(QueuePolicy policy) noexcept;
/// Parses "fifo" | "fair" | "srmf"; throws std::invalid_argument otherwise.
[[nodiscard]] QueuePolicy queue_policy_from(const std::string& name);

/// The queue maintains an ordered index keyed (priority, submission seq):
/// enqueue, remove, re-prioritization and head lookup are all O(log n), so
/// the service never sorts the whole queue per admission event. kFifo
/// ignores priorities (every entry is keyed 0, so the seq tie-break *is*
/// the order); the other policies keep each entry's priority current via
/// update_priority (the service re-keys an owner's entries whenever that
/// owner's fair-share consumption changes — srmf estimates never change
/// while queued).
class CampaignQueue {
 public:
  explicit CampaignQueue(QueuePolicy policy, std::size_t capacity);

  [[nodiscard]] QueuePolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t depth() const noexcept { return queued_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queued_.empty(); }
  [[nodiscard]] bool full() const noexcept {
    return queued_.size() >= capacity_;
  }

  /// Admission-control stage 1: false when the queue is full (the campaign
  /// is rejected and never enters). `priority` keys the admission index
  /// (ignored under kFifo).
  [[nodiscard]] bool try_enqueue(CampaignId id, double priority = 0.0);

  /// Removes an admitted (or cancelled) campaign.
  void remove(CampaignId id);

  /// Re-keys a queued campaign after its priority input changed (e.g. its
  /// owner's consumed share moved). O(log n); a no-op if unchanged.
  void update_priority(CampaignId id, double priority);

  /// Head of the admission order: lowest (priority, submission seq).
  /// Requires a non-empty queue.
  [[nodiscard]] CampaignId front() const;

  /// Queued ids in submission order (stable across recovery).
  [[nodiscard]] const std::vector<CampaignId>& queued() const noexcept {
    return queued_;
  }

  /// Admission order under the policy: queued ids sorted by ascending
  /// `priority` (ties broken by submission order). The service supplies the
  /// priority function (owner fair-share usage or remaining-makespan
  /// estimate); kFifo ignores it. A full sort — introspection and tests;
  /// the service itself reads front() off the maintained index.
  [[nodiscard]] std::vector<CampaignId> admission_order(
      const std::function<double(CampaignId)>& priority) const;

 private:
  using IndexKey = std::tuple<double, std::uint64_t, CampaignId>;

  QueuePolicy policy_;
  std::size_t capacity_;
  std::vector<CampaignId> queued_;  ///< submission order
  std::uint64_t next_seq_ = 0;
  std::map<CampaignId, IndexKey> keys_;
  std::set<IndexKey> index_;  ///< ordered by (priority, seq)
};

}  // namespace oagrid::service
