#pragma once
/// \file journal.hpp
/// \brief Crash-recoverable persistence: an append-only, CRC-checked binary
/// write-ahead journal of campaign events, plus atomically-written snapshot
/// files that bound replay cost.
///
/// The control-plane analogue of the climate restart files: the journal
/// records *what happened* (submissions, month completions, lease changes,
/// completions); the service re-derives every decision deterministically, so
/// recovery replays the journal through the live transition function and
/// verifies that the regenerated records byte-match the stored ones. A torn
/// or truncated tail (the moment of the crash) is detected by the length /
/// CRC framing and dropped — exactly the per-scenario month frontier of the
/// surviving prefix is recovered.
///
/// Wire format (host-endian; the journal is a local crash-recovery artifact,
/// not an interchange format — documented in docs/service.md):
///
///   journal  := header record*
///   header   := "OAGJ" u32 version=1 u64 base_seq u8 policy u8 heuristic
///               u32 max_active
///   record   := u32 payload_len  u32 crc32(payload)  payload
///   payload  := u8 event_type  fields...        (see EventType)
///
///   snapshot := "OAGP" u32 version=1 u64 seq  u32 payload_len
///               u32 crc32(payload)  payload    (opaque service state)
///
/// Records are flushed per append; the snapshot is written to a temporary
/// file and renamed so a crash never leaves a half-written snapshot behind.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace oagrid::service {

/// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib/PNG polynomial).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size) noexcept;

enum class EventType : std::uint8_t {
  kCampaignSubmitted = 1, ///< spec + submit time
  kCampaignRejected = 2,  ///< admission control refused (queue full)
  kCampaignAdmitted = 3,  ///< scenario-to-cluster assignment fixed
  kMonthCompleted = 4,    ///< one (scenario, month) finished on (cluster, group)
  kLeaseChanged = 5,      ///< a campaign's lease on a cluster re-sized
  kCampaignCompleted = 6, ///< final month done; leases released
};

[[nodiscard]] const char* to_string(EventType type) noexcept;

/// One journal record. A tagged union kept flat: only the fields of the
/// record's type are serialized (see journal.cpp / docs/service.md).
struct Event {
  EventType type = EventType::kCampaignSubmitted;
  std::uint32_t campaign = 0;
  Seconds time = 0.0;

  // kCampaignSubmitted
  std::string owner;
  double weight = 1.0;
  Count scenarios = 0;
  Count months = 0;

  // kCampaignAdmitted
  std::vector<ClusterId> assignment; ///< scenario -> cluster

  // kMonthCompleted
  ScenarioId scenario = 0;
  MonthIndex month = 0;
  int group = 0;

  // kMonthCompleted / kLeaseChanged
  ClusterId cluster = 0;
  ProcCount procs = 0; ///< kLeaseChanged: new lease size (0 = released)

  // kCampaignCompleted
  Seconds makespan = 0.0;

  [[nodiscard]] bool operator==(const Event& other) const;
};

/// Serialized record payload (without the length/CRC framing) — exposed so
/// recovery can compare regenerated events against stored bytes.
[[nodiscard]] std::string encode_event(const Event& event);
/// Inverse of encode_event; throws std::invalid_argument on malformed input.
[[nodiscard]] Event decode_event(const std::string& payload);

/// Configuration fingerprint stored in the journal header: replay is only
/// deterministic under the same scheduling configuration.
struct JournalConfig {
  std::uint8_t policy = 0;
  std::uint8_t heuristic = 0;
  std::uint32_t max_active = 0;

  [[nodiscard]] bool operator==(const JournalConfig&) const = default;
};

/// Result of scanning a journal file.
struct JournalContents {
  bool exists = false;          ///< file was present
  std::uint64_t base_seq = 0;   ///< sequence number of the first record
  JournalConfig config;
  std::vector<Event> events;    ///< valid prefix, in append order
  bool torn_tail = false;       ///< trailing bytes dropped (torn/corrupt)
  std::uint64_t dropped_bytes = 0;

  [[nodiscard]] std::uint64_t end_seq() const noexcept {
    return base_seq + events.size();
  }
};

/// Reads and validates a journal. Missing file -> {exists = false}. A bad
/// header throws std::invalid_argument (that is corruption of a different
/// kind than a torn tail: nothing can be salvaged). Truncated or
/// CRC-corrupt records end the scan: everything from the first bad record
/// on is reported via torn_tail / dropped_bytes.
[[nodiscard]] JournalContents read_journal(const std::string& path);

/// Append-only journal writer. Opens fresh (truncating) with a header, or
/// re-opens an existing journal for appending after recovery validated it.
///
/// Two commit disciplines, producing byte-identical files:
///  * per-record (default) — every append() is framed, written and flushed
///    on its own: a crash loses at most the record being written;
///  * group commit (set_group_commit(true)) — append() frames the record
///    into an in-memory batch and commit() writes the whole batch with one
///    write + flush. The frames are simply concatenated in append order, so
///    the on-disk bytes are exactly what the per-record writer produces; a
///    crash loses the uncommitted batch (and possibly tears its first
///    record), which read_journal handles exactly like a torn record today.
class JournalWriter {
 public:
  /// Creates `path` (truncating any previous file) and writes the header.
  JournalWriter(const std::string& path, std::uint64_t base_seq,
                const JournalConfig& config);

  /// Re-opens an existing journal for appending. `valid_bytes` is the byte
  /// length of the validated prefix (read_journal knows it implicitly);
  /// anything beyond it — a torn tail — is truncated away first.
  static JournalWriter reopen(const std::string& path,
                              const JournalContents& contents);

  /// Selects the commit discipline. Turning group commit *off* commits any
  /// pending batch first, so no record silently changes durability class.
  void set_group_commit(bool on);
  [[nodiscard]] bool group_commit() const noexcept { return group_commit_; }

  /// Appends one record (length + CRC framing). Per-record mode writes and
  /// flushes immediately; group-commit mode buffers until commit().
  void append(const Event& event);

  /// Writes and flushes the pending batch (one write + one flush, however
  /// many records accumulated). Returns the number of records flushed
  /// (0 when nothing was pending). A no-op in per-record mode.
  std::size_t commit();

  /// Emulated SIGKILL: drops the pending batch as a real crash would drop
  /// an application-side buffer. The writer must not be used afterwards.
  void discard_pending() noexcept;

  /// Records appended but not yet committed to the file.
  [[nodiscard]] std::size_t pending_records() const noexcept {
    return pending_records_;
  }
  /// write+flush pairs issued over this writer's lifetime.
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }

  /// Sequence number of the next record to be appended (buffered records
  /// count: they are part of the in-memory history).
  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  JournalWriter() = default;

  std::string path_;
  std::ofstream out_;
  std::uint64_t seq_ = 0;
  bool group_commit_ = false;
  std::string pending_;
  std::size_t pending_records_ = 0;
  std::uint64_t flushes_ = 0;
};

/// Atomically replaces the snapshot at `path` (tmp + rename) with an opaque
/// state payload captured after `seq` journal records were applied.
void write_snapshot(const std::string& path, std::uint64_t seq,
                    const std::string& payload);

struct SnapshotContents {
  bool valid = false;       ///< present and integrity-checked
  std::uint64_t seq = 0;    ///< journal records folded into the payload
  std::string payload;
};

/// Reads a snapshot; {valid = false} when missing or corrupt (recovery then
/// falls back to a full journal replay).
[[nodiscard]] SnapshotContents read_snapshot(const std::string& path);

}  // namespace oagrid::service
