#pragma once
/// \file service.hpp
/// \brief The long-running campaign service: a deterministic service loop
/// multiplexing many tenants' campaigns over one shared grid, with elastic
/// leases and a crash-recoverable journal.
///
/// Layering (the new control plane above sched/sim/middleware, below the
/// CLI):
///
///   CampaignQueue  — who waits, and in what order (admission policy);
///   LeaseManager   — who holds how many processors of which cluster;
///   JournalWriter  — what happened, durably (WAL + snapshots);
///   CampaignService— the event loop tying them together over a simulated
///                    service clock, with sched supplying groupings
///                    (knapsack per allotment) and performance vectors
///                    (admission-time Algorithm-1 placement per campaign).
///
/// Determinism is the design center: every decision (admission order, lease
/// plan, group dispatch, tie-breaks) is a pure function of journaled state,
/// so recovery *re-executes* the loop while verifying that regenerated
/// records byte-match the stored journal. A campaign killed at an arbitrary
/// journal point therefore resumes at the exact per-scenario month frontier
/// and finishes with the same makespan as an uninterrupted run. In-flight
/// months (started, not yet journaled as complete) are re-derived by the
/// replay — the same re-run-the-month semantics as the climate restart
/// files on the data plane.
///
/// Execution model: the service executes the *main* tasks of each month on
/// the leased processor groups (the control-plane frontier the journal
/// protects); post-processing remains the data plane's business and is
/// accounted for only inside the performance vectors used for estimates.
///
/// The paper's "cannot change location" rule is enforced at two radii:
/// scenarios are pinned to their admission-time cluster forever, and a
/// lease change on a cluster only takes effect once every month currently
/// running there has completed (the running months keep their processors).

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "platform/grid.hpp"
#include "sched/heuristics.hpp"
#include "service/campaign.hpp"
#include "service/estimator.hpp"
#include "service/journal.hpp"
#include "service/lease.hpp"
#include "service/queue.hpp"

namespace oagrid::service {

struct ServiceOptions {
  QueuePolicy policy = QueuePolicy::kWeightedFairShare;
  std::size_t queue_capacity = 64;  ///< admission control: reject beyond this
  int max_active = 4;               ///< concurrently running tenants
  sched::Heuristic heuristic = sched::Heuristic::kKnapsack;

  /// Directory for journal.bin / snapshot.bin; empty -> in-memory only
  /// (no persistence, recover() unavailable).
  std::string journal_dir;
  /// Journal records between snapshots (0 = never snapshot). Snapshotting
  /// compacts: the journal restarts from the snapshot's sequence number.
  Count snapshot_every = 0;
  /// Crash-injection hook for tests and demos: after this many journal
  /// appends the service behaves as if SIGKILLed — no further writes, run()
  /// returns false, in-memory state is garbage. Negative = disabled.
  long long kill_after_records = -1;

  /// Estimation backend; null -> a built-in AnalyticEstimator.
  PerfEstimator* estimator = nullptr;

  /// Group-commit journaling: buffer the records of one event-loop tick and
  /// write+flush them as a single batch at the commit boundary (end of
  /// pump_one). The on-disk bytes are identical to per-record mode; a crash
  /// loses the uncommitted batch, which recovery treats exactly like a torn
  /// tail. Off by default so per-record durability stays the library
  /// baseline; the CLI turns it on.
  bool group_commit = false;

  /// Incremental control-plane bookkeeping: lease claims, the max-min plan,
  /// cluster admissibility and the dispatch scan are only recomputed when
  /// the inputs they depend on changed. Exact — results are identical to
  /// full recomputation; switchable for A/B measurement.
  bool incremental = true;

  /// Debug cross-check: every incremental result (claims, plan, admission
  /// order, dispatch coverage) is compared against a full recompute; any
  /// divergence throws. Slow — for tests.
  bool verify_incremental = false;

  /// Threads for batched performance estimation (admission placement and
  /// srmf priorities): 1 = serial (default), 0 = the whole shared pool,
  /// N = at most N. Results are bit-identical at any setting.
  std::size_t estimator_threads = 1;
};

/// What recover() found and rebuilt.
struct RecoveryReport {
  bool journal_found = false;
  bool snapshot_used = false;
  std::uint64_t snapshot_seq = 0;
  std::uint64_t replayed_records = 0; ///< records re-verified from the WAL
  bool torn_tail = false;             ///< a truncated/corrupt tail was dropped
  std::uint64_t dropped_bytes = 0;
  Seconds resume_time = 0.0;          ///< service clock at the frontier
};

class CampaignService {
 public:
  CampaignService(platform::Grid grid, ServiceOptions options);
  ~CampaignService();
  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Schedules a submission at service time `at`. Submissions must be made
  /// in non-decreasing `at` order (campaign ids then equal arrival order —
  /// the invariant recovery relies on) and before run(). Returns the id.
  CampaignId submit(CampaignSpec spec, Seconds at = 0.0);

  /// Rebuilds state from the journal directory: loads the newest valid
  /// snapshot (if any), then re-executes the loop against the journal
  /// suffix, verifying every regenerated record against the stored bytes.
  /// Call on a fresh instance, before submit()/run(). Throws on config
  /// mismatch or irrecoverable corruption. A missing journal is not an
  /// error (fresh start).
  RecoveryReport recover();

  /// Runs the service loop until no work remains. Returns false when the
  /// crash-injection hook fired (the instance must then be discarded).
  bool run();

  // --- introspection -----------------------------------------------------
  [[nodiscard]] Seconds now() const noexcept { return now_; }
  [[nodiscard]] const platform::Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::vector<CampaignId> campaign_ids() const;
  [[nodiscard]] const CampaignState& campaign(CampaignId id) const;
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.depth();
  }
  /// Current leases, sorted by (campaign, cluster).
  [[nodiscard]] std::vector<Lease> active_leases() const;
  [[nodiscard]] std::uint64_t journal_seq() const noexcept;
  [[nodiscard]] std::uint64_t lease_changes() const noexcept {
    return lease_changes_;
  }
  /// Times a lease plan was served from cache instead of recomputed.
  [[nodiscard]] std::uint64_t plan_reuse() const noexcept {
    return plan_reuse_;
  }
  [[nodiscard]] bool killed() const noexcept { return killed_; }

  /// FNV-1a over the full snapshot encoding of the current state — the
  /// deterministic seam the property-testing harness byte-checks: a service
  /// recovered from any kill point must reach the signature of an
  /// uninterrupted run once both are drained.
  [[nodiscard]] std::uint64_t state_signature() const;

  /// Paths inside a journal directory (shared with tools/tests).
  [[nodiscard]] static std::string journal_path(const std::string& dir);
  [[nodiscard]] static std::string snapshot_path(const std::string& dir);

 private:
  struct Allotment {
    ProcCount procs = 0;
    std::vector<ProcCount> group_sizes;
    std::vector<char> group_busy;
  };

  struct ClusterRuntime {
    bool reconfiguring = false;           ///< draining toward new targets
    std::map<CampaignId, ProcCount> targets;
    int running = 0;                      ///< months in flight
  };

  struct PendingEvent {
    Seconds time = 0.0;
    int kind = 0;  ///< 0 = submission arrival, 1 = month completion
    CampaignId campaign = 0;
    ClusterId cluster = 0;
    int group = 0;
    ScenarioId scenario = 0;
    MonthIndex month = 0;

    [[nodiscard]] bool operator<(const PendingEvent& other) const;
  };

  using AllotmentKey = std::pair<CampaignId, ClusterId>;

  // Event loop.
  void pump_one();
  void process_submission(const PendingEvent& event);
  void process_completion(const PendingEvent& event);
  void dispatch();
  int dispatch_key(const AllotmentKey& key, Allotment& allotment);
  void complete_campaign(CampaignState& state);

  // Admission and leases.
  void try_admit();
  void admit(CampaignId id);
  void rebalance_and_admit();
  [[nodiscard]] std::vector<LeaseClaim> incumbent_claims() const;
  [[nodiscard]] const std::vector<LeaseClaim>& current_claims();
  [[nodiscard]] const std::vector<Lease>& current_plan();
  [[nodiscard]] bool admissible_now();
  void mark_claims_dirty() noexcept;
  void reprioritize_owner(const std::string& owner);
  [[nodiscard]] double admission_priority(CampaignId id);
  void apply_plan(const std::vector<Lease>& plan);
  void apply_targets(ClusterId cluster,
                     const std::map<CampaignId, ProcCount>& targets);
  void apply_reconfigure(ClusterId cluster);

  // Journal plumbing.
  void journal_append(const Event& event);
  void commit_journal();
  void finish_replay();
  void maybe_snapshot();
  [[nodiscard]] JournalConfig journal_config() const;

  // Snapshot codec.
  [[nodiscard]] std::string encode_state() const;
  void decode_state(const std::string& payload);

  platform::Grid grid_;
  ServiceOptions options_;
  CampaignQueue queue_;
  LeaseManager leases_;
  std::unique_ptr<PerfEstimator> default_estimator_;
  PerfEstimator* estimator_;  ///< options_.estimator or default_estimator_

  Seconds now_ = 0.0;
  CampaignId next_campaign_id_ = 1;
  Seconds last_submit_at_ = 0.0;
  bool started_ = false;

  std::map<CampaignId, CampaignState> campaigns_;
  std::map<CampaignId, std::vector<char>> scenario_running_;  ///< transient
  std::map<AllotmentKey, Allotment> allotments_;
  std::vector<ClusterRuntime> clusters_;
  std::set<PendingEvent> events_;
  std::map<std::string, double> owner_consumed_;  ///< weighted fair share
  std::map<CampaignId, double> srmf_estimate_;    ///< cached policy input

  // Incremental control-plane bookkeeping. Maintained on every transition
  // (cheap); the caches below are consulted only when options_.incremental.
  int active_count_ = 0;  ///< campaigns in kRunning
  /// Per running campaign: unfinished scenarios pinned to each cluster —
  /// exactly the inputs incumbent_claims() derives by scanning frontiers.
  std::map<CampaignId, std::vector<Count>> pinned_counts_;
  /// Per cluster: running campaigns with at least one scenario pinned there
  /// (the admissibility floor count).
  std::vector<int> pinned_campaigns_;
  /// Per cluster: campaigns holding an allotment there (dirty fan-out when a
  /// whole cluster becomes dispatchable again).
  std::vector<std::set<CampaignId>> cluster_members_;
  /// Allotments whose dispatch inputs changed since the last dispatch().
  std::set<AllotmentKey> dispatch_dirty_;
  /// Queued campaigns per owner (fair-share re-keying fan-out).
  std::map<std::string, std::set<CampaignId>> owner_queued_;

  bool claims_dirty_ = true;
  std::vector<LeaseClaim> claims_cache_;
  bool plan_valid_ = false;
  std::vector<Lease> plan_cache_;
  std::uint64_t plan_reuse_ = 0;

  std::unique_ptr<JournalWriter> writer_;
  std::uint64_t last_snapshot_seq_ = 0;
  long long appends_done_ = 0;
  bool killed_ = false;

  // Verified replay (recovery).
  bool replaying_ = false;
  std::vector<Event> replay_expected_;
  std::size_t replay_pos_ = 0;
  std::optional<JournalContents> replay_contents_;  ///< for writer reopen

  std::uint64_t lease_changes_ = 0;
};

}  // namespace oagrid::service
