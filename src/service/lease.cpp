#include "service/lease.hpp"

#include <algorithm>
#include <cassert>

namespace oagrid::service {
namespace {

/// Per-cluster planning state for one claimant.
struct Claimant {
  CampaignId campaign = 0;
  double weight = 1.0;
  ProcCount assigned = 0;
  ProcCount floor = 0;    ///< pinned claimants keep at least min_group
  ProcCount cap = 0;      ///< no point leasing beyond max_group * scenarios
  bool dropped = false;

  [[nodiscard]] double load() const noexcept {
    return static_cast<double>(assigned) / weight;
  }
};

/// Progressive filling: hand out `procs` one at a time, each to the active
/// claimant with the smallest weight-normalized allotment that still has cap
/// headroom (ties to the lower campaign id). Weighted max-min fairness,
/// deterministic by construction.
void fill(std::vector<Claimant>& claimants, ProcCount procs) {
  while (procs > 0) {
    Claimant* best = nullptr;
    for (Claimant& c : claimants) {
      if (c.dropped || c.assigned >= c.cap) continue;
      if (best == nullptr || c.load() < best->load() ||
          (c.load() == best->load() && c.campaign < best->campaign))
        best = &c;
    }
    if (best == nullptr) break;  // everyone capped: leftover procs idle
    ++best->assigned;
    --procs;
  }
}

}  // namespace

std::vector<Lease> LeaseManager::plan(
    const std::vector<LeaseClaim>& claims) const {
  std::vector<Lease> leases;
  for (ClusterId c = 0; c < grid_->cluster_count(); ++c) {
    const platform::Cluster& cluster = grid_->cluster(c);
    const ProcCount gmin = cluster.min_group();
    const ProcCount gmax = cluster.max_group();

    std::vector<Claimant> claimants;
    ProcCount floor_total = 0;
    for (const LeaseClaim& claim : claims) {
      Count unfinished_here = 0;
      for (const auto& [pinned_cluster, count] : claim.pinned)
        if (pinned_cluster == c) unfinished_here = count;
      if (unfinished_here == 0 && !claim.newcomer) continue;

      Claimant claimant;
      claimant.campaign = claim.campaign;
      claimant.weight = claim.weight;
      claimant.floor = unfinished_here > 0 ? gmin : 0;
      const Count useful = unfinished_here > 0
                               ? unfinished_here
                               : claim.unfinished_total;
      claimant.cap = static_cast<ProcCount>(
          std::min<Count>(cluster.resources(), gmax * useful));
      claimant.assigned = claimant.floor;
      floor_total += claimant.floor;
      claimants.push_back(claimant);
    }
    if (claimants.empty()) continue;

    // The admission invariant (every pinned campaign was granted >= gmin
    // when its scenarios were placed, and pins only ever shrink) guarantees
    // the floors fit.
    assert(floor_total <= cluster.resources());
    fill(claimants, cluster.resources() - floor_total);

    // Drop claimants stuck below the minimum useful lease, newest first,
    // re-offering their processors — one at a time, because a single drop
    // can push another claimant over the threshold.
    for (;;) {
      Claimant* victim = nullptr;
      for (Claimant& cl : claimants) {
        if (cl.dropped || cl.floor > 0) continue;  // pinned: never evicted
        if (cl.assigned > 0 && cl.assigned < gmin &&
            (victim == nullptr || cl.campaign > victim->campaign))
          victim = &cl;
      }
      if (victim == nullptr) break;
      const ProcCount freed = victim->assigned;
      victim->assigned = 0;
      victim->dropped = true;
      fill(claimants, freed);
    }

    for (const Claimant& cl : claimants)
      if (cl.assigned > 0)
        leases.push_back({cl.campaign, c, cl.assigned});
  }

  std::sort(leases.begin(), leases.end(), [](const Lease& a, const Lease& b) {
    return a.campaign != b.campaign ? a.campaign < b.campaign
                                    : a.cluster < b.cluster;
  });
  return leases;
}

bool LeaseManager::admissible(
    const std::vector<LeaseClaim>& incumbents) const {
  for (ClusterId c = 0; c < grid_->cluster_count(); ++c) {
    const platform::Cluster& cluster = grid_->cluster(c);
    ProcCount floors = 0;
    for (const LeaseClaim& claim : incumbents)
      for (const auto& [pinned_cluster, count] : claim.pinned)
        if (pinned_cluster == c && count > 0) floors += cluster.min_group();
    if (cluster.resources() - floors >= cluster.min_group()) return true;
  }
  return false;
}

}  // namespace oagrid::service
