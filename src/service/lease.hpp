#pragma once
/// \file lease.hpp
/// \brief Elastic, revocable processor leases carving a shared grid into
/// per-campaign allotments.
///
/// The LeaseManager answers one question, deterministically: given the set
/// of active campaigns (with fair-share weights and the clusters their
/// unfinished scenarios are pinned to), how many processors of each cluster
/// does each campaign hold right now?
///
/// Planning is weighted max-min (progressive filling) per cluster, with two
/// hard grid realities layered on top:
///  * floors — a campaign with unfinished scenarios pinned to a cluster can
///    be shrunk but never evicted below the cluster's minimum group size
///    (the paper's "a scenario cannot change location" rule: revoking the
///    last admissible group would strand its chains);
///  * granularity — a lease smaller than the minimum group size is useless,
///    so claimants that cannot reach it on a cluster are dropped there and
///    their processors re-offered (rather than leaking slivers).
///
/// The plan is a pure function of its inputs — the service journals *when*
/// lease changes applied, and recovery re-derives the same plans.

#include <vector>

#include "platform/grid.hpp"
#include "service/campaign.hpp"

namespace oagrid::service {

/// One campaign's current slice of one cluster.
struct Lease {
  CampaignId campaign = 0;
  ClusterId cluster = 0;
  ProcCount procs = 0;

  [[nodiscard]] bool operator==(const Lease&) const = default;
};

/// What one campaign brings to a planning round.
struct LeaseClaim {
  CampaignId campaign = 0;
  double weight = 1.0;
  /// (cluster, unfinished scenarios pinned there). Floors apply here.
  std::vector<std::pair<ClusterId, Count>> pinned;
  /// A newcomer (being admitted) may claim any cluster; its scenarios are
  /// assigned afterwards from the granted allotments.
  bool newcomer = false;
  /// Unfinished scenarios overall — caps a newcomer's useful allotment.
  Count unfinished_total = 0;

  [[nodiscard]] bool operator==(const LeaseClaim&) const = default;
};

class LeaseManager {
 public:
  explicit LeaseManager(const platform::Grid* grid) : grid_(grid) {}

  /// Deterministic weighted-fair-share plan over all clusters. Result is
  /// sorted by (campaign, cluster) and omits zero leases.
  [[nodiscard]] std::vector<Lease> plan(
      const std::vector<LeaseClaim>& claims) const;

  /// Whether a newcomer could be granted at least one admissible group on
  /// some cluster without violating any incumbent floor.
  [[nodiscard]] bool admissible(
      const std::vector<LeaseClaim>& incumbents) const;

 private:
  const platform::Grid* grid_;
};

}  // namespace oagrid::service
