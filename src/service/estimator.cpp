#include "service/estimator.hpp"

#include <stdexcept>
#include <variant>

#include "common/thread_pool.hpp"
#include "fault/checkpoint.hpp"
#include "middleware/master_agent.hpp"
#include "sched/throughput.hpp"
#include "sim/perf_vector.hpp"

namespace oagrid::service {

std::vector<sched::PerformanceVector> estimate_batch(
    PerfEstimator& estimator, const std::vector<EstimateRequest>& requests,
    std::size_t threads) {
  std::vector<sched::PerformanceVector> results;
  if (threads == 1 || requests.size() < 2 || !estimator.concurrent()) {
    results.reserve(requests.size());
    for (const EstimateRequest& r : requests)
      results.push_back(
          estimator.vector(r.cluster, r.scenarios, r.months, r.heuristic));
    return results;
  }
  // parallel_transform hands back results in request index order, so callers
  // fold over the same sequence the serial loop produces.
  return parallel_transform(
      shared_pool(), requests.size(),
      [&](std::size_t i) {
        const EstimateRequest& r = requests[i];
        return estimator.vector(r.cluster, r.scenarios, r.months, r.heuristic);
      },
      threads);
}

sched::PerformanceVector AnalyticEstimator::vector(
    const platform::Cluster& cluster, Count scenarios, Count months,
    sched::Heuristic heuristic) {
  (void)heuristic;  // the analytic vector is the knapsack-optimal throughput
  return sched::throughput_performance_vector(cluster, scenarios, months);
}

sched::PerformanceVector SimEstimator::vector(
    const platform::Cluster& cluster, Count scenarios, Count months,
    sched::Heuristic heuristic) {
  return sim::performance_vector(cluster, scenarios, months, heuristic);
}

MiddlewareEstimator::MiddlewareEstimator()
    : agent_(std::make_unique<middleware::MasterAgent>()) {}

MiddlewareEstimator::~MiddlewareEstimator() { agent_->shutdown(); }

int MiddlewareEstimator::deployed_daemons() const noexcept {
  return agent_->daemon_count();
}

sched::PerformanceVector MiddlewareEstimator::vector(
    const platform::Cluster& cluster, Count scenarios, Count months,
    sched::Heuristic heuristic) {
  const std::pair<std::string, ProcCount> key{cluster.name(),
                                              cluster.resources()};
  const auto it = deployed_.find(key);
  const ClusterId sed =
      it != deployed_.end() ? it->second : agent_->deploy(cluster);
  if (it == deployed_.end()) deployed_.emplace(key, sed);

  middleware::Mailbox<middleware::SedResponse> reply;
  middleware::PerfRequest request;
  request.request_id = next_request_id_++;
  request.scenarios = scenarios;
  request.months = months;
  request.heuristic = heuristic;
  request.reply = &reply;
  agent_->daemon(sed).inbox().send(middleware::SedRequest{request});

  const auto response = reply.receive();
  if (!response)
    throw std::runtime_error("oagrid: estimation SeD closed its mailbox");
  const auto* perf = std::get_if<middleware::PerfResponse>(&*response);
  if (perf == nullptr || perf->request_id != request.request_id)
    throw std::runtime_error("oagrid: unexpected SeD response to PerfRequest");
  return perf->performance;
}

FailureAwareEstimator::FailureAwareEstimator(PerfEstimator& inner,
                                             const platform::Grid& grid,
                                             fault::FailureModel model,
                                             MonthIndex checkpoint_months)
    : inner_(inner),
      model_(std::move(model)),
      checkpoint_months_(checkpoint_months) {
  OAGRID_REQUIRE(model_.cluster_count() == grid.cluster_count(),
                 "failure model does not cover the grid's clusters");
  OAGRID_REQUIRE(checkpoint_months_ >= 1,
                 "checkpoint cadence must be >= 1 month");
  for (ClusterId c = 0; c < grid.cluster_count(); ++c)
    cluster_by_name_.emplace(grid.cluster(c).name(), c);
}

sched::PerformanceVector FailureAwareEstimator::vector(
    const platform::Cluster& cluster, Count scenarios, Count months,
    sched::Heuristic heuristic) {
  sched::PerformanceVector perf =
      inner_.vector(cluster, scenarios, months, heuristic);
  // Leases resize clusters (with_resources keeps the name), so the name is
  // the stable identity tying an allotment back to its failure process.
  const auto it = cluster_by_name_.find(cluster.name());
  if (it == cluster_by_name_.end()) return perf;
  const fault::FailureProcess& process = model_.process(it->second);
  if (!process.active()) return perf;
  for (std::size_t i = 0; i < perf.size(); ++i) {
    const auto k = static_cast<double>(i) + 1.0;
    const Seconds period = perf[i] * static_cast<double>(checkpoint_months_) /
                           (k * static_cast<double>(months));
    perf[i] = fault::expected_makespan(perf[i], process, period);
  }
  return perf;
}

}  // namespace oagrid::service
