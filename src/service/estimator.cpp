#include "service/estimator.hpp"

#include <stdexcept>
#include <variant>

#include "middleware/master_agent.hpp"
#include "sched/throughput.hpp"
#include "sim/perf_vector.hpp"

namespace oagrid::service {

sched::PerformanceVector AnalyticEstimator::vector(
    const platform::Cluster& cluster, Count scenarios, Count months,
    sched::Heuristic heuristic) {
  (void)heuristic;  // the analytic vector is the knapsack-optimal throughput
  return sched::throughput_performance_vector(cluster, scenarios, months);
}

sched::PerformanceVector SimEstimator::vector(
    const platform::Cluster& cluster, Count scenarios, Count months,
    sched::Heuristic heuristic) {
  return sim::performance_vector(cluster, scenarios, months, heuristic);
}

MiddlewareEstimator::MiddlewareEstimator()
    : agent_(std::make_unique<middleware::MasterAgent>()) {}

MiddlewareEstimator::~MiddlewareEstimator() { agent_->shutdown(); }

int MiddlewareEstimator::deployed_daemons() const noexcept {
  return agent_->daemon_count();
}

sched::PerformanceVector MiddlewareEstimator::vector(
    const platform::Cluster& cluster, Count scenarios, Count months,
    sched::Heuristic heuristic) {
  const std::pair<std::string, ProcCount> key{cluster.name(),
                                              cluster.resources()};
  const auto it = deployed_.find(key);
  const ClusterId sed =
      it != deployed_.end() ? it->second : agent_->deploy(cluster);
  if (it == deployed_.end()) deployed_.emplace(key, sed);

  middleware::Mailbox<middleware::SedResponse> reply;
  middleware::PerfRequest request;
  request.request_id = next_request_id_++;
  request.scenarios = scenarios;
  request.months = months;
  request.heuristic = heuristic;
  request.reply = &reply;
  agent_->daemon(sed).inbox().send(middleware::SedRequest{request});

  const auto response = reply.receive();
  if (!response)
    throw std::runtime_error("oagrid: estimation SeD closed its mailbox");
  const auto* perf = std::get_if<middleware::PerfResponse>(&*response);
  if (perf == nullptr || perf->request_id != request.request_id)
    throw std::runtime_error("oagrid: unexpected SeD response to PerfRequest");
  return perf->performance;
}

}  // namespace oagrid::service
