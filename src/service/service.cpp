#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <tuple>

#include "appmodel/ensemble.hpp"
#include "obs/obs.hpp"
#include "sched/repartition.hpp"
#include "service/wire.hpp"

namespace oagrid::service {
namespace {

using wire::Cursor;
using wire::put;
using wire::put_string;

constexpr int kSubmission = 0;
constexpr int kCompletion = 1;

}  // namespace

bool CampaignService::PendingEvent::operator<(const PendingEvent& other) const {
  // Total order: time first, submissions before completions at equal times,
  // then every identifying field — the loop must never depend on set
  // iteration luck, or replay would diverge.
  return std::tie(time, kind, campaign, cluster, group, scenario, month) <
         std::tie(other.time, other.kind, other.campaign, other.cluster,
                  other.group, other.scenario, other.month);
}

CampaignService::CampaignService(platform::Grid grid, ServiceOptions options)
    : grid_(std::move(grid)),
      options_(std::move(options)),
      queue_(options_.policy, options_.queue_capacity),
      leases_(&grid_) {
  OAGRID_REQUIRE(grid_.cluster_count() >= 1, "service needs a cluster");
  OAGRID_REQUIRE(options_.max_active >= 1, "max_active must be at least 1");
  clusters_.resize(static_cast<std::size_t>(grid_.cluster_count()));
  pinned_campaigns_.assign(static_cast<std::size_t>(grid_.cluster_count()), 0);
  cluster_members_.resize(static_cast<std::size_t>(grid_.cluster_count()));
  if (options_.estimator != nullptr) {
    estimator_ = options_.estimator;
  } else {
    default_estimator_ = std::make_unique<AnalyticEstimator>();
    estimator_ = default_estimator_.get();
  }
}

CampaignService::~CampaignService() = default;

std::string CampaignService::journal_path(const std::string& dir) {
  return dir + "/journal.bin";
}

std::string CampaignService::snapshot_path(const std::string& dir) {
  return dir + "/snapshot.bin";
}

std::uint64_t CampaignService::journal_seq() const noexcept {
  return writer_ != nullptr ? writer_->seq() : 0;
}

std::uint64_t CampaignService::state_signature() const {
  const std::string bytes = encode_state();
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char byte : bytes) {
    hash ^= static_cast<std::uint8_t>(byte);
    hash *= 1099511628211ull;
  }
  return hash;
}

JournalConfig CampaignService::journal_config() const {
  JournalConfig config;
  config.policy = static_cast<std::uint8_t>(options_.policy);
  config.heuristic = static_cast<std::uint8_t>(options_.heuristic);
  config.max_active = static_cast<std::uint32_t>(options_.max_active);
  return config;
}

CampaignId CampaignService::submit(CampaignSpec spec, Seconds at) {
  spec.validate();
  OAGRID_REQUIRE(!started_, "submit() must precede run()");
  OAGRID_REQUIRE(at >= last_submit_at_,
                 "submissions must arrive in non-decreasing time order");
  OAGRID_REQUIRE(at >= now_, "cannot submit in the service's past");
  last_submit_at_ = at;
  const CampaignId id = next_campaign_id_++;
  CampaignState state;
  state.id = id;
  state.spec = std::move(spec);
  state.status = CampaignStatus::kScheduled;
  state.submit_time = at;
  campaigns_.emplace(id, std::move(state));

  PendingEvent arrival;
  arrival.time = at;
  arrival.kind = kSubmission;
  arrival.campaign = id;
  events_.insert(arrival);
  return id;
}

bool CampaignService::run() {
  OAGRID_REQUIRE(!killed_, "a killed service cannot run again");
  started_ = true;
  if (writer_ == nullptr && !options_.journal_dir.empty()) {
    writer_ = std::make_unique<JournalWriter>(
        journal_path(options_.journal_dir), 0, journal_config());
    writer_->set_group_commit(options_.group_commit);
  }
  while (!events_.empty() && !killed_) pump_one();
  commit_journal();
  if (obs::enabled())
    obs::metrics().gauge("service.queue.depth")
        .set(static_cast<double>(queue_.depth()));
  return !killed_;
}

void CampaignService::pump_one() {
  const bool timed = obs::enabled() && !replaying_;
  std::chrono::steady_clock::time_point tick_start;
  if (timed) tick_start = std::chrono::steady_clock::now();

  const PendingEvent event = *events_.begin();
  events_.erase(events_.begin());
  now_ = event.time;
  if (event.kind == kSubmission) {
    process_submission(event);
  } else {
    process_completion(event);
  }
  dispatch();
  // The commit boundary: one event fully processed, every consequent record
  // durable before the next event is popped.
  commit_journal();
  maybe_snapshot();

  if (timed) {
    static obs::Histogram& ticks =
        obs::metrics().histogram("service.tick_seconds");
    ticks.record(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - tick_start)
                     .count());
  }
}

void CampaignService::process_submission(const PendingEvent& event) {
  CampaignState& state = campaigns_.at(event.campaign);

  Event record;
  record.type = EventType::kCampaignSubmitted;
  record.campaign = event.campaign;
  record.time = now_;
  record.owner = state.spec.owner;
  record.weight = state.spec.weight;
  record.scenarios = state.spec.scenarios;
  record.months = state.spec.months;
  journal_append(record);
  if (obs::enabled() && !replaying_) {
    static obs::Counter& submitted =
        obs::metrics().counter("service.campaigns.submitted");
    submitted.add();
  }

  if (queue_.full()) {
    state.status = CampaignStatus::kRejected;
    Event rejected;
    rejected.type = EventType::kCampaignRejected;
    rejected.campaign = event.campaign;
    rejected.time = now_;
    journal_append(rejected);
    if (obs::enabled() && !replaying_) {
      static obs::Counter& count =
          obs::metrics().counter("service.campaigns.rejected");
      count.add();
    }
    return;
  }
  const double priority = options_.policy == QueuePolicy::kFifo
                              ? 0.0
                              : admission_priority(event.campaign);
  const bool enqueued = queue_.try_enqueue(event.campaign, priority);
  OAGRID_REQUIRE(enqueued, "enqueue failed on a non-full queue");
  owner_queued_[state.spec.owner].insert(event.campaign);
  state.status = CampaignStatus::kQueued;
  if (obs::enabled() && !replaying_)
    obs::metrics().gauge("service.queue.depth")
        .set(static_cast<double>(queue_.depth()));
  try_admit();
}

void CampaignService::process_completion(const PendingEvent& event) {
  CampaignState& state = campaigns_.at(event.campaign);

  Event record;
  record.type = EventType::kMonthCompleted;
  record.campaign = event.campaign;
  record.time = now_;
  record.scenario = event.scenario;
  record.month = event.month;
  record.cluster = event.cluster;
  record.group = event.group;
  journal_append(record);

  Allotment& allotment = allotments_.at({event.campaign, event.cluster});
  const ProcCount group_size =
      allotment.group_sizes[static_cast<std::size_t>(event.group)];
  const Seconds duration = grid_.cluster(event.cluster).main_time(group_size);
  allotment.group_busy[static_cast<std::size_t>(event.group)] = 0;
  scenario_running_.at(event.campaign)[static_cast<std::size_t>(
      event.scenario)] = 0;
  --clusters_[static_cast<std::size_t>(event.cluster)].running;

  ++state.frontier[static_cast<std::size_t>(event.scenario)];
  ++state.months_done;
  state.scenario_ready[static_cast<std::size_t>(event.scenario)] = now_;
  owner_consumed_[state.spec.owner] += group_size * duration;
  reprioritize_owner(state.spec.owner);
  dispatch_dirty_.insert({event.campaign, event.cluster});

  if (state.frontier[static_cast<std::size_t>(event.scenario)] >=
      static_cast<MonthIndex>(state.spec.months)) {
    // The scenario just retired: its pin on the cluster is gone.
    std::vector<Count>& counts = pinned_counts_.at(event.campaign);
    if (--counts[static_cast<std::size_t>(event.cluster)] == 0)
      --pinned_campaigns_[static_cast<std::size_t>(event.cluster)];
    mark_claims_dirty();
  }

  if (obs::enabled() && !replaying_) {
    static obs::Counter& months =
        obs::metrics().counter("service.months.completed");
    months.add();
    obs::TraceEvent trace;
    trace.name = "c" + std::to_string(event.campaign) + " s" +
                 std::to_string(event.scenario) + " m" +
                 std::to_string(event.month);
    trace.category = "service.month";
    trace.pid = obs::kSimPid;
    trace.track = event.cluster * 64 + event.group;
    trace.ts_us = now_ - duration;
    trace.dur_us = duration;
    obs::trace_buffer().emit_complete(std::move(trace));
  }

  if (state.months_done == state.total_months()) {
    complete_campaign(state);
  } else if (state.frontier[static_cast<std::size_t>(event.scenario)] >=
             static_cast<MonthIndex>(state.spec.months)) {
    // A scenario just retired: the campaign's need shrank — shrink leases
    // accordingly and see whether the freed capacity admits someone.
    rebalance_and_admit();
  }

  ClusterRuntime& runtime = clusters_[static_cast<std::size_t>(event.cluster)];
  if (runtime.reconfiguring && runtime.running == 0)
    apply_reconfigure(event.cluster);
}

void CampaignService::complete_campaign(CampaignState& state) {
  state.status = CampaignStatus::kCompleted;
  state.finish_time = now_;

  Event record;
  record.type = EventType::kCampaignCompleted;
  record.campaign = state.id;
  record.time = now_;
  record.makespan = now_ - state.submit_time;
  journal_append(record);
  if (obs::enabled() && !replaying_) {
    static obs::Counter& completed =
        obs::metrics().counter("service.campaigns.completed");
    completed.add();
    obs::metrics().histogram("service.campaign.makespan_s")
        .record(record.makespan);
  }

  // Release every lease (all months are done, so every group is idle).
  // Range scan: the map is keyed (campaign, cluster), so this campaign's
  // allotments are contiguous.
  std::vector<ClusterId> held;
  for (auto it = allotments_.lower_bound(
           {state.id, std::numeric_limits<ClusterId>::lowest()});
       it != allotments_.end() && it->first.first == state.id; ++it)
    held.push_back(it->first.second);
  for (const ClusterId cluster : held) {
    Event release;
    release.type = EventType::kLeaseChanged;
    release.campaign = state.id;
    release.time = now_;
    release.cluster = cluster;
    release.procs = 0;
    journal_append(release);
    ++lease_changes_;
    if (obs::enabled() && !replaying_) {
      static obs::Counter& changes =
          obs::metrics().counter("service.lease.changes");
      changes.add();
    }
    allotments_.erase({state.id, cluster});
    cluster_members_[static_cast<std::size_t>(cluster)].erase(state.id);
    dispatch_dirty_.erase({state.id, cluster});
  }
  scenario_running_.erase(state.id);
  // Every scenario retired along the way, so the per-cluster pin counters
  // already drained to zero; only the campaign's entry remains.
  pinned_counts_.erase(state.id);
  --active_count_;
  mark_claims_dirty();
  rebalance_and_admit();
}

namespace {

int active_count(const std::map<CampaignId, CampaignState>& campaigns) {
  int active = 0;
  for (const auto& [id, state] : campaigns)
    if (state.status == CampaignStatus::kRunning) ++active;
  return active;
}

}  // namespace

void CampaignService::try_admit() {
  while (!queue_.empty() && active_count_ < options_.max_active &&
         admissible_now()) {
    const CampaignId next = queue_.front();
    if (options_.verify_incremental) {
      if (active_count_ != active_count(campaigns_))
        throw std::runtime_error(
            "oagrid: incremental active-campaign count diverged");
      const std::vector<CampaignId> order = queue_.admission_order(
          [this](CampaignId id) { return admission_priority(id); });
      if (order.front() != next)
        throw std::runtime_error(
            "oagrid: indexed admission order diverged from the full sort");
    }
    admit(next);
  }
}

double CampaignService::admission_priority(CampaignId id) {
  const CampaignState& state = campaigns_.at(id);
  switch (options_.policy) {
    case QueuePolicy::kFifo:
      return 0.0;
    case QueuePolicy::kWeightedFairShare: {
      const auto it = owner_consumed_.find(state.spec.owner);
      const double consumed = it != owner_consumed_.end() ? it->second : 0.0;
      return consumed / state.spec.weight;
    }
    case QueuePolicy::kShortestRemaining: {
      const auto cached = srmf_estimate_.find(id);
      if (cached != srmf_estimate_.end()) return cached->second;
      // Optimistic bound: the best single-cluster makespan of the whole
      // campaign. Cached — the spec never changes while queued. The vectors
      // are independent, so they fan out over the pool; the min is folded in
      // cluster order either way.
      std::vector<EstimateRequest> requests;
      requests.reserve(static_cast<std::size_t>(grid_.cluster_count()));
      for (ClusterId c = 0; c < grid_.cluster_count(); ++c)
        requests.push_back({grid_.cluster(c), state.spec.scenarios,
                            state.spec.months, options_.heuristic});
      const std::vector<sched::PerformanceVector> vectors =
          estimate_batch(*estimator_, requests, options_.estimator_threads);
      double best = std::numeric_limits<double>::infinity();
      for (const sched::PerformanceVector& vector : vectors)
        best = std::min(best, vector.back());
      srmf_estimate_.emplace(id, best);
      return best;
    }
  }
  return 0.0;
}

void CampaignService::reprioritize_owner(const std::string& owner) {
  if (options_.policy != QueuePolicy::kWeightedFairShare) return;
  const auto it = owner_queued_.find(owner);
  if (it == owner_queued_.end()) return;
  for (const CampaignId id : it->second)
    queue_.update_priority(
        id, owner_consumed_[owner] / campaigns_.at(id).spec.weight);
}

std::vector<LeaseClaim> CampaignService::incumbent_claims() const {
  std::vector<LeaseClaim> claims;
  for (const auto& [id, state] : campaigns_) {
    if (state.status != CampaignStatus::kRunning) continue;
    LeaseClaim claim;
    claim.campaign = id;
    claim.weight = state.spec.weight;
    for (ClusterId c = 0; c < grid_.cluster_count(); ++c) {
      const Count unfinished = state.unfinished_on(c);
      if (unfinished > 0) claim.pinned.push_back({c, unfinished});
      claim.unfinished_total += unfinished;
    }
    claims.push_back(std::move(claim));
  }
  return claims;
}

void CampaignService::mark_claims_dirty() noexcept {
  claims_dirty_ = true;
  plan_valid_ = false;
}

const std::vector<LeaseClaim>& CampaignService::current_claims() {
  if (!options_.incremental) {
    claims_cache_ = incumbent_claims();
    return claims_cache_;
  }
  if (claims_dirty_) {
    // pinned_counts_ holds exactly the running campaigns, keyed ascending —
    // the same order incumbent_claims() derives by scanning every frontier.
    claims_cache_.clear();
    claims_cache_.reserve(pinned_counts_.size());
    for (const auto& [id, counts] : pinned_counts_) {
      LeaseClaim claim;
      claim.campaign = id;
      claim.weight = campaigns_.at(id).spec.weight;
      for (ClusterId c = 0; c < grid_.cluster_count(); ++c) {
        const Count unfinished = counts[static_cast<std::size_t>(c)];
        if (unfinished > 0) claim.pinned.push_back({c, unfinished});
        claim.unfinished_total += unfinished;
      }
      claims_cache_.push_back(std::move(claim));
    }
    if (options_.verify_incremental && !(claims_cache_ == incumbent_claims()))
      throw std::runtime_error(
          "oagrid: incremental claims diverged from a full recompute");
    claims_dirty_ = false;
  }
  return claims_cache_;
}

const std::vector<Lease>& CampaignService::current_plan() {
  if (options_.incremental && plan_valid_) {
    if (options_.verify_incremental &&
        !(plan_cache_ == leases_.plan(current_claims())))
      throw std::runtime_error(
          "oagrid: cached lease plan diverged from a full recompute");
    ++plan_reuse_;
    if (obs::enabled() && !replaying_) {
      static obs::Counter& reuse =
          obs::metrics().counter("service.plan_reuse");
      reuse.add();
    }
    return plan_cache_;
  }
  plan_cache_ = leases_.plan(current_claims());
  plan_valid_ = options_.incremental;
  return plan_cache_;
}

bool CampaignService::admissible_now() {
  if (!options_.incremental) return leases_.admissible(current_claims());
  bool open = false;
  for (ClusterId c = 0; c < grid_.cluster_count() && !open; ++c) {
    const platform::Cluster& cluster = grid_.cluster(c);
    const ProcCount floors =
        static_cast<ProcCount>(pinned_campaigns_[static_cast<std::size_t>(c)]) *
        cluster.min_group();
    open = cluster.resources() - floors >= cluster.min_group();
  }
  if (options_.verify_incremental &&
      open != leases_.admissible(incumbent_claims()))
    throw std::runtime_error(
        "oagrid: incremental admissibility diverged from a full recompute");
  return open;
}

void CampaignService::admit(CampaignId id) {
  queue_.remove(id);
  CampaignState& state = campaigns_.at(id);
  owner_queued_[state.spec.owner].erase(id);
  const Count scenarios = state.spec.scenarios;

  // Pass 1: plan with the newcomer claiming everywhere, plus a guaranteed
  // floor on the admissible cluster with the most free capacity (progressive
  // filling alone could leave a light-weight newcomer below min_group on
  // every cluster — admitted yet unable to start).
  std::vector<LeaseClaim> claims = current_claims();
  ClusterId anchor = -1;
  ProcCount best_free = 0;
  for (ClusterId c = 0; c < grid_.cluster_count(); ++c) {
    const platform::Cluster& cluster = grid_.cluster(c);
    ProcCount floors = 0;
    for (const LeaseClaim& claim : claims)
      for (const auto& [pinned_cluster, count] : claim.pinned)
        if (pinned_cluster == c && count > 0) floors += cluster.min_group();
    const ProcCount free = cluster.resources() - floors;
    if (free >= cluster.min_group() && free > best_free) {
      anchor = c;
      best_free = free;
    }
  }
  OAGRID_REQUIRE(anchor >= 0, "admit() without an admissible cluster");

  LeaseClaim mine;
  mine.campaign = id;
  mine.weight = state.spec.weight;
  mine.newcomer = true;
  mine.unfinished_total = scenarios;
  mine.pinned.push_back({anchor, scenarios});
  claims.push_back(std::move(mine));
  const std::vector<Lease> draft = leases_.plan(claims);

  // Scenario placement (Algorithm 1) over the draft allotments: one
  // performance vector per granted cluster, each computed on the cluster
  // resized to the lease. The vectors are independent, so the batch fans
  // out over the pool; greedy_repartition folds them in candidate order
  // regardless, so the placement is identical at any thread count.
  std::vector<ClusterId> leased;
  std::vector<EstimateRequest> requests;
  for (const Lease& lease : draft) {
    if (lease.campaign != id) continue;
    leased.push_back(lease.cluster);
    requests.push_back(
        {grid_.cluster(lease.cluster).with_resources(lease.procs), scenarios,
         state.spec.months, options_.heuristic});
  }
  const std::vector<sched::PerformanceVector> vectors =
      estimate_batch(*estimator_, requests, options_.estimator_threads);
  const sched::Repartition repartition =
      sched::greedy_repartition(vectors, scenarios);

  state.assignment.resize(static_cast<std::size_t>(scenarios));
  for (Count s = 0; s < scenarios; ++s)
    state.assignment[static_cast<std::size_t>(s)] =
        leased[static_cast<std::size_t>(
            repartition.assignment[static_cast<std::size_t>(s)])];
  state.frontier.assign(static_cast<std::size_t>(scenarios), 0);
  state.scenario_ready.assign(static_cast<std::size_t>(scenarios), now_);
  state.months_done = 0;
  state.status = CampaignStatus::kRunning;
  state.admit_time = now_;
  scenario_running_[id] =
      std::vector<char>(static_cast<std::size_t>(scenarios), 0);

  std::vector<Count> counts(static_cast<std::size_t>(grid_.cluster_count()),
                            0);
  for (const ClusterId c : state.assignment)
    ++counts[static_cast<std::size_t>(c)];
  for (ClusterId c = 0; c < grid_.cluster_count(); ++c)
    if (counts[static_cast<std::size_t>(c)] > 0)
      ++pinned_campaigns_[static_cast<std::size_t>(c)];
  pinned_counts_.emplace(id, std::move(counts));
  ++active_count_;
  mark_claims_dirty();

  Event record;
  record.type = EventType::kCampaignAdmitted;
  record.campaign = id;
  record.time = now_;
  record.assignment = state.assignment;
  journal_append(record);
  if (obs::enabled() && !replaying_) {
    static obs::Counter& admitted =
        obs::metrics().counter("service.campaigns.admitted");
    admitted.add();
    obs::metrics().histogram("service.queue.wait_s")
        .record(now_ - state.submit_time);
    obs::metrics().gauge("service.queue.depth")
        .set(static_cast<double>(queue_.depth()));
  }

  // Pass 2: re-plan with the newcomer pinned only where scenarios actually
  // landed, so clusters it was granted but does not use go back to the pool.
  apply_plan(current_plan());
}

void CampaignService::rebalance_and_admit() {
  try_admit();
  apply_plan(current_plan());
}

void CampaignService::apply_plan(const std::vector<Lease>& plan) {
  // One pass over the plan and one over the held allotments (instead of a
  // rescan of both per cluster).
  const auto n_clusters = static_cast<std::size_t>(grid_.cluster_count());
  std::vector<std::map<CampaignId, ProcCount>> targets(n_clusters);
  for (const Lease& lease : plan)
    targets[static_cast<std::size_t>(lease.cluster)][lease.campaign] =
        lease.procs;
  std::vector<std::map<CampaignId, ProcCount>> current(n_clusters);
  for (const auto& [key, allotment] : allotments_)
    current[static_cast<std::size_t>(key.second)][key.first] = allotment.procs;

  for (ClusterId c = 0; c < grid_.cluster_count(); ++c) {
    const auto ci = static_cast<std::size_t>(c);
    ClusterRuntime& runtime = clusters_[ci];
    if (targets[ci] == current[ci]) {
      // Already there (or a pending reconfiguration became moot). Dropping
      // a pending reconfiguration unstalls the cluster, so every member may
      // dispatch again.
      if (runtime.reconfiguring)
        for (const CampaignId member : cluster_members_[ci])
          dispatch_dirty_.insert({member, c});
      runtime.reconfiguring = false;
      runtime.targets.clear();
      continue;
    }
    if (runtime.running == 0) {
      apply_targets(c, targets[ci]);
      runtime.reconfiguring = false;
      runtime.targets.clear();
    } else {
      // The paper's rule, applied to leases: months in flight keep their
      // processors. Stall new starts and re-carve once the cluster drains.
      runtime.reconfiguring = true;
      runtime.targets = std::move(targets[ci]);
    }
  }
}

void CampaignService::apply_targets(
    ClusterId cluster, const std::map<CampaignId, ProcCount>& targets) {
  const platform::Cluster& shape = grid_.cluster(cluster);
  std::set<CampaignId> touched;
  for (const auto& [campaign, procs] : targets) touched.insert(campaign);
  for (const auto& [key, allotment] : allotments_)
    if (key.second == cluster) touched.insert(key.first);

  for (const CampaignId campaign : touched) {
    const auto current = allotments_.find({campaign, cluster});
    const ProcCount old_procs =
        current != allotments_.end() ? current->second.procs : 0;
    const auto target = targets.find(campaign);
    const ProcCount new_procs = target != targets.end() ? target->second : 0;
    if (old_procs == new_procs) continue;

    Event record;
    record.type = EventType::kLeaseChanged;
    record.campaign = campaign;
    record.time = now_;
    record.cluster = cluster;
    record.procs = new_procs;
    journal_append(record);
    ++lease_changes_;
    if (obs::enabled() && !replaying_) {
      static obs::Counter& changes =
          obs::metrics().counter("service.lease.changes");
      changes.add();
    }

    if (new_procs == 0) {
      allotments_.erase({campaign, cluster});
      cluster_members_[static_cast<std::size_t>(cluster)].erase(campaign);
      dispatch_dirty_.erase({campaign, cluster});
      continue;
    }
    const CampaignState& state = campaigns_.at(campaign);
    appmodel::Ensemble ensemble;
    ensemble.scenarios = std::max<Count>(1, state.unfinished_on(cluster));
    ensemble.months = state.spec.months;
    const sched::GroupSchedule schedule = sched::make_schedule(
        options_.heuristic, shape.with_resources(new_procs), ensemble);
    Allotment allotment;
    allotment.procs = new_procs;
    allotment.group_sizes = schedule.group_sizes;
    allotment.group_busy.assign(allotment.group_sizes.size(), 0);
    allotments_[{campaign, cluster}] = std::move(allotment);
    cluster_members_[static_cast<std::size_t>(cluster)].insert(campaign);
  }

  // Re-carving (or unstalling after a drain) can free capacity for any
  // campaign still holding the cluster, so mark them all.
  for (const CampaignId member : cluster_members_[static_cast<std::size_t>(
           cluster)])
    dispatch_dirty_.insert({member, cluster});
}

void CampaignService::apply_reconfigure(ClusterId cluster) {
  ClusterRuntime& runtime = clusters_[static_cast<std::size_t>(cluster)];
  apply_targets(cluster, runtime.targets);
  runtime.reconfiguring = false;
  runtime.targets.clear();
}

void CampaignService::dispatch() {
  if (!options_.incremental) {
    for (auto& [key, allotment] : allotments_) dispatch_key(key, allotment);
    dispatch_dirty_.clear();
    return;
  }
  if (options_.verify_incremental) {
    // Full scan, asserting the dirty set covered every allotment that had
    // work to start: a start on a clean key means the incremental marking
    // missed a state change.
    for (auto& [key, allotment] : allotments_) {
      const bool dirty = dispatch_dirty_.count(key) > 0;
      if (dispatch_key(key, allotment) > 0 && !dirty)
        throw std::runtime_error(
            "oagrid: incremental dispatch missed allotment (campaign " +
            std::to_string(key.first) + ", cluster " +
            std::to_string(key.second) + ")");
    }
    dispatch_dirty_.clear();
    return;
  }
  // Only allotments whose inputs changed this tick can start new months.
  // Keys are visited in (campaign, cluster) order — the full scan's order —
  // though starts on distinct allotments are independent anyway (a scenario
  // is pinned to one cluster, groups belong to one allotment).
  for (const AllotmentKey& key : dispatch_dirty_) {
    const auto it = allotments_.find(key);
    if (it == allotments_.end()) continue;
    dispatch_key(it->first, it->second);
  }
  dispatch_dirty_.clear();
}

int CampaignService::dispatch_key(const AllotmentKey& key,
                                  Allotment& allotment) {
  const auto [campaign, cluster] = key;
  if (clusters_[static_cast<std::size_t>(cluster)].reconfiguring) return 0;
  CampaignState& state = campaigns_.at(campaign);
  std::vector<char>& running = scenario_running_.at(campaign);
  const platform::Cluster& shape = grid_.cluster(cluster);

  int started = 0;
  for (std::size_t g = 0; g < allotment.group_sizes.size(); ++g) {
    if (allotment.group_busy[g] != 0) continue;
    // Most-behind scenario first (lowest id breaks ties): keeps the
    // frontier level, like the per-cluster DES dispatcher.
    ScenarioId pick = -1;
    for (ScenarioId s = 0;
         s < static_cast<ScenarioId>(state.assignment.size()); ++s) {
      if (state.assignment[static_cast<std::size_t>(s)] != cluster) continue;
      if (running[static_cast<std::size_t>(s)] != 0) continue;
      if (state.frontier[static_cast<std::size_t>(s)] >=
          static_cast<MonthIndex>(state.spec.months))
        continue;
      if (pick < 0 || state.frontier[static_cast<std::size_t>(s)] <
                          state.frontier[static_cast<std::size_t>(pick)])
        pick = s;
    }
    if (pick < 0) break;

    running[static_cast<std::size_t>(pick)] = 1;
    allotment.group_busy[g] = 1;
    ++clusters_[static_cast<std::size_t>(cluster)].running;
    ++started;

    PendingEvent completion;
    completion.time = now_ + shape.main_time(allotment.group_sizes[g]);
    completion.kind = kCompletion;
    completion.campaign = campaign;
    completion.cluster = cluster;
    completion.group = static_cast<int>(g);
    completion.scenario = pick;
    completion.month = state.frontier[static_cast<std::size_t>(pick)];
    events_.insert(completion);
  }
  return started;
}

// --- journal plumbing ------------------------------------------------------

void CampaignService::journal_append(const Event& event) {
  if (replaying_) {
    if (replay_pos_ < replay_expected_.size()) {
      if (!(event == replay_expected_[replay_pos_]))
        throw std::runtime_error(
            "oagrid: journal replay divergence at record " +
            std::to_string(replay_pos_) + " (regenerated " +
            std::string(to_string(event.type)) + ", stored " +
            to_string(replay_expected_[replay_pos_].type) + ")");
      ++replay_pos_;
      return;
    }
    // The journal tail is exhausted mid-event (the crash interleaved a
    // transition's records): everything from here on is new history.
    finish_replay();
  }
  if (killed_) return;
  if (options_.kill_after_records >= 0 &&
      appends_done_ >= options_.kill_after_records) {
    killed_ = true;  // emulated SIGKILL: this and later records are lost,
                     // and so is any batch still buffered in memory
    if (writer_ != nullptr) writer_->discard_pending();
    return;
  }
  ++appends_done_;
  if (writer_ != nullptr) {
    writer_->append(event);
    if (!options_.group_commit && obs::enabled() && !replaying_) {
      static obs::Counter& flushes = obs::metrics().counter("journal.flushes");
      static obs::Histogram& batch =
          obs::metrics().histogram("journal.batch_records");
      flushes.add();
      batch.record(1.0);
    }
  }
}

void CampaignService::commit_journal() {
  if (writer_ == nullptr || killed_) return;
  const std::size_t records = writer_->commit();
  if (records > 0 && obs::enabled() && !replaying_) {
    static obs::Counter& flushes = obs::metrics().counter("journal.flushes");
    static obs::Histogram& batch =
        obs::metrics().histogram("journal.batch_records");
    flushes.add();
    batch.record(static_cast<double>(records));
  }
}

void CampaignService::finish_replay() {
  replaying_ = false;
  if (!options_.journal_dir.empty() && replay_contents_.has_value()) {
    writer_ = std::make_unique<JournalWriter>(JournalWriter::reopen(
        journal_path(options_.journal_dir), *replay_contents_));
    writer_->set_group_commit(options_.group_commit);
  }
  replay_contents_.reset();
}

void CampaignService::maybe_snapshot() {
  if (replaying_ || killed_ || writer_ == nullptr ||
      options_.snapshot_every <= 0)
    return;
  if (static_cast<long long>(writer_->seq() - last_snapshot_seq_) <
      options_.snapshot_every)
    return;
  // The snapshot's seq must never exceed the journal's durable prefix (a
  // crash between the two would make recovery reject the snapshot), so any
  // buffered batch goes to disk first.
  commit_journal();
  const std::uint64_t seq = writer_->seq();
  write_snapshot(snapshot_path(options_.journal_dir), seq, encode_state());
  // Compact: the snapshot subsumes every journaled record, so the journal
  // restarts at the snapshot's sequence number.
  writer_ = std::make_unique<JournalWriter>(journal_path(options_.journal_dir),
                                            seq, journal_config());
  writer_->set_group_commit(options_.group_commit);
  last_snapshot_seq_ = seq;
  if (obs::enabled()) {
    static obs::Counter& snapshots =
        obs::metrics().counter("service.snapshots.written");
    snapshots.add();
  }
}

RecoveryReport CampaignService::recover() {
  OAGRID_REQUIRE(!options_.journal_dir.empty(),
                 "recover() needs a journal directory");
  OAGRID_REQUIRE(!started_ && campaigns_.empty() && writer_ == nullptr,
                 "recover() must be the first call on a fresh service");
  RecoveryReport report;
  obs::Span span(obs::enabled() ? &obs::trace_buffer() : nullptr,
                 "service.recover", "service");
  obs::ScopedTimer timer(
      obs::enabled() ? &obs::metrics().histogram("service.recovery.wall_us")
                     : nullptr);

  JournalContents contents = read_journal(journal_path(options_.journal_dir));
  if (!contents.exists) return report;  // fresh start
  if (!(contents.config == journal_config()))
    throw std::invalid_argument(
        "oagrid: journal was written under a different service configuration "
        "(policy/heuristic/max_active must match)");
  report.journal_found = true;
  report.torn_tail = contents.torn_tail;
  report.dropped_bytes = contents.dropped_bytes;

  const SnapshotContents snapshot =
      read_snapshot(snapshot_path(options_.journal_dir));
  if (snapshot.valid && snapshot.seq > contents.end_seq())
    throw std::runtime_error(
        "oagrid: snapshot is newer than the journal's valid prefix");

  if (snapshot.valid && snapshot.seq >= contents.base_seq) {
    decode_state(snapshot.payload);
    last_snapshot_seq_ = snapshot.seq;
    report.snapshot_used = true;
    report.snapshot_seq = snapshot.seq;
    replay_expected_.assign(
        contents.events.begin() +
            static_cast<std::ptrdiff_t>(snapshot.seq - contents.base_seq),
        contents.events.end());
  } else {
    if (contents.base_seq != 0)
      throw std::runtime_error(
          "oagrid: journal is compacted but no usable snapshot exists");
    // Full replay from scratch: re-create the submissions the journal knows
    // about, then let the deterministic loop regenerate everything else.
    for (const Event& event : contents.events) {
      if (event.type != EventType::kCampaignSubmitted) continue;
      CampaignState state;
      state.id = event.campaign;
      state.spec.owner = event.owner;
      state.spec.weight = event.weight;
      state.spec.scenarios = event.scenarios;
      state.spec.months = event.months;
      state.status = CampaignStatus::kScheduled;
      state.submit_time = event.time;
      campaigns_.emplace(state.id, std::move(state));
      PendingEvent arrival;
      arrival.time = event.time;
      arrival.kind = kSubmission;
      arrival.campaign = event.campaign;
      events_.insert(arrival);
      next_campaign_id_ = std::max(next_campaign_id_, event.campaign + 1);
      last_submit_at_ = std::max(last_submit_at_, event.time);
    }
    replay_expected_ = contents.events;
  }
  replay_contents_ = std::move(contents);
  replaying_ = true;
  replay_pos_ = 0;

  const std::size_t expected = replay_expected_.size();
  while (replay_pos_ < expected && replaying_) {
    if (events_.empty())
      throw std::runtime_error(
          "oagrid: journal replay stalled with records left over — the "
          "journal does not match this service's history");
    pump_one();
  }
  if (replaying_) finish_replay();

  report.replayed_records = expected;
  report.resume_time = now_;
  replay_expected_.clear();
  replay_pos_ = 0;
  if (obs::enabled()) {
    static obs::Counter& replayed =
        obs::metrics().counter("service.recovery.replayed_records");
    replayed.add(expected);
  }
  return report;
}

// --- snapshot codec --------------------------------------------------------

std::string CampaignService::encode_state() const {
  std::string out;
  put(out, now_);
  put(out, next_campaign_id_);
  put(out, last_submit_at_);

  put(out, static_cast<std::uint32_t>(campaigns_.size()));
  for (const auto& [id, state] : campaigns_) {
    put(out, id);
    put_string(out, state.spec.owner);
    put(out, state.spec.weight);
    put(out, state.spec.scenarios);
    put(out, state.spec.months);
    put(out, static_cast<std::uint8_t>(state.status));
    put(out, state.submit_time);
    put(out, state.admit_time);
    put(out, state.finish_time);
    put(out, state.months_done);
    put(out, static_cast<std::uint32_t>(state.frontier.size()));
    for (const MonthIndex m : state.frontier) put(out, m);
    for (const Seconds t : state.scenario_ready) put(out, t);
    for (const ClusterId c : state.assignment) put(out, c);
  }

  put(out, static_cast<std::uint32_t>(queue_.queued().size()));
  for (const CampaignId id : queue_.queued()) put(out, id);

  put(out, static_cast<std::uint32_t>(allotments_.size()));
  for (const auto& [key, allotment] : allotments_) {
    put(out, key.first);
    put(out, key.second);
    put(out, allotment.procs);
    put(out, static_cast<std::uint32_t>(allotment.group_sizes.size()));
    for (const ProcCount g : allotment.group_sizes) put(out, g);
  }

  put(out, static_cast<std::uint32_t>(clusters_.size()));
  for (const ClusterRuntime& runtime : clusters_) {
    put(out, static_cast<std::uint8_t>(runtime.reconfiguring ? 1 : 0));
    put(out, static_cast<std::uint32_t>(runtime.targets.size()));
    for (const auto& [campaign, procs] : runtime.targets) {
      put(out, campaign);
      put(out, procs);
    }
  }

  put(out, static_cast<std::uint32_t>(owner_consumed_.size()));
  for (const auto& [owner, consumed] : owner_consumed_) {
    put_string(out, owner);
    put(out, consumed);
  }

  put(out, static_cast<std::uint32_t>(events_.size()));
  for (const PendingEvent& event : events_) {
    put(out, event.time);
    put(out, static_cast<std::uint8_t>(event.kind));
    put(out, event.campaign);
    put(out, event.cluster);
    put(out, event.group);
    put(out, event.scenario);
    put(out, event.month);
  }
  return out;
}

void CampaignService::decode_state(const std::string& payload) {
  Cursor in(payload);
  now_ = in.get<Seconds>();
  next_campaign_id_ = in.get<CampaignId>();
  last_submit_at_ = in.get<Seconds>();

  const auto n_campaigns = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_campaigns; ++i) {
    CampaignState state;
    state.id = in.get<CampaignId>();
    state.spec.owner = in.get_string();
    state.spec.weight = in.get<double>();
    state.spec.scenarios = in.get<Count>();
    state.spec.months = in.get<Count>();
    state.status = static_cast<CampaignStatus>(in.get<std::uint8_t>());
    state.submit_time = in.get<Seconds>();
    state.admit_time = in.get<Seconds>();
    state.finish_time = in.get<Seconds>();
    state.months_done = in.get<Count>();
    const auto scenarios = in.get<std::uint32_t>();
    state.frontier.resize(scenarios);
    state.scenario_ready.resize(scenarios);
    state.assignment.resize(scenarios);
    for (auto& m : state.frontier) m = in.get<MonthIndex>();
    for (auto& t : state.scenario_ready) t = in.get<Seconds>();
    for (auto& c : state.assignment) c = in.get<ClusterId>();
    if (state.status == CampaignStatus::kRunning) {
      scenario_running_[state.id] = std::vector<char>(scenarios, 0);
      // Rebuild the incremental claim inputs from the decoded frontier.
      std::vector<Count> counts(
          static_cast<std::size_t>(grid_.cluster_count()), 0);
      for (std::uint32_t s = 0; s < scenarios; ++s)
        if (state.frontier[s] < static_cast<MonthIndex>(state.spec.months))
          ++counts[static_cast<std::size_t>(state.assignment[s])];
      for (ClusterId c = 0; c < grid_.cluster_count(); ++c)
        if (counts[static_cast<std::size_t>(c)] > 0)
          ++pinned_campaigns_[static_cast<std::size_t>(c)];
      pinned_counts_.emplace(state.id, std::move(counts));
      ++active_count_;
    }
    campaigns_.emplace(state.id, std::move(state));
  }

  const auto n_queued = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_queued; ++i) {
    const bool ok = queue_.try_enqueue(in.get<CampaignId>());
    OAGRID_REQUIRE(ok, "snapshot queue exceeds the configured capacity");
  }

  const auto n_allotments = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_allotments; ++i) {
    const auto campaign = in.get<CampaignId>();
    const auto cluster = in.get<ClusterId>();
    Allotment allotment;
    allotment.procs = in.get<ProcCount>();
    const auto groups = in.get<std::uint32_t>();
    allotment.group_sizes.resize(groups);
    for (auto& g : allotment.group_sizes) g = in.get<ProcCount>();
    allotment.group_busy.assign(groups, 0);
    allotments_[{campaign, cluster}] = std::move(allotment);
    cluster_members_[static_cast<std::size_t>(cluster)].insert(campaign);
    dispatch_dirty_.insert({campaign, cluster});
  }

  const auto n_clusters = in.get<std::uint32_t>();
  OAGRID_REQUIRE(n_clusters == clusters_.size(),
                 "snapshot was taken on a different grid");
  for (ClusterRuntime& runtime : clusters_) {
    runtime.reconfiguring = in.get<std::uint8_t>() != 0;
    const auto n_targets = in.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < n_targets; ++i) {
      const auto campaign = in.get<CampaignId>();
      runtime.targets[campaign] = in.get<ProcCount>();
    }
  }

  const auto n_owners = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_owners; ++i) {
    std::string owner = in.get_string();
    owner_consumed_[std::move(owner)] = in.get<double>();
  }

  const auto n_events = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n_events; ++i) {
    PendingEvent event;
    event.time = in.get<Seconds>();
    event.kind = in.get<std::uint8_t>();
    event.campaign = in.get<CampaignId>();
    event.cluster = in.get<ClusterId>();
    event.group = in.get<int>();
    event.scenario = in.get<ScenarioId>();
    event.month = in.get<MonthIndex>();
    // Re-derive the transient run state the snapshot deliberately omits.
    if (event.kind == kCompletion) {
      scenario_running_.at(event.campaign)[static_cast<std::size_t>(
          event.scenario)] = 1;
      allotments_.at({event.campaign, event.cluster})
          .group_busy[static_cast<std::size_t>(event.group)] = 1;
      ++clusters_[static_cast<std::size_t>(event.cluster)].running;
    }
    events_.insert(event);
  }
  OAGRID_REQUIRE(in.exhausted(), "trailing bytes in snapshot payload");

  // The queue section was decoded before owner_consumed_, so enqueue-time
  // priorities were keyed off empty accounting; re-key now that the full
  // state is in, and rebuild the per-owner fan-out sets.
  for (const CampaignId id : queue_.queued()) {
    owner_queued_[campaigns_.at(id).spec.owner].insert(id);
    if (options_.policy != QueuePolicy::kFifo)
      queue_.update_priority(id, admission_priority(id));
  }
  mark_claims_dirty();
}

// --- introspection ---------------------------------------------------------

std::vector<CampaignId> CampaignService::campaign_ids() const {
  std::vector<CampaignId> ids;
  ids.reserve(campaigns_.size());
  for (const auto& [id, state] : campaigns_) ids.push_back(id);
  return ids;
}

const CampaignState& CampaignService::campaign(CampaignId id) const {
  const auto it = campaigns_.find(id);
  OAGRID_REQUIRE(it != campaigns_.end(), "unknown campaign id");
  return it->second;
}

std::vector<Lease> CampaignService::active_leases() const {
  std::vector<Lease> leases;
  for (const auto& [key, allotment] : allotments_)
    leases.push_back({key.first, key.second, allotment.procs});
  return leases;  // map order is already (campaign, cluster)
}

}  // namespace oagrid::service
