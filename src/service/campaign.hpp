#pragma once
/// \file campaign.hpp
/// \brief The service-level vocabulary: tenants submit *campaigns* (one
/// ensemble each) to a long-running service that multiplexes them over a
/// shared grid.
///
/// A campaign is the control-plane unit the paper's §6 experiments ran by
/// hand: "around 10 scenarios of 150 years" per climatologist, restarted
/// across expiring Grid'5000 reservations. CampaignState carries exactly the
/// state the crash-recoverable journal must reproduce: the per-scenario
/// month frontier (which month each chain has reached) plus the immutable
/// scenario-to-cluster assignment (a scenario never migrates once placed —
/// the paper's "cannot change location" rule).

#include <string>
#include <vector>

#include "common/types.hpp"

namespace oagrid::service {

/// Identifier of one submitted campaign, unique within a service lifetime
/// (and within its journal).
using CampaignId = std::uint32_t;

/// What a tenant submits: who they are, how much of the grid they are
/// entitled to relative to other owners, and the workload size.
struct CampaignSpec {
  std::string owner;   ///< tenant name (fair-share accounting key)
  double weight = 1.0; ///< fair-share weight (> 0)
  Count scenarios = 0; ///< NS
  Count months = 0;    ///< NM

  void validate() const {
    OAGRID_REQUIRE(!owner.empty(), "campaign needs an owner");
    OAGRID_REQUIRE(weight > 0.0, "campaign weight must be positive");
    OAGRID_REQUIRE(scenarios >= 1, "campaign needs at least one scenario");
    OAGRID_REQUIRE(months >= 1, "campaign needs at least one month");
  }
};

enum class CampaignStatus {
  kScheduled, ///< submit time lies in the service's future
  kQueued,    ///< submitted, waiting for admission
  kRejected,  ///< refused at submission (queue full — admission control)
  kRunning,   ///< admitted; holds leases and executes months
  kCompleted, ///< every scenario reached its final month
};

[[nodiscard]] const char* to_string(CampaignStatus status) noexcept;

/// Full per-campaign service state. Everything here is either journaled
/// directly or deterministically re-derived during recovery replay.
struct CampaignState {
  CampaignId id = 0;
  CampaignSpec spec;
  CampaignStatus status = CampaignStatus::kScheduled;

  Seconds submit_time = 0.0; ///< service-clock instant of submission
  Seconds admit_time = 0.0;  ///< instant admission was granted
  Seconds finish_time = 0.0; ///< instant the last month completed

  /// frontier[s] = months completed by scenario s (the restart-chain
  /// position; the climate restart files are the data-plane analogue).
  std::vector<MonthIndex> frontier;
  /// scenario_ready[s] = completion time of the scenario's last month (the
  /// earliest instant its next month may start).
  std::vector<Seconds> scenario_ready;
  /// assignment[s] = cluster the scenario was pinned to at admission.
  std::vector<ClusterId> assignment;

  Count months_done = 0;

  [[nodiscard]] Count total_months() const noexcept {
    return spec.scenarios * spec.months;
  }
  [[nodiscard]] Count months_remaining() const noexcept {
    return total_months() - months_done;
  }
  /// Unfinished scenarios currently pinned to `cluster`.
  [[nodiscard]] Count unfinished_on(ClusterId cluster) const noexcept;
  /// Campaign makespan (finish - submit); 0 until completed.
  [[nodiscard]] Seconds makespan() const noexcept {
    return status == CampaignStatus::kCompleted ? finish_time - submit_time
                                                : 0.0;
  }
};

}  // namespace oagrid::service
