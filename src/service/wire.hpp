#pragma once
/// \file wire.hpp
/// \brief Flat host-endian binary encoding helpers shared by the journal
/// record codec and the snapshot state codec (service-internal).

#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace oagrid::service::wire {

template <typename T>
void put(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof value);
}

inline void put_string(std::string& out, const std::string& s) {
  put(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked reader over an encoded payload; throws
/// std::invalid_argument on any over-read (truncated payload).
class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    need(sizeof value);
    std::memcpy(&value, data_.data() + pos_, sizeof value);
    pos_ += sizeof value;
    return value;
  }

  std::string get_string() {
    const auto size = get<std::uint32_t>();
    need(size);
    std::string s(data_, pos_, size);
    pos_ += size;
    return s;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw std::invalid_argument("oagrid: truncated journal record payload");
  }

  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace oagrid::service::wire
