#pragma once
/// \file estimator.hpp
/// \brief Performance estimation backends for the service's decisions.
///
/// Admission-time scenario placement (Algorithm 1 over the leased
/// allotments) and the shortest-remaining-makespan queue policy both need §5
/// performance vectors. Three interchangeable sources:
///  * AnalyticEstimator — closed-form steady-state throughput vectors
///    (sched::throughput_performance_vector): microseconds per query, the
///    default for a service making decisions on every admission;
///  * SimEstimator — exact discrete-event vectors (sim::performance_vector):
///    what a SeD would compute, run inline;
///  * MiddlewareEstimator — the live middleware path: performance requests
///    travel through a MasterAgent to real SeD threads (step 1-3 of
///    Figure 9), one ephemeral SeD per distinct allotment size. This is how
///    the ServiceLoop drives the estimation plane over the middleware
///    instead of the DES-internal shortcut.
///
/// All three are deterministic for fixed inputs — a requirement, since
/// recovery re-runs the decision logic and must reach identical plans.

#include <map>
#include <memory>

#include "fault/failure.hpp"
#include "platform/cluster.hpp"
#include "platform/grid.hpp"
#include "sched/heuristics.hpp"
#include "sched/repartition.hpp"

namespace oagrid::middleware {
class MasterAgent;
}

namespace oagrid::service {

class PerfEstimator {
 public:
  virtual ~PerfEstimator() = default;

  /// performance[k-1] ~ makespan of k scenarios x `months` months on
  /// `cluster` (already resized to the leased allotment), k = 1..scenarios.
  [[nodiscard]] virtual sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) = 0;
};

/// Closed-form throughput estimate (no simulation).
class AnalyticEstimator final : public PerfEstimator {
 public:
  [[nodiscard]] sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) override;
};

/// Exact per-allotment discrete-event simulation, run inline.
class SimEstimator final : public PerfEstimator {
 public:
  [[nodiscard]] sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) override;
};

/// Queries live SeD threads through a private MasterAgent. Deploys one SeD
/// per distinct (cluster name, allotment size) and caches the mapping, so a
/// steady-state service keeps a small warm fleet.
class MiddlewareEstimator final : public PerfEstimator {
 public:
  MiddlewareEstimator();
  ~MiddlewareEstimator() override;

  [[nodiscard]] sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) override;

  [[nodiscard]] int deployed_daemons() const noexcept;

 private:
  std::unique_ptr<middleware::MasterAgent> agent_;
  std::map<std::pair<std::string, ProcCount>, ClusterId> deployed_;
  int next_request_id_ = 1;
};

/// Decorator folding a fault::FailureModel into any estimator's vectors:
/// each entry is inflated to its first-order expected makespan under the
/// cluster's failure process (fault::expected_makespan), and entries for a
/// permanently dead cluster become fault::kUnavailableTime — so Algorithm 1
/// places nothing there and the service degrades the tenant's lease instead
/// of deadlocking on capacity that will never compute. Clusters are matched
/// by name against the grid the model indexes; unknown names pass through
/// unchanged. Deterministic whenever the inner estimator is (the inflation
/// is closed-form), so verified journal replay keeps working.
class FailureAwareEstimator final : public PerfEstimator {
 public:
  /// `inner` must outlive this estimator (not owned).
  FailureAwareEstimator(PerfEstimator& inner, const platform::Grid& grid,
                        fault::FailureModel model,
                        MonthIndex checkpoint_months = 1);

  [[nodiscard]] sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) override;

 private:
  PerfEstimator& inner_;
  std::map<std::string, ClusterId> cluster_by_name_;
  fault::FailureModel model_;
  MonthIndex checkpoint_months_;
};

}  // namespace oagrid::service
