#pragma once
/// \file estimator.hpp
/// \brief Performance estimation backends for the service's decisions.
///
/// Admission-time scenario placement (Algorithm 1 over the leased
/// allotments) and the shortest-remaining-makespan queue policy both need §5
/// performance vectors. Three interchangeable sources:
///  * AnalyticEstimator — closed-form steady-state throughput vectors
///    (sched::throughput_performance_vector): microseconds per query, the
///    default for a service making decisions on every admission;
///  * SimEstimator — exact discrete-event vectors (sim::performance_vector):
///    what a SeD would compute, run inline;
///  * MiddlewareEstimator — the live middleware path: performance requests
///    travel through a MasterAgent to real SeD threads (step 1-3 of
///    Figure 9), one ephemeral SeD per distinct allotment size. This is how
///    the ServiceLoop drives the estimation plane over the middleware
///    instead of the DES-internal shortcut.
///
/// All three are deterministic for fixed inputs — a requirement, since
/// recovery re-runs the decision logic and must reach identical plans.

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "fault/failure.hpp"
#include "platform/cluster.hpp"
#include "platform/grid.hpp"
#include "sched/heuristics.hpp"
#include "sched/repartition.hpp"

namespace oagrid::middleware {
class MasterAgent;
}

namespace oagrid::service {

class PerfEstimator {
 public:
  virtual ~PerfEstimator() = default;

  /// performance[k-1] ~ makespan of k scenarios x `months` months on
  /// `cluster` (already resized to the leased allotment), k = 1..scenarios.
  [[nodiscard]] virtual sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) = 0;

  /// True when vector() may be called from several threads concurrently
  /// (estimate_batch then fans requests over the shared thread pool).
  /// Defaults to false so stateful custom backends stay safe by default.
  [[nodiscard]] virtual bool concurrent() const noexcept { return false; }
};

/// One estimation request for estimate_batch.
struct EstimateRequest {
  platform::Cluster cluster;
  Count scenarios = 0;
  Count months = 0;
  sched::Heuristic heuristic = sched::Heuristic::kKnapsack;
};

/// Evaluates a batch of independent estimation requests, fanning them over
/// common/thread_pool's shared pool when `threads != 1` and the estimator
/// declares itself concurrent(). Results come back in request order, so any
/// downstream reduction (Algorithm 1 candidate scan, srmf minimum) stays a
/// sequential fold over a deterministic sequence — bit-identical to the
/// serial path at any thread count. `threads` caps the participating
/// threads (0 = the whole pool, 1 = serial inline).
[[nodiscard]] std::vector<sched::PerformanceVector> estimate_batch(
    PerfEstimator& estimator, const std::vector<EstimateRequest>& requests,
    std::size_t threads);

/// Closed-form throughput estimate (no simulation).
class AnalyticEstimator final : public PerfEstimator {
 public:
  [[nodiscard]] sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) override;
  [[nodiscard]] bool concurrent() const noexcept override { return true; }
};

/// Exact per-allotment discrete-event simulation, run inline. Concurrent:
/// the DES is a pure function of its inputs and the process-global eval
/// cache it warms is mutex-sharded.
class SimEstimator final : public PerfEstimator {
 public:
  [[nodiscard]] sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) override;
  [[nodiscard]] bool concurrent() const noexcept override { return true; }
};

/// Queries live SeD threads through a private MasterAgent. Deploys one SeD
/// per distinct (cluster name, allotment size) and caches the mapping, so a
/// steady-state service keeps a small warm fleet.
class MiddlewareEstimator final : public PerfEstimator {
 public:
  MiddlewareEstimator();
  ~MiddlewareEstimator() override;

  [[nodiscard]] sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) override;

  [[nodiscard]] int deployed_daemons() const noexcept;

 private:
  std::unique_ptr<middleware::MasterAgent> agent_;
  std::map<std::pair<std::string, ProcCount>, ClusterId> deployed_;
  int next_request_id_ = 1;
};

/// Decorator folding a fault::FailureModel into any estimator's vectors:
/// each entry is inflated to its first-order expected makespan under the
/// cluster's failure process (fault::expected_makespan), and entries for a
/// permanently dead cluster become fault::kUnavailableTime — so Algorithm 1
/// places nothing there and the service degrades the tenant's lease instead
/// of deadlocking on capacity that will never compute. Clusters are matched
/// by name against the grid the model indexes; unknown names pass through
/// unchanged. Deterministic whenever the inner estimator is (the inflation
/// is closed-form), so verified journal replay keeps working.
class FailureAwareEstimator final : public PerfEstimator {
 public:
  /// `inner` must outlive this estimator (not owned).
  FailureAwareEstimator(PerfEstimator& inner, const platform::Grid& grid,
                        fault::FailureModel model,
                        MonthIndex checkpoint_months = 1);

  [[nodiscard]] sched::PerformanceVector vector(
      const platform::Cluster& cluster, Count scenarios, Count months,
      sched::Heuristic heuristic) override;

  /// The decorator adds only closed-form arithmetic; concurrency-safety is
  /// whatever the wrapped estimator provides.
  [[nodiscard]] bool concurrent() const noexcept override {
    return inner_.concurrent();
  }

 private:
  PerfEstimator& inner_;
  std::map<std::string, ClusterId> cluster_by_name_;
  fault::FailureModel model_;
  MonthIndex checkpoint_months_;
};

}  // namespace oagrid::service
