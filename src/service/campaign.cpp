#include "service/campaign.hpp"

namespace oagrid::service {

const char* to_string(CampaignStatus status) noexcept {
  switch (status) {
    case CampaignStatus::kScheduled: return "scheduled";
    case CampaignStatus::kQueued: return "queued";
    case CampaignStatus::kRejected: return "rejected";
    case CampaignStatus::kRunning: return "running";
    case CampaignStatus::kCompleted: return "completed";
  }
  return "?";
}

Count CampaignState::unfinished_on(ClusterId cluster) const noexcept {
  Count count = 0;
  for (std::size_t s = 0; s < assignment.size(); ++s)
    if (assignment[s] == cluster &&
        frontier[s] < static_cast<MonthIndex>(spec.months))
      ++count;
  return count;
}

}  // namespace oagrid::service
