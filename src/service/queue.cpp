#include "service/queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace oagrid::service {

const char* to_string(QueuePolicy policy) noexcept {
  switch (policy) {
    case QueuePolicy::kFifo: return "fifo";
    case QueuePolicy::kWeightedFairShare: return "fair";
    case QueuePolicy::kShortestRemaining: return "srmf";
  }
  return "?";
}

QueuePolicy queue_policy_from(const std::string& name) {
  if (name == "fifo") return QueuePolicy::kFifo;
  if (name == "fair") return QueuePolicy::kWeightedFairShare;
  if (name == "srmf") return QueuePolicy::kShortestRemaining;
  throw std::invalid_argument("unknown queue policy '" + name +
                              "' (fifo | fair | srmf)");
}

CampaignQueue::CampaignQueue(QueuePolicy policy, std::size_t capacity)
    : policy_(policy), capacity_(capacity) {
  OAGRID_REQUIRE(capacity >= 1, "queue capacity must be at least 1");
}

bool CampaignQueue::try_enqueue(CampaignId id, double priority) {
  if (queued_.size() >= capacity_) return false;
  OAGRID_REQUIRE(keys_.find(id) == keys_.end(), "campaign already queued");
  queued_.push_back(id);
  const IndexKey key{policy_ == QueuePolicy::kFifo ? 0.0 : priority,
                     next_seq_++, id};
  keys_.emplace(id, key);
  index_.insert(key);
  return true;
}

void CampaignQueue::remove(CampaignId id) {
  const auto it = std::find(queued_.begin(), queued_.end(), id);
  OAGRID_REQUIRE(it != queued_.end(), "campaign not queued");
  queued_.erase(it);
  const auto key = keys_.find(id);
  index_.erase(key->second);
  keys_.erase(key);
}

void CampaignQueue::update_priority(CampaignId id, double priority) {
  if (policy_ == QueuePolicy::kFifo) return;
  const auto key = keys_.find(id);
  OAGRID_REQUIRE(key != keys_.end(), "campaign not queued");
  if (std::get<0>(key->second) == priority) return;
  index_.erase(key->second);
  std::get<0>(key->second) = priority;
  index_.insert(key->second);
}

CampaignId CampaignQueue::front() const {
  OAGRID_REQUIRE(!index_.empty(), "front() on an empty queue");
  return std::get<2>(*index_.begin());
}

std::vector<CampaignId> CampaignQueue::admission_order(
    const std::function<double(CampaignId)>& priority) const {
  std::vector<CampaignId> order = queued_;
  if (policy_ == QueuePolicy::kFifo) return order;
  // Stable sort: equal priorities keep submission order, so the ordering is
  // deterministic and replayable.
  std::stable_sort(order.begin(), order.end(),
                   [&](CampaignId a, CampaignId b) {
                     return priority(a) < priority(b);
                   });
  return order;
}

}  // namespace oagrid::service
