#include "service/queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace oagrid::service {

const char* to_string(QueuePolicy policy) noexcept {
  switch (policy) {
    case QueuePolicy::kFifo: return "fifo";
    case QueuePolicy::kWeightedFairShare: return "fair";
    case QueuePolicy::kShortestRemaining: return "srmf";
  }
  return "?";
}

QueuePolicy queue_policy_from(const std::string& name) {
  if (name == "fifo") return QueuePolicy::kFifo;
  if (name == "fair") return QueuePolicy::kWeightedFairShare;
  if (name == "srmf") return QueuePolicy::kShortestRemaining;
  throw std::invalid_argument("unknown queue policy '" + name +
                              "' (fifo | fair | srmf)");
}

CampaignQueue::CampaignQueue(QueuePolicy policy, std::size_t capacity)
    : policy_(policy), capacity_(capacity) {
  OAGRID_REQUIRE(capacity >= 1, "queue capacity must be at least 1");
}

bool CampaignQueue::try_enqueue(CampaignId id) {
  if (queued_.size() >= capacity_) return false;
  queued_.push_back(id);
  return true;
}

void CampaignQueue::remove(CampaignId id) {
  const auto it = std::find(queued_.begin(), queued_.end(), id);
  OAGRID_REQUIRE(it != queued_.end(), "campaign not queued");
  queued_.erase(it);
}

std::vector<CampaignId> CampaignQueue::admission_order(
    const std::function<double(CampaignId)>& priority) const {
  std::vector<CampaignId> order = queued_;
  if (policy_ == QueuePolicy::kFifo) return order;
  // Stable sort: equal priorities keep submission order, so the ordering is
  // deterministic and replayable.
  std::stable_sort(order.begin(), order.end(),
                   [&](CampaignId a, CampaignId b) {
                     return priority(a) < priority(b);
                   });
  return order;
}

}  // namespace oagrid::service
