#include "service/journal.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "service/wire.hpp"

namespace oagrid::service {
namespace {

using wire::Cursor;
using wire::put;
using wire::put_string;

constexpr char kJournalMagic[4] = {'O', 'A', 'G', 'J'};
constexpr char kSnapshotMagic[4] = {'O', 'A', 'G', 'P'};
constexpr std::uint32_t kVersion = 1;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

/// Reads the framed record at the stream position. Returns false (leaving
/// `payload` empty) on a clean end-of-file right at the frame boundary;
/// throws on a torn or corrupt record.
bool read_record(std::istream& in, std::string& payload) {
  std::uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof len);
  if (in.gcount() == 0) return false;  // clean EOF
  if (!in) throw std::invalid_argument("oagrid: torn journal record header");
  std::uint32_t crc = 0;
  in.read(reinterpret_cast<char*>(&crc), sizeof crc);
  if (!in) throw std::invalid_argument("oagrid: torn journal record header");
  payload.resize(len);
  in.read(payload.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::invalid_argument("oagrid: torn journal record payload");
  if (crc32(payload.data(), payload.size()) != crc)
    throw std::invalid_argument("oagrid: journal record CRC mismatch");
  return true;
}

void append_framed(std::ostream& out, const std::string& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof len);
  out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kCampaignSubmitted: return "submitted";
    case EventType::kCampaignRejected: return "rejected";
    case EventType::kCampaignAdmitted: return "admitted";
    case EventType::kMonthCompleted: return "month-completed";
    case EventType::kLeaseChanged: return "lease-changed";
    case EventType::kCampaignCompleted: return "completed";
  }
  return "?";
}

bool Event::operator==(const Event& other) const {
  // Two events are equal iff their serialized forms are — only the fields
  // of the record's type participate.
  return encode_event(*this) == encode_event(other);
}

std::string encode_event(const Event& event) {
  std::string out;
  put(out, static_cast<std::uint8_t>(event.type));
  put(out, event.campaign);
  put(out, event.time);
  switch (event.type) {
    case EventType::kCampaignSubmitted:
      put_string(out, event.owner);
      put(out, event.weight);
      put(out, event.scenarios);
      put(out, event.months);
      break;
    case EventType::kCampaignRejected:
      break;
    case EventType::kCampaignAdmitted:
      put(out, static_cast<std::uint32_t>(event.assignment.size()));
      for (const ClusterId c : event.assignment) put(out, c);
      break;
    case EventType::kMonthCompleted:
      put(out, event.scenario);
      put(out, event.month);
      put(out, event.cluster);
      put(out, event.group);
      break;
    case EventType::kLeaseChanged:
      put(out, event.cluster);
      put(out, event.procs);
      break;
    case EventType::kCampaignCompleted:
      put(out, event.makespan);
      break;
  }
  return out;
}

Event decode_event(const std::string& payload) {
  Cursor in(payload);
  Event event;
  const auto type = in.get<std::uint8_t>();
  if (type < 1 || type > 6)
    throw std::invalid_argument("oagrid: unknown journal event type " +
                                std::to_string(type));
  event.type = static_cast<EventType>(type);
  event.campaign = in.get<std::uint32_t>();
  event.time = in.get<Seconds>();
  switch (event.type) {
    case EventType::kCampaignSubmitted:
      event.owner = in.get_string();
      event.weight = in.get<double>();
      event.scenarios = in.get<Count>();
      event.months = in.get<Count>();
      break;
    case EventType::kCampaignRejected:
      break;
    case EventType::kCampaignAdmitted: {
      const auto n = in.get<std::uint32_t>();
      event.assignment.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i)
        event.assignment.push_back(in.get<ClusterId>());
      break;
    }
    case EventType::kMonthCompleted:
      event.scenario = in.get<ScenarioId>();
      event.month = in.get<MonthIndex>();
      event.cluster = in.get<ClusterId>();
      event.group = in.get<int>();
      break;
    case EventType::kLeaseChanged:
      event.cluster = in.get<ClusterId>();
      event.procs = in.get<ProcCount>();
      break;
    case EventType::kCampaignCompleted:
      event.makespan = in.get<Seconds>();
      break;
  }
  if (!in.exhausted())
    throw std::invalid_argument("oagrid: trailing bytes in journal record");
  return event;
}

namespace {

std::string encode_header(std::uint64_t base_seq, const JournalConfig& config) {
  std::string out(kJournalMagic, sizeof kJournalMagic);
  put(out, kVersion);
  put(out, base_seq);
  put(out, config.policy);
  put(out, config.heuristic);
  put(out, config.max_active);
  return out;
}

constexpr std::size_t kHeaderSize =
    sizeof kJournalMagic + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
    2 * sizeof(std::uint8_t) + sizeof(std::uint32_t);

}  // namespace

JournalContents read_journal(const std::string& path) {
  JournalContents contents;
  std::ifstream in(path, std::ios::binary);
  if (!in) return contents;
  contents.exists = true;

  std::string header(kHeaderSize, '\0');
  in.read(header.data(), static_cast<std::streamsize>(header.size()));
  if (!in || std::memcmp(header.data(), kJournalMagic, sizeof kJournalMagic) != 0)
    throw std::invalid_argument("oagrid: not a journal file (bad magic): " +
                                path);
  Cursor cursor(header);
  cursor.get<std::uint32_t>();  // magic (already checked byte-wise)
  const auto version = cursor.get<std::uint32_t>();
  if (version != kVersion)
    throw std::invalid_argument("oagrid: unsupported journal version " +
                                std::to_string(version));
  contents.base_seq = cursor.get<std::uint64_t>();
  contents.config.policy = cursor.get<std::uint8_t>();
  contents.config.heuristic = cursor.get<std::uint8_t>();
  contents.config.max_active = cursor.get<std::uint32_t>();

  std::string payload;
  for (;;) {
    const auto record_start = in.tellg();
    try {
      if (!read_record(in, payload)) break;
      contents.events.push_back(decode_event(payload));
    } catch (const std::invalid_argument&) {
      // Torn or corrupt record: the valid prefix ends here. Measure what
      // is being dropped, then stop — WAL semantics.
      in.clear();
      in.seekg(0, std::ios::end);
      contents.torn_tail = true;
      contents.dropped_bytes =
          static_cast<std::uint64_t>(in.tellg() - record_start);
      break;
    }
  }
  return contents;
}

JournalWriter::JournalWriter(const std::string& path, std::uint64_t base_seq,
                             const JournalConfig& config) {
  path_ = path;
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_)
    throw std::invalid_argument("oagrid: cannot create journal " + path);
  const std::string header = encode_header(base_seq, config);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.flush();
  if (!out_)
    throw std::runtime_error("oagrid: journal header write failed: " + path);
  seq_ = base_seq;
}

JournalWriter JournalWriter::reopen(const std::string& path,
                                    const JournalContents& contents) {
  // Compute the byte length of the validated prefix, then truncate any torn
  // tail by rewriting in place is avoided: we re-append to the valid length
  // using filesystem resize semantics (open in/out keeps existing bytes).
  std::uint64_t valid_bytes = kHeaderSize;
  for (const Event& event : contents.events)
    valid_bytes += 2 * sizeof(std::uint32_t) + encode_event(event).size();

  if (contents.torn_tail) {
    // Rewrite header + valid records; simplest portable truncation.
    JournalWriter writer(path + ".rewrite", contents.base_seq,
                         contents.config);
    for (const Event& event : contents.events) writer.append(event);
    writer.out_.close();
    if (std::rename((path + ".rewrite").c_str(), path.c_str()) != 0)
      throw std::runtime_error("oagrid: cannot replace torn journal " + path);
  }

  JournalWriter writer;
  writer.path_ = path;
  writer.out_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!writer.out_)
    throw std::invalid_argument("oagrid: cannot reopen journal " + path);
  writer.out_.seekp(static_cast<std::streamoff>(valid_bytes));
  writer.seq_ = contents.end_seq();
  return writer;
}

void JournalWriter::set_group_commit(bool on) {
  if (!on) (void)commit();
  group_commit_ = on;
}

void JournalWriter::append(const Event& event) {
  const std::string payload = encode_event(event);
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  pending_.append(reinterpret_cast<const char*>(&len), sizeof len);
  pending_.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  pending_.append(payload);
  ++pending_records_;
  ++seq_;
  if (!group_commit_) (void)commit();
}

std::size_t JournalWriter::commit() {
  if (pending_records_ == 0) return 0;
  out_.write(pending_.data(), static_cast<std::streamsize>(pending_.size()));
  out_.flush();
  if (!out_)
    throw std::runtime_error("oagrid: journal append failed: " + path_);
  const std::size_t committed = pending_records_;
  pending_.clear();
  pending_records_ = 0;
  ++flushes_;
  return committed;
}

void JournalWriter::discard_pending() noexcept {
  seq_ -= pending_records_;
  pending_.clear();
  pending_records_ = 0;
}

void write_snapshot(const std::string& path, std::uint64_t seq,
                    const std::string& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::invalid_argument("oagrid: cannot create snapshot " + tmp);
    std::string header(kSnapshotMagic, sizeof kSnapshotMagic);
    put(header, kVersion);
    put(header, seq);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    append_framed(out, payload);
    out.flush();
    if (!out)
      throw std::runtime_error("oagrid: snapshot write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("oagrid: cannot publish snapshot " + path);
}

SnapshotContents read_snapshot(const std::string& path) {
  SnapshotContents contents;
  std::ifstream in(path, std::ios::binary);
  if (!in) return contents;
  constexpr std::size_t kSnapHeader =
      sizeof kSnapshotMagic + sizeof(std::uint32_t) + sizeof(std::uint64_t);
  std::string header(kSnapHeader, '\0');
  in.read(header.data(), static_cast<std::streamsize>(header.size()));
  if (!in ||
      std::memcmp(header.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0)
    return contents;  // corrupt: recovery falls back to full replay
  Cursor cursor(header);
  cursor.get<std::uint32_t>();  // magic
  if (cursor.get<std::uint32_t>() != kVersion) return contents;
  const auto seq = cursor.get<std::uint64_t>();
  try {
    std::string payload;
    if (!read_record(in, payload)) return contents;
    contents.valid = true;
    contents.seq = seq;
    contents.payload = std::move(payload);
  } catch (const std::invalid_argument&) {
    contents.valid = false;  // torn snapshot: ignore it entirely
  }
  return contents;
}

}  // namespace oagrid::service
