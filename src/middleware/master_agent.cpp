#include "middleware/master_agent.hpp"

namespace oagrid::middleware {

MasterAgent::MasterAgent(const platform::Grid& grid) {
  for (const auto& cluster : grid.clusters()) deploy(cluster);
}

ClusterId MasterAgent::deploy(platform::Cluster cluster) {
  const auto id = static_cast<ClusterId>(daemons_.size());
  daemons_.push_back(std::make_unique<ServerDaemon>(id, std::move(cluster)));
  return id;
}

ServerDaemon& MasterAgent::daemon(ClusterId id) {
  OAGRID_REQUIRE(id >= 0 && id < daemon_count(), "daemon id out of range");
  return *daemons_[static_cast<std::size_t>(id)];
}

int MasterAgent::broadcast_perf_request(int request_id, Count scenarios,
                                        Count months,
                                        sched::Heuristic heuristic,
                                        Mailbox<SedResponse>& reply) {
  for (auto& daemon : daemons_) {
    PerfRequest request;
    request.request_id = request_id;
    request.scenarios = scenarios;
    request.months = months;
    request.heuristic = heuristic;
    request.reply = &reply;
    daemon->inbox().send(SedRequest{request});
  }
  return daemon_count();
}

void MasterAgent::send_execute(ClusterId id, int request_id, Count scenarios,
                               Count months, sched::Heuristic heuristic,
                               Mailbox<SedResponse>& reply) {
  ExecuteRequest request;
  request.request_id = request_id;
  request.scenarios = scenarios;
  request.months = months;
  request.heuristic = heuristic;
  request.reply = &reply;
  daemon(id).inbox().send(SedRequest{request});
}

void MasterAgent::shutdown() {
  for (auto& daemon : daemons_) daemon->stop();
}

}  // namespace oagrid::middleware
