#include "middleware/server_daemon.hpp"

#include "common/log.hpp"
#include "obs/obs.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/perf_vector.hpp"

namespace oagrid::middleware {

namespace {

/// Track band reserved per cluster on the simulated timeline: groups and
/// post workers of cluster c land on tracks [c*kSimTrackStride, ...).
constexpr int kSimTrackStride = 256;

}  // namespace

ServerDaemon::ServerDaemon(ClusterId id, platform::Cluster cluster)
    : id_(id), cluster_(std::move(cluster)) {
  if (obs::enabled()) {
    // Fleet-wide distributions: every SeD inbox feeds the same histograms,
    // so "mailbox wait time" quantiles describe the whole deployment.
    QueueProbe probe;
    probe.depth_on_send = &obs::metrics().histogram("middleware.mailbox.depth");
    probe.wait_us = &obs::metrics().histogram("middleware.mailbox.wait_us");
    probe.sends = &obs::metrics().counter("middleware.mailbox.sends");
    probe.dropped_sends =
        &obs::metrics().counter("middleware.mailbox.dropped_sends");
    inbox_.instrument(probe);
  }
  // The thread starts only after the inbox is fully set up.
  thread_ = std::thread([this] { serve(); });
}

ServerDaemon::~ServerDaemon() { stop(); }

void ServerDaemon::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  inbox_.send(SedRequest{ShutdownRequest{}});
  inbox_.close();
  if (thread_.joinable()) thread_.join();
}

void ServerDaemon::serve() {
  OAGRID_INFO << "SeD " << id_ << " (" << cluster_.name() << ", "
              << cluster_.resources() << " procs) up";
  const bool observed = obs::enabled();
  const double up_since_us =
      observed ? obs::WallClock::instance().now_us() : 0.0;
  double busy_us = 0.0;
  std::uint64_t requests = 0;
  for (;;) {
    std::optional<SedRequest> request = inbox_.receive();
    if (!request) break;
    if (std::holds_alternative<ShutdownRequest>(*request)) break;
    const double handle_start_us =
        observed ? obs::WallClock::instance().now_us() : 0.0;
    std::visit(
        [this](const auto& r) {
          using R = std::decay_t<decltype(r)>;
          if constexpr (!std::is_same_v<R, ShutdownRequest>) handle(r);
        },
        *request);
    if (observed) {
      busy_us += obs::WallClock::instance().now_us() - handle_start_us;
      ++requests;
    }
  }
  if (observed) {
    const double uptime_us =
        obs::WallClock::instance().now_us() - up_since_us;
    const std::string prefix = "middleware.sed." + std::to_string(id_);
    obs::metrics().counter(prefix + ".requests").add(requests);
    obs::metrics()
        .gauge(prefix + ".busy_ratio")
        .set(uptime_us > 0.0 ? busy_us / uptime_us : 0.0);
  }
  OAGRID_INFO << "SeD " << id_ << " down";
}

void ServerDaemon::handle(const PerfRequest& request) {
  OAGRID_DEBUG << "SeD " << id_ << " perf request #" << request.request_id
               << " NS=" << request.scenarios << " NM=" << request.months;
  obs::ScopedTimer timer(
      obs::enabled() ? &obs::metrics().histogram("middleware.sed.perf_us")
                     : nullptr);
  PerfResponse response;
  response.request_id = request.request_id;
  response.cluster = id_;
  response.performance = sim::performance_vector(
      cluster_, request.scenarios, request.months, request.heuristic);
  if (request.reply) request.reply->send(SedResponse{std::move(response)});
}

void ServerDaemon::handle(const ExecuteRequest& request) {
  OAGRID_DEBUG << "SeD " << id_ << " executes " << request.scenarios
               << " scenario(s)";
  obs::ScopedTimer timer(
      obs::enabled() ? &obs::metrics().histogram("middleware.sed.execute_us")
                     : nullptr);
  ExecuteResponse response;
  response.request_id = request.request_id;
  response.cluster = id_;
  response.scenarios_run = request.scenarios;
  if (request.scenarios > 0) {
    const appmodel::Ensemble ensemble{request.scenarios, request.months};
    sim::SimOptions options;
    if (obs::enabled()) {
      options.obs_trace = &obs::trace_buffer();
      options.obs_track_base = id_ * kSimTrackStride;
      options.obs_label = cluster_.name();
    }
    if (request.progress_every > 0 && request.reply != nullptr) {
      options.progress_every = request.progress_every;
      options.on_progress = [this, &request,
                             total = ensemble.total_tasks()](Count done,
                                                             Seconds now) {
        ProgressUpdate update;
        update.request_id = request.request_id;
        update.cluster = id_;
        update.months_done = done;
        update.months_total = total;
        update.simulated_time = now;
        request.reply->send(SedResponse{update});
      };
    }
    const sim::SimResult result = sim::simulate_with_heuristic(
        cluster_, request.heuristic, ensemble, options);
    response.makespan = result.makespan;
    response.mains_executed = result.mains_executed;
    response.posts_executed = result.posts_executed;
    response.group_utilization = result.group_utilization;
    if (obs::enabled())
      obs::metrics()
          .gauge("sim.cluster." + cluster_.name() + ".utilization")
          .set(result.group_utilization);
  }
  if (request.reply) request.reply->send(SedResponse{std::move(response)});
}

}  // namespace oagrid::middleware
