#include "middleware/server_daemon.hpp"

#include "common/log.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/perf_vector.hpp"

namespace oagrid::middleware {

ServerDaemon::ServerDaemon(ClusterId id, platform::Cluster cluster)
    : id_(id), cluster_(std::move(cluster)), thread_([this] { serve(); }) {}

ServerDaemon::~ServerDaemon() { stop(); }

void ServerDaemon::stop() {
  if (stopped_) return;
  stopped_ = true;
  inbox_.send(SedRequest{ShutdownRequest{}});
  inbox_.close();
  if (thread_.joinable()) thread_.join();
}

void ServerDaemon::serve() {
  OAGRID_INFO << "SeD " << id_ << " (" << cluster_.name() << ", "
              << cluster_.resources() << " procs) up";
  for (;;) {
    std::optional<SedRequest> request = inbox_.receive();
    if (!request) break;
    if (std::holds_alternative<ShutdownRequest>(*request)) break;
    std::visit(
        [this](const auto& r) {
          using R = std::decay_t<decltype(r)>;
          if constexpr (!std::is_same_v<R, ShutdownRequest>) handle(r);
        },
        *request);
  }
  OAGRID_INFO << "SeD " << id_ << " down";
}

void ServerDaemon::handle(const PerfRequest& request) {
  OAGRID_DEBUG << "SeD " << id_ << " perf request #" << request.request_id
               << " NS=" << request.scenarios << " NM=" << request.months;
  PerfResponse response;
  response.request_id = request.request_id;
  response.cluster = id_;
  response.performance = sim::performance_vector(
      cluster_, request.scenarios, request.months, request.heuristic);
  if (request.reply) request.reply->send(SedResponse{std::move(response)});
}

void ServerDaemon::handle(const ExecuteRequest& request) {
  OAGRID_DEBUG << "SeD " << id_ << " executes " << request.scenarios
               << " scenario(s)";
  ExecuteResponse response;
  response.request_id = request.request_id;
  response.cluster = id_;
  response.scenarios_run = request.scenarios;
  if (request.scenarios > 0) {
    const appmodel::Ensemble ensemble{request.scenarios, request.months};
    sim::SimOptions options;
    if (request.progress_every > 0 && request.reply != nullptr) {
      options.progress_every = request.progress_every;
      options.on_progress = [this, &request,
                             total = ensemble.total_tasks()](Count done,
                                                             Seconds now) {
        ProgressUpdate update;
        update.request_id = request.request_id;
        update.cluster = id_;
        update.months_done = done;
        update.months_total = total;
        update.simulated_time = now;
        request.reply->send(SedResponse{update});
      };
    }
    const sim::SimResult result = sim::simulate_with_heuristic(
        cluster_, request.heuristic, ensemble, options);
    response.makespan = result.makespan;
    response.mains_executed = result.mains_executed;
    response.posts_executed = result.posts_executed;
  }
  if (request.reply) request.reply->send(SedResponse{std::move(response)});
}

}  // namespace oagrid::middleware
