#include "middleware/local_agent.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace oagrid::middleware {

LocalAgent::LocalAgent(std::vector<Child> children)
    : children_(std::move(children)) {
  OAGRID_REQUIRE(!children_.empty(), "agent needs at least one child");
  for (const Child& child : children_) {
    std::vector<ClusterId> ids;
    if (const auto* sed = std::get_if<ServerDaemon*>(&child)) {
      ids.push_back((*sed)->id());
    } else {
      ids = std::get<LocalAgent*>(child)->served();
    }
    child_served_.push_back(ids);
    served_.insert(served_.end(), ids.begin(), ids.end());
  }
  std::sort(served_.begin(), served_.end());
  OAGRID_REQUIRE(std::adjacent_find(served_.begin(), served_.end()) ==
                     served_.end(),
                 "two children serve the same cluster");
  thread_ = std::thread([this] { serve(); });
}

LocalAgent::~LocalAgent() { stop(); }

void LocalAgent::stop() {
  if (stopped_) return;
  stopped_ = true;
  inbox_.send(AgentMessage{AgentShutdown{}});
  inbox_.close();
  if (thread_.joinable()) thread_.join();
}

void LocalAgent::serve() {
  for (;;) {
    std::optional<AgentMessage> message = inbox_.receive();
    if (!message || std::holds_alternative<AgentShutdown>(*message)) break;
    std::visit(
        [this](const auto& m) {
          using M = std::decay_t<decltype(m)>;
          if constexpr (!std::is_same_v<M, AgentShutdown>) handle(m);
        },
        *message);
  }
}

void LocalAgent::handle(const AgentBroadcast& broadcast) {
  for (const Child& child : children_) {
    if (const auto* sed = std::get_if<ServerDaemon*>(&child)) {
      (*sed)->inbox().send(SedRequest{broadcast.request});
    } else {
      std::get<LocalAgent*>(child)->inbox().send(AgentMessage{broadcast});
    }
  }
}

void LocalAgent::handle(const AgentRoute& route) {
  for (std::size_t c = 0; c < children_.size(); ++c) {
    const auto& ids = child_served_[c];
    if (!std::binary_search(ids.begin(), ids.end(), route.target) &&
        std::find(ids.begin(), ids.end(), route.target) == ids.end())
      continue;
    if (const auto* sed = std::get_if<ServerDaemon*>(&children_[c])) {
      (*sed)->inbox().send(SedRequest{route.request});
    } else {
      std::get<LocalAgent*>(children_[c])->inbox().send(AgentMessage{route});
    }
    return;
  }
  OAGRID_WARN << "local agent dropped execute for unknown cluster "
              << route.target;
}

HierarchicalAgent::HierarchicalAgent(const platform::Grid& grid,
                                     int branching) {
  OAGRID_REQUIRE(grid.cluster_count() >= 1, "grid needs at least one cluster");
  OAGRID_REQUIRE(branching >= 2, "branching factor must be >= 2");

  for (ClusterId c = 0; c < grid.cluster_count(); ++c)
    daemons_.push_back(std::make_unique<ServerDaemon>(c, grid.cluster(c)));

  // Build the tree bottom-up: group current-level nodes `branching` at a
  // time under a new LocalAgent until one root remains.
  std::vector<LocalAgent::Child> level;
  for (auto& daemon : daemons_) level.emplace_back(daemon.get());
  tree_depth_ = 0;
  while (level.size() > 1 || tree_depth_ == 0) {
    std::vector<LocalAgent::Child> next;
    for (std::size_t i = 0; i < level.size();
         i += static_cast<std::size_t>(branching)) {
      const std::size_t end =
          std::min(level.size(), i + static_cast<std::size_t>(branching));
      std::vector<LocalAgent::Child> group(level.begin() + static_cast<long>(i),
                                           level.begin() + static_cast<long>(end));
      agents_.push_back(std::make_unique<LocalAgent>(std::move(group)));
      next.emplace_back(agents_.back().get());
    }
    level = std::move(next);
    ++tree_depth_;
  }
  root_ = std::get<LocalAgent*>(level.front());
}

HierarchicalAgent::~HierarchicalAgent() { shutdown(); }

int HierarchicalAgent::daemon_count() const {
  return static_cast<int>(daemons_.size());
}

ServerDaemon& HierarchicalAgent::daemon(ClusterId id) {
  OAGRID_REQUIRE(id >= 0 && id < daemon_count(), "daemon id out of range");
  return *daemons_[static_cast<std::size_t>(id)];
}

int HierarchicalAgent::broadcast_perf_request(int request_id, Count scenarios,
                                              Count months,
                                              sched::Heuristic heuristic,
                                              Mailbox<SedResponse>& reply) {
  PerfRequest request;
  request.request_id = request_id;
  request.scenarios = scenarios;
  request.months = months;
  request.heuristic = heuristic;
  request.reply = &reply;
  root_->inbox().send(AgentMessage{AgentBroadcast{request}});
  return daemon_count();
}

void HierarchicalAgent::send_execute(ClusterId id, int request_id,
                                     Count scenarios, Count months,
                                     sched::Heuristic heuristic,
                                     Mailbox<SedResponse>& reply) {
  OAGRID_REQUIRE(id >= 0 && id < daemon_count(), "unknown cluster id");
  ExecuteRequest request;
  request.request_id = request_id;
  request.scenarios = scenarios;
  request.months = months;
  request.heuristic = heuristic;
  request.reply = &reply;
  root_->inbox().send(AgentMessage{AgentRoute{id, request}});
}

void HierarchicalAgent::shutdown() {
  // Agents first (top-down would still be safe: mailboxes drain), then SeDs.
  for (auto& agent : agents_) agent->stop();
  for (auto& daemon : daemons_) daemon->stop();
}

}  // namespace oagrid::middleware
