#pragma once
/// \file mailbox.hpp
/// \brief Thread-safe message queue — the transport of the in-process
/// DIET-like middleware.
///
/// The real deployment the paper targets uses the DIET grid middleware over
/// CORBA; the reproduction replaces the wire with bounded-blocking mailboxes
/// between threads (one thread per server daemon). Close semantics mirror a
/// connection teardown: receivers drain remaining messages, then observe
/// end-of-stream.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace oagrid::middleware {

template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message. Returns false (drops) if the mailbox is closed.
  bool send(T message) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(message));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next message; std::nullopt once closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Blocks up to `timeout`; std::nullopt on timeout or close-and-drained.
  /// The two cases are distinguishable via closed().
  std::optional<T> receive_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    if (!ready_.wait_for(lock, timeout,
                         [this] { return !queue_.empty() || closed_; }))
      return std::nullopt;
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Non-blocking poll.
  std::optional<T> try_receive() {
    const std::scoped_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Ends the stream; pending messages stay receivable.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace oagrid::middleware
