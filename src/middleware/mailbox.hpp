#pragma once
/// \file mailbox.hpp
/// \brief Thread-safe message queue — the transport of the in-process
/// DIET-like middleware.
///
/// The real deployment the paper targets uses the DIET grid middleware over
/// CORBA; the reproduction replaces the wire with bounded-blocking mailboxes
/// between threads (one thread per server daemon). Close semantics mirror a
/// connection teardown: receivers drain remaining messages, then observe
/// end-of-stream.
///
/// Shutdown-safety notes (audited under ThreadSanitizer, see
/// tests/middleware/test_mailbox_shutdown.cpp):
///  * every condition_variable notification happens while `mutex_` is held.
///    Notifying after unlock is the usual micro-optimization, but it races
///    with destruction: a receiver woken by the predicate can observe
///    close(), drain, and destroy the mailbox while the sender is still
///    inside notify_one() on the freed condvar. Holding the lock across the
///    notify pins the mailbox alive until the notification is delivered.
///  * lost wakeups are impossible by construction: waiters re-check their
///    predicate under the same mutex that guards every state change, so a
///    notify that fires before the wait starts is observed via the
///    predicate, not the notification.
///
/// Optionally instrumented via a QueueProbe (queue depth on send, receiver
/// wait time): probes must be attached before concurrent use and stay alive
/// for the mailbox's lifetime.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace oagrid::middleware {

/// Observability hooks for one mailbox (all optional). The histograms and
/// counters typically live in obs::metrics() and may be shared by several
/// mailboxes (e.g. one fleet-wide wait-time distribution).
struct QueueProbe {
  obs::Histogram* depth_on_send = nullptr;  ///< queue length after push
  obs::Histogram* wait_us = nullptr;        ///< receiver block time (wall us)
  obs::Counter* sends = nullptr;            ///< accepted messages
  obs::Counter* dropped_sends = nullptr;    ///< sends after close()
};

template <typename T>
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Attaches observability hooks. Not thread-safe w.r.t. concurrent
  /// send/receive: attach before the mailbox goes live.
  void instrument(const QueueProbe& probe) { probe_ = probe; }

  /// Enqueues a message. Returns false (drops) if the mailbox is closed.
  bool send(T message) {
    const std::scoped_lock lock(mutex_);
    if (closed_) {
      if (probe_.dropped_sends != nullptr) probe_.dropped_sends->add();
      return false;
    }
    queue_.push_back(std::move(message));
    if (probe_.sends != nullptr) probe_.sends->add();
    if (probe_.depth_on_send != nullptr)
      probe_.depth_on_send->record(static_cast<double>(queue_.size()));
    ready_.notify_one();  // under the lock: see shutdown-safety notes above
    return true;
  }

  /// Blocks for the next message; std::nullopt once closed and drained.
  std::optional<T> receive() {
    const double entered_us = probe_wait_start();
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
    probe_wait_end(entered_us);
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Blocks up to `timeout`; std::nullopt on timeout or close-and-drained.
  /// The two cases are distinguishable via closed().
  std::optional<T> receive_for(std::chrono::milliseconds timeout) {
    const double entered_us = probe_wait_start();
    std::unique_lock lock(mutex_);
    const bool ready = ready_.wait_for(
        lock, timeout, [this] { return !queue_.empty() || closed_; });
    probe_wait_end(entered_us);
    if (!ready) return std::nullopt;
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Non-blocking poll.
  std::optional<T> try_receive() {
    const std::scoped_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Ends the stream; pending messages stay receivable.
  void close() {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
    ready_.notify_all();  // under the lock: see shutdown-safety notes above
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

 private:
  [[nodiscard]] double probe_wait_start() const {
    return probe_.wait_us != nullptr ? obs::WallClock::instance().now_us()
                                     : 0.0;
  }
  void probe_wait_end(double entered_us) const {
    if (probe_.wait_us != nullptr)
      probe_.wait_us->record(obs::WallClock::instance().now_us() - entered_us);
  }

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> queue_;
  bool closed_ = false;
  QueueProbe probe_;
};

}  // namespace oagrid::middleware
