#pragma once
/// \file master_agent.hpp
/// \brief DIET-style Master Agent: the directory through which clients reach
/// server daemons.
///
/// In DIET the Master Agent routes requests and aggregates server responses;
/// here it owns the SeD fleet, fans requests out to every daemon and is the
/// single place that knows how many responses to await.

#include <memory>
#include <vector>

#include "middleware/deployment.hpp"
#include "middleware/server_daemon.hpp"
#include "platform/grid.hpp"

namespace oagrid::middleware {

class MasterAgent final : public Deployment {
 public:
  MasterAgent() = default;

  /// Boots one SeD per cluster of the grid.
  explicit MasterAgent(const platform::Grid& grid);

  /// Registers an additional SeD for `cluster`; returns its id.
  ClusterId deploy(platform::Cluster cluster);

  [[nodiscard]] int daemon_count() const noexcept override {
    return static_cast<int>(daemons_.size());
  }
  [[nodiscard]] ServerDaemon& daemon(ClusterId id);

  /// Step (1): broadcast a performance request; responses arrive at `reply`.
  /// Returns the number of daemons contacted.
  int broadcast_perf_request(int request_id, Count scenarios, Count months,
                             sched::Heuristic heuristic,
                             Mailbox<SedResponse>& reply) override;

  /// Step (5): send one execution request to one daemon.
  void send_execute(ClusterId id, int request_id, Count scenarios, Count months,
                    sched::Heuristic heuristic,
                    Mailbox<SedResponse>& reply) override;

  /// Stops every daemon (also done on destruction).
  void shutdown();

 private:
  std::vector<std::unique_ptr<ServerDaemon>> daemons_;
};

}  // namespace oagrid::middleware
