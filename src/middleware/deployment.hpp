#pragma once
/// \file deployment.hpp
/// \brief The client-facing middleware interface.
///
/// DIET deployments range from one flat Master Agent to a tree of Local
/// Agents; the client's Figure 9 protocol is identical against either, so it
/// programs against this interface. MasterAgent (flat fleet) and
/// HierarchicalAgent (LA tree) both implement it.

#include "middleware/messages.hpp"

namespace oagrid::middleware {

class Deployment {
 public:
  virtual ~Deployment() = default;

  /// Number of server daemons reachable through this deployment.
  [[nodiscard]] virtual int daemon_count() const = 0;

  /// Step (1): fan the performance request out to every daemon; responses
  /// arrive at `reply`. Returns the number of daemons contacted.
  virtual int broadcast_perf_request(int request_id, Count scenarios,
                                     Count months, sched::Heuristic heuristic,
                                     Mailbox<SedResponse>& reply) = 0;

  /// Step (5): deliver one execution request to the daemon serving cluster
  /// `id`. Throws on an unknown id.
  virtual void send_execute(ClusterId id, int request_id, Count scenarios,
                            Count months, sched::Heuristic heuristic,
                            Mailbox<SedResponse>& reply) = 0;
};

}  // namespace oagrid::middleware
