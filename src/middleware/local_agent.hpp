#pragma once
/// \file local_agent.hpp
/// \brief DIET's hierarchical agents: a tree of Local Agents (LAs) between
/// the Master Agent and the server daemons.
///
/// Real DIET deployments scale by structuring agents as a tree — the MA
/// talks to a few LAs, each LA to a few children, leaves to SeDs — so no
/// single agent fans out to hundreds of servers. Each LocalAgent here is a
/// genuine thread with a mailbox: broadcasts travel down the tree hop by
/// hop, and targeted execution requests are routed by cluster-id ownership.
///
/// HierarchicalAgent assembles the whole deployment (SeD fleet + balanced LA
/// tree of a given branching factor) and exposes the client-facing
/// Deployment interface, so a Client cannot tell it from a flat MasterAgent
/// (tests assert exactly that).

#include <memory>
#include <thread>
#include <variant>
#include <vector>

#include "middleware/deployment.hpp"
#include "middleware/server_daemon.hpp"
#include "platform/grid.hpp"

namespace oagrid::middleware {

/// Internal agent-to-agent message set: a broadcast that keeps fanning out,
/// a routed execute, and shutdown.
struct AgentBroadcast {
  PerfRequest request;
};
struct AgentRoute {
  ClusterId target = -1;
  ExecuteRequest request;
};
struct AgentShutdown {};
using AgentMessage = std::variant<AgentBroadcast, AgentRoute, AgentShutdown>;

class LocalAgent {
 public:
  /// A child is either a server daemon (leaf) or another agent (subtree).
  using Child = std::variant<ServerDaemon*, LocalAgent*>;

  explicit LocalAgent(std::vector<Child> children);
  ~LocalAgent();

  LocalAgent(const LocalAgent&) = delete;
  LocalAgent& operator=(const LocalAgent&) = delete;

  [[nodiscard]] Mailbox<AgentMessage>& inbox() noexcept { return inbox_; }

  /// Cluster ids served by this subtree (sorted).
  [[nodiscard]] const std::vector<ClusterId>& served() const noexcept {
    return served_;
  }

  /// Number of server daemons below this agent.
  [[nodiscard]] int daemon_count() const noexcept {
    return static_cast<int>(served_.size());
  }

  void stop();

 private:
  void serve();
  void handle(const AgentBroadcast& broadcast);
  void handle(const AgentRoute& route);

  std::vector<Child> children_;
  std::vector<ClusterId> served_;
  std::vector<std::vector<ClusterId>> child_served_;
  Mailbox<AgentMessage> inbox_;
  std::thread thread_;
  bool stopped_ = false;
};

/// A full hierarchical deployment: one SeD per cluster and a balanced agent
/// tree with the given branching factor above them. Satisfies Deployment.
class HierarchicalAgent final : public Deployment {
 public:
  HierarchicalAgent(const platform::Grid& grid, int branching = 2);
  ~HierarchicalAgent() override;

  [[nodiscard]] int daemon_count() const override;
  int broadcast_perf_request(int request_id, Count scenarios, Count months,
                             sched::Heuristic heuristic,
                             Mailbox<SedResponse>& reply) override;
  void send_execute(ClusterId id, int request_id, Count scenarios, Count months,
                    sched::Heuristic heuristic,
                    Mailbox<SedResponse>& reply) override;

  /// Depth of the agent tree (1 = a single root above the SeDs).
  [[nodiscard]] int tree_depth() const noexcept { return tree_depth_; }
  /// Direct daemon access (operations tooling, fault injection in tests).
  [[nodiscard]] ServerDaemon& daemon(ClusterId id);
  /// Total number of LocalAgents in the tree.
  [[nodiscard]] int agent_count() const noexcept {
    return static_cast<int>(agents_.size());
  }

  void shutdown();

 private:
  std::vector<std::unique_ptr<ServerDaemon>> daemons_;
  std::vector<std::unique_ptr<LocalAgent>> agents_;
  LocalAgent* root_ = nullptr;
  int tree_depth_ = 0;
};

}  // namespace oagrid::middleware
