#pragma once
/// \file client.hpp
/// \brief The campaign client: drives the full six-step protocol of the
/// paper's Figure 9 against a MasterAgent.

#include <chrono>

#include "appmodel/ensemble.hpp"
#include "middleware/deployment.hpp"
#include "sched/repartition.hpp"
#include "sim/grid_sim.hpp"

namespace oagrid::middleware {

/// Outcome of one campaign submission.
struct CampaignResult {
  std::vector<sched::PerformanceVector> performance;  ///< per cluster (step 3)
  sched::Repartition repartition;                     ///< step 4
  std::vector<ExecuteResponse> executions;            ///< step 6 reports
  Seconds makespan = 0.0;  ///< max over executed clusters
};

class Client {
 public:
  /// Works against any deployment shape — flat MasterAgent or a
  /// HierarchicalAgent tree; the protocol is identical.
  explicit Client(Deployment& agent) : agent_(agent) {}

  /// Runs steps 1-6 synchronously and returns the aggregated result. Throws
  /// if a daemon fails to answer (closed mailbox).
  [[nodiscard]] CampaignResult submit(const appmodel::Ensemble& ensemble,
                                      sched::Heuristic heuristic);

  /// Fault-tolerant variant for real grids: daemons that do not answer a
  /// protocol step within `step_timeout` are dropped from the campaign (the
  /// repartition runs over the responsive clusters only — a crashed SeD
  /// must not strand the whole experiment). Throws only when *no* cluster
  /// answers step 3.
  struct FaultTolerantResult {
    CampaignResult campaign;               ///< over responsive clusters
    std::vector<ClusterId> responsive;     ///< campaign index -> real id
    std::vector<ClusterId> unresponsive;   ///< dropped daemons
  };
  [[nodiscard]] FaultTolerantResult submit_with_deadline(
      const appmodel::Ensemble& ensemble, sched::Heuristic heuristic,
      std::chrono::milliseconds step_timeout);

  /// Data-staging campaign parameters: a network model plus per-transfer
  /// deadline budget (simulated seconds; kInfiniteTime = no budget).
  struct StagingOptions {
    sim::GridNetworkOptions data;
    Seconds transfer_deadline = kInfiniteTime;
  };

  /// Network-aware outcome: the protocol result plus the simulated data
  /// movement around it.
  struct StagedCampaignResult {
    CampaignResult campaign;  ///< compute-only makespans, as reported by SeDs
    std::vector<Seconds> staging_seconds;     ///< per cluster, before step 5
    std::vector<Seconds> collection_seconds;  ///< per cluster, after step 6
    Seconds makespan = 0.0;  ///< staging + compute + collection, max
    double transfer_mb = 0.0;
    int deadline_misses = 0;  ///< transfers over options.transfer_deadline
  };

  /// Steps 1-6 with data movement made explicit: step 4 runs the charged
  /// Algorithm 1 (each candidate cluster pays its staging/collection over
  /// `options.data.network`), inputs are staged before the execute
  /// dispatch, and results ship home afterwards — all in simulated time via
  /// the fair-share allocator. With no network attached (or a free one)
  /// this degrades exactly to submit(): same repartition, same makespan.
  [[nodiscard]] StagedCampaignResult submit_staged(
      const appmodel::Ensemble& ensemble, sched::Heuristic heuristic,
      const StagingOptions& options);

 private:
  Deployment& agent_;
  int next_request_id_ = 1;
};

}  // namespace oagrid::middleware
