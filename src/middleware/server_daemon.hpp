#pragma once
/// \file server_daemon.hpp
/// \brief A DIET-style Server Daemon (SeD): one per cluster, one thread.
///
/// The SeD owns its cluster description and answers two request kinds:
/// performance estimation (simulating 1..NS scenarios locally, step 2 of
/// Figure 9) and execution (step 6, here: running the discrete-event
/// simulation of its assigned share). Requests arrive through a mailbox;
/// responses go to the reply mailbox carried by each request, so multiple
/// concurrent clients are possible.

#include <atomic>
#include <thread>

#include "middleware/mailbox.hpp"
#include "middleware/messages.hpp"
#include "platform/cluster.hpp"

namespace oagrid::middleware {

class ServerDaemon {
 public:
  /// Takes ownership of the cluster description; the daemon thread starts
  /// immediately.
  ServerDaemon(ClusterId id, platform::Cluster cluster);

  /// Joins the daemon thread (sends shutdown if still running).
  ~ServerDaemon();

  ServerDaemon(const ServerDaemon&) = delete;
  ServerDaemon& operator=(const ServerDaemon&) = delete;

  [[nodiscard]] ClusterId id() const noexcept { return id_; }
  [[nodiscard]] const platform::Cluster& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] Mailbox<SedRequest>& inbox() noexcept { return inbox_; }

  /// Graceful stop: shutdown message + join. Idempotent and safe against
  /// concurrent stop() calls (an atomic claims the join exactly once).
  void stop();

 private:
  void serve();
  void handle(const PerfRequest& request);
  void handle(const ExecuteRequest& request);

  ClusterId id_;
  platform::Cluster cluster_;
  Mailbox<SedRequest> inbox_;
  std::thread thread_;
  std::atomic<bool> stopped_{false};
};

}  // namespace oagrid::middleware
