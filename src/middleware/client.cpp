#include "middleware/client.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "common/log.hpp"
#include "middleware/mailbox.hpp"
#include "net/fairshare.hpp"
#include "obs/obs.hpp"

namespace oagrid::middleware {

namespace {

/// Attaches the client-side reply mailbox to the fleet-wide metrics (the
/// "downstream" direction of the Figure 9 protocol). No-op when
/// observability is off.
void instrument_reply(Mailbox<SedResponse>& reply) {
  if (!obs::enabled()) return;
  QueueProbe probe;
  probe.depth_on_send = &obs::metrics().histogram("middleware.reply.depth");
  probe.wait_us = &obs::metrics().histogram("middleware.reply.wait_us");
  probe.sends = &obs::metrics().counter("middleware.reply.sends");
  reply.instrument(probe);
}

/// ScopedTimer target for one protocol step, or nullptr when off.
obs::Histogram* step_histogram(const char* step) {
  if (!obs::enabled()) return nullptr;
  return &obs::metrics().histogram(std::string("middleware.") + step + "_us");
}

}  // namespace

CampaignResult Client::submit(const appmodel::Ensemble& ensemble,
                              sched::Heuristic heuristic) {
  ensemble.validate();
  OAGRID_REQUIRE(agent_.daemon_count() >= 1, "no server daemon deployed");
  const int request_id = next_request_id_++;
  if (obs::enabled()) obs::metrics().counter("middleware.campaigns").add();
  obs::Span campaign_span(obs::enabled() ? &obs::trace_buffer() : nullptr,
                          "campaign #" + std::to_string(request_id),
                          "middleware");
  CampaignResult result;

  // Steps (1)-(3): broadcast the request, gather one performance vector per
  // cluster, whatever the arrival order.
  Mailbox<SedResponse> reply;
  instrument_reply(reply);
  {
    obs::ScopedTimer step_timer(step_histogram("step1_3"));
    obs::Span step_span(obs::enabled() ? &obs::trace_buffer() : nullptr,
                        "steps 1-3: perf vectors", "middleware");
    const int expected = agent_.broadcast_perf_request(
        request_id, ensemble.scenarios, ensemble.months, heuristic, reply);
    result.performance.resize(static_cast<std::size_t>(expected));
    for (int received = 0; received < expected; ++received) {
      std::optional<SedResponse> response = reply.receive();
      if (!response)
        throw std::runtime_error("oagrid: SeD channel closed during step 3");
      const auto* perf = std::get_if<PerfResponse>(&*response);
      if (perf == nullptr || perf->request_id != request_id)
        throw std::runtime_error("oagrid: unexpected response during step 3");
      result.performance[static_cast<std::size_t>(perf->cluster)] =
          perf->performance;
    }
    OAGRID_INFO << "client: step 3 complete, " << expected
                << " performance vector(s) received";
  }

  // Step (4): Algorithm 1 on the client.
  {
    obs::ScopedTimer step_timer(step_histogram("step4"));
    result.repartition =
        sched::greedy_repartition(result.performance, ensemble.scenarios);
  }

  // Steps (5)-(6): dispatch each cluster's share (clusters with zero
  // scenarios are not contacted, as in the paper's flow), then collect the
  // execution reports.
  obs::ScopedTimer step_timer(step_histogram("step5_6"));
  obs::Span step_span(obs::enabled() ? &obs::trace_buffer() : nullptr,
                      "steps 5-6: execution", "middleware");
  int outstanding = 0;
  for (ClusterId c = 0; c < agent_.daemon_count(); ++c) {
    const Count share =
        result.repartition.dags_per_cluster[static_cast<std::size_t>(c)];
    if (share == 0) continue;
    agent_.send_execute(c, request_id, share, ensemble.months, heuristic,
                        reply);
    ++outstanding;
  }

  for (int received = 0; received < outstanding; ++received) {
    std::optional<SedResponse> response = reply.receive();
    if (!response)
      throw std::runtime_error("oagrid: SeD channel closed during step 6");
    const auto* exec = std::get_if<ExecuteResponse>(&*response);
    if (exec == nullptr || exec->request_id != request_id)
      throw std::runtime_error("oagrid: unexpected response during step 6");
    result.executions.push_back(*exec);
    result.makespan = std::max(result.makespan, exec->makespan);
  }
  std::sort(result.executions.begin(), result.executions.end(),
            [](const ExecuteResponse& a, const ExecuteResponse& b) {
              return a.cluster < b.cluster;
            });
  OAGRID_INFO << "client: campaign finished, makespan " << result.makespan
              << " s";
  return result;
}

Client::StagedCampaignResult Client::submit_staged(
    const appmodel::Ensemble& ensemble, sched::Heuristic heuristic,
    const StagingOptions& options) {
  ensemble.validate();
  OAGRID_REQUIRE(agent_.daemon_count() >= 1, "no server daemon deployed");
  const auto n = static_cast<std::size_t>(agent_.daemon_count());
  const sim::GridNetworkOptions& data = options.data;
  if (data.active()) {
    OAGRID_REQUIRE(data.network.cluster_count() == agent_.daemon_count(),
                   "network model does not cover the deployed clusters");
    OAGRID_REQUIRE(data.home >= 0 && data.home < agent_.daemon_count(),
                   "home cluster outside the deployment");
    OAGRID_REQUIRE(data.stage_mb_per_scenario >= 0.0 &&
                       data.collect_mb_per_scenario >= 0.0,
                   "transfer volumes must be >= 0");
  }
  OAGRID_REQUIRE(options.transfer_deadline > 0.0,
                 "transfer deadline must be positive");
  const int request_id = next_request_id_++;
  if (obs::enabled()) obs::metrics().counter("middleware.campaigns").add();
  obs::Span campaign_span(obs::enabled() ? &obs::trace_buffer() : nullptr,
                          "staged campaign #" + std::to_string(request_id),
                          "middleware");

  StagedCampaignResult result;
  result.staging_seconds.assign(n, 0.0);
  result.collection_seconds.assign(n, 0.0);
  CampaignResult& campaign = result.campaign;

  // Steps (1)-(3): identical to submit().
  Mailbox<SedResponse> reply;
  instrument_reply(reply);
  {
    obs::ScopedTimer step_timer(step_histogram("step1_3"));
    const int expected = agent_.broadcast_perf_request(
        request_id, ensemble.scenarios, ensemble.months, heuristic, reply);
    campaign.performance.resize(static_cast<std::size_t>(expected));
    for (int received = 0; received < expected; ++received) {
      std::optional<SedResponse> response = reply.receive();
      if (!response)
        throw std::runtime_error("oagrid: SeD channel closed during step 3");
      const auto* perf = std::get_if<PerfResponse>(&*response);
      if (perf == nullptr || perf->request_id != request_id)
        throw std::runtime_error("oagrid: unexpected response during step 3");
      campaign.performance[static_cast<std::size_t>(perf->cluster)] =
          perf->performance;
    }
  }

  // Step (4): Algorithm 1, each candidate charged the serialized cost of
  // moving its files over the home links.
  {
    obs::ScopedTimer step_timer(step_histogram("step4"));
    const auto charge = [&](std::size_t c, Count k) -> Seconds {
      if (!data.active() || k <= 0) return 0.0;
      const auto dst = static_cast<ClusterId>(c);
      Seconds total = 0.0;
      if (data.stage_mb_per_scenario > 0.0)
        total += data.network.transfer_time(
            data.home, dst,
            static_cast<double>(k) * data.stage_mb_per_scenario);
      if (data.collect_mb_per_scenario > 0.0)
        total += data.network.transfer_time(
            dst, data.home,
            static_cast<double>(k) * data.collect_mb_per_scenario);
      return total;
    };
    campaign.repartition = sched::greedy_repartition_charged(
        campaign.performance, ensemble.scenarios, charge);
  }

  // Input staging: every scenario's restart/forcing files leave home at
  // t = 0, fair-shared per link; a cluster may start only once its last
  // input landed.
  const auto count_misses = [&](const std::vector<net::TransferRequest>& reqs,
                                const net::TransferPlan& plan) {
    if (options.transfer_deadline == kInfiniteTime) return;
    for (std::size_t i = 0; i < reqs.size(); ++i)
      if (plan.results[i].finish - reqs[i].start > options.transfer_deadline)
        ++result.deadline_misses;
  };
  if (data.active() && data.stage_mb_per_scenario > 0.0) {
    std::vector<net::TransferRequest> staging;
    for (std::size_t c = 0; c < n; ++c)
      for (Count s = 0; s < campaign.repartition.dags_per_cluster[c]; ++s)
        staging.push_back({data.home, static_cast<ClusterId>(c),
                           data.stage_mb_per_scenario, 0.0});
    const net::TransferPlan plan =
        net::simulate_transfers(data.network, staging);
    result.transfer_mb += plan.total_mb;
    for (std::size_t i = 0; i < staging.size(); ++i) {
      const auto c = static_cast<std::size_t>(staging[i].dst);
      result.staging_seconds[c] =
          std::max(result.staging_seconds[c], plan.results[i].finish);
    }
    count_misses(staging, plan);
  }

  // Steps (5)-(6): identical to submit(), over the charged repartition.
  obs::ScopedTimer step_timer(step_histogram("step5_6"));
  int outstanding = 0;
  for (ClusterId c = 0; c < agent_.daemon_count(); ++c) {
    const Count share =
        campaign.repartition.dags_per_cluster[static_cast<std::size_t>(c)];
    if (share == 0) continue;
    agent_.send_execute(c, request_id, share, ensemble.months, heuristic,
                        reply);
    ++outstanding;
  }
  for (int received = 0; received < outstanding; ++received) {
    std::optional<SedResponse> response = reply.receive();
    if (!response)
      throw std::runtime_error("oagrid: SeD channel closed during step 6");
    const auto* exec = std::get_if<ExecuteResponse>(&*response);
    if (exec == nullptr || exec->request_id != request_id)
      throw std::runtime_error("oagrid: unexpected response during step 6");
    campaign.executions.push_back(*exec);
    campaign.makespan = std::max(campaign.makespan, exec->makespan);
  }
  std::sort(campaign.executions.begin(), campaign.executions.end(),
            [](const ExecuteResponse& a, const ExecuteResponse& b) {
              return a.cluster < b.cluster;
            });

  // Result collection: each cluster ships its archives home the moment its
  // (staging-delayed) compute drains.
  if (data.active() && data.collect_mb_per_scenario > 0.0) {
    std::vector<net::TransferRequest> collection;
    for (const ExecuteResponse& exec : campaign.executions) {
      const auto c = static_cast<std::size_t>(exec.cluster);
      const Seconds done = result.staging_seconds[c] + exec.makespan;
      for (Count s = 0; s < campaign.repartition.dags_per_cluster[c]; ++s)
        collection.push_back({exec.cluster, data.home,
                              data.collect_mb_per_scenario, done});
    }
    const net::TransferPlan plan =
        net::simulate_transfers(data.network, collection);
    result.transfer_mb += plan.total_mb;
    for (std::size_t i = 0; i < collection.size(); ++i) {
      const auto c = static_cast<std::size_t>(collection[i].src);
      result.collection_seconds[c] =
          std::max(result.collection_seconds[c],
                   plan.results[i].finish - collection[i].start);
    }
    count_misses(collection, plan);
  }

  for (const ExecuteResponse& exec : campaign.executions) {
    const auto c = static_cast<std::size_t>(exec.cluster);
    result.makespan = std::max(result.makespan,
                               result.staging_seconds[c] + exec.makespan +
                                   result.collection_seconds[c]);
  }
  if (result.deadline_misses > 0)
    OAGRID_WARN << "client: " << result.deadline_misses
                << " transfer(s) exceeded the " << options.transfer_deadline
                << " s deadline";
  OAGRID_INFO << "client: staged campaign finished, makespan "
              << result.makespan << " s (" << result.transfer_mb
              << " MB moved)";
  return result;
}

Client::FaultTolerantResult Client::submit_with_deadline(
    const appmodel::Ensemble& ensemble, sched::Heuristic heuristic,
    std::chrono::milliseconds step_timeout) {
  ensemble.validate();
  OAGRID_REQUIRE(agent_.daemon_count() >= 1, "no server daemon deployed");
  OAGRID_REQUIRE(step_timeout.count() > 0, "timeout must be positive");
  const int request_id = next_request_id_++;
  FaultTolerantResult result;

  // Steps (1)-(3) with a step deadline: collect whatever arrives in time.
  Mailbox<SedResponse> reply;
  instrument_reply(reply);
  const int expected = agent_.broadcast_perf_request(
      request_id, ensemble.scenarios, ensemble.months, heuristic, reply);
  const auto deadline = std::chrono::steady_clock::now() + step_timeout;
  std::vector<sched::PerformanceVector> vectors(
      static_cast<std::size_t>(expected));
  std::vector<bool> answered(static_cast<std::size_t>(expected), false);
  int received = 0;
  while (received < expected) {
    const auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (budget.count() <= 0) break;
    std::optional<SedResponse> response = reply.receive_for(budget);
    if (!response) break;
    const auto* perf = std::get_if<PerfResponse>(&*response);
    if (perf == nullptr || perf->request_id != request_id) continue;  // stale
    vectors[static_cast<std::size_t>(perf->cluster)] = perf->performance;
    answered[static_cast<std::size_t>(perf->cluster)] = true;
    ++received;
  }
  for (ClusterId c = 0; c < expected; ++c) {
    if (answered[static_cast<std::size_t>(c)]) {
      result.responsive.push_back(c);
      result.campaign.performance.push_back(
          std::move(vectors[static_cast<std::size_t>(c)]));
    } else {
      result.unresponsive.push_back(c);
    }
  }
  if (result.responsive.empty())
    throw std::runtime_error("oagrid: no cluster answered step 3 in time");
  OAGRID_WARN << "client: " << result.unresponsive.size()
              << " daemon(s) dropped after the step-3 deadline";

  // Step (4) over the responsive subset.
  result.campaign.repartition =
      sched::greedy_repartition(result.campaign.performance, ensemble.scenarios);

  // Steps (5)-(6), again under a deadline; silent executors are reported
  // unresponsive (their share would be resubmitted by a real operator).
  int outstanding = 0;
  for (std::size_t i = 0; i < result.responsive.size(); ++i) {
    const Count share = result.campaign.repartition.dags_per_cluster[i];
    if (share == 0) continue;
    agent_.send_execute(result.responsive[i], request_id, share,
                        ensemble.months, heuristic, reply);
    ++outstanding;
  }
  const auto exec_deadline = std::chrono::steady_clock::now() + step_timeout;
  for (int got = 0; got < outstanding;) {
    const auto budget = std::chrono::duration_cast<std::chrono::milliseconds>(
        exec_deadline - std::chrono::steady_clock::now());
    if (budget.count() <= 0) break;
    std::optional<SedResponse> response = reply.receive_for(budget);
    if (!response) break;
    const auto* exec = std::get_if<ExecuteResponse>(&*response);
    if (exec == nullptr || exec->request_id != request_id) continue;
    result.campaign.executions.push_back(*exec);
    result.campaign.makespan =
        std::max(result.campaign.makespan, exec->makespan);
    ++got;
  }
  std::sort(result.campaign.executions.begin(),
            result.campaign.executions.end(),
            [](const ExecuteResponse& a, const ExecuteResponse& b) {
              return a.cluster < b.cluster;
            });
  return result;
}

}  // namespace oagrid::middleware
