#pragma once
/// \file messages.hpp
/// \brief Typed messages of the Figure 9 protocol.
///
/// Step numbering follows the paper: (1) client sends NS and NM to the
/// clusters; (2) each cluster computes its performance vector; (3) vectors
/// return to the client; (4) the client computes the repartition; (5) the
/// client sends execution requests; (6) clusters execute their share.

#include <variant>

#include "common/types.hpp"
#include "sched/heuristics.hpp"
#include "sched/repartition.hpp"

namespace oagrid::middleware {

template <typename T>
class Mailbox;

/// Step (3) payload.
struct PerfResponse {
  int request_id = 0;
  ClusterId cluster = 0;
  sched::PerformanceVector performance;
};

/// Step (6) completion report.
struct ExecuteResponse {
  int request_id = 0;
  ClusterId cluster = 0;
  Count scenarios_run = 0;
  Seconds makespan = 0.0;
  Count mains_executed = 0;
  Count posts_executed = 0;
  /// Busy fraction of the allocated processor-seconds (see SimResult).
  double group_utilization = 0.0;
};

/// Streamed during step (6) when the request asks for it: how far the
/// cluster's campaign has advanced (in completed main tasks and simulated
/// time) — what a monitoring dashboard would subscribe to during the real
/// multi-week execution.
struct ProgressUpdate {
  int request_id = 0;
  ClusterId cluster = 0;
  Count months_done = 0;
  Count months_total = 0;
  Seconds simulated_time = 0.0;
};

using SedResponse = std::variant<PerfResponse, ExecuteResponse, ProgressUpdate>;

/// Step (1) request: "compute the time needed to execute from 1 to NS
/// simulations".
struct PerfRequest {
  int request_id = 0;
  Count scenarios = 0;  ///< NS
  Count months = 0;     ///< NM
  sched::Heuristic heuristic = sched::Heuristic::kKnapsack;
  Mailbox<SedResponse>* reply = nullptr;
};

/// Step (5) request: execute `scenarios` simulations. Setting
/// `progress_every` > 0 asks for a ProgressUpdate on `reply` each time that
/// many main tasks complete.
struct ExecuteRequest {
  int request_id = 0;
  Count scenarios = 0;
  Count months = 0;
  sched::Heuristic heuristic = sched::Heuristic::kKnapsack;
  Count progress_every = 0;
  Mailbox<SedResponse>* reply = nullptr;
};

struct ShutdownRequest {};

using SedRequest = std::variant<PerfRequest, ExecuteRequest, ShutdownRequest>;

}  // namespace oagrid::middleware
