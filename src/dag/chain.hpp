#pragma once
/// \file chain.hpp
/// \brief Replication of a template DAG into a 1D chain ("1D-mesh of
/// identical DAGs", the paper's experiment structure).
///
/// A scenario is the same monthly DAG stamped NM times, with cross-instance
/// edges carrying the restart state: the paper's Figure 1 shows `pcr_n ->
/// {caif, mp}_{n+1}` at 120 MB. chain_of() performs that stamping for any
/// template and any set of cross links, which is exactly the "independent
/// chains of identical DAGs composed of moldable tasks" generalization the
/// paper lists as future work.

#include <string>
#include <vector>

#include "dag/dag.hpp"

namespace oagrid::dag {

/// A dependency between consecutive instances of the template: node
/// `from_prev` of instance m feeds node `to_next` of instance m+1.
struct CrossLink {
  NodeId from_prev = kInvalidNode;
  NodeId to_next = kInvalidNode;
  double data_mb = 0.0;
};

/// Result of stamping: the chained DAG plus the mapping from (instance,
/// template-node) to the node id in the chained DAG.
struct ChainedDag {
  Dag graph;
  int instances = 0;
  int template_size = 0;

  /// Node id of template node `node` in instance `instance`.
  [[nodiscard]] NodeId at(int instance, NodeId node) const {
    OAGRID_REQUIRE(instance >= 0 && instance < instances, "instance out of range");
    OAGRID_REQUIRE(node >= 0 && node < template_size, "template node out of range");
    return instance * template_size + node;
  }
  /// Inverse mapping.
  [[nodiscard]] int instance_of(NodeId id) const { return id / template_size; }
  [[nodiscard]] NodeId template_node_of(NodeId id) const {
    return id % template_size;
  }
};

/// Stamps `instances` copies of `tmpl` (which must be frozen) and links
/// consecutive copies through `links`. Node names get a "#<instance>" suffix.
/// The result is frozen.
[[nodiscard]] ChainedDag chain_of(const Dag& tmpl, int instances,
                                  const std::vector<CrossLink>& links);

}  // namespace oagrid::dag
