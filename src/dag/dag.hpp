#pragma once
/// \file dag.hpp
/// \brief Generic workflow DAG with rigid and moldable tasks.
///
/// The paper models the application as "1D-meshes of identical DAGs composed
/// of parallel tasks": each monthly simulation is a small DAG whose main task
/// is *moldable* (it can run on any processor count in [min_procs,
/// max_procs], with a platform-dependent execution time), and consecutive
/// months are chained by restart-file dependencies. This module provides the
/// DAG substrate those models are built on: construction, validation,
/// topological order, level decomposition and critical-path analysis.
///
/// Execution times of moldable tasks are *not* stored here — they depend on
/// the platform (see platform::Cluster). The DAG stores structure plus a
/// nominal reference duration used for platform-independent analysis; all
/// time-dependent queries accept a duration functor.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace oagrid::dag {

/// Whether a task's processor allotment is fixed or chosen by the scheduler.
enum class TaskShape {
  kRigid,     ///< runs on exactly `procs` processors
  kMoldable,  ///< scheduler picks an allotment in [min_procs, max_procs]
};

/// Node identifier within one Dag (dense, 0-based).
using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

/// Static description of one task.
struct TaskSpec {
  std::string name;                    ///< human-readable label ("pcr", ...)
  TaskShape shape = TaskShape::kRigid;
  Seconds ref_duration = 0.0;          ///< nominal duration (reference platform)
  ProcCount procs = 1;                 ///< rigid width
  ProcCount min_procs = 1;             ///< moldable lower bound
  ProcCount max_procs = 1;             ///< moldable upper bound
};

/// A dependency edge, annotated with the data volume it transports (the
/// paper's inter-month restart exchange is 120 MB).
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double data_mb = 0.0;
};

/// Immutable-after-build directed acyclic graph of tasks.
///
/// Build with add_task()/add_edge(), then call freeze(). freeze() validates
/// (no dangling ids, no duplicate edges, acyclicity) and precomputes the
/// topological order and level structure; queries before freeze() on those
/// throw. A frozen Dag is cheap to copy.
class Dag {
 public:
  Dag() = default;

  /// Adds a node; returns its id. Throws if the spec is malformed (negative
  /// duration, inverted moldable range, non-positive widths).
  NodeId add_task(TaskSpec spec);

  /// Adds a dependency edge from -> to. Throws on unknown ids, self-loops or
  /// duplicate edges. Cycles are detected at freeze() time.
  void add_edge(NodeId from, NodeId to, double data_mb = 0.0);

  /// Validates and seals the graph. Throws std::invalid_argument naming the
  /// first cycle-participating node if the graph is cyclic.
  void freeze();

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(tasks_.size());
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  [[nodiscard]] const TaskSpec& task(NodeId id) const;
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }
  [[nodiscard]] std::span<const NodeId> successors(NodeId id) const;
  [[nodiscard]] std::span<const NodeId> predecessors(NodeId id) const;

  /// Nodes with no predecessors / no successors (frozen only).
  [[nodiscard]] std::vector<NodeId> entry_nodes() const;
  [[nodiscard]] std::vector<NodeId> exit_nodes() const;

  /// A valid topological order (frozen only).
  [[nodiscard]] std::span<const NodeId> topological_order() const;

  /// Level (longest path length in hops from any entry) per node.
  [[nodiscard]] std::span<const int> levels() const;

  /// Length of the longest path where each node costs duration(id). Edges
  /// cost nothing (the paper folds data-access time into task durations,
  /// §4.1). Frozen only.
  [[nodiscard]] Seconds critical_path(
      const std::function<Seconds(NodeId)>& duration) const;

  /// Critical path using the nominal ref_duration of each task.
  [[nodiscard]] Seconds critical_path_ref() const;

  /// Sum over nodes of duration(id) * procs — the sequential "area" used by
  /// CPA-style heuristics. Moldable tasks contribute with `allotment(id)`
  /// processors.
  [[nodiscard]] double work_area(
      const std::function<Seconds(NodeId)>& duration,
      const std::function<ProcCount(NodeId)>& allotment) const;

  /// Node lookup by name; returns kInvalidNode if absent, throws if the name
  /// is ambiguous.
  [[nodiscard]] NodeId find_by_name(std::string_view name) const;

 private:
  void require_frozen(const char* what) const;
  void require_node(NodeId id) const;

  std::vector<TaskSpec> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::vector<NodeId> topo_;
  std::vector<int> level_;
  bool frozen_ = false;
};

}  // namespace oagrid::dag
