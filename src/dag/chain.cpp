#include "dag/chain.hpp"

namespace oagrid::dag {

ChainedDag chain_of(const Dag& tmpl, int instances,
                    const std::vector<CrossLink>& links) {
  OAGRID_REQUIRE(tmpl.frozen(), "template DAG must be frozen");
  OAGRID_REQUIRE(instances >= 1, "need at least one instance");
  for (const auto& link : links) {
    OAGRID_REQUIRE(link.from_prev >= 0 && link.from_prev < tmpl.node_count(),
                   "cross-link source outside template");
    OAGRID_REQUIRE(link.to_next >= 0 && link.to_next < tmpl.node_count(),
                   "cross-link target outside template");
  }

  ChainedDag out;
  out.instances = instances;
  out.template_size = tmpl.node_count();

  for (int m = 0; m < instances; ++m) {
    for (NodeId v = 0; v < tmpl.node_count(); ++v) {
      TaskSpec spec = tmpl.task(v);
      spec.name += "#" + std::to_string(m);
      out.graph.add_task(std::move(spec));
    }
  }
  for (int m = 0; m < instances; ++m)
    for (const auto& e : tmpl.edges())
      out.graph.add_edge(out.at(m, e.from), out.at(m, e.to), e.data_mb);
  for (int m = 0; m + 1 < instances; ++m)
    for (const auto& link : links)
      out.graph.add_edge(out.at(m, link.from_prev), out.at(m + 1, link.to_next),
                         link.data_mb);
  out.graph.freeze();
  return out;
}

}  // namespace oagrid::dag
