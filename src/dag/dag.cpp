#include "dag/dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace oagrid::dag {

NodeId Dag::add_task(TaskSpec spec) {
  OAGRID_REQUIRE(!frozen_, "cannot add tasks to a frozen DAG");
  OAGRID_REQUIRE(spec.ref_duration >= 0.0, "task duration must be >= 0");
  if (spec.shape == TaskShape::kRigid) {
    OAGRID_REQUIRE(spec.procs >= 1, "rigid task width must be >= 1");
  } else {
    OAGRID_REQUIRE(spec.min_procs >= 1 && spec.min_procs <= spec.max_procs,
                   "moldable range must satisfy 1 <= min <= max");
  }
  tasks_.push_back(std::move(spec));
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<NodeId>(tasks_.size()) - 1;
}

void Dag::add_edge(NodeId from, NodeId to, double data_mb) {
  OAGRID_REQUIRE(!frozen_, "cannot add edges to a frozen DAG");
  require_node(from);
  require_node(to);
  OAGRID_REQUIRE(from != to, "self-loop edge");
  OAGRID_REQUIRE(data_mb >= 0.0, "negative data volume");
  const auto& out = succ_[static_cast<std::size_t>(from)];
  OAGRID_REQUIRE(std::find(out.begin(), out.end(), to) == out.end(),
                 "duplicate edge");
  edges_.push_back(Edge{from, to, data_mb});
  succ_[static_cast<std::size_t>(from)].push_back(to);
  pred_[static_cast<std::size_t>(to)].push_back(from);
}

void Dag::freeze() {
  OAGRID_REQUIRE(!frozen_, "DAG already frozen");
  const auto n = static_cast<std::size_t>(node_count());
  // Kahn's algorithm; also yields levels (longest hop distance from entries).
  std::vector<int> indeg(n, 0);
  for (const auto& e : edges_) ++indeg[static_cast<std::size_t>(e.to)];
  topo_.clear();
  topo_.reserve(n);
  level_.assign(n, 0);
  std::vector<NodeId> ready;
  for (std::size_t v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push_back(static_cast<NodeId>(v));
  std::size_t head = 0;
  while (head < ready.size()) {
    const NodeId v = ready[head++];
    topo_.push_back(v);
    for (const NodeId w : succ_[static_cast<std::size_t>(v)]) {
      level_[static_cast<std::size_t>(w)] =
          std::max(level_[static_cast<std::size_t>(w)],
                   level_[static_cast<std::size_t>(v)] + 1);
      if (--indeg[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
    }
  }
  if (topo_.size() != n) {
    // Name one node still holding in-degree: it participates in a cycle.
    for (std::size_t v = 0; v < n; ++v)
      if (indeg[v] > 0)
        throw std::invalid_argument("oagrid: DAG has a cycle through task '" +
                                    tasks_[v].name + "'");
    throw std::invalid_argument("oagrid: DAG has a cycle");
  }
  frozen_ = true;
}

const TaskSpec& Dag::task(NodeId id) const {
  require_node(id);
  return tasks_[static_cast<std::size_t>(id)];
}

std::span<const NodeId> Dag::successors(NodeId id) const {
  require_node(id);
  return succ_[static_cast<std::size_t>(id)];
}

std::span<const NodeId> Dag::predecessors(NodeId id) const {
  require_node(id);
  return pred_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> Dag::entry_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v)
    if (pred_[static_cast<std::size_t>(v)].empty()) out.push_back(v);
  return out;
}

std::vector<NodeId> Dag::exit_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v)
    if (succ_[static_cast<std::size_t>(v)].empty()) out.push_back(v);
  return out;
}

std::span<const NodeId> Dag::topological_order() const {
  require_frozen("topological_order");
  return topo_;
}

std::span<const int> Dag::levels() const {
  require_frozen("levels");
  return level_;
}

Seconds Dag::critical_path(
    const std::function<Seconds(NodeId)>& duration) const {
  require_frozen("critical_path");
  std::vector<Seconds> finish(static_cast<std::size_t>(node_count()), 0.0);
  Seconds best = 0.0;
  for (const NodeId v : topo_) {
    Seconds start = 0.0;
    for (const NodeId p : pred_[static_cast<std::size_t>(v)])
      start = std::max(start, finish[static_cast<std::size_t>(p)]);
    finish[static_cast<std::size_t>(v)] = start + duration(v);
    best = std::max(best, finish[static_cast<std::size_t>(v)]);
  }
  return best;
}

Seconds Dag::critical_path_ref() const {
  return critical_path(
      [this](NodeId id) { return tasks_[static_cast<std::size_t>(id)].ref_duration; });
}

double Dag::work_area(const std::function<Seconds(NodeId)>& duration,
                      const std::function<ProcCount(NodeId)>& allotment) const {
  double area = 0.0;
  for (NodeId v = 0; v < node_count(); ++v)
    area += duration(v) * static_cast<double>(allotment(v));
  return area;
}

NodeId Dag::find_by_name(std::string_view name) const {
  NodeId found = kInvalidNode;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (tasks_[static_cast<std::size_t>(v)].name == name) {
      OAGRID_REQUIRE(found == kInvalidNode, "ambiguous task name lookup");
      found = v;
    }
  }
  return found;
}

void Dag::require_frozen(const char* what) const {
  if (!frozen_)
    throw std::logic_error(std::string("oagrid: Dag::") + what +
                           " requires freeze() first");
}

void Dag::require_node(NodeId id) const {
  if (id < 0 || id >= node_count())
    throw std::out_of_range("oagrid: node id out of range");
}

}  // namespace oagrid::dag
