#pragma once
/// \file obs.hpp
/// \brief Umbrella header and process-global observability state.
///
/// The instrumented subsystems (middleware, sim, sched) record into one
/// process-wide MetricsRegistry and TraceBuffer, gated by a single enabled
/// flag:
///
///   if (obs::enabled()) obs::metrics().counter("sim.events").add(n);
///
/// `enabled()` is one relaxed atomic load, so instrumentation left compiled
/// into hot paths costs nothing measurable while observability is off
/// (bench_sim_engine gates this at <= 5% even when it is ON). The flag is
/// process-global on purpose: the CLI flips it once before running a
/// command, and worker threads (SeDs, thread pools) inherit it without any
/// plumbing through call signatures.
///
/// Library code records; only the application layer (CLI, benches, tests)
/// flips the flag and exports.

#include "obs/clock.hpp"      // IWYU pragma: export
#include "obs/exporters.hpp"  // IWYU pragma: export
#include "obs/metrics.hpp"    // IWYU pragma: export
#include "obs/trace.hpp"      // IWYU pragma: export

namespace oagrid::obs {

/// Whether instrumentation records anything (default: off).
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Process-global metric store (constructed on first use, never destroyed
/// before exit — references cached by instrumented code stay valid).
[[nodiscard]] MetricsRegistry& metrics();

/// Process-global trace buffer (wall + simulated timelines).
[[nodiscard]] TraceBuffer& trace_buffer();

/// Convenience reset for tests and benches: clears the global registry and
/// buffer (the enabled flag is left untouched).
void reset();

}  // namespace oagrid::obs
