#pragma once
/// \file trace.hpp
/// \brief Bounded in-memory event buffer plus RAII Span/ScopedTimer.
///
/// TraceBuffer stores Chrome-trace-style "complete" events (name, category,
/// timestamp, duration). Two timelines coexist in one buffer, separated by
/// the Chrome `pid` field so chrome://tracing and Perfetto render them as
/// two process groups:
///  * kWallPid  — real microseconds since process start (middleware
///    threads, scheduler timing, benches);
///  * kSimPid   — simulated time from the DES, recorded via
///    emit_complete() with explicit timestamps (one trace "microsecond"
///    equals one simulated second, so a 10-day campaign stays readable).
///
/// The buffer is bounded: once `capacity` events are stored, further events
/// are counted in dropped() and discarded — instrumentation must never OOM
/// the process it observes. All methods are thread-safe.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace oagrid::obs {

inline constexpr int kWallPid = 1;  ///< wall-clock timeline (us)
inline constexpr int kSimPid = 2;   ///< simulated timeline (1 us = 1 sim s)

struct TraceEvent {
  std::string name;
  std::string category;
  int pid = kWallPid;
  int track = 0;  ///< Chrome `tid`: thread slot (wall) or unit id (sim)
  double ts_us = 0.0;
  double dur_us = 0.0;
  int depth = 0;  ///< span nesting depth at emission (wall spans only)
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1u << 20);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Appends one complete event; silently drops (and counts) past capacity.
  void emit_complete(TraceEvent event);

  /// Human-readable label for a (pid, track) pair, exported as Chrome
  /// thread_name metadata ("SeD 2", "cluster capricorne group 0", ...).
  void set_track_name(int pid, int track, std::string name);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::map<std::pair<int, int>, std::string> track_names() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t dropped() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::map<std::pair<int, int>, std::string> track_names_;
  std::size_t dropped_ = 0;
};

/// RAII wall-clock span: records a kWallPid complete event covering its
/// lifetime. Nesting is tracked per thread; the track is the thread's shard
/// slot so concurrent spans land on distinct Chrome rows. A null buffer (or
/// a custom clock for tests) is accepted; construction with nullptr makes
/// every operation a no-op, which is how call sites stay cheap when
/// observability is disabled.
class Span {
 public:
  Span(TraceBuffer* buffer, std::string name, std::string category = "",
       const Clock& clock = WallClock::instance());
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceBuffer* buffer_;
  const Clock& clock_;
  std::string name_;
  std::string category_;
  double start_us_ = 0.0;
  int depth_ = 0;
};

/// RAII timer recording its elapsed wall microseconds into a Histogram on
/// destruction. Null histogram -> no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram,
                       const Clock& clock = WallClock::instance())
      : histogram_(histogram), clock_(clock) {
    if (histogram_ != nullptr) start_us_ = clock_.now_us();
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->record(clock_.now_us() - start_us_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  const Clock& clock_;
  double start_us_ = 0.0;
};

}  // namespace oagrid::obs
