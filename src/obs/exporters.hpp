#pragma once
/// \file exporters.hpp
/// \brief Serialization of metrics and traces to standard formats.
///
/// Three sinks, one source of truth (MetricsRegistry / TraceBuffer):
///  * Chrome trace-event JSON — loadable in chrome://tracing and Perfetto
///    (the JSON object format: {"traceEvents": [...]} with "X" complete
///    events and "M" thread/process-name metadata);
///  * Prometheus-style text exposition — counters, gauges, and histograms
///    rendered as summaries (quantile-labelled samples + _sum/_count);
///  * fixed-width summary table via common/table — the human-facing view
///    the CLI prints after a run.

#include <iosfwd>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace oagrid::obs {

/// Writes the whole buffer as Chrome trace-event JSON. Tracks named via
/// TraceBuffer::set_track_name become thread_name metadata; the two
/// timelines (wall / simulated) become process_name metadata.
void write_chrome_trace(std::ostream& os, const TraceBuffer& buffer);

/// Prometheus text exposition (metric names sanitized to [a-zA-Z0-9_:],
/// prefixed "oagrid_"). Histograms are emitted as summaries with p50/p95/p99.
void write_prometheus(std::ostream& os, const MetricsRegistry& registry);

/// Human-readable fixed-width table: one row per metric with count, sum or
/// value, and p50/p95/p99/max for histograms.
void write_metrics_table(std::ostream& os, const MetricsRegistry& registry);

/// Escapes a string for inclusion in a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace oagrid::obs
