#include "obs/trace.hpp"

#include <algorithm>

namespace oagrid::obs {

namespace {
// Per-thread open-span depth for the wall timeline. Thread-local, so Span
// needs no synchronization to know its nesting level.
thread_local int open_span_depth = 0;
}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  events_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceBuffer::emit_complete(TraceEvent event) {
  const std::scoped_lock lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceBuffer::set_track_name(int pid, int track, std::string name) {
  const std::scoped_lock lock(mutex_);
  track_names_[{pid, track}] = std::move(name);
}

std::vector<TraceEvent> TraceBuffer::events() const {
  const std::scoped_lock lock(mutex_);
  return events_;
}

std::map<std::pair<int, int>, std::string> TraceBuffer::track_names() const {
  const std::scoped_lock lock(mutex_);
  return track_names_;
}

std::size_t TraceBuffer::size() const {
  const std::scoped_lock lock(mutex_);
  return events_.size();
}

std::size_t TraceBuffer::dropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

void TraceBuffer::clear() {
  const std::scoped_lock lock(mutex_);
  events_.clear();
  track_names_.clear();
  dropped_ = 0;
}

Span::Span(TraceBuffer* buffer, std::string name, std::string category,
           const Clock& clock)
    : buffer_(buffer),
      clock_(clock),
      name_(std::move(name)),
      category_(std::move(category)) {
  if (buffer_ == nullptr) return;
  start_us_ = clock_.now_us();
  depth_ = open_span_depth++;
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  --open_span_depth;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.pid = kWallPid;
  event.track = static_cast<int>(thread_shard(1u << 30));
  event.ts_us = start_us_;
  event.dur_us = clock_.now_us() - start_us_;
  event.depth = depth_;
  buffer_->emit_complete(std::move(event));
}

}  // namespace oagrid::obs
