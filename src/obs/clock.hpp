#pragma once
/// \file clock.hpp
/// \brief Time sources for the observability layer.
///
/// Everything in obs is timestamped in microseconds through a Clock so the
/// same Span/exporter machinery serves two worlds: real wall-clock time
/// (middleware threads, benches) and simulated time (the DES hands explicit
/// timestamps to TraceBuffer::emit_complete, or a ManualClock in tests).
/// WallClock measures from process start so trace files begin near t = 0.

#include <cstdint>

namespace oagrid::obs {

/// Monotonic microsecond time source.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual double now_us() const = 0;
};

/// steady_clock microseconds since the first use in this process.
class WallClock final : public Clock {
 public:
  [[nodiscard]] double now_us() const override;

  /// Shared instance (the default clock of Span and ScopedTimer).
  [[nodiscard]] static const WallClock& instance() noexcept;
};

/// Hand-advanced clock for deterministic tests and golden files.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double start_us = 0.0) noexcept : now_us_(start_us) {}
  [[nodiscard]] double now_us() const override { return now_us_; }
  void set(double us) noexcept { now_us_ = us; }
  void advance(double us) noexcept { now_us_ += us; }

 private:
  double now_us_;
};

}  // namespace oagrid::obs
