#include "obs/clock.hpp"

#include <chrono>

namespace oagrid::obs {

namespace {

std::chrono::steady_clock::time_point process_origin() noexcept {
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

// Touch the origin during static initialization so concurrent first calls
// from worker threads all see the same epoch.
[[maybe_unused]] const auto kOriginAnchor = process_origin();

}  // namespace

double WallClock::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - process_origin();
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

const WallClock& WallClock::instance() noexcept {
  static const WallClock clock;
  return clock;
}

}  // namespace oagrid::obs
