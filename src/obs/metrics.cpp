#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace oagrid::obs {

std::size_t thread_shard(std::size_t shards) noexcept {
  // Threads draw consecutive slots; modulo spreads them evenly over the
  // shard array whatever the shard count of the calling metric.
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot % shards;
}

int Histogram::bucket_index(double value) noexcept {
  const double floor_value = std::exp2(static_cast<double>(kMinExponent));
  if (!(value >= floor_value)) return 0;  // zero, negatives, NaN
  const double log2v = std::log2(value);
  if (log2v >= static_cast<double>(kMaxExponent)) return kBucketCount - 1;
  const int index =
      1 + static_cast<int>(std::floor((log2v - kMinExponent) * kSubBuckets));
  return std::clamp(index, 1, kBucketCount - 2);
}

double Histogram::bucket_lower_bound(int index) noexcept {
  if (index <= 0) return 0.0;
  if (index >= kBucketCount - 1)
    return std::exp2(static_cast<double>(kMaxExponent));
  return std::exp2(static_cast<double>(index - 1) / kSubBuckets +
                   kMinExponent);
}

void Histogram::record(double value) noexcept {
  Shard& shard = shards_[thread_shard(kShards)];
  shard.counts[static_cast<std::size_t>(bucket_index(value))].fetch_add(
      1, std::memory_order_relaxed);

  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + value,
                                          std::memory_order_relaxed)) {
  }
  double lo = shard.min.load(std::memory_order_relaxed);
  while (value < lo && !shard.min.compare_exchange_weak(
                           lo, value, std::memory_order_relaxed)) {
  }
  double hi = shard.max.load(std::memory_order_relaxed);
  while (value > hi && !shard.max.compare_exchange_weak(
                           hi, value, std::memory_order_relaxed)) {
  }
  shard.total.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(static_cast<std::size_t>(kBucketCount), 0);
  bool seeded = false;
  for (const Shard& shard : shards_) {
    const std::uint64_t total = shard.total.load(std::memory_order_acquire);
    if (total == 0) continue;
    snap.count += total;
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    const double lo = shard.min.load(std::memory_order_relaxed);
    const double hi = shard.max.load(std::memory_order_relaxed);
    if (!seeded) {
      snap.min = lo;
      snap.max = hi;
      seeded = true;
    } else {
      snap.min = std::min(snap.min, lo);
      snap.max = std::max(snap.max, hi);
    }
    for (std::size_t b = 0; b < snap.buckets.size(); ++b)
      snap.buckets[b] += shard.counts[b].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (Shard& shard : shards_) {
    shard.total.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    for (auto& count : shard.counts)
      count.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  // The extremes are tracked exactly; only interior quantiles need the
  // bucket-resolution estimate.
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));  // zero-based order statistic
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative > rank) {
      const int index = static_cast<int>(b);
      // Geometric bucket midpoint; the underflow bucket has no usable lower
      // bound, so report the observed minimum instead.
      double estimate;
      if (index == 0) {
        estimate = min;
      } else {
        const double lo = Histogram::bucket_lower_bound(index);
        const double hi = Histogram::bucket_lower_bound(index + 1);
        estimate = std::sqrt(lo * hi);
      }
      return std::clamp(estimate, min, max);
    }
  }
  return max;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, metric] : counters_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kCounter;
    snap.value = static_cast<double>(metric->value());
    out.push_back(std::move(snap));
  }
  for (const auto& [name, metric] : gauges_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kGauge;
    snap.value = metric->value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, metric] : histograms_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kHistogram;
    snap.histogram = metric->snapshot();
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, metric] : counters_) metric->reset();
  for (auto& [name, metric] : gauges_) metric->reset();
  for (auto& [name, metric] : histograms_) metric->reset();
}

}  // namespace oagrid::obs
