#include "obs/exporters.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/table.hpp"

namespace oagrid::obs {

namespace {

/// Shortest round-trip-ish representation without locale surprises:
/// integers print bare, everything else with up to 6 significant decimals.
std::string fmt_number(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

std::string sanitize_prometheus(const std::string& name) {
  std::string out = "oagrid_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

const char* kind_label(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const TraceBuffer& buffer) {
  const std::vector<TraceEvent> events = buffer.events();
  const auto names = buffer.track_names();

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Process-name metadata: one entry per timeline actually used.
  bool wall_used = false;
  bool sim_used = false;
  for (const TraceEvent& event : events) {
    wall_used = wall_used || event.pid == kWallPid;
    sim_used = sim_used || event.pid == kSimPid;
  }
  for (const auto& [key, name] : names) {
    wall_used = wall_used || key.first == kWallPid;
    sim_used = sim_used || key.first == kSimPid;
  }
  if (wall_used) {
    separator();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kWallPid
       << ",\"args\":{\"name\":\"wall clock (us)\"}}";
  }
  if (sim_used) {
    separator();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSimPid
       << ",\"args\":{\"name\":\"simulated time (1 us = 1 s)\"}}";
  }
  for (const auto& [key, name] : names) {
    separator();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\""
       << json_escape(name) << "\"}}";
  }

  for (const TraceEvent& event : events) {
    separator();
    os << "{\"name\":\"" << json_escape(event.name) << "\",";
    if (!event.category.empty())
      os << "\"cat\":\"" << json_escape(event.category) << "\",";
    os << "\"ph\":\"X\",\"pid\":" << event.pid << ",\"tid\":" << event.track
       << ",\"ts\":" << fmt_number(event.ts_us)
       << ",\"dur\":" << fmt_number(event.dur_us)
       << ",\"args\":{\"depth\":" << event.depth << "}}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  for (const MetricSnapshot& metric : registry.snapshot()) {
    const std::string name = sanitize_prometheus(metric.name);
    switch (metric.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << "# TYPE " << name << " counter\n"
           << name << " " << fmt_number(metric.value) << "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        os << "# TYPE " << name << " gauge\n"
           << name << " " << fmt_number(metric.value) << "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        os << "# TYPE " << name << " summary\n";
        for (const double q : {0.5, 0.95, 0.99})
          os << name << "{quantile=\"" << fmt_number(q) << "\"} "
             << fmt_number(h.quantile(q)) << "\n";
        os << name << "_sum " << fmt_number(h.sum) << "\n"
           << name << "_count " << h.count << "\n";
        break;
      }
    }
  }
}

void write_metrics_table(std::ostream& os, const MetricsRegistry& registry) {
  TableWriter table(
      {"metric", "kind", "count", "value/sum", "p50", "p95", "p99", "max"});
  for (const MetricSnapshot& metric : registry.snapshot()) {
    switch (metric.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        table.add_row({metric.name, kind_label(metric.kind), "-",
                       fmt_number(metric.value), "-", "-", "-", "-"});
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        table.add_row({metric.name, kind_label(metric.kind),
                       std::to_string(h.count), fmt_number(h.sum),
                       fmt_number(h.quantile(0.5)),
                       fmt_number(h.quantile(0.95)),
                       fmt_number(h.quantile(0.99)), fmt_number(h.max)});
        break;
      }
    }
  }
  table.print(os);
}

}  // namespace oagrid::obs
