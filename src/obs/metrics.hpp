#pragma once
/// \file metrics.hpp
/// \brief Thread-safe metric primitives cheap enough for hot paths.
///
/// Three metric kinds, all lock-free on the record path:
///  * Counter — monotonically increasing event count. Writes go to one of
///    kShards cache-line-padded relaxed atomics selected by a per-thread
///    slot, so concurrent increments never contend on one line; reads
///    aggregate on demand.
///  * Gauge — a last-write-wins double (queue depth, utilization ratio).
///  * Histogram — log-bucketed distribution (4 sub-buckets per octave,
///    covering 2^-16 .. 2^48, i.e. sub-microsecond to years when recording
///    microseconds). Sharded like Counter; quantiles (p50/p95/p99) are
///    bucket-resolution estimates (relative error <= 2^(1/4) - 1 ~ 19%),
///    min/max/sum/count are exact.
///
/// MetricsRegistry owns metrics by name. Registration takes a mutex; call
/// sites cache the returned reference, so steady-state recording is
/// registration-free. References stay valid for the registry's lifetime.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace oagrid::obs {

/// Stable per-thread shard index in [0, shards).
[[nodiscard]] std::size_t thread_shard(std::size_t shards) noexcept;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[thread_shard(kShards)].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_)
      total += cell.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  Cell cells_[kShards];
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated view of one histogram at a point in time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;

  /// Bucket-resolution quantile estimate, q in [0, 1]. Clamped to
  /// [min, max] so estimates never leave the observed range.
  [[nodiscard]] double quantile(double q) const;

  /// Aggregated bucket counts (index layout: Histogram::bucket_index).
  std::vector<std::uint64_t> buckets;
};

class Histogram {
 public:
  /// Number of buckets: one underflow bucket (values < 2^-16, including
  /// zero and negatives), kOctaves * kSubBuckets log buckets, one overflow.
  static constexpr int kSubBuckets = 4;
  static constexpr int kMinExponent = -16;
  static constexpr int kMaxExponent = 48;
  static constexpr int kBucketCount =
      (kMaxExponent - kMinExponent) * kSubBuckets + 2;

  /// Maps a value to its bucket. Total over doubles: negatives, NaN and
  /// zero land in the underflow bucket; huge values in the overflow bucket.
  [[nodiscard]] static int bucket_index(double value) noexcept;

  /// Inclusive lower bound of a bucket (0 for underflow).
  [[nodiscard]] static double bucket_lower_bound(int index) noexcept;

  void record(double value) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  void reset() noexcept;

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> counts[static_cast<std::size_t>(kBucketCount)];
    std::atomic<double> sum{0.0};
    // +/-infinity sentinels make record() a pure CAS-min/max with no
    // seeding race between threads sharing a shard.
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::atomic<std::uint64_t> total{0};
  };
  Shard shards_[kShards];
};

/// One row of MetricsRegistry::snapshot().
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  ///< counter total or gauge value
  HistogramSnapshot histogram;  ///< populated for kHistogram
};

/// Named metric store. Thread-safe; metric references remain valid and
/// writable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// All metrics sorted by name (deterministic exporter output).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Zeroes every metric (references stay valid). For benches and tests.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace oagrid::obs
