#include "obs/obs.hpp"

#include <atomic>

namespace oagrid::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry& metrics() {
  // Leaked on purpose: instrumented worker threads may outlive main()'s
  // locals, and cached metric references must never dangle.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

TraceBuffer& trace_buffer() {
  static TraceBuffer* const buffer = new TraceBuffer();
  return *buffer;
}

void reset() {
  metrics().reset();
  trace_buffer().clear();
}

}  // namespace oagrid::obs
