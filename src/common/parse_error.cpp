#include "common/parse_error.hpp"

namespace oagrid {
namespace {

std::string format(const std::string& source, int line,
                   const std::string& message) {
  std::string out = source;
  if (line > 0) {
    out += ':';
    out += std::to_string(line);
  }
  out += ": ";
  out += message;
  return out;
}

}  // namespace

ParseError::ParseError(std::string source, int line, std::string message)
    : std::invalid_argument(format(source, line, message)),
      source_(std::move(source)),
      line_(line),
      message_(std::move(message)) {}

ParseError::ParseError(std::string source, std::string message)
    : ParseError(std::move(source), 0, std::move(message)) {}

void throw_parse_error(const std::string& source, int line,
                       const std::string& message) {
  throw ParseError(source, line, message);
}

void throw_parse_error(const std::string& source, const std::string& message) {
  throw ParseError(source, message);
}

}  // namespace oagrid
