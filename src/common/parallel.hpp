#pragma once
/// \file parallel.hpp
/// \brief Fork-join helpers for embarrassingly parallel parameter sweeps.
///
/// The reproduction benches sweep thousands of (R, NS, cluster) cells; each
/// cell is independent, so a static block decomposition over a small thread
/// pool is the right tool (no work stealing needed — cells are near-uniform
/// cost). Exceptions thrown by a cell are captured and rethrown on the
/// calling thread, first-come wins.

#include <cstddef>
#include <functional>

namespace oagrid {

/// Number of workers parallel_for will use by default (hardware concurrency,
/// at least 1).
[[nodiscard]] std::size_t default_parallelism() noexcept;

/// Runs body(i) for every i in [begin, end) across `threads` workers
/// (0 = default_parallelism()). Blocks until all iterations finish. The body
/// must be safe to call concurrently for distinct i. Falls back to a plain
/// loop when the range is tiny or threads == 1 to keep tests deterministic
/// in single-thread configurations. Nested use — a body that itself calls
/// parallel_for (or a ThreadPool region) — runs the inner loop inline in
/// index order instead of spawning a second tier of threads.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace oagrid
