#pragma once
/// \file ascii_chart.hpp
/// \brief Terminal line charts so each bench can render the *shape* of the
/// figure it reproduces (Figures 7, 8 and 10 of the paper) directly in its
/// output, next to the numeric rows.

#include <string>
#include <vector>

namespace oagrid {

/// One plotted series: (x, y) points plus the glyph used to mark them.
struct ChartSeries {
  std::string name;
  char glyph = '*';
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Renders one or more series into a character grid with y-axis labels and an
/// x-axis rule. Later series overwrite earlier ones where cells collide.
class AsciiChart {
 public:
  AsciiChart(int width, int height);

  void add_series(ChartSeries series);

  /// Optional fixed y-range; by default the range is fit to the data with a
  /// small margin.
  void set_y_range(double lo, double hi);

  [[nodiscard]] std::string render() const;

 private:
  int width_;
  int height_;
  bool fixed_range_ = false;
  double y_lo_ = 0.0;
  double y_hi_ = 1.0;
  std::vector<ChartSeries> series_;
};

}  // namespace oagrid
