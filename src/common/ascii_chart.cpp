#include "common/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace oagrid {

AsciiChart::AsciiChart(int width, int height) : width_(width), height_(height) {
  if (width < 16 || height < 4)
    throw std::invalid_argument("chart too small to be legible");
}

void AsciiChart::add_series(ChartSeries series) {
  if (series.xs.size() != series.ys.size())
    throw std::invalid_argument("series xs/ys length mismatch");
  series_.push_back(std::move(series));
}

void AsciiChart::set_y_range(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("empty y range");
  fixed_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string AsciiChart::render() const {
  double xlo = 0, xhi = 1, ylo = y_lo_, yhi = y_hi_;
  bool any = false;
  for (const auto& s : series_)
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!any) {
        xlo = xhi = s.xs[i];
        if (!fixed_range_) ylo = yhi = s.ys[i];
        any = true;
      } else {
        xlo = std::min(xlo, s.xs[i]);
        xhi = std::max(xhi, s.xs[i]);
        if (!fixed_range_) {
          ylo = std::min(ylo, s.ys[i]);
          yhi = std::max(yhi, s.ys[i]);
        }
      }
    }
  if (!any) return "(empty chart)\n";
  if (xhi == xlo) xhi = xlo + 1;
  if (yhi == ylo) yhi = ylo + 1;
  if (!fixed_range_) {
    const double margin = 0.05 * (yhi - ylo);
    ylo -= margin;
    yhi += margin;
  }

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx = (s.xs[i] - xlo) / (xhi - xlo);
      const double fy = (s.ys[i] - ylo) / (yhi - ylo);
      const int cx = static_cast<int>(std::lround(fx * (width_ - 1)));
      const int cy = static_cast<int>(std::lround(fy * (height_ - 1)));
      if (cx < 0 || cx >= width_ || cy < 0 || cy >= height_) continue;
      grid[static_cast<std::size_t>(height_ - 1 - cy)]
          [static_cast<std::size_t>(cx)] = s.glyph;
    }
  }

  std::string out;
  char label[32];
  for (int row = 0; row < height_; ++row) {
    const double y = yhi - (yhi - ylo) * row / (height_ - 1);
    std::snprintf(label, sizeof label, "%10.2f |", y);
    out += label;
    out += grid[static_cast<std::size_t>(row)];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(static_cast<std::size_t>(width_), '-') + '\n';
  std::snprintf(label, sizeof label, "%.1f", xlo);
  std::string xaxis = std::string(12, ' ') + label;
  std::snprintf(label, sizeof label, "%.1f", xhi);
  const std::string right = label;
  const std::size_t pad_to = 12 + static_cast<std::size_t>(width_) - right.size();
  if (xaxis.size() < pad_to) xaxis += std::string(pad_to - xaxis.size(), ' ');
  xaxis += right;
  out += xaxis + '\n';
  for (const auto& s : series_)
    out += std::string("  ") + s.glyph + " = " + s.name + '\n';
  return out;
}

}  // namespace oagrid
