#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace oagrid {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (log_level() > level) return;
  const std::scoped_lock lock(g_sink_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace oagrid
