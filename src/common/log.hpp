#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger.
///
/// Library code must never write to stdout (bench output is the artifact), so
/// diagnostics go through this sink, which defaults to stderr and is
/// silenceable in tests. Thread-safe: the middleware logs from worker threads.

#include <mutex>
#include <sstream>
#include <string>

namespace oagrid {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped before formatting.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line ("[level] message") to stderr under a global mutex.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// RAII one-line builder: `Logger(kInfo).stream() << "x=" << x;` emits on
/// destruction.
class Logger {
 public:
  explicit Logger(LogLevel level) : level_(level) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  ~Logger() { log_line(level_, stream_.str()); }
  [[nodiscard]] std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define OAGRID_LOG(level)                                   \
  if (::oagrid::log_level() <= (level))                     \
  ::oagrid::detail::Logger(level).stream()

#define OAGRID_DEBUG OAGRID_LOG(::oagrid::LogLevel::kDebug)
#define OAGRID_INFO OAGRID_LOG(::oagrid::LogLevel::kInfo)
#define OAGRID_WARN OAGRID_LOG(::oagrid::LogLevel::kWarn)
#define OAGRID_ERROR OAGRID_LOG(::oagrid::LogLevel::kError)

}  // namespace oagrid
