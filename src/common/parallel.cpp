#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace oagrid {

std::size_t default_parallelism() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (threads == 0) threads = default_parallelism();
  threads = std::min(threads, n);

  if (threads <= 1 || detail::in_parallel_region()) {
    // Serial fallback (also the nested-use guard): in-order execution makes
    // exception propagation strictly first-come-wins.
    const detail::RegionMark mark;
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Dynamic chunking via a shared atomic cursor: cheap, and robust to the
  // mild cost imbalance between cells (large R simulates more events).
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    const detail::RegionMark mark;
    try {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        body(i);
      }
    } catch (...) {
      const std::scoped_lock lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace oagrid
