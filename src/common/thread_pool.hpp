#pragma once
/// \file thread_pool.hpp
/// \brief Persistent worker pool for fine-grained parallel regions.
///
/// common/parallel.hpp's parallel_for spawns threads per call, which is fine
/// for coarse sweep cells (milliseconds each) but poisonous for the climate
/// model's stencil substeps (tens of microseconds each — thread creation
/// costs more than the work). ThreadPool keeps its workers alive between
/// regions: dispatch is one mutex/condition-variable handshake, and the
/// calling thread participates in the work, so a pool of W workers yields
/// W+1-way parallelism.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace oagrid {

class ThreadPool {
 public:
  /// Creates `workers` persistent worker threads (0 is valid: every region
  /// runs entirely on the calling thread).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers. Must not be called while a region is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Runs body(i) for every i in [begin, end) across the workers plus the
  /// calling thread; returns when all iterations finished. Iterations are
  /// claimed through a shared cursor (dynamic schedule). Exceptions from the
  /// body are captured and the first one rethrown here. Not reentrant: one
  /// region at a time per pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void run_chunks();

  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  // Current region. Published under mutex_ (generation bump is the release
  // point); workers read after observing the new generation under the same
  // mutex. The caller's final wait requires every worker to have both
  // observed the region and left it before parallel_for returns, so body_
  // never dangles.
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::atomic<std::size_t> cursor_{0};
  std::size_t end_ = 0;
  std::size_t observed_ = 0;        ///< workers that saw this generation
  std::size_t active_workers_ = 0;  ///< workers inside the current region
  std::exception_ptr first_error_;
};

}  // namespace oagrid
