#pragma once
/// \file thread_pool.hpp
/// \brief Persistent worker pool for fine-grained parallel regions.
///
/// common/parallel.hpp's parallel_for spawns threads per call, which is fine
/// for coarse sweep cells (milliseconds each) but poisonous for the climate
/// model's stencil substeps and the evaluation engine's neighborhood batches
/// (tens of microseconds each — thread creation costs more than the work).
/// ThreadPool keeps its workers alive between regions: dispatch is one
/// mutex/condition-variable handshake, and the calling thread participates in
/// the work, so a pool of W workers yields W+1-way parallelism.
///
/// Three properties the evaluation engine leans on:
///  * No per-call type erasure: parallel_for is a template dispatching the
///    body through one function pointer + context pointer, so passing a
///    capturing lambda never heap-allocates a std::function.
///  * Nested-use guard: a body that (transitively) calls parallel_for again —
///    e.g. a simulation running under the service while the service sweeps —
///    runs the inner region inline on the calling thread instead of
///    oversubscribing or deadlocking on the non-reentrant pool.
///  * Cross-caller serialization: independent threads may call parallel_for
///    on the same pool concurrently; whole regions are serialized through an
///    internal mutex, so each caller gets the full pool in turn.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace oagrid {

namespace detail {
/// True on any thread currently executing inside a parallel region (pool
/// worker, pool caller, or a plain parallel_for worker). Maintained as a
/// nesting depth so regions can stack.
[[nodiscard]] bool in_parallel_region() noexcept;
void enter_parallel_region() noexcept;
void leave_parallel_region() noexcept;

struct RegionMark {
  RegionMark() noexcept { enter_parallel_region(); }
  ~RegionMark() { leave_parallel_region(); }
  RegionMark(const RegionMark&) = delete;
  RegionMark& operator=(const RegionMark&) = delete;
};
}  // namespace detail

class ThreadPool {
 public:
  /// Creates `workers` persistent worker threads (0 is valid: every region
  /// runs entirely on the calling thread).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers. Must not be called while a region is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return threads_.size();
  }

  /// Runs body(i) for every i in [begin, end) across the workers plus the
  /// calling thread; returns when all iterations finished. Iterations are
  /// claimed through a shared cursor (dynamic schedule). Exceptions from the
  /// body are captured and the first one rethrown here.
  ///
  /// `max_threads` caps the number of participating threads (including the
  /// caller); 0 means workers + 1. A cap of 1, a nested call from inside any
  /// parallel region, or a zero-worker pool all run the loop inline — in
  /// index order, so single-threaded executions stay deterministic.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                    std::size_t max_threads = 0) {
    if (begin >= end) return;
    using Fn = std::remove_reference_t<Body>;
    if (threads_.empty() || max_threads == 1 || end - begin == 1 ||
        detail::in_parallel_region()) {
      const detail::RegionMark mark;
      for (std::size_t i = begin; i < end; ++i) body(i);
      return;
    }
    run_region(begin, end, &invoke_thunk<Fn>,
               const_cast<void*>(
                   static_cast<const void*>(std::addressof(body))),
               max_threads);
  }

 private:
  using InvokeFn = void (*)(void*, std::size_t);

  template <typename Fn>
  static void invoke_thunk(void* ctx, std::size_t i) {
    (*static_cast<Fn*>(ctx))(i);
  }

  void run_region(std::size_t begin, std::size_t end, InvokeFn invoke,
                  void* ctx, std::size_t max_threads);
  void worker_loop();
  void run_chunks();

  std::vector<std::thread> threads_;

  /// Serializes whole regions across independent calling threads.
  std::mutex region_mutex_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;

  // Current region. Published under mutex_ (generation bump is the release
  // point); workers read after observing the new generation under the same
  // mutex. The caller's final wait requires every worker to have both
  // observed the region and left it before parallel_for returns, so the
  // body never dangles.
  InvokeFn invoke_ = nullptr;
  void* ctx_ = nullptr;
  std::atomic<std::size_t> cursor_{0};
  std::size_t end_ = 0;
  std::size_t observed_ = 0;        ///< workers that saw this generation
  std::size_t active_workers_ = 0;  ///< workers inside the current region
  std::size_t participants_ = 0;    ///< threads admitted to the region
  std::size_t cap_ = 0;             ///< max participants (incl. the caller)
  std::exception_ptr first_error_;
};

/// Process-wide persistent pool with default_parallelism() - 1 workers,
/// created on first use. The shared pool is what the evaluation engine
/// (local/optimal search, sweeps) draws on, so repeated searches never pay
/// thread creation; independent callers serialize whole regions and nested
/// use degrades to inline execution (see ThreadPool).
[[nodiscard]] ThreadPool& shared_pool();

/// Maps f over [0, n), returning the results in index order. The result type
/// is deduced from f; bodies run via ThreadPool::parallel_for, so no per-call
/// std::function allocation. `max_threads` as in parallel_for.
template <typename F>
auto parallel_transform(ThreadPool& pool, std::size_t n, F&& f,
                        std::size_t max_threads = 0)
    -> std::vector<std::decay_t<decltype(f(std::size_t{0}))>> {
  using R = std::decay_t<decltype(f(std::size_t{0}))>;
  std::vector<R> out(n);
  pool.parallel_for(
      0, n, [&](std::size_t i) { out[i] = f(i); }, max_threads);
  return out;
}

}  // namespace oagrid
