#include "common/argparse.hpp"

#include <sstream>
#include <stdexcept>

namespace oagrid {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_flag(const std::string& name, std::string help) {
  OAGRID_REQUIRE(find(name) == nullptr, "duplicate option declaration");
  Spec spec;
  spec.help = std::move(help);
  spec.is_flag = true;
  options_.emplace_back(name, std::move(spec));
  flags_[name] = false;
  return *this;
}

ArgParser& ArgParser::add_option(const std::string& name, std::string help,
                                 std::string default_value) {
  OAGRID_REQUIRE(find(name) == nullptr, "duplicate option declaration");
  values_[name] = default_value;
  Spec spec;
  spec.help = std::move(help);
  spec.default_value = std::move(default_value);
  options_.emplace_back(name, std::move(spec));
  return *this;
}

ArgParser& ArgParser::add_optional_value(const std::string& name,
                                         std::string help,
                                         std::string implicit_value) {
  OAGRID_REQUIRE(find(name) == nullptr, "duplicate option declaration");
  values_[name] = "";
  flags_[name] = false;
  Spec spec;
  spec.help = std::move(help);
  spec.optional_value = true;
  spec.implicit_value = std::move(implicit_value);
  options_.emplace_back(name, std::move(spec));
  return *this;
}

ArgParser& ArgParser::add_positional(const std::string& name,
                                     std::string help) {
  positionals_.emplace_back(name, std::move(help));
  return *this;
}

const ArgParser::Spec* ArgParser::find(const std::string& name) const {
  for (const auto& [opt_name, spec] : options_)
    if (opt_name == name) return &spec;
  return nullptr;
}

void ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

void ArgParser::parse(const std::vector<std::string>& args) {
  std::size_t next_positional = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::optional<std::string> inline_value;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name.resize(eq);
      }
      // Built-in: --help surfaces the usage text through the error channel.
      if (name == "help") throw std::invalid_argument(usage());
      const Spec* spec = find(name);
      if (spec == nullptr)
        throw std::invalid_argument("unknown option --" + name + "\n" + usage());
      if (spec->is_flag) {
        if (inline_value)
          throw std::invalid_argument("flag --" + name + " takes no value");
        flags_[name] = true;
      } else if (spec->optional_value) {
        flags_[name] = true;
        values_[name] = inline_value ? *inline_value : spec->implicit_value;
      } else if (inline_value) {
        values_[name] = *inline_value;
      } else {
        if (i + 1 >= args.size())
          throw std::invalid_argument("option --" + name + " needs a value\n" +
                                      usage());
        values_[name] = args[++i];
      }
    } else {
      if (next_positional >= positionals_.size())
        throw std::invalid_argument("unexpected argument '" + arg + "'\n" +
                                    usage());
      values_[positionals_[next_positional++].first] = arg;
    }
  }
  if (next_positional < positionals_.size())
    throw std::invalid_argument(
        "missing required argument <" + positionals_[next_positional].first +
        ">\n" + usage());
}

bool ArgParser::flag(const std::string& name) const {
  const auto it = flags_.find(name);
  OAGRID_REQUIRE(it != flags_.end(), "undeclared flag queried");
  return it->second;
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto it = values_.find(name);
  OAGRID_REQUIRE(it != values_.end(), "undeclared option queried");
  return it->second;
}

long long ArgParser::get_int(const std::string& name) const {
  const std::string& text = get(name);
  try {
    std::size_t used = 0;
    const long long value = std::stoll(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" +
                                text + "'");
  }
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& text = get(name);
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" +
                                text + "'");
  }
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << "usage: " << program_;
  for (const auto& [name, help] : positionals_) out << " <" << name << ">";
  if (!options_.empty()) out << " [options]";
  out << "\n  " << description_ << "\n";
  for (const auto& [name, help] : positionals_)
    out << "  <" << name << ">  " << help << "\n";
  for (const auto& [name, spec] : options_) {
    out << "  --" << name;
    if (spec.optional_value)
      out << "[=<value>]";
    else if (!spec.is_flag)
      out << " <value>";
    out << "  " << spec.help;
    if (!spec.is_flag && !spec.default_value.empty())
      out << " (default: " << spec.default_value << ")";
    out << "\n";
  }
  return out.str();
}

}  // namespace oagrid
