#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace oagrid {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("table needs >=1 column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("row width != header width");
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TableWriter::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << escape(row[c]);
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_duration(double seconds) {
  if (!std::isfinite(seconds)) return "inf";
  auto total = static_cast<long long>(std::llround(seconds));
  const long long days = total / 86400;
  total %= 86400;
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  char buf[64];
  if (days > 0)
    std::snprintf(buf, sizeof buf, "%lldd %02lld:%02lld:%02lld", days, h, m, s);
  else
    std::snprintf(buf, sizeof buf, "%02lld:%02lld:%02lld", h, m, s);
  return buf;
}

}  // namespace oagrid
