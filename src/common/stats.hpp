#pragma once
/// \file stats.hpp
/// \brief Streaming statistics used to aggregate sweep results.
///
/// Figure 8 of the paper reports, for every resource count, the mean gain and
/// its standard deviation over five cluster profiles. RunningStats implements
/// Welford's numerically stable online algorithm so benches can accumulate
/// without storing samples; Summary snapshots the result.

#include <cstddef>
#include <span>
#include <vector>

namespace oagrid {

/// Snapshot of a finished accumulation.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1). Zero when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] Summary summary() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience one-shot helpers over a sample span.
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev_of(std::span<const double> xs) noexcept;

/// Linear-interpolation percentile (p in [0,100]) of an unsorted sample.
/// Copies and sorts internally; intended for bench post-processing, not hot
/// paths. Returns 0 for an empty sample.
[[nodiscard]] double percentile_of(std::vector<double> xs, double p) noexcept;

}  // namespace oagrid
