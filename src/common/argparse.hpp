#pragma once
/// \file argparse.hpp
/// \brief Minimal declarative command-line parsing for the CLI tool and the
/// bench binaries (no external dependencies; GNU-style --name=value and
/// --name value forms, boolean flags, typed getters with defaults).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace oagrid {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declares a boolean flag (--name). Returns *this for chaining.
  ArgParser& add_flag(const std::string& name, std::string help);

  /// Declares a valued option (--name value | --name=value) with a default.
  ArgParser& add_option(const std::string& name, std::string help,
                        std::string default_value);

  /// Declares an option with an optional value (GNU style: bare `--name`
  /// means `--name=<implicit_value>`; only the `=` form can attach a value,
  /// so `--name something` leaves `something` a positional). flag(name)
  /// reports presence; get(name) yields "" when absent.
  ArgParser& add_optional_value(const std::string& name, std::string help,
                                std::string implicit_value);

  /// Declares the next positional argument (required in order).
  ArgParser& add_positional(const std::string& name, std::string help);

  /// Parses argv[1..). Throws std::invalid_argument with a usage-bearing
  /// message on unknown options, missing values or missing positionals.
  void parse(int argc, const char* const* argv);
  void parse(const std::vector<std::string>& args);

  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Spec {
    std::string help;
    bool is_flag = false;
    std::string default_value;
    bool optional_value = false;  ///< bare --name allowed, = form for value
    std::string implicit_value;   ///< value a bare --name stands for
  };

  std::string program_;
  std::string description_;
  std::vector<std::pair<std::string, Spec>> options_;  // declaration order
  std::vector<std::pair<std::string, std::string>> positionals_;  // name,help
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> flags_;

  [[nodiscard]] const Spec* find(const std::string& name) const;
};

}  // namespace oagrid
