#pragma once
/// \file parse_error.hpp
/// \brief One diagnostic format for every oagrid input parser.
///
/// The repo grew one text/binary parser per subsystem (platform grids,
/// network files, failure traces, climate restart/diagnostic streams), each
/// with its own error phrasing. Tooling that wants to surface "where is the
/// problem" — editors, the CLI error tests, the property-test shrinker —
/// should not have to know per-parser prose, so every parser now throws
/// through these helpers in the conventional compiler format:
///
///   <source>:<line>: <message>        (line-oriented text inputs)
///   <source>: <message>               (binary streams — no line structure)
///
/// `source` defaults to a format label ("network", "failures", "restart");
/// callers that read from a named file pass the path so the diagnostic is
/// directly clickable.

#include <stdexcept>
#include <string>

namespace oagrid {

/// Thrown by every input parser. Derives from std::invalid_argument so all
/// existing catch sites (and EXPECT_THROW assertions) keep working; carries
/// the structured fields so tools can re-render without re-parsing what().
class ParseError : public std::invalid_argument {
 public:
  /// Line-numbered form: "<source>:<line>: <message>".
  ParseError(std::string source, int line, std::string message);
  /// Lineless form (binary streams): "<source>: <message>".
  ParseError(std::string source, std::string message);

  [[nodiscard]] const std::string& source() const noexcept { return source_; }
  /// 0 when the input has no line structure.
  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

 private:
  std::string source_;
  int line_ = 0;
  std::string message_;
};

/// Convenience throwers, so parser code reads as a one-liner.
[[noreturn]] void throw_parse_error(const std::string& source, int line,
                                    const std::string& message);
[[noreturn]] void throw_parse_error(const std::string& source,
                                    const std::string& message);

}  // namespace oagrid
