#include "common/thread_pool.hpp"

#include "common/parallel.hpp"

namespace oagrid {

namespace detail {
namespace {
thread_local int parallel_region_depth = 0;
}  // namespace

bool in_parallel_region() noexcept { return parallel_region_depth > 0; }
void enter_parallel_region() noexcept { ++parallel_region_depth; }
void leave_parallel_region() noexcept { --parallel_region_depth; }
}  // namespace detail

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    ++observed_;
    // Admission: at most cap_ threads (counting the caller) touch the
    // cursor; surplus workers only acknowledge the generation so the
    // caller's completion wait can still close over every worker.
    if (participants_ + 1 < cap_) {
      ++participants_;
      ++active_workers_;
      lock.unlock();
      {
        const detail::RegionMark mark;
        run_chunks();
      }
      lock.lock();
      --active_workers_;
    }
    work_done_.notify_all();
  }
}

void ThreadPool::run_chunks() {
  const InvokeFn invoke = invoke_;
  void* ctx = ctx_;
  for (;;) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end_) return;
    try {
      invoke(ctx, i);
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::run_region(std::size_t begin, std::size_t end,
                            InvokeFn invoke, void* ctx,
                            std::size_t max_threads) {
  // Whole regions from independent calling threads take turns; a region in
  // flight blocks the next caller here, never corrupting shared state.
  const std::scoped_lock region_lock(region_mutex_);
  {
    const std::scoped_lock lock(mutex_);
    invoke_ = invoke;
    ctx_ = ctx;
    end_ = end;
    cursor_.store(begin, std::memory_order_relaxed);
    observed_ = 0;
    participants_ = 0;
    cap_ = max_threads == 0 ? threads_.size() + 1 : max_threads;
    first_error_ = nullptr;
    ++generation_;
  }
  work_ready_.notify_all();

  {
    const detail::RegionMark mark;
    run_chunks();  // the caller is always a participant
  }

  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] {
    return observed_ == threads_.size() && active_workers_ == 0;
  });
  invoke_ = nullptr;
  ctx_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool(default_parallelism() > 0 ? default_parallelism() - 1
                                                   : 0);
  return pool;
}

}  // namespace oagrid
