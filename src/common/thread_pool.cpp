#include "common/thread_pool.hpp"

namespace oagrid {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    ++observed_;
    ++active_workers_;
    lock.unlock();
    run_chunks();
    lock.lock();
    if (--active_workers_ == 0) work_done_.notify_all();
  }
}

void ThreadPool::run_chunks() {
  const auto* body = body_;
  for (;;) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= end_) return;
    try {
      (*body)(i);
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  if (threads_.empty()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  {
    const std::scoped_lock lock(mutex_);
    body_ = &body;
    end_ = end;
    cursor_.store(begin, std::memory_order_relaxed);
    observed_ = 0;
    first_error_ = nullptr;
    ++generation_;
  }
  work_ready_.notify_all();

  run_chunks();  // the caller is the (W+1)-th worker

  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [&] {
    return observed_ == threads_.size() && active_workers_ == 0;
  });
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace oagrid
