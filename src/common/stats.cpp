#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace oagrid {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel merge of Welford accumulators.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Summary RunningStats::summary() const noexcept {
  return Summary{n_, mean_, stddev(), min_, max_};
}

double mean_of(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double percentile_of(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace oagrid
