#pragma once
/// \file table.hpp
/// \brief Fixed-width console tables and CSV emission for bench output.
///
/// Every bench binary regenerates one of the paper's tables or figures; the
/// rows it prints are the reproduction artifact, so formatting lives in one
/// place. TableWriter renders aligned columns to any ostream; the same row
/// data can be mirrored to CSV for plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace oagrid {

/// Column-aligned text table. Usage:
///   TableWriter t({"R", "best G", "makespan"});
///   t.add_row({"53", "7", "1.21e6"});
///   t.print(std::cout);
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and 2-space column gaps.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, embedded quotes doubled).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 2) without trailing
/// stream-state surprises.
[[nodiscard]] std::string fmt(double value, int precision = 2);

/// Formats seconds as "Xd HH:MM:SS" for human-readable makespans (the paper
/// talks about 58-hour gains; raw seconds are unreadable at that scale).
[[nodiscard]] std::string fmt_duration(double seconds);

}  // namespace oagrid
