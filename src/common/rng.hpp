#pragma once
/// \file rng.hpp
/// \brief Deterministic, splittable pseudo-random generation.
///
/// All stochastic elements of the reproduction (heterogeneous cluster
/// profiles, workload perturbations, property-test case generation) draw from
/// this generator so that every experiment is replayable from a single seed.
/// The implementation is xoshiro256** seeded through SplitMix64, the standard
/// recipe recommended by the xoshiro authors; it is small, fast, and has no
/// global state (unlike std::rand) and no per-instance 5 KB footprint (unlike
/// std::mt19937_64), which matters when benches spawn one RNG per sweep cell.

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace oagrid {

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
/// can feed <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] long long uniform_int(long long lo, long long hi) noexcept;

  /// Normal draw via Box-Muller (no state beyond the stream itself).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Derives an independent child stream; used to give each parallel sweep
  /// cell its own generator without correlation between cells.
  [[nodiscard]] Rng split() noexcept;

  /// Fisher-Yates shuffle of an index vector (deterministic given the state).
  void shuffle(std::vector<int>& values) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace oagrid
