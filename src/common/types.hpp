#pragma once
/// \file types.hpp
/// \brief Strong scalar types shared by every oagrid module.
///
/// The scheduling literature the paper builds on mixes three unit systems
/// (seconds of simulated time, processor counts, task counts). Using distinct
/// vocabulary types keeps formulae such as Equations 1-5 of the paper readable
/// and makes unit mistakes a compile error rather than a simulation bug.

#include <compare>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace oagrid {

/// Simulated wall-clock time, in seconds. A plain `double` wrapper: the
/// paper's benchmarked durations are integral seconds but divisions (speedup
/// models, fractional work in the knapsack objective) produce reals.
using Seconds = double;

/// Number of physical processors (cores) — the paper's `R`, `R1`, `R2`, `G`.
using ProcCount = int;

/// Number of tasks / months / scenarios — the paper's `NS`, `NM`, `nbtasks`.
using Count = long long;

/// Identifier of a scenario (independent 150-year simulation chain).
using ScenarioId = int;

/// Zero-based month index inside one scenario chain (0 .. NM-1).
using MonthIndex = int;

/// Identifier of a cluster inside a grid.
using ClusterId = int;

/// The paper's hard bounds on the moldable main task: `pcr` needs one
/// processor each for OPA, TRIP and OASIS plus 1..8 for ARPEGE.
inline constexpr ProcCount kMinGroupSize = 4;
inline constexpr ProcCount kMaxGroupSize = 11;
/// Number of admissible group sizes (the knapsack item universe).
inline constexpr int kNumGroupSizes = kMaxGroupSize - kMinGroupSize + 1;

/// Sentinel for "no makespan computable" (e.g. fewer processors than the
/// smallest admissible group).
inline constexpr Seconds kInfiniteTime = std::numeric_limits<Seconds>::infinity();

/// Throwing precondition check used at public API boundaries. Internal
/// invariants use assert(); user-facing constructors use OAGRID_REQUIRE so a
/// misconfigured experiment fails loudly with context instead of corrupting a
/// multi-hour sweep.
#define OAGRID_REQUIRE(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw std::invalid_argument(std::string("oagrid: ") + (msg) +   \
                                  " [violated: " #cond "]");          \
    }                                                                 \
  } while (false)

}  // namespace oagrid
