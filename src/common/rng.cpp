#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace oagrid {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step — used only for seeding and stream splitting.
constexpr std::uint64_t splitmix64(std::uint64_t& s) noexcept {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

long long Rng::uniform_int(long long lo, long long hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t draw = (*this)();
    if (draw >= threshold) return lo + static_cast<long long>(draw % span);
  }
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; u1 is kept away from zero to avoid log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::split() noexcept {
  std::uint64_t derived = (*this)();
  return Rng(splitmix64(derived));
}

void Rng::shuffle(std::vector<int>& values) noexcept {
  for (std::size_t i = values.size(); i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(uniform_int(0, static_cast<long long>(i) - 1));
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace oagrid
