#include "sim/perf_vector.hpp"

#include "sim/ensemble_sim.hpp"

namespace oagrid::sim {

sched::PerformanceVector performance_vector(const platform::Cluster& cluster,
                                            Count max_scenarios, Count months,
                                            sched::Heuristic heuristic) {
  OAGRID_REQUIRE(max_scenarios >= 1, "need at least one scenario");
  sched::PerformanceVector vec;
  vec.reserve(static_cast<std::size_t>(max_scenarios));
  for (Count k = 1; k <= max_scenarios; ++k) {
    const appmodel::Ensemble ensemble{k, months};
    vec.push_back(
        simulate_with_heuristic(cluster, heuristic, ensemble).makespan);
  }
  return vec;
}

}  // namespace oagrid::sim
