#include "sim/perf_vector.hpp"

#include "common/thread_pool.hpp"
#include "sim/eval_cache.hpp"

namespace oagrid::sim {

sched::PerformanceVector performance_vector(const platform::Cluster& cluster,
                                            Count max_scenarios, Count months,
                                            sched::Heuristic heuristic) {
  OAGRID_REQUIRE(max_scenarios >= 1, "need at least one scenario");
  // The k entries are independent simulations over the same cluster — cached
  // and evaluated in parallel. The service's DES estimator calls this per
  // request, so a warm cache turns repeated estimates into pure lookups.
  return parallel_transform(
      shared_pool(), static_cast<std::size_t>(max_scenarios),
      [&](std::size_t i) {
        const appmodel::Ensemble ensemble{static_cast<Count>(i) + 1, months};
        const sched::GroupSchedule schedule =
            sched::make_schedule(heuristic, cluster, ensemble);
        return cached_makespan(cluster, schedule, ensemble);
      });
}

}  // namespace oagrid::sim
