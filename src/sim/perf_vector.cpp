#include "sim/perf_vector.hpp"

#include <vector>

#include "common/thread_pool.hpp"
#include "sim/eval_cache.hpp"

namespace oagrid::sim {

sched::PerformanceVector performance_vector(const platform::Cluster& cluster,
                                            Count max_scenarios, Count months,
                                            sched::Heuristic heuristic) {
  OAGRID_REQUIRE(max_scenarios >= 1, "need at least one scenario");
  // The k entries are independent simulations over the same cluster — cached
  // and evaluated in parallel. The service's DES estimator calls this per
  // request, so a warm cache turns repeated estimates into pure lookups.
  if (heuristic == sched::Heuristic::kKnapsack) {
    // All NS knapsack groupings come out of one shared DP sweep instead of
    // NS independent solves (bit-identical schedules, see
    // sched::knapsack_grouping_family); only the DES evaluation stays per-k.
    const appmodel::Ensemble family_ensemble{max_scenarios, months};
    const std::vector<sched::GroupSchedule> schedules =
        sched::knapsack_grouping_family(cluster, family_ensemble);
    return parallel_transform(
        shared_pool(), static_cast<std::size_t>(max_scenarios),
        [&](std::size_t i) {
          const appmodel::Ensemble ensemble{static_cast<Count>(i) + 1, months};
          return cached_makespan(cluster, schedules[i], ensemble);
        });
  }
  return parallel_transform(
      shared_pool(), static_cast<std::size_t>(max_scenarios),
      [&](std::size_t i) {
        const appmodel::Ensemble ensemble{static_cast<Count>(i) + 1, months};
        const sched::GroupSchedule schedule =
            sched::make_schedule(heuristic, cluster, ensemble);
        return cached_makespan(cluster, schedule, ensemble);
      });
}

}  // namespace oagrid::sim
