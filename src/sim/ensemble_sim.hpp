#pragma once
/// \file ensemble_sim.hpp
/// \brief Discrete-event execution of a GroupSchedule on one cluster.
///
/// Implements the paper's execution rule (§4.3): "The execution of
/// multiprocessor tasks is done by sorting the ready time of each group of
/// processors and when a group becomes ready, the month of the less advanced
/// simulation waiting is scheduled on this group." Post-processing tasks run
/// according to the schedule's PostPolicy:
///  * kPoolThenRetired — on the dedicated pool at any time, plus on the
///    processors of groups that have run their last main task;
///  * kAllAtEnd — only after every main task finished, on the whole cluster.
///
/// The simulator is exact and deterministic; the closed-form model of
/// makespan_model.hpp is validated against it.

#include <cstdint>
#include <functional>
#include <string>

#include "appmodel/ensemble.hpp"
#include "fault/failure.hpp"
#include "obs/trace.hpp"
#include "platform/cluster.hpp"
#include "sched/group_schedule.hpp"
#include "sched/heuristics.hpp"
#include "sim/trace.hpp"

namespace oagrid::sim {

/// Which scenario a freed group picks next (the paper uses least-advanced;
/// the others exist for the dispatch-rule ablation bench).
enum class DispatchRule {
  kLeastAdvanced,  ///< fewest completed months first (paper §4.3)
  kRoundRobin,     ///< cycle through scenario ids
  kFifo,           ///< scenarios queue up in the order they become ready
};

[[nodiscard]] const char* to_string(DispatchRule rule) noexcept;

/// Stochastic execution-time perturbations. The paper's evaluation is
/// deterministic (benchmarked durations); the real Grid'5000 runs it was
/// preparing are not. With a non-trivial model, every main/post duration is
/// multiplied by a log-normal-ish factor exp(N(0, jitter)), and each main
/// task independently fails with `failure_probability` (the month's output
/// is lost and the month re-runs — the restart-file recovery of the real
/// application). All draws are deterministic in `seed`.
struct PerturbationModel {
  double duration_jitter = 0.0;      ///< stddev of ln(duration factor)
  double failure_probability = 0.0;  ///< per main-task execution
  std::uint64_t seed = 1;

  [[nodiscard]] bool active() const noexcept {
    return duration_jitter > 0.0 || failure_probability > 0.0;
  }
};

/// Node-failure injection for one cluster's DES run. Unlike PerturbationModel
/// (which fails individual task *executions*), this kills *node sets*: a
/// down group's in-flight month dies, the scenario rewinds to its last
/// k-month restart checkpoint, and the group stays unavailable until repair.
struct FaultOptions {
  const fault::FailureModel* model = nullptr;  ///< not owned; null = inactive
  ClusterId cluster = 0;  ///< which cluster's process this run draws from
  fault::RecoveryPolicy recovery = fault::RecoveryPolicy::kRescheduleInCluster;
  /// Restart granularity: a killed scenario rewinds months_done to the last
  /// multiple of this cadence (1 = the paper's monthly restart files).
  MonthIndex checkpoint_months = 1;
  /// Stall charged once to a migrated scenario's next month under
  /// kMigrateWithState — the time to re-stage its restart state, priced by
  /// net::NetworkModel at the call site.
  Seconds migrate_staging = 0.0;

  /// True when this run can actually see failures. An inactive FaultOptions
  /// leaves the simulator on the exact pre-fault code path (bit-identical
  /// results, no extra events).
  [[nodiscard]] bool active() const noexcept {
    return model != nullptr && model->cluster_active(cluster);
  }
};

struct SimOptions {
  bool capture_trace = false;
  DispatchRule dispatch = DispatchRule::kLeastAdvanced;
  PerturbationModel perturbation;  ///< inactive by default (exact durations)
  FaultOptions fault;              ///< node failures; inactive by default

  /// Inter-month restart hand-off: simulated seconds a group stalls before
  /// each main task of month > 0, fetching the previous month's ~120 MB
  /// restart file ("data exchanges between two consecutive monthly
  /// simulations", §2). Price it with net::NetworkModel::transfer_time over
  /// the cluster's fabric. The default 0.0 reproduces the paper's free-data
  /// world bit for bit (the stall is added, and x + 0.0 == x).
  Seconds restart_handoff = 0.0;

  /// Progress streaming: when > 0, `on_progress(months_done, simulated_now)`
  /// fires every `progress_every` completed main tasks (the hook a real
  /// multi-week execution would use to report upstream; the middleware's
  /// server daemons forward it as ProgressUpdate messages).
  Count progress_every = 0;
  std::function<void(Count, Seconds)> on_progress;

  /// Observability sink for simulated-time task events (obs::kSimPid, one
  /// trace microsecond per simulated second). Null -> no events. Aggregate
  /// counters/histograms additionally flow into obs::metrics() after the
  /// run whenever obs::enabled() — that path costs nothing per event.
  obs::TraceBuffer* obs_trace = nullptr;
  int obs_track_base = 0;     ///< first track id (grid runs band clusters)
  std::string obs_label;      ///< track-name prefix, e.g. the cluster name
};

struct SimResult {
  Seconds makespan = 0.0;
  Seconds main_phase_end = 0.0;  ///< completion of the last main task
  Count mains_executed = 0;  ///< successful main-task completions
  Count posts_executed = 0;
  Count retries = 0;  ///< failed main executions that had to re-run
  std::size_t events = 0;
  /// Busy processor-seconds of the groups over makespan * allocated procs.
  double group_utilization = 0.0;
  fault::FaultStats fault;  ///< lost-work accounting; zeros without failures
  Trace trace;  ///< populated only when SimOptions::capture_trace
};

/// Runs the ensemble to completion. Throws on an invalid schedule.
[[nodiscard]] SimResult simulate_ensemble(const platform::Cluster& cluster,
                                          const sched::GroupSchedule& schedule,
                                          const appmodel::Ensemble& ensemble,
                                          const SimOptions& options = {});

/// Ragged generalization: scenario s runs months_per_scenario[s] months (the
/// paper's chains are uniform, but restarted campaigns and mixed experiment
/// designs are not). The least-advanced rule naturally favors the longer
/// chains until progress evens out.
[[nodiscard]] SimResult simulate_ensemble(
    const platform::Cluster& cluster, const sched::GroupSchedule& schedule,
    const std::vector<MonthIndex>& months_per_scenario,
    const SimOptions& options = {});

/// Convenience: build the schedule with `heuristic` and simulate it.
[[nodiscard]] SimResult simulate_with_heuristic(
    const platform::Cluster& cluster, sched::Heuristic heuristic,
    const appmodel::Ensemble& ensemble, const SimOptions& options = {});

}  // namespace oagrid::sim
