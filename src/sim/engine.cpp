#include "sim/engine.hpp"

#include <stdexcept>

namespace oagrid::sim {

void Engine::schedule_at(Seconds when, Callback callback) {
  OAGRID_REQUIRE(when >= now_, "cannot schedule an event in the past");
  OAGRID_REQUIRE(callback != nullptr, "null event callback");
  queue_.push(Event{when, next_seq_++, std::move(callback)});
}

void Engine::schedule_after(Seconds delay, Callback callback) {
  OAGRID_REQUIRE(delay >= 0.0, "negative event delay");
  schedule_at(now_ + delay, std::move(callback));
}

std::size_t Engine::run() {
  if (running_) throw std::logic_error("oagrid: Engine::run is not reentrant");
  running_ = true;
  stopped_ = false;
  std::size_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    // priority_queue::top returns a const ref; move the callback out via a
    // local copy of the (cheap) wrapper before popping.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    event.callback();
    ++executed;
  }
  running_ = false;
  return executed;
}

}  // namespace oagrid::sim
