#pragma once
/// \file trace_stats.hpp
/// \brief Post-hoc analytics over execution traces.
///
/// The closed-form model reasons about aggregate quantities (backlog,
/// leftover posts); these statistics read the same quantities off a real
/// trace: per-unit utilization, and the *post latency* — how long a month's
/// diagnostics waited between the main task finishing and its post task
/// starting, i.e. the paper's Figure 4/5 "overpassing" made measurable.

#include <vector>

#include "sim/trace.hpp"

namespace oagrid::sim {

struct UnitStats {
  UnitKind kind = UnitKind::kGroup;
  int unit = 0;
  Count tasks = 0;
  Seconds busy = 0.0;
  Seconds first_start = 0.0;
  Seconds last_end = 0.0;
  /// busy / makespan (the whole-campaign horizon, not the unit's own span).
  double utilization = 0.0;
};

struct TraceStats {
  Seconds makespan = 0.0;
  std::vector<UnitStats> units;       ///< groups first, then post workers
  double group_utilization = 0.0;     ///< aggregate over group units
  Seconds mean_post_latency = 0.0;    ///< post.start - main.end, averaged
  Seconds max_post_latency = 0.0;
  Count posts_measured = 0;
};

/// Computes the statistics. Throws std::invalid_argument on an empty trace
/// or one that fails Trace::verify().
[[nodiscard]] TraceStats analyze_trace(const Trace& trace);

}  // namespace oagrid::sim
