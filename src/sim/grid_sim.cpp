#include "sim/grid_sim.hpp"

#include "common/parallel.hpp"
#include "obs/obs.hpp"
#include "sim/perf_vector.hpp"

namespace oagrid::sim {

GridSimResult simulate_grid(const platform::Grid& grid,
                            const appmodel::Ensemble& ensemble,
                            sched::Heuristic heuristic, std::size_t threads) {
  ensemble.validate();
  OAGRID_REQUIRE(grid.cluster_count() >= 1, "grid needs at least one cluster");

  const bool observed = obs::enabled();
  obs::Histogram* const perf_us =
      observed ? &obs::metrics().histogram("sim.perf_vector_us") : nullptr;

  GridSimResult result;
  result.performance.resize(static_cast<std::size_t>(grid.cluster_count()));
  parallel_for(
      0, static_cast<std::size_t>(grid.cluster_count()),
      [&](std::size_t c) {
        obs::ScopedTimer timer(perf_us);
        obs::Span span(observed ? &obs::trace_buffer() : nullptr,
                       "perf vector: " +
                           grid.cluster(static_cast<ClusterId>(c)).name(),
                       "sim");
        result.performance[c] =
            performance_vector(grid.cluster(static_cast<ClusterId>(c)),
                               ensemble.scenarios, ensemble.months, heuristic);
      },
      threads);
  if (observed)
    obs::metrics().counter("sim.grid_campaigns").add();

  result.repartition =
      sched::greedy_repartition(result.performance, ensemble.scenarios);

  result.cluster_makespans.assign(
      static_cast<std::size_t>(grid.cluster_count()), 0.0);
  for (std::size_t c = 0; c < result.performance.size(); ++c) {
    const Count k = result.repartition.dags_per_cluster[c];
    if (k > 0)
      result.cluster_makespans[c] =
          result.performance[c][static_cast<std::size_t>(k) - 1];
  }
  result.makespan = result.repartition.makespan;
  return result;
}

}  // namespace oagrid::sim
