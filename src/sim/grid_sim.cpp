#include "sim/grid_sim.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "fault/checkpoint.hpp"
#include "net/fairshare.hpp"
#include "obs/obs.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/perf_vector.hpp"

namespace oagrid::sim {
namespace {

/// Fair-shared finish of `k` simultaneous `size_mb` transfers src -> dst
/// starting at t = 0: under equal sharing of one directed link they all
/// drain together at latency + k * size / bw. Exactly 0.0 over a free link.
Seconds batch_transfer_time(const net::NetworkModel& network, ClusterId src,
                            ClusterId dst, Count k, double size_mb) {
  if (k <= 0 || size_mb <= 0.0) return 0.0;
  return network.transfer_time(src, dst, static_cast<double>(k) * size_mb);
}

}  // namespace

GridNetworkOptions campaign_network_options(
    net::NetworkModel network, const appmodel::Ensemble& ensemble,
    const appmodel::VolumeParams& volumes, ClusterId home) {
  ensemble.validate();
  GridNetworkOptions options;
  options.network = std::move(network);
  options.home = home;
  options.stage_mb_per_scenario = volumes.restart_mb;
  options.collect_mb_per_scenario =
      static_cast<double>(ensemble.months) * volumes.raw_diag_mb /
          volumes.compression_ratio +
      volumes.restart_mb;
  return options;
}

GridSimResult simulate_grid(const platform::Grid& grid,
                            const appmodel::Ensemble& ensemble,
                            sched::Heuristic heuristic, std::size_t threads,
                            const GridNetworkOptions& net_options,
                            const GridFaultOptions& fault_options) {
  ensemble.validate();
  OAGRID_REQUIRE(grid.cluster_count() >= 1, "grid needs at least one cluster");
  if (net_options.active()) {
    OAGRID_REQUIRE(net_options.network.cluster_count() == grid.cluster_count(),
                   "network model does not cover the grid's clusters");
    OAGRID_REQUIRE(
        net_options.home >= 0 && net_options.home < grid.cluster_count(),
        "home cluster outside the grid");
    OAGRID_REQUIRE(net_options.stage_mb_per_scenario >= 0.0 &&
                       net_options.collect_mb_per_scenario >= 0.0,
                   "transfer volumes must be >= 0");
  }
  if (fault_options.active()) {
    OAGRID_REQUIRE(
        fault_options.model.cluster_count() == grid.cluster_count(),
        "failure model does not cover the grid's clusters");
    OAGRID_REQUIRE(fault_options.checkpoint_months >= 1,
                   "checkpoint cadence must be >= 1 month");
  }

  const bool observed = obs::enabled();
  obs::Histogram* const perf_us =
      observed ? &obs::metrics().histogram("sim.perf_vector_us") : nullptr;

  GridSimResult result;
  result.performance.resize(static_cast<std::size_t>(grid.cluster_count()));
  parallel_for(
      0, static_cast<std::size_t>(grid.cluster_count()),
      [&](std::size_t c) {
        obs::ScopedTimer timer(perf_us);
        obs::Span span(observed ? &obs::trace_buffer() : nullptr,
                       "perf vector: " +
                           grid.cluster(static_cast<ClusterId>(c)).name(),
                       "sim");
        result.performance[c] =
            performance_vector(grid.cluster(static_cast<ClusterId>(c)),
                               ensemble.scenarios, ensemble.months, heuristic);
      },
      threads);
  if (observed)
    obs::metrics().counter("sim.grid_campaigns").add();

  const std::size_t n = static_cast<std::size_t>(grid.cluster_count());
  result.staging_seconds.assign(n, 0.0);
  result.collection_seconds.assign(n, 0.0);

  // Algorithm 1, with each candidate cluster charged the serialized cost of
  // moving its k scenarios' files over the home link (when a network is
  // attached) plus its expected failure inflation (when a failure model is).
  // Both charges absent -> the paper's uncharged greedy, bit for bit.
  sched::PlacementCharge net_charge;
  if (net_options.active()) {
    net_charge = [&net_options](std::size_t c, Count k) -> Seconds {
      const auto dst = static_cast<ClusterId>(c);
      return batch_transfer_time(net_options.network, net_options.home, dst, k,
                                 net_options.stage_mb_per_scenario) +
             batch_transfer_time(net_options.network, dst, net_options.home, k,
                                 net_options.collect_mb_per_scenario);
    };
  }
  sched::PlacementCharge failure_charge;
  if (fault_options.active() && fault_options.charge_placement)
    failure_charge = fault::make_failure_charge(
        fault_options.model, result.performance, ensemble.months,
        fault_options.checkpoint_months);
  if (!net_charge && !failure_charge) {
    result.repartition =
        sched::greedy_repartition(result.performance, ensemble.scenarios);
  } else if (net_charge && failure_charge) {
    const auto combined = [&net_charge, &failure_charge](std::size_t c,
                                                         Count k) -> Seconds {
      return net_charge(c, k) + failure_charge(c, k);
    };
    result.repartition = sched::greedy_repartition_charged(
        result.performance, ensemble.scenarios, combined);
  } else {
    result.repartition = sched::greedy_repartition_charged(
        result.performance, ensemble.scenarios,
        net_charge ? net_charge : failure_charge);
  }

  // Per-cluster compute times: the clean performance-vector entry, replaced
  // by a failure-injected DES run wherever the cluster can actually fail
  // (elsewhere the substitution is the very same double, so an inactive
  // model stays bit-identical).
  const std::size_t cluster_n = static_cast<std::size_t>(grid.cluster_count());
  std::vector<Seconds> compute(cluster_n, 0.0);
  for (std::size_t c = 0; c < cluster_n; ++c) {
    const Count k = result.repartition.dags_per_cluster[c];
    if (k > 0)
      compute[c] = result.performance[c][static_cast<std::size_t>(k) - 1];
  }
  if (fault_options.active()) {
    std::vector<fault::FaultStats> stats(cluster_n);
    parallel_for(
        0, cluster_n,
        [&](std::size_t c) {
          const Count k = result.repartition.dags_per_cluster[c];
          const auto cid = static_cast<ClusterId>(c);
          if (k <= 0 || !fault_options.model.cluster_active(cid)) return;
          const appmodel::Ensemble sub{k, ensemble.months};
          const sched::GroupSchedule schedule =
              sched::make_schedule(heuristic, grid.cluster(cid), sub);
          SimOptions opts;
          opts.fault.model = &fault_options.model;
          opts.fault.cluster = cid;
          opts.fault.recovery = fault_options.recovery;
          opts.fault.checkpoint_months = fault_options.checkpoint_months;
          // Migration re-staging ships the scenario's restart state from
          // home again; free (0.0) when no network is attached.
          if (net_options.active() && net_options.stage_mb_per_scenario > 0.0)
            opts.fault.migrate_staging = net_options.network.transfer_time(
                net_options.home, cid, net_options.stage_mb_per_scenario);
          const SimResult r =
              simulate_ensemble(grid.cluster(cid), schedule, sub, opts);
          compute[c] = r.makespan;
          stats[c] = r.fault;
        },
        threads);
    for (const fault::FaultStats& s : stats) result.fault.merge(s);
  }

  if (net_options.active()) {
    // Execute the movement the decision priced: all staging transfers enter
    // the network at t = 0 (fair-shared per home link), and each cluster's
    // results ship home the moment its compute drains.
    std::vector<net::TransferRequest> staging;
    std::vector<net::TransferRequest> collection;
    for (std::size_t c = 0; c < n; ++c) {
      const Count k = result.repartition.dags_per_cluster[c];
      if (k <= 0) continue;
      const auto dst = static_cast<ClusterId>(c);
      const Seconds staged = batch_transfer_time(
          net_options.network, net_options.home, dst, k,
          net_options.stage_mb_per_scenario);
      for (Count s = 0; s < k; ++s) {
        if (net_options.stage_mb_per_scenario > 0.0)
          staging.push_back({net_options.home, dst,
                             net_options.stage_mb_per_scenario, 0.0});
        if (net_options.collect_mb_per_scenario > 0.0)
          collection.push_back({dst, net_options.home,
                                net_options.collect_mb_per_scenario,
                                staged + compute[c]});
      }
    }
    const net::TransferPlan staged_plan =
        net::simulate_transfers(net_options.network, staging);
    const net::TransferPlan collected_plan =
        net::simulate_transfers(net_options.network, collection);
    result.transfer_mb = staged_plan.total_mb + collected_plan.total_mb;
    // Per-cluster staging delay / collection tail off the simulated plans.
    std::size_t si = 0, ci = 0;
    for (std::size_t c = 0; c < n; ++c) {
      const Count k = result.repartition.dags_per_cluster[c];
      if (k <= 0) continue;
      for (Count s = 0; s < k; ++s) {
        if (net_options.stage_mb_per_scenario > 0.0)
          result.staging_seconds[c] = std::max(
              result.staging_seconds[c], staged_plan.results[si++].finish);
        if (net_options.collect_mb_per_scenario > 0.0)
          result.collection_seconds[c] =
              std::max(result.collection_seconds[c],
                       collected_plan.results[ci++].finish -
                           (result.staging_seconds[c] + compute[c]));
      }
      result.collection_seconds[c] = std::max(result.collection_seconds[c], 0.0);
    }
  }

  result.cluster_makespans.assign(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    const Count k = result.repartition.dags_per_cluster[c];
    if (k > 0)
      result.cluster_makespans[c] = result.staging_seconds[c] + compute[c] +
                                    result.collection_seconds[c];
  }
  result.makespan = 0.0;
  for (const Seconds m : result.cluster_makespans)
    result.makespan = std::max(result.makespan, m);
  return result;
}

}  // namespace oagrid::sim
