#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <sstream>

namespace oagrid::sim {
namespace {

std::string unit_label(UnitKind kind, int unit) {
  return (kind == UnitKind::kGroup ? "G" : "P") + std::to_string(unit);
}

}  // namespace

std::string Trace::verify() const {
  // Per-unit overlap check.
  std::map<std::pair<UnitKind, int>, std::vector<const TraceEntry*>> by_unit;
  for (const auto& e : entries_) {
    if (e.end < e.start) return "entry with end < start";
    by_unit[{e.unit_kind, e.unit}].push_back(&e);
  }
  for (auto& [unit, list] : by_unit) {
    std::sort(list.begin(), list.end(),
              [](const TraceEntry* a, const TraceEntry* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 1; i < list.size(); ++i)
      if (list[i]->start < list[i - 1]->end - 1e-9) {
        std::ostringstream msg;
        msg << "overlap on " << unit_label(unit.first, unit.second) << " at t="
            << list[i]->start;
        return msg.str();
      }
  }

  // Per-scenario ordering: months in order, post after its main.
  std::map<ScenarioId, std::map<MonthIndex, const TraceEntry*>> mains, posts;
  for (const auto& e : entries_) {
    auto& bucket = e.unit_kind == UnitKind::kGroup ? mains : posts;
    if (!bucket[e.scenario].emplace(e.month, &e).second)
      return "duplicate execution of scenario " + std::to_string(e.scenario) +
             " month " + std::to_string(e.month);
  }
  for (const auto& [scenario, months] : mains) {
    const TraceEntry* prev = nullptr;
    for (const auto& [month, entry] : months) {
      if (prev && entry->start < prev->end - 1e-9)
        return "scenario " + std::to_string(scenario) + " month " +
               std::to_string(month) + " started before its predecessor ended";
      prev = entry;
    }
  }
  for (const auto& [scenario, months] : posts) {
    for (const auto& [month, entry] : months) {
      const auto scenario_mains = mains.find(scenario);
      if (scenario_mains == mains.end()) return "post without any main";
      const auto main_entry = scenario_mains->second.find(month);
      if (main_entry == scenario_mains->second.end())
        return "post without its main";
      if (entry->start < main_entry->second->end - 1e-9)
        return "post of scenario " + std::to_string(scenario) + " month " +
               std::to_string(month) + " started before its main ended";
    }
  }
  return {};
}

void Trace::write_csv(std::ostream& os) const {
  os << "unit_kind,unit,scenario,month,start,end\n";
  for (const auto& e : entries_)
    os << (e.unit_kind == UnitKind::kGroup ? "group" : "post") << ',' << e.unit
       << ',' << e.scenario << ',' << e.month << ',' << e.start << ',' << e.end
       << '\n';
}

std::string Trace::render_gantt(int width) const {
  if (entries_.empty()) return "(empty trace)\n";
  width = std::max(width, 10);

  Seconds horizon = 0.0;
  for (const auto& e : entries_) horizon = std::max(horizon, e.end);
  if (horizon <= 0.0) horizon = 1.0;

  // Stable unit ordering: groups first, then post workers.
  std::map<std::pair<int, int>, std::string> rows;  // (kind rank, unit) -> row
  auto row_of = [&](const TraceEntry& e) -> std::string& {
    const int rank = e.unit_kind == UnitKind::kGroup ? 0 : 1;
    auto [it, inserted] = rows.try_emplace(
        {rank, e.unit}, std::string(static_cast<std::size_t>(width), '.'));
    (void)inserted;
    return it->second;
  };

  for (const auto& e : entries_) {
    std::string& row = row_of(e);
    auto col = [&](Seconds t) {
      return std::clamp<int>(
          static_cast<int>(std::floor(t / horizon * width)), 0, width - 1);
    };
    const int c0 = col(e.start);
    const int c1 = std::max(c0, col(e.end - 1e-9));
    const char digit = "0123456789abcdef"[e.scenario % 16];
    const char glyph = e.unit_kind == UnitKind::kGroup
                           ? static_cast<char>(std::toupper(digit))
                           : digit;
    for (int c = c0; c <= c1; ++c) row[static_cast<std::size_t>(c)] = glyph;
  }

  std::ostringstream out;
  out << "time 0 .. " << horizon << " s (one column ~ " << horizon / width
      << " s); rows: G = main-task group, P = post worker; glyph = scenario\n";
  for (const auto& [key, row] : rows) {
    out << (key.first == 0 ? 'G' : 'P') << key.second << '\t' << row << '\n';
  }
  return out.str();
}

}  // namespace oagrid::sim
