#pragma once
/// \file local_search.hpp
/// \brief Simulation-driven local search over group multisets — an extension
/// closing the gap between the knapsack heuristic and the exhaustive oracle.
///
/// The knapsack objective (steady-state throughput) ignores set-boundary and
/// post-processing effects; the oracle (optimal_search.hpp) prices them but
/// costs thousands of simulations. Hill climbing from the knapsack solution
/// over six natural moves — grow/shrink a group, split/merge groups,
/// add/remove a group — typically reaches the oracle's makespan in a few
/// dozen simulations (bench_optimality quantifies this).
///
/// Each neighborhood is evaluated in parallel on the shared thread pool and
/// every simulated makespan is memoized in the process-wide eval cache
/// (sim/eval_cache.hpp), so repeated searches over the same cluster family
/// get cheaper as the cache warms. The search trajectory itself is
/// deterministic regardless of thread count or cache state.

#include "appmodel/ensemble.hpp"
#include "platform/cluster.hpp"
#include "sched/group_schedule.hpp"

namespace oagrid::sim {

struct LocalSearchOptions {
  int max_accepted_moves = 100;      ///< hill-climbing step budget
  std::size_t max_evaluations = 5000;  ///< total simulations allowed

  /// Worker cap for neighborhood evaluation on the shared pool (0 = all
  /// available). Results are bit-identical at any setting: candidates are
  /// simulated independently and reduced sequentially in candidate order,
  /// and the evaluation budget is charged against a search-local memo that
  /// is oblivious to global-cache warmth.
  std::size_t threads = 0;
};

struct LocalSearchResult {
  sched::GroupSchedule best;
  Seconds makespan = kInfiniteTime;
  int accepted_moves = 0;
  std::size_t evaluations = 0;
};

/// Multi-start best-improvement hill climbing. The group-count dimension is
/// where single moves get stuck (with as many groups as scenarios, the
/// slowest group binds the makespan and no one-step change escapes), so one
/// climb starts from the knapsack solution restricted to at most k groups,
/// for every k in [1, NS]; the best local optimum wins. Evaluations are
/// memoized across starts.
[[nodiscard]] LocalSearchResult local_search_grouping(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble,
    const LocalSearchOptions& options = {});

}  // namespace oagrid::sim
