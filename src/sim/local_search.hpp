#pragma once
/// \file local_search.hpp
/// \brief Simulation-driven local search over group multisets — an extension
/// closing the gap between the knapsack heuristic and the exhaustive oracle.
///
/// The knapsack objective (steady-state throughput) ignores set-boundary and
/// post-processing effects; the oracle (optimal_search.hpp) prices them but
/// costs thousands of simulations. Hill climbing from the knapsack solution
/// over six natural moves — grow/shrink a group, split/merge groups,
/// add/remove a group — typically reaches the oracle's makespan in a few
/// dozen simulations (bench_optimality quantifies this).

#include "appmodel/ensemble.hpp"
#include "platform/cluster.hpp"
#include "sched/group_schedule.hpp"

namespace oagrid::sim {

struct LocalSearchOptions {
  int max_accepted_moves = 100;      ///< hill-climbing step budget
  std::size_t max_evaluations = 5000;  ///< total simulations allowed
};

struct LocalSearchResult {
  sched::GroupSchedule best;
  Seconds makespan = kInfiniteTime;
  int accepted_moves = 0;
  std::size_t evaluations = 0;
};

/// Multi-start best-improvement hill climbing. The group-count dimension is
/// where single moves get stuck (with as many groups as scenarios, the
/// slowest group binds the makespan and no one-step change escapes), so one
/// climb starts from the knapsack solution restricted to at most k groups,
/// for every k in [1, NS]; the best local optimum wins. Evaluations are
/// memoized across starts.
[[nodiscard]] LocalSearchResult local_search_grouping(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble,
    const LocalSearchOptions& options = {});

}  // namespace oagrid::sim
