#pragma once
/// \file calendar.hpp
/// \brief Flat, preallocated event calendar for plain-struct event payloads.
///
/// sim::Engine type-erases every callback behind std::function, which heap
/// allocates once the capture exceeds the small-buffer size — and the
/// ensemble simulator's captures always do (this + group + scenario + month).
/// Two allocations per simulated month is the dominant cost of the DES hot
/// loop once the scheduling logic itself is cheap.
///
/// Calendar<Payload> stores payloads by value in a binary heap over one
/// contiguous, reusable buffer: scheduling is a push + sift-up, popping a
/// swap + sift-down, and a whole simulation allocates O(max concurrent
/// events) — reserve() once, then the hot loop is allocation-free.
///
/// Ordering contract matches Engine: events execute in (time, insertion
/// sequence) order, so exactly-simultaneous events (synchronized group sets
/// finishing in lockstep) run in the order they were scheduled and the
/// simulation stays fully deterministic.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace oagrid::sim {

template <typename Payload>
class Calendar {
 public:
  /// Preallocates capacity for `events` concurrently pending events.
  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Schedules `payload` at absolute simulated time `when` (>= now()).
  void schedule(Seconds when, Payload payload) {
    OAGRID_REQUIRE(when >= now_, "cannot schedule an event in the past");
    heap_.push_back(Entry{when, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Current simulated time (0 before the first pop).
  [[nodiscard]] Seconds now() const noexcept { return now_; }

  /// Removes and returns the earliest event, advancing now() to its time.
  /// Precondition: !empty().
  Payload pop() {
    Entry top = std::move(heap_.front());
    now_ = top.when;
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return std::move(top.payload);
  }

 private:
  struct Entry {
    Seconds when;
    std::uint64_t seq;
    Payload payload;
  };

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) return;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      if (left < n && before(heap_[left], heap_[smallest])) smallest = left;
      if (right < n && before(heap_[right], heap_[smallest])) smallest = right;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Entry> heap_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace oagrid::sim
