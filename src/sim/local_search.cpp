#include "sim/local_search.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <unordered_map>

#include "common/thread_pool.hpp"
#include "knapsack/knapsack.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/eval_cache.hpp"

namespace oagrid::sim {
namespace {

using Sizes = std::vector<ProcCount>;

/// FNV-1a over the size multiset — the search-local memo is on the hot path
/// and a flat hash probe beats std::map's pointer chase per lookup.
struct SizesHash {
  std::size_t operator()(const Sizes& sizes) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const ProcCount s : sizes) {
      h ^= static_cast<std::uint32_t>(s);
      h *= 0x00000100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

Sizes canonical(Sizes sizes) {
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return sizes;
}

/// All neighbors of a multiset under the six moves, canonicalized and
/// deduplicated. Feasibility (resource budget, group bounds, cardinality) is
/// enforced here.
std::vector<Sizes> neighbors(const Sizes& sizes, const platform::Cluster& cluster,
                             Count max_groups) {
  std::vector<Sizes> out;
  // Upper bound on generated candidates: four single-group moves plus two
  // pairwise moves per (i, j); reserving it up-front keeps the generation
  // loop free of vector regrowth.
  out.reserve(sizes.size() * (2 * sizes.size() + 2) + 1);
  const ProcCount used =
      std::accumulate(sizes.begin(), sizes.end(), ProcCount{0});
  const ProcCount spare = cluster.resources() - used;
  const ProcCount lo = cluster.min_group();
  const ProcCount hi = cluster.max_group();

  auto push = [&](Sizes candidate) {
    if (candidate.empty()) return;
    out.push_back(canonical(std::move(candidate)));
  };

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    // Grow / shrink group i.
    if (sizes[i] < hi && spare >= 1) {
      Sizes c = sizes;
      ++c[i];
      push(std::move(c));
    }
    if (sizes[i] > lo) {
      Sizes c = sizes;
      --c[i];
      push(std::move(c));
    }
    // Split group i into two admissible halves.
    if (sizes[i] >= 2 * lo &&
        static_cast<Count>(sizes.size()) + 1 <= max_groups) {
      const ProcCount a = sizes[i] / 2;
      const ProcCount b = sizes[i] - a;
      if (a >= lo && b >= lo && a <= hi && b <= hi) {
        Sizes c = sizes;
        c[i] = a;
        c.push_back(b);
        push(std::move(c));
      }
    }
    // Remove group i (its processors go back to the pool).
    if (sizes.size() > 1) {
      Sizes c = sizes;
      c.erase(c.begin() + static_cast<long>(i));
      push(std::move(c));
    }
    // Merge groups i and j, and transfer one processor between them (the
    // composite of shrink+grow — needed because the intermediate single
    // moves often sit in a valley).
    for (std::size_t j = 0; j < sizes.size(); ++j) {
      if (j == i) continue;
      if (j > i && sizes[i] + sizes[j] <= hi) {
        Sizes c = sizes;
        c[i] = sizes[i] + sizes[j];
        c.erase(c.begin() + static_cast<long>(j));
        push(std::move(c));
      }
      if (sizes[i] > lo && sizes[j] < hi) {
        Sizes c = sizes;
        --c[i];
        ++c[j];
        push(std::move(c));
      }
    }
  }
  // Add a fresh minimal group from the pool.
  if (spare >= lo && static_cast<Count>(sizes.size()) + 1 <= max_groups) {
    Sizes c = sizes;
    c.push_back(lo);
    push(std::move(c));
  }

  // Dedup keeps the sorted order the hill climb's first-min tie-break relies
  // on; candidate ordering (hence the search trajectory) must not depend on
  // move generation order.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

LocalSearchResult local_search_grouping(const platform::Cluster& cluster,
                                        const appmodel::Ensemble& ensemble,
                                        const LocalSearchOptions& options) {
  ensemble.validate();
  OAGRID_REQUIRE(options.max_accepted_moves >= 0, "negative move budget");

  auto schedule_for = [&](const Sizes& sizes) {
    sched::GroupSchedule schedule;
    schedule.group_sizes = sizes;
    schedule.post_pool =
        cluster.resources() -
        std::accumulate(sizes.begin(), sizes.end(), ProcCount{0});
    schedule.post_policy = sched::PostPolicy::kPoolThenRetired;
    return schedule;
  };
  // Thread-safe: hits the process-wide eval cache, simulates on a miss.
  auto simulate = [&](const Sizes& sizes) -> Seconds {
    return cached_makespan(cluster, schedule_for(sizes), ensemble);
  };

  // The search-local memo (not the global cache) drives the evaluation
  // budget: a candidate costs budget the first time *this search* meets it,
  // whether or not some earlier search already memoized it globally. That
  // keeps trajectories and results bit-identical between cold- and
  // warm-cache runs.
  std::unordered_map<Sizes, Seconds, SizesHash> memo;
  LocalSearchResult result;
  auto evaluate = [&](const Sizes& sizes) -> Seconds {
    const auto it = memo.find(sizes);
    if (it != memo.end()) return it->second;
    const Seconds makespan = simulate(sizes);
    ++result.evaluations;
    memo.emplace(sizes, makespan);
    return makespan;
  };

  // Starting points: the knapsack solution with cardinality capped at every
  // k in [1, NS] (deduplicated — caps beyond the natural group count repeat).
  std::vector<Sizes> starts;
  starts.reserve(static_cast<std::size_t>(ensemble.scenarios));
  for (Count k = 1; k <= ensemble.scenarios; ++k) {
    knapsack::Problem problem;
    for (ProcCount g = cluster.min_group(); g <= cluster.max_group(); ++g)
      problem.items.push_back(knapsack::Item{g, 1.0 / cluster.main_time(g)});
    problem.capacity = cluster.resources();
    problem.max_items = k;
    const knapsack::Solution solution = knapsack::solve_dp(problem);
    Sizes sizes;
    for (std::size_t i = 0; i < solution.counts.size(); ++i)
      for (Count c = 0; c < solution.counts[i]; ++c)
        sizes.push_back(cluster.min_group() + static_cast<ProcCount>(i));
    if (sizes.empty()) continue;
    starts.push_back(canonical(std::move(sizes)));
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
  OAGRID_REQUIRE(!starts.empty(), "no feasible grouping exists");

  ThreadPool& pool = shared_pool();
  std::vector<const Sizes*> examined;
  std::vector<const Sizes*> to_eval;
  std::vector<Seconds> fresh;

  Sizes global_best;
  Seconds global_makespan = kInfiniteTime;
  for (const Sizes& start : starts) {
    Sizes current = start;
    Seconds current_makespan = evaluate(current);
    for (int step = 0; step < options.max_accepted_moves; ++step) {
      const std::vector<Sizes> candidates =
          neighbors(current, cluster, ensemble.scenarios);

      // Walk the (deterministically ordered) candidate list, charging the
      // budget exactly as the serial scan would: a candidate already in the
      // memo is free; a fresh one costs one evaluation; the walk stops the
      // moment the budget would be exceeded — even for memoized candidates,
      // matching the serial break-before-evaluate.
      examined.clear();
      to_eval.clear();
      for (const Sizes& candidate : candidates) {
        if (result.evaluations + to_eval.size() >= options.max_evaluations)
          break;
        examined.push_back(&candidate);
        if (memo.find(candidate) == memo.end()) to_eval.push_back(&candidate);
      }

      // Fresh candidates are independent deterministic simulations, so they
      // can run on any number of threads without affecting the values.
      fresh.assign(to_eval.size(), 0.0);
      pool.parallel_for(
          0, to_eval.size(),
          [&](std::size_t i) { fresh[i] = simulate(*to_eval[i]); },
          options.threads);
      for (std::size_t i = 0; i < to_eval.size(); ++i)
        memo.emplace(*to_eval[i], fresh[i]);
      result.evaluations += to_eval.size();

      // Sequential first-min reduction in candidate order: the accepted move
      // is bit-identical to the serial algorithm at any thread count.
      Sizes best_neighbor;
      Seconds best_makespan = current_makespan;
      for (const Sizes* candidate : examined) {
        const Seconds makespan = memo.find(*candidate)->second;
        if (makespan < best_makespan - 1e-9) {
          best_makespan = makespan;
          best_neighbor = *candidate;
        }
      }
      if (best_neighbor.empty()) break;  // local optimum (or budget dry)
      current = std::move(best_neighbor);
      current_makespan = best_makespan;
      ++result.accepted_moves;
    }
    if (current_makespan < global_makespan) {
      global_makespan = current_makespan;
      global_best = current;
    }
    if (result.evaluations >= options.max_evaluations) break;
  }

  result.best = schedule_for(global_best);
  result.makespan = global_makespan;
  return result;
}

}  // namespace oagrid::sim
