#pragma once
/// \file fluid_grid.hpp
/// \brief Dynamic-grid extension: what happens to the §5 scheme when cluster
/// performance drifts during the (weeks-long) campaign?
///
/// The paper fixes scenario placement up front and notes "once a scenario
/// has been scheduled on a cluster, it can not change location". Real grids
/// drift — background load, node failures, queue interference. This module
/// quantifies the cost of that restriction with a *fluid* execution model:
///
///  * each cluster consumes months at its knapsack steady-state throughput
///    (sched::best_throughput for the number of resident scenarios), scaled
///    by a time-varying speed factor;
///  * resident scenarios share the rate equally (the fluid limit of the
///    paper's least-advanced dispatch keeps them at equal progress anyway);
///  * post-processing is neglected (a ~2% tail absorbed by leftover
///    processors, see the closed-form model) — the fluid model targets the
///    placement question, not set-boundary effects.
///
/// Three policies:
///  * kStatic — Algorithm 1 once (the paper's rule);
///  * kRebalanceUnstarted — scenarios that have not run a single month may
///    migrate at epoch boundaries. Under least-advanced dispatch every
///    scenario starts within the first set, so this only corrects the
///    initial placement against the first epoch's speeds;
///  * kMigrateWithState — any scenario may migrate, paying
///    DriftModel::migration_cost (shipping the ~120 MB restart file plus
///    redeployment — the state of a scenario between months is exactly one
///    restart file, which is what makes this relaxation implementable in
///    the real application). The cost is priced per cluster pair from the
///    attached net::NetworkModel, or by an explicit scalar override.

#include <cstdint>
#include <vector>

#include "appmodel/ensemble.hpp"
#include "fault/failure.hpp"
#include "net/network.hpp"
#include "platform/grid.hpp"

namespace oagrid::sim {

/// One cluster in the fluid model.
class FluidCluster {
 public:
  FluidCluster(platform::Cluster cluster, Count total_months);

  void assign(ScenarioId scenario);
  /// Adds a scenario with partial progress (a migrated one).
  void assign_months(double months_left);
  /// Removes an unstarted scenario (throws if none with full months left).
  void remove_unstarted();
  [[nodiscard]] bool has_unstarted() const;
  /// Removes and returns the least-advanced scenario's remaining months.
  double remove_least_advanced();

  [[nodiscard]] int resident() const noexcept {
    return static_cast<int>(months_left_.size());
  }
  [[nodiscard]] double months_remaining() const;
  [[nodiscard]] bool idle() const { return months_left_.empty(); }

  /// Months per second at speed 1 with the current resident count.
  [[nodiscard]] double throughput() const;

  /// Projected seconds to drain at `speed` (resident-count refinement
  /// ignored: an upper-bound style estimate used by the rebalancer).
  [[nodiscard]] double projected_drain(double speed) const;

  /// Advances the fluid by up to `dt` seconds at `speed`; returns the time
  /// actually used (< dt only when the cluster drains inside the epoch).
  double advance(double dt, double speed);

 private:
  platform::Cluster cluster_;
  double full_months_;               ///< NM (unstarted marker)
  std::vector<double> months_left_;  ///< one entry per resident scenario
};

enum class GridPolicy {
  kStatic,              ///< the paper: placement fixed at submission
  kRebalanceUnstarted,  ///< unstarted scenarios may migrate at epochs
  kMigrateWithState,    ///< restart-file migration at a cost
};

[[nodiscard]] const char* to_string(GridPolicy policy) noexcept;

/// Random-walk speed drift: every epoch each cluster's speed is multiplied
/// by exp(N(0, sigma)), clamped to [0.3, 3.0]. sigma = 0 reproduces the
/// static deterministic world.
/// Flat per-migration stall assumed before the network model existed
/// (~120 MB over a congested WAN plus redeployment).
inline constexpr Seconds kLegacyMigrationCost = 300.0;

struct DriftModel {
  Seconds epoch_length = 6.0 * 3600.0;  ///< re-evaluation period
  double sigma = 0.0;                   ///< per-epoch log drift
  std::uint64_t seed = 1;

  /// kMigrateWithState: seconds lost per migration, charged as equivalent
  /// lost work on the destination. >= 0 is an explicit flat override;
  /// the default -1 derives the cost per cluster pair from `network` (or
  /// falls back to kLegacyMigrationCost when no network is attached).
  Seconds migration_cost_override = -1.0;

  /// Link table pricing migrations per cluster pair. Default-constructed
  /// (0 clusters) = none attached.
  net::NetworkModel network;
  /// State shipped per migration: the inter-month restart file. Workloads
  /// that drag accumulated diagnostics along should raise this.
  double migration_state_mb = appmodel::kInterMonthDataMb;
  /// Fixed redeployment overhead on top of the transfer itself.
  Seconds migration_deploy_seconds = 0.0;

  /// Seconds one migration src -> dst stalls the moved scenario.
  [[nodiscard]] Seconds migration_cost(ClusterId src, ClusterId dst) const {
    if (migration_cost_override >= 0.0) return migration_cost_override;
    if (network.cluster_count() == 0) return kLegacyMigrationCost;
    return migration_deploy_seconds +
           network.transfer_time(src, dst, migration_state_mb);
  }

  /// Cluster availability (cluster_count must match the grid when active;
  /// default-constructed = always up). In the fluid limit an outage scales
  /// the epoch's effective speed by the fraction of the window the cluster
  /// was up, the initial Algorithm-1 placement is inflated by each cluster's
  /// expected failure overhead (dead clusters receive nothing), and the
  /// rebalancing policies see the degraded speeds — so migrate-with-state
  /// naturally flees failing capacity.
  fault::FailureModel failures;
};

struct DynamicGridResult {
  Seconds makespan = 0.0;
  int migrations = 0;
  int epochs = 0;
  Seconds migration_seconds = 0.0;  ///< total stall charged to migrations
  std::vector<Seconds> cluster_finish;  ///< drain time per cluster
};

/// Runs the fluid campaign. Initial placement is Algorithm 1 on the
/// analytic performance vectors (nominal speeds), for both policies.
[[nodiscard]] DynamicGridResult simulate_dynamic_grid(
    const platform::Grid& grid, const appmodel::Ensemble& ensemble,
    GridPolicy policy, const DriftModel& drift);

}  // namespace oagrid::sim
