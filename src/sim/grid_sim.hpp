#pragma once
/// \file grid_sim.hpp
/// \brief Whole-grid execution: performance vectors, Algorithm-1
/// repartition, per-cluster simulation (§5-6 of the paper), optionally
/// priced over a network model (deployment staging in, result shipping out).

#include "appmodel/ensemble.hpp"
#include "appmodel/volumes.hpp"
#include "fault/failure.hpp"
#include "net/network.hpp"
#include "platform/grid.hpp"
#include "sched/heuristics.hpp"
#include "sched/repartition.hpp"

namespace oagrid::sim {

/// Data-movement model for a grid campaign. The default (no network, zero
/// volumes) is the paper's §5 world where transfers are free: every result
/// is then bit-identical to the network-unaware path.
struct GridNetworkOptions {
  /// Link table covering the grid's clusters (cluster_count must match the
  /// grid when non-zero). Default-constructed (0 clusters) = no network.
  net::NetworkModel network;
  /// Cluster holding the campaign inputs and archive (the paper's "home"
  /// site that owns the restart files and collects diagnostics).
  ClusterId home = 0;
  /// MB staged home -> cluster per scenario before it can start (initial
  /// restart + forcing files).
  double stage_mb_per_scenario = 0.0;
  /// MB shipped cluster -> home per scenario after it finishes (compressed
  /// diagnostics + final restart).
  double collect_mb_per_scenario = 0.0;

  /// True when a network model is attached (even a free one: transfers are
  /// then simulated — and metered — but cost exactly 0.0 s).
  [[nodiscard]] bool active() const noexcept {
    return network.cluster_count() > 0;
  }
};

/// Campaign-realistic volumes from the appmodel accounting: one restart
/// file staged in per scenario; NM months of compressed diagnostics plus
/// the final restart collected out.
[[nodiscard]] GridNetworkOptions campaign_network_options(
    net::NetworkModel network, const appmodel::Ensemble& ensemble,
    const appmodel::VolumeParams& volumes = {}, ClusterId home = 0);

/// Failure injection for a grid campaign. The default (0-cluster model) is
/// the paper's failure-free world: the repartition and every makespan are
/// then bit-identical to the fault-unaware path.
struct GridFaultOptions {
  /// Per-cluster availability description (cluster_count must match the
  /// grid when active). Default-constructed = no failures.
  fault::FailureModel model;
  fault::RecoveryPolicy recovery = fault::RecoveryPolicy::kRescheduleInCluster;
  /// Restart-file cadence used both by the rewind semantics and by the
  /// expected-makespan placement charge.
  MonthIndex checkpoint_months = 1;
  /// Also fold the expected failure inflation into Algorithm 1's candidate
  /// comparison (expected-makespan-under-failures placement charge), so
  /// unreliable clusters receive proportionally less work and dead ones
  /// receive none.
  bool charge_placement = true;

  [[nodiscard]] bool active() const noexcept { return model.active(); }
};

struct GridSimResult {
  std::vector<sched::PerformanceVector> performance;  ///< one per cluster
  sched::Repartition repartition;
  std::vector<Seconds> cluster_makespans;  ///< 0 for clusters given no work
  Seconds makespan = 0.0;

  /// Data movement (all 0 without a network — and over a free network the
  /// durations are exactly 0.0, so `makespan` matches the netless run bit
  /// for bit).
  std::vector<Seconds> staging_seconds;     ///< per cluster, fair-shared
  std::vector<Seconds> collection_seconds;  ///< per cluster, fair-shared
  double transfer_mb = 0.0;                 ///< total bytes moved

  /// Aggregated lost-work accounting over the per-cluster failure-injected
  /// DES runs; all zeros when GridFaultOptions is inactive.
  fault::FaultStats fault;
};

/// Full §5 flow in-process: (2) each cluster computes its performance vector
/// under `heuristic`, (4) Algorithm 1 distributes the scenarios — charging
/// each candidate cluster the serialized cost of staging/collecting its
/// files when a network is attached, (6) each cluster's makespan is its
/// staging delay + vector entry + collection time; the grid makespan is the
/// max. Set `threads` > 1 to compute the per-cluster vectors concurrently.
///
/// With active `fault_options`, Algorithm 1 additionally charges each
/// candidate its expected failure inflation, and every cluster with a live
/// failure process replaces its performance-vector entry by a full
/// failure-injected DES run (outages, kills, k-month rewinds, the chosen
/// recovery policy; migration staging priced over the network when one is
/// attached). Deterministic in the model seed at any thread count.
[[nodiscard]] GridSimResult simulate_grid(
    const platform::Grid& grid, const appmodel::Ensemble& ensemble,
    sched::Heuristic heuristic, std::size_t threads = 1,
    const GridNetworkOptions& net_options = {},
    const GridFaultOptions& fault_options = {});

}  // namespace oagrid::sim
