#pragma once
/// \file grid_sim.hpp
/// \brief Whole-grid execution: performance vectors, Algorithm-1
/// repartition, per-cluster simulation (§5-6 of the paper).

#include "appmodel/ensemble.hpp"
#include "platform/grid.hpp"
#include "sched/heuristics.hpp"
#include "sched/repartition.hpp"

namespace oagrid::sim {

struct GridSimResult {
  std::vector<sched::PerformanceVector> performance;  ///< one per cluster
  sched::Repartition repartition;
  std::vector<Seconds> cluster_makespans;  ///< 0 for clusters given no work
  Seconds makespan = 0.0;
};

/// Full §5 flow in-process: (2) each cluster computes its performance vector
/// under `heuristic`, (4) Algorithm 1 distributes the scenarios, (6) each
/// cluster's makespan is read off its vector; the grid makespan is the max.
/// Set `threads` > 1 to compute the per-cluster vectors concurrently.
[[nodiscard]] GridSimResult simulate_grid(const platform::Grid& grid,
                                          const appmodel::Ensemble& ensemble,
                                          sched::Heuristic heuristic,
                                          std::size_t threads = 1);

}  // namespace oagrid::sim
