#include "sim/fluid_grid.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "fault/checkpoint.hpp"
#include "sched/throughput.hpp"

namespace oagrid::sim {

FluidCluster::FluidCluster(platform::Cluster cluster, Count total_months)
    : cluster_(std::move(cluster)),
      full_months_(static_cast<double>(total_months)) {
  OAGRID_REQUIRE(total_months >= 1, "need at least one month per scenario");
}

void FluidCluster::assign(ScenarioId) { months_left_.push_back(full_months_); }

void FluidCluster::assign_months(double months_left) {
  // May exceed NM: migrated scenarios carry their transfer overhead as
  // equivalent extra work.
  OAGRID_REQUIRE(months_left > 0.0, "migrated scenario needs work left");
  months_left_.push_back(months_left);
}

double FluidCluster::remove_least_advanced() {
  OAGRID_REQUIRE(!months_left_.empty(), "no scenario to remove");
  const auto it =
      std::max_element(months_left_.begin(), months_left_.end());
  const double months = *it;
  months_left_.erase(it);
  return months;
}

bool FluidCluster::has_unstarted() const {
  return std::any_of(months_left_.begin(), months_left_.end(),
                     [&](double m) { return m == full_months_; });
}

void FluidCluster::remove_unstarted() {
  const auto it = std::find(months_left_.begin(), months_left_.end(),
                            full_months_);
  OAGRID_REQUIRE(it != months_left_.end(), "no unstarted scenario to remove");
  months_left_.erase(it);
}

double FluidCluster::months_remaining() const {
  return std::accumulate(months_left_.begin(), months_left_.end(), 0.0);
}

double FluidCluster::throughput() const {
  if (months_left_.empty()) return 0.0;
  return sched::best_throughput(cluster_,
                                static_cast<Count>(months_left_.size()));
}

double FluidCluster::projected_drain(double speed) const {
  if (months_left_.empty()) return 0.0;
  const double rate = throughput() * speed;
  const double cap = sched::best_throughput(cluster_, 1) * speed;
  if (rate <= 0.0 || cap <= 0.0) return kInfiniteTime;
  // Two binding constraints: aggregate throughput, and the chain constraint
  // of the longest resident scenario (one group at a time). Under the
  // water-filling service this max is exact.
  const double longest =
      *std::max_element(months_left_.begin(), months_left_.end());
  return std::max(months_remaining() / rate, longest / cap);
}

double FluidCluster::advance(double dt, double speed) {
  // Fluid limit of the paper's least-advanced dispatch with the chain
  // constraint: scenarios are served in descending months-left priority
  // (laggards first), each at no more than one group's best rate (a
  // scenario's months are serialized by restart dependencies), total
  // bounded by the cluster throughput. Integration proceeds event to event
  // (tier merge or scenario completion) so progress trajectories are exact.
  double used = 0.0;
  const double cap = sched::best_throughput(cluster_, 1) * speed;
  while (dt - used > 1e-12 && !months_left_.empty()) {
    const double rate = throughput() * speed;
    if (rate <= 0.0 || cap <= 0.0) return dt;  // stalled
    std::sort(months_left_.begin(), months_left_.end(), std::greater<>());
    const auto n = months_left_.size();

    // Tier decomposition (equal months within epsilon) and per-tier rates:
    // laggard tiers drink first, each scenario at most `cap`.
    std::vector<std::size_t> tier_start;
    std::vector<double> per_scenario(n, 0.0);
    double remaining = rate;
    for (std::size_t i = 0; i < n;) {
      std::size_t j = i + 1;
      while (j < n && months_left_[j] > months_left_[i] - 1e-9) ++j;
      tier_start.push_back(i);
      const auto size = static_cast<double>(j - i);
      const double tier_rate = std::min(size * cap, remaining);
      remaining -= tier_rate;
      for (std::size_t k = i; k < j; ++k) per_scenario[k] = tier_rate / size;
      i = j;
    }

    // Next event: a served scenario completes, two adjacent tiers merge, or
    // the epoch budget runs out.
    double event = dt - used;
    for (std::size_t i = 0; i < n; ++i)
      if (per_scenario[i] > 0.0)
        event = std::min(event, months_left_[i] / per_scenario[i]);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double closing = per_scenario[i] - per_scenario[i + 1];
      if (closing > 1e-15) {
        const double gap = months_left_[i] - months_left_[i + 1];
        if (gap > 1e-12) event = std::min(event, gap / closing);
      }
    }
    event = std::max(event, 1e-9);  // numerical floor; tiers merge via eps

    const double slice = std::min(event, dt - used);
    for (std::size_t i = 0; i < n; ++i)
      months_left_[i] -= per_scenario[i] * slice;
    used += slice;
    std::erase_if(months_left_, [](double m) { return m <= 1e-9; });
  }
  return used;
}

const char* to_string(GridPolicy policy) noexcept {
  switch (policy) {
    case GridPolicy::kStatic: return "static (paper)";
    case GridPolicy::kRebalanceUnstarted: return "rebalance-unstarted";
    case GridPolicy::kMigrateWithState: return "migrate-with-state";
  }
  return "?";
}

namespace {

/// Equivalent extra months charged to a migrated scenario landing on `dst`:
/// during the migration stall it would have received its per-scenario share
/// of the destination's rate.
double migration_penalty_months(const FluidCluster& dst, double speed,
                                Seconds cost) {
  FluidCluster probe = dst;
  probe.assign(0);  // the arriving scenario
  const double rate = probe.throughput() * speed;
  const auto n = static_cast<double>(probe.resident());
  return cost * rate / n;
}

/// Greedy migration pass: move scenarios off the worst-projected cluster
/// while that strictly improves the projected makespan. `with_state` selects
/// between the unstarted-only relaxation (free moves, but only fresh
/// scenarios qualify) and restart-file migration (any scenario moves, its
/// remaining work inflated by the transfer stall — priced per cluster pair
/// by DriftModel::migration_cost, identically in the decision and in the
/// executed fluid).
int rebalance(std::vector<FluidCluster>& clusters,
              const std::vector<double>& speeds, bool with_state,
              const DriftModel& drift, Seconds& migration_seconds) {
  int migrations = 0;
  for (;;) {
    std::size_t worst = 0;
    double worst_drain = -1.0;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      const double drain = clusters[c].projected_drain(speeds[c]);
      if (drain > worst_drain) {
        worst_drain = drain;
        worst = c;
      }
    }
    if (worst_drain <= 0.0) return migrations;
    if (!with_state && !clusters[worst].has_unstarted()) return migrations;
    if (with_state && clusters[worst].resident() < 1) return migrations;

    std::size_t best_dst = worst;
    double best_new_makespan = worst_drain;
    double best_landed_months = 0.0;
    Seconds best_cost = 0.0;
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (c == worst) continue;
      const Seconds cost =
          with_state ? drift.migration_cost(static_cast<ClusterId>(worst),
                                            static_cast<ClusterId>(c))
                     : 0.0;
      // Hysteresis: the drain projection ignores the throughput tail (fewer
      // resident scenarios near the end run slower), so marginal projected
      // wins are noise — only accept moves that project a clear improvement
      // (and at least the transfer stall itself for a priced move).
      const double threshold =
          worst_drain - std::max(0.01 * worst_drain, cost);
      FluidCluster src = clusters[worst];
      FluidCluster dst = clusters[c];
      double landed = 0.0;
      if (with_state) {
        const double moved = src.remove_least_advanced();
        landed = moved +
                 migration_penalty_months(clusters[c], speeds[c], cost);
        dst.assign_months(landed);
      } else {
        src.remove_unstarted();
        dst.assign(0);
      }
      double new_makespan = 0.0;
      for (std::size_t k = 0; k < clusters.size(); ++k) {
        const FluidCluster& cl = k == worst ? src : (k == c ? dst : clusters[k]);
        new_makespan = std::max(new_makespan, cl.projected_drain(speeds[k]));
      }
      if (new_makespan < threshold - 1e-9 &&
          new_makespan < best_new_makespan - 1e-9) {
        best_new_makespan = new_makespan;
        best_dst = c;
        best_landed_months = landed;
        best_cost = cost;
      }
    }
    if (best_dst == worst) return migrations;  // no improving move

    if (with_state) {
      clusters[worst].remove_least_advanced();
      clusters[best_dst].assign_months(best_landed_months);
    } else {
      clusters[worst].remove_unstarted();
      clusters[best_dst].assign(0);
    }
    migration_seconds += best_cost;
    ++migrations;
  }
}

}  // namespace

DynamicGridResult simulate_dynamic_grid(const platform::Grid& grid,
                                        const appmodel::Ensemble& ensemble,
                                        GridPolicy policy,
                                        const DriftModel& drift) {
  ensemble.validate();
  OAGRID_REQUIRE(grid.cluster_count() >= 1, "grid needs at least one cluster");
  OAGRID_REQUIRE(drift.epoch_length > 0.0, "epoch length must be positive");
  OAGRID_REQUIRE(drift.sigma >= 0.0, "drift sigma must be >= 0");
  OAGRID_REQUIRE(drift.migration_state_mb >= 0.0 &&
                     drift.migration_deploy_seconds >= 0.0,
                 "migration pricing parameters must be >= 0");
  if (drift.network.cluster_count() > 0)
    OAGRID_REQUIRE(drift.network.cluster_count() == grid.cluster_count(),
                   "network model does not cover the grid's clusters");
  const bool failures_active = drift.failures.active();
  if (failures_active)
    OAGRID_REQUIRE(drift.failures.cluster_count() == grid.cluster_count(),
                   "failure model does not cover the grid's clusters");

  // Initial placement: Algorithm 1 on analytic vectors at nominal speed,
  // inflated by each cluster's expected failure overhead so a permanently
  // dead cluster receives no scenarios at all.
  std::vector<sched::PerformanceVector> perf;
  for (const auto& cluster : grid.clusters())
    perf.push_back(sched::throughput_performance_vector(
        cluster, ensemble.scenarios, ensemble.months));
  if (failures_active)
    for (std::size_t c = 0; c < perf.size(); ++c) {
      const fault::FailureProcess& process =
          drift.failures.process(static_cast<ClusterId>(c));
      for (Seconds& entry : perf[c])
        entry = fault::expected_makespan(entry, process, 0.0);
    }
  const sched::Repartition placement =
      sched::greedy_repartition(perf, ensemble.scenarios);

  std::vector<FluidCluster> clusters;
  for (const auto& cluster : grid.clusters())
    clusters.emplace_back(cluster, ensemble.months);
  for (std::size_t c = 0; c < clusters.size(); ++c)
    for (Count k = 0; k < placement.dags_per_cluster[c]; ++k)
      clusters[c].assign(0);

  std::vector<double> speeds(clusters.size(), 1.0);
  Rng rng(drift.seed);

  // Cluster-scope availability streams (unit 0 = the whole reservation in
  // the fluid view); an epoch's effective speed is the drifted speed scaled
  // by the fraction of the window the cluster is up.
  std::vector<fault::AvailabilityTracker> availability;
  if (failures_active)
    for (std::size_t c = 0; c < clusters.size(); ++c)
      availability.emplace_back(drift.failures, static_cast<ClusterId>(c), 0);
  std::vector<double> effective(speeds);

  DynamicGridResult result;
  result.cluster_finish.assign(clusters.size(), 0.0);
  Seconds now = 0.0;

  auto all_idle = [&] {
    return std::all_of(clusters.begin(), clusters.end(),
                       [](const FluidCluster& c) { return c.idle(); });
  };

  while (!all_idle()) {
    ++result.epochs;
    // Speed drift for this epoch.
    if (drift.sigma > 0.0)
      for (double& s : speeds)
        s = std::clamp(s * std::exp(rng.normal(0.0, drift.sigma)), 0.3, 3.0);
    if (failures_active) {
      for (std::size_t c = 0; c < clusters.size(); ++c)
        effective[c] =
            speeds[c] * (1.0 - availability[c].down_fraction(
                                   now, now + drift.epoch_length));
    } else {
      effective = speeds;
    }

    if (policy != GridPolicy::kStatic)
      result.migrations += rebalance(clusters, effective,
                                     policy == GridPolicy::kMigrateWithState,
                                     drift, result.migration_seconds);

    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (clusters[c].idle()) continue;
      const double used =
          clusters[c].advance(drift.epoch_length, effective[c]);
      if (clusters[c].idle()) result.cluster_finish[c] = now + used;
    }
    now += drift.epoch_length;
    // Degenerate guard: a fully stalled grid cannot finish.
    OAGRID_REQUIRE(result.epochs < 1000000, "dynamic grid failed to drain");
  }
  result.makespan = *std::max_element(result.cluster_finish.begin(),
                                      result.cluster_finish.end());
  return result;
}

}  // namespace oagrid::sim
