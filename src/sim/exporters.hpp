#pragma once
/// \file exporters.hpp
/// \brief Publication-quality exports: SVG Gantt charts of traces and
/// Graphviz DOT of workflow DAGs — the visual artifacts a release of this
/// system would ship alongside its numbers.

#include <iosfwd>
#include <string>

#include "dag/dag.hpp"
#include "sim/trace.hpp"

namespace oagrid::sim {

struct SvgOptions {
  int width = 1000;         ///< drawing width in px (plus margins)
  int row_height = 18;      ///< px per unit row
  std::string title;        ///< optional chart title
};

/// Writes the trace as a standalone SVG Gantt: one row per unit (groups on
/// top, post workers below), one rect per execution, colored by scenario,
/// with a time axis. Throws std::invalid_argument on an empty trace.
void write_svg_gantt(std::ostream& out, const Trace& trace,
                     const SvgOptions& options = {});

/// Writes a frozen DAG in Graphviz DOT: moldable tasks as double octagons
/// with their processor range, rigid tasks as boxes, edges labeled with
/// their data volume when nonzero.
void write_dot(std::ostream& out, const dag::Dag& graph,
               const std::string& name = "workflow");

}  // namespace oagrid::sim
