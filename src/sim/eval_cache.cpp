#include "sim/eval_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "obs/obs.hpp"

namespace oagrid::sim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

struct Fnv1a {
  std::uint64_t state = kFnvOffset;

  void bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= kFnvPrime;
    }
  }
  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof v); }
  void i64(std::int64_t v) noexcept {
    u64(static_cast<std::uint64_t>(v));
  }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
};

/// Mirrors a cache event into the obs registry when observability is on.
/// Function-local statics cache the registry lookups; references stay valid
/// for the registry's lifetime.
struct ObsMirror {
  static void hit() {
    if (!obs::enabled()) return;
    static obs::Counter& c = obs::metrics().counter("evalcache.hits");
    c.add();
  }
  static void miss() {
    if (!obs::enabled()) return;
    static obs::Counter& c = obs::metrics().counter("evalcache.misses");
    c.add();
  }
  static void insertion(std::size_t entries_now) {
    if (!obs::enabled()) return;
    static obs::Counter& c = obs::metrics().counter("evalcache.insertions");
    static obs::Gauge& g = obs::metrics().gauge("evalcache.entries");
    c.add();
    g.set(static_cast<double>(entries_now));
  }
  static void eviction() {
    if (!obs::enabled()) return;
    static obs::Counter& c = obs::metrics().counter("evalcache.evictions");
    c.add();
  }
};

}  // namespace

std::size_t EvalKeyHash::operator()(const EvalKey& key) const noexcept {
  Fnv1a h;
  h.u64(key.cluster_sig);
  for (const ProcCount s : key.sizes) h.i64(s);
  h.u64(0x5e5aULL);  // domain separator between the two vectors
  for (const MonthIndex m : key.months) h.i64(m);
  h.i64(key.post_pool);
  h.u64(static_cast<std::uint64_t>(key.post_policy) |
        (static_cast<std::uint64_t>(key.dispatch) << 8));
  h.f64(key.restart_handoff);
  h.f64(key.duration_jitter);
  h.f64(key.failure_probability);
  h.u64(key.seed);
  h.u64(key.fault_sig);
  return static_cast<std::size_t>(h.state);
}

std::uint64_t cluster_signature(const platform::Cluster& cluster) {
  Fnv1a h;
  h.i64(cluster.resources());
  h.i64(cluster.min_group());
  for (const Seconds t : cluster.main_times()) h.f64(t);
  h.f64(cluster.post_time());
  return h.state;
}

EvalKey make_eval_key(const platform::Cluster& cluster,
                      const sched::GroupSchedule& schedule,
                      const std::vector<MonthIndex>& months,
                      const SimOptions& options) {
  EvalKey key;
  key.cluster_sig = cluster_signature(cluster);
  key.sizes = schedule.group_sizes;
  std::sort(key.sizes.begin(), key.sizes.end(), std::greater<>());
  key.months = months;
  key.post_pool = schedule.post_pool;
  key.post_policy = static_cast<std::uint8_t>(schedule.post_policy);
  key.dispatch = static_cast<std::uint8_t>(options.dispatch);
  key.restart_handoff = options.restart_handoff;
  if (options.perturbation.active()) {
    key.duration_jitter = options.perturbation.duration_jitter;
    key.failure_probability = options.perturbation.failure_probability;
    key.seed = options.perturbation.seed;
  }
  if (options.fault.active()) {
    Fnv1a f;
    f.u64(options.fault.model->signature());
    f.i64(options.fault.cluster);
    f.u64(static_cast<std::uint64_t>(options.fault.recovery));
    f.i64(options.fault.checkpoint_months);
    f.f64(options.fault.migrate_staging);
    key.fault_sig = f.state;
  }
  return key;
}

struct EvalCache::Shard {
  mutable std::mutex mutex;
  std::unordered_map<EvalKey, Seconds, EvalKeyHash> map;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

EvalCache::EvalCache(std::size_t max_entries)
    : shards_(new Shard[kShardCount]),
      capacity_(std::max<std::size_t>(max_entries, kShardCount)),
      per_shard_capacity_(std::max<std::size_t>(max_entries / kShardCount, 1)) {
}

EvalCache::~EvalCache() { delete[] shards_; }

EvalCache::Shard& EvalCache::shard_for(const EvalKey& key) const {
  // Top bits pick the shard; unordered_map consumes the low bits, so the two
  // uses of the hash stay independent.
  const std::size_t h = EvalKeyHash{}(key);
  return shards_[(h >> 58) % kShardCount];
}

std::optional<Seconds> EvalCache::lookup(const EvalKey& key) {
  Shard& shard = shard_for(key);
  {
    const std::scoped_lock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      ObsMirror::hit();
      return it->second;
    }
    ++shard.misses;
  }
  ObsMirror::miss();
  return std::nullopt;
}

void EvalCache::insert(const EvalKey& key, Seconds makespan) {
  Shard& shard = shard_for(key);
  bool evicted = false;
  bool inserted = false;
  {
    const std::scoped_lock lock(shard.mutex);
    if (shard.map.size() >= per_shard_capacity_ &&
        shard.map.find(key) == shard.map.end()) {
      shard.map.erase(shard.map.begin());
      ++shard.evictions;
      evicted = true;
    }
    inserted = shard.map.emplace(key, makespan).second;
    ++shard.insertions;
  }
  std::size_t entries_now = entry_count_.load(std::memory_order_relaxed);
  if (inserted && !evicted)
    entries_now = entry_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  else if (evicted && !inserted)
    entries_now = entry_count_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (evicted) ObsMirror::eviction();
  ObsMirror::insertion(entries_now);
}

void EvalCache::clear() {
  for (std::size_t i = 0; i < kShardCount; ++i) {
    const std::scoped_lock lock(shards_[i].mutex);
    shards_[i].map.clear();
  }
  entry_count_.store(0, std::memory_order_relaxed);
}

void EvalCache::reset_stats() {
  for (std::size_t i = 0; i < kShardCount; ++i) {
    const std::scoped_lock lock(shards_[i].mutex);
    shards_[i].hits = shards_[i].misses = 0;
    shards_[i].insertions = shards_[i].evictions = 0;
  }
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats out;
  for (std::size_t i = 0; i < kShardCount; ++i) {
    const std::scoped_lock lock(shards_[i].mutex);
    out.hits += shards_[i].hits;
    out.misses += shards_[i].misses;
    out.insertions += shards_[i].insertions;
    out.evictions += shards_[i].evictions;
    out.entries += shards_[i].map.size();
  }
  return out;
}

EvalCache& eval_cache() {
  static EvalCache cache;
  return cache;
}

Seconds cached_makespan(const platform::Cluster& cluster,
                        const sched::GroupSchedule& schedule,
                        const std::vector<MonthIndex>& months,
                        const SimOptions& options) {
  // Side-effecting requests must actually run: a hit would skip the trace /
  // progress / obs events the caller asked for.
  if (options.capture_trace || options.obs_trace != nullptr ||
      (options.progress_every > 0 && options.on_progress)) {
    return simulate_ensemble(cluster, schedule, months, options).makespan;
  }
  EvalCache& cache = eval_cache();
  const EvalKey key = make_eval_key(cluster, schedule, months, options);
  if (const std::optional<Seconds> hit = cache.lookup(key)) return *hit;
  const Seconds makespan =
      simulate_ensemble(cluster, schedule, months, options).makespan;
  cache.insert(key, makespan);
  return makespan;
}

Seconds cached_makespan(const platform::Cluster& cluster,
                        const sched::GroupSchedule& schedule,
                        const appmodel::Ensemble& ensemble,
                        const SimOptions& options) {
  ensemble.validate();
  const std::vector<MonthIndex> months(
      static_cast<std::size_t>(ensemble.scenarios),
      static_cast<MonthIndex>(ensemble.months));
  return cached_makespan(cluster, schedule, months, options);
}

}  // namespace oagrid::sim
