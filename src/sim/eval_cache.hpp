#pragma once
/// \file eval_cache.hpp
/// \brief Shared memoization cache for ensemble-simulation makespans.
///
/// Every search layer in the repo — local search, exhaustive optimal search,
/// the heuristics sweep, the service's analytic/DES estimators — ultimately
/// asks the same question: "what is the makespan of partition P of cluster C
/// under workload W?" The simulator is deterministic, so the answer is a pure
/// function of (C, P, W, options) and can be memoized across callers: the
/// sweep warms the cache for the local search, a service estimator re-asks
/// questions the CLI already answered, and repeated neighborhoods in local
/// search become O(1) after their first visit.
///
/// Design:
///  * Keys are by value (EvalKey): a 64-bit content signature of the cluster
///    (name excluded — only the numbers that influence the simulation), the
///    canonicalized partition, the per-scenario month counts, the post
///    policy/pool, dispatch rule, restart hand-off, and the perturbation
///    model (seed normalized
///    to zero when the model is inactive, so "no perturbation, seed 1" and
///    "no perturbation, seed 7" share an entry). Cluster identity is the
///    signature, not the object address, so temporaries from
///    Cluster::with_resources()/scaled() hit naturally.
///  * The store is sharded 16 ways (shard = key hash, top bits) with a plain
///    mutex + unordered_map per shard: lookups from parallel search workers
///    touch different shards with high probability and the critical section
///    is a probe, not a simulation.
///  * Capacity is bounded per shard. A full shard evicts an arbitrary
///    resident entry (random replacement via unordered_map iteration order).
///    Memoized makespans are cheap to recompute, so a simple bounded policy
///    beats LRU bookkeeping on the hot path.
///  * Hit/miss/insert/evict counts are kept per shard (read via stats()) and
///    mirrored into obs::metrics() counters `evalcache.*` whenever
///    observability is on, so `--metrics` surfaces the hit rate of a run.
///
/// Correctness caveat, by design: two distinct clusters whose signatures
/// collide (probability ~2^-64 per pair under FNV-1a) would alias. The cache
/// only ever stores makespans of deterministic simulations, so the blast
/// radius of the astronomically unlikely collision is one wrong lookup, not
/// corruption.

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "platform/cluster.hpp"
#include "sched/group_schedule.hpp"
#include "sim/ensemble_sim.hpp"

namespace oagrid::sim {

/// Value identity of one simulation question. Equality is exact on every
/// field; the cluster participates via its content signature.
struct EvalKey {
  std::uint64_t cluster_sig = 0;
  std::vector<ProcCount> sizes;    ///< canonical (sorted descending)
  std::vector<MonthIndex> months;  ///< per-scenario month counts
  ProcCount post_pool = 0;
  std::uint8_t post_policy = 0;
  std::uint8_t dispatch = 0;
  Seconds restart_handoff = 0.0;  ///< inter-month data stall (net-aware runs)
  double duration_jitter = 0.0;
  double failure_probability = 0.0;
  std::uint64_t seed = 0;  ///< 0 whenever the perturbation model is inactive
  /// Signature of the failure injection (model content + seed + cluster +
  /// recovery policy + checkpoint cadence + staging cost); 0 whenever
  /// FaultOptions is inactive, so a failure-run makespan can never be served
  /// for a clean key or vice versa.
  std::uint64_t fault_sig = 0;

  [[nodiscard]] bool operator==(const EvalKey&) const = default;
};

struct EvalKeyHash {
  [[nodiscard]] std::size_t operator()(const EvalKey& key) const noexcept;
};

/// FNV-1a over the cluster's simulation-relevant content: resources,
/// min_group, the T[G] table, and the post time. The name is cosmetic and
/// excluded (renamed copies of a cluster share cache entries).
[[nodiscard]] std::uint64_t cluster_signature(const platform::Cluster& cluster);

/// Builds the canonical key for simulating `schedule` on `cluster` with the
/// given per-scenario month counts. Only the simulation-relevant subset of
/// `options` enters the key (dispatch rule + perturbation model); side-effect
/// fields (traces, progress hooks) must be handled by the caller — see
/// cached_makespan().
[[nodiscard]] EvalKey make_eval_key(const platform::Cluster& cluster,
                                    const sched::GroupSchedule& schedule,
                                    const std::vector<MonthIndex>& months,
                                    const SimOptions& options = {});

/// Aggregate view of cache effectiveness.
struct EvalCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Thread-safe, bounded, sharded makespan memo. All methods may be called
/// concurrently. Copying is disabled: share by reference (or use the process
/// global eval_cache()).
class EvalCache {
 public:
  static constexpr std::size_t kShardCount = 16;
  static constexpr std::size_t kDefaultCapacity = 1 << 20;

  /// `max_entries` is a global bound, split evenly across shards (minimum
  /// one entry per shard).
  explicit EvalCache(std::size_t max_entries = kDefaultCapacity);
  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;
  ~EvalCache();

  /// Returns the memoized makespan, or nullopt on a miss. Counts a hit or a
  /// miss either way.
  [[nodiscard]] std::optional<Seconds> lookup(const EvalKey& key);

  /// Memoizes `makespan` under `key`, evicting an arbitrary entry if the
  /// target shard is full. Racing inserts of the same key keep the first
  /// value (identical by determinism, so the race is benign).
  void insert(const EvalKey& key, Seconds makespan);

  /// Drops every entry. Statistics are preserved (they describe traffic, not
  /// contents); tests use reset_stats() for isolation.
  void clear();

  void reset_stats();

  [[nodiscard]] EvalCacheStats stats() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Shard;
  Shard& shard_for(const EvalKey& key) const;

  Shard* shards_;  ///< array of kShardCount (pimpl keeps std headers out)
  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  /// Total resident entries across shards, maintained on insert/evict/clear
  /// so the obs gauge can report a whole-cache figure without locking every
  /// shard on the hot path.
  std::atomic<std::size_t> entry_count_{0};
};

/// The process-wide cache shared by every search layer. Unbounded lifetime;
/// sized at kDefaultCapacity.
[[nodiscard]] EvalCache& eval_cache();

/// Simulates `schedule` on `cluster` through the global cache and returns
/// the makespan. Requests with observable side effects — trace capture, an
/// obs trace sink, or a progress hook — bypass the cache entirely (a cache
/// hit would silently swallow the side effects), as does an `Engine`-level
/// question that needs more than the makespan: call simulate_ensemble
/// directly for those.
[[nodiscard]] Seconds cached_makespan(const platform::Cluster& cluster,
                                      const sched::GroupSchedule& schedule,
                                      const std::vector<MonthIndex>& months,
                                      const SimOptions& options = {});

/// Uniform-workload convenience overload.
[[nodiscard]] Seconds cached_makespan(const platform::Cluster& cluster,
                                      const sched::GroupSchedule& schedule,
                                      const appmodel::Ensemble& ensemble,
                                      const SimOptions& options = {});

}  // namespace oagrid::sim
