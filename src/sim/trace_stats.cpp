#include "sim/trace_stats.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace oagrid::sim {

TraceStats analyze_trace(const Trace& trace) {
  OAGRID_REQUIRE(!trace.empty(), "cannot analyze an empty trace");
  if (const std::string issue = trace.verify(); !issue.empty())
    throw std::invalid_argument("oagrid: trace invalid: " + issue);

  TraceStats stats;
  std::map<std::pair<int, int>, UnitStats> units;  // (kind rank, unit)
  std::map<std::pair<ScenarioId, MonthIndex>, Seconds> main_end;
  std::map<std::pair<ScenarioId, MonthIndex>, Seconds> post_start;

  for (const auto& e : trace.entries()) {
    stats.makespan = std::max(stats.makespan, e.end);
    const int rank = e.unit_kind == UnitKind::kGroup ? 0 : 1;
    auto [it, inserted] = units.try_emplace({rank, e.unit});
    UnitStats& unit = it->second;
    if (inserted) {
      unit.kind = e.unit_kind;
      unit.unit = e.unit;
      unit.first_start = e.start;
    }
    unit.first_start = std::min(unit.first_start, e.start);
    unit.last_end = std::max(unit.last_end, e.end);
    unit.busy += e.end - e.start;
    ++unit.tasks;

    if (e.unit_kind == UnitKind::kGroup)
      main_end[{e.scenario, e.month}] = e.end;
    else
      post_start[{e.scenario, e.month}] = e.start;
  }

  double group_busy = 0.0;
  Count group_units = 0;
  for (auto& [key, unit] : units) {
    unit.utilization = stats.makespan > 0 ? unit.busy / stats.makespan : 0.0;
    if (unit.kind == UnitKind::kGroup) {
      group_busy += unit.busy;
      ++group_units;
    }
    stats.units.push_back(unit);
  }
  stats.group_utilization =
      group_units > 0 && stats.makespan > 0
          ? group_busy / (static_cast<double>(group_units) * stats.makespan)
          : 0.0;

  double latency_sum = 0.0;
  for (const auto& [key, start] : post_start) {
    const auto main_it = main_end.find(key);
    if (main_it == main_end.end()) continue;  // verify() precludes this
    const Seconds latency = start - main_it->second;
    latency_sum += latency;
    stats.max_post_latency = std::max(stats.max_post_latency, latency);
    ++stats.posts_measured;
  }
  if (stats.posts_measured > 0)
    stats.mean_post_latency =
        latency_sum / static_cast<double>(stats.posts_measured);
  return stats;
}

}  // namespace oagrid::sim
