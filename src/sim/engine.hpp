#pragma once
/// \file engine.hpp
/// \brief Minimal discrete-event simulation core.
///
/// A classic event-calendar engine: callbacks scheduled at simulated times,
/// executed in (time, insertion) order. Insertion order breaks ties so
/// simulations are fully deterministic — crucial because the ensemble
/// simulator generates many exactly-simultaneous events (synchronized group
/// sets finish in lockstep).

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace oagrid::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedules `callback` at absolute simulated time `when` (>= now()).
  void schedule_at(Seconds when, Callback callback);

  /// Schedules `callback` `delay` seconds from now (delay >= 0).
  void schedule_after(Seconds delay, Callback callback);

  /// Current simulated time (0 before the first event).
  [[nodiscard]] Seconds now() const noexcept { return now_; }

  /// Processes events until the calendar drains or stop() is called.
  /// Returns the number of events executed. Not reentrant.
  std::size_t run();

  /// Makes run() return after the current callback.
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    Seconds when;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace oagrid::sim
