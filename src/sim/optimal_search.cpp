#include "sim/optimal_search.hpp"

#include <stdexcept>

#include "sim/ensemble_sim.hpp"

namespace oagrid::sim {
namespace {

/// Enumerates multisets as non-increasing size sequences; `visit` is called
/// with the current sizes for every non-empty candidate.
template <typename Visit>
void enumerate(const platform::Cluster& cluster, ProcCount size,
               ProcCount budget, Count groups_left,
               std::vector<ProcCount>& sizes, const Visit& visit) {
  if (!sizes.empty()) visit(sizes);
  if (groups_left == 0) return;
  for (ProcCount g = size; g >= cluster.min_group(); --g) {
    if (g > budget) continue;
    sizes.push_back(g);
    enumerate(cluster, g, budget - g, groups_left - 1, sizes, visit);
    sizes.pop_back();
  }
}

}  // namespace

std::size_t count_grouping_candidates(const platform::Cluster& cluster,
                                      Count max_groups) {
  std::size_t count = 0;
  std::vector<ProcCount> sizes;
  enumerate(cluster, cluster.max_group(), cluster.resources(), max_groups,
            sizes, [&](const std::vector<ProcCount>&) { ++count; });
  return count;
}

GroupingSearchResult optimal_grouping_search(const platform::Cluster& cluster,
                                             const appmodel::Ensemble& ensemble,
                                             sched::PostPolicy policy,
                                             std::size_t max_candidates) {
  ensemble.validate();
  const std::size_t candidates =
      count_grouping_candidates(cluster, ensemble.scenarios);
  if (candidates > max_candidates)
    throw std::invalid_argument(
        "oagrid: grouping search space has " + std::to_string(candidates) +
        " candidates, above the cap of " + std::to_string(max_candidates));

  GroupingSearchResult result;
  std::vector<ProcCount> sizes;
  enumerate(cluster, cluster.max_group(), cluster.resources(),
            ensemble.scenarios, sizes, [&](const std::vector<ProcCount>& gs) {
              sched::GroupSchedule schedule;
              schedule.group_sizes = gs;
              schedule.post_policy = policy;
              schedule.post_pool =
                  policy == sched::PostPolicy::kPoolThenRetired
                      ? cluster.resources() - schedule.main_resources()
                      : 0;
              const SimResult sim =
                  simulate_ensemble(cluster, schedule, ensemble);
              ++result.evaluated;
              if (sim.makespan < result.makespan) {
                result.makespan = sim.makespan;
                result.best = std::move(schedule);
              }
            });
  OAGRID_REQUIRE(result.evaluated > 0, "no feasible grouping exists");
  return result;
}

}  // namespace oagrid::sim
