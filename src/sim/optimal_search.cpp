#include "sim/optimal_search.hpp"

#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "sim/eval_cache.hpp"

namespace oagrid::sim {
namespace {

/// Enumerates multisets as non-increasing size sequences; `visit` is called
/// with the current sizes for every non-empty candidate.
template <typename Visit>
void enumerate(const platform::Cluster& cluster, ProcCount size,
               ProcCount budget, Count groups_left,
               std::vector<ProcCount>& sizes, const Visit& visit) {
  if (!sizes.empty()) visit(sizes);
  if (groups_left == 0) return;
  for (ProcCount g = size; g >= cluster.min_group(); --g) {
    if (g > budget) continue;
    sizes.push_back(g);
    enumerate(cluster, g, budget - g, groups_left - 1, sizes, visit);
    sizes.pop_back();
  }
}

}  // namespace

std::size_t count_grouping_candidates(const platform::Cluster& cluster,
                                      Count max_groups) {
  std::size_t count = 0;
  std::vector<ProcCount> sizes;
  enumerate(cluster, cluster.max_group(), cluster.resources(), max_groups,
            sizes, [&](const std::vector<ProcCount>&) { ++count; });
  return count;
}

GroupingSearchResult optimal_grouping_search(const platform::Cluster& cluster,
                                             const appmodel::Ensemble& ensemble,
                                             sched::PostPolicy policy,
                                             std::size_t max_candidates,
                                             std::size_t threads) {
  ensemble.validate();
  const std::size_t count =
      count_grouping_candidates(cluster, ensemble.scenarios);
  if (count > max_candidates)
    throw std::invalid_argument(
        "oagrid: grouping search space has " + std::to_string(count) +
        " candidates, above the cap of " + std::to_string(max_candidates));

  // Materialize the enumeration so candidates can be costed in parallel;
  // enumeration order is the serial search's visiting order and drives the
  // tie-break below.
  std::vector<std::vector<ProcCount>> candidates;
  candidates.reserve(count);
  std::vector<ProcCount> sizes;
  enumerate(cluster, cluster.max_group(), cluster.resources(),
            ensemble.scenarios, sizes,
            [&](const std::vector<ProcCount>& gs) { candidates.push_back(gs); });
  OAGRID_REQUIRE(!candidates.empty(), "no feasible grouping exists");

  auto schedule_for = [&](const std::vector<ProcCount>& gs) {
    sched::GroupSchedule schedule;
    schedule.group_sizes = gs;
    schedule.post_policy = policy;
    schedule.post_pool = policy == sched::PostPolicy::kPoolThenRetired
                             ? cluster.resources() - schedule.main_resources()
                             : 0;
    return schedule;
  };

  // Independent deterministic simulations: safe at any thread count.
  const std::vector<Seconds> makespans = parallel_transform(
      shared_pool(), candidates.size(),
      [&](std::size_t i) {
        return cached_makespan(cluster, schedule_for(candidates[i]), ensemble);
      },
      threads);

  // Sequential first-min in enumeration order — identical winner (including
  // ties) to the serial scan.
  GroupingSearchResult result;
  result.evaluated = candidates.size();
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < makespans.size(); ++i) {
    if (makespans[i] < result.makespan) {
      result.makespan = makespans[i];
      best_index = i;
    }
  }
  result.best = schedule_for(candidates[best_index]);
  return result;
}

}  // namespace oagrid::sim
