#pragma once
/// \file optimal_search.hpp
/// \brief Brute-force grouping oracle: enumerate every group-size multiset
/// and evaluate each with the discrete-event simulator.
///
/// The paper never reports how far its heuristics sit from the true optimum
/// of its own model; this oracle answers that (bench_optimality). The search
/// space is every multiset of sizes in [min_group, max_group] with total
/// processors <= R and cardinality <= NS — a few thousand candidates at
/// paper scale, each costed by one exact simulation.

#include "appmodel/ensemble.hpp"
#include "platform/cluster.hpp"
#include "sched/group_schedule.hpp"

namespace oagrid::sim {

struct GroupingSearchResult {
  sched::GroupSchedule best;
  Seconds makespan = kInfiniteTime;
  std::size_t evaluated = 0;  ///< candidate multisets simulated
};

/// Exhaustive search over group multisets under `policy` (the leftover
/// processors become the post pool for kPoolThenRetired). Throws if
/// enumeration would exceed `max_candidates` (guard against accidental
/// R = 1000 calls). Months can be scaled down: the grouping ranking is
/// months-stable once past a few sets.
///
/// Candidates are evaluated in parallel on the shared thread pool (`threads`
/// caps the workers, 0 = all) through the process-wide eval cache; the
/// winner is picked by a sequential first-min scan in enumeration order, so
/// the result is bit-identical to the serial search at any thread count.
[[nodiscard]] GroupingSearchResult optimal_grouping_search(
    const platform::Cluster& cluster, const appmodel::Ensemble& ensemble,
    sched::PostPolicy policy = sched::PostPolicy::kPoolThenRetired,
    std::size_t max_candidates = 200000, std::size_t threads = 0);

/// Counts the candidate multisets without simulating (cost preview).
[[nodiscard]] std::size_t count_grouping_candidates(
    const platform::Cluster& cluster, Count max_groups);

}  // namespace oagrid::sim
