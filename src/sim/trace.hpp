#pragma once
/// \file trace.hpp
/// \brief Execution traces and Gantt rendering.
///
/// Every simulated task execution is recorded as a TraceEntry; the trace is
/// the ground truth the tests check invariants on (no overlap on a unit,
/// dependencies respected) and the source of the ASCII Gantt charts the
/// Figure 3-6 bench prints.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace oagrid::sim {

/// What executed.
enum class UnitKind {
  kGroup,       ///< a multiprocessor group running a main task
  kPostWorker,  ///< a single processor running a post task
};

struct TraceEntry {
  UnitKind unit_kind = UnitKind::kGroup;
  int unit = 0;             ///< group index or post-worker index
  ScenarioId scenario = 0;
  MonthIndex month = 0;
  Seconds start = 0.0;
  Seconds end = 0.0;
};

class Trace {
 public:
  void record(TraceEntry entry) { entries_.push_back(entry); }
  /// Preallocates for `n` entries (the simulator knows the task count).
  void reserve(std::size_t n) { entries_.reserve(n); }
  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

  /// Checks structural invariants; returns an empty string when clean, else
  /// a description of the first violation:
  ///  * no two entries on the same unit overlap in time;
  ///  * each scenario's months execute in order (main m+1 starts after main
  ///    m ends) and each post starts after its main ends.
  [[nodiscard]] std::string verify() const;

  /// CSV export: unit_kind,unit,scenario,month,start,end.
  void write_csv(std::ostream& os) const;

  /// ASCII Gantt: one row per unit, time compressed to `width` columns.
  /// Main tasks render as the scenario's hex digit, posts as lowercase.
  [[nodiscard]] std::string render_gantt(int width = 100) const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace oagrid::sim
