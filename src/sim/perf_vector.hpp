#pragma once
/// \file perf_vector.hpp
/// \brief Step 2 of the Figure 9 protocol: each cluster computes "a vector
/// containing the time needed to execute from 1 to NS simulations".

#include "appmodel/ensemble.hpp"
#include "platform/cluster.hpp"
#include "sched/heuristics.hpp"
#include "sched/repartition.hpp"

namespace oagrid::sim {

/// performance[k-1] = simulated makespan of k scenarios x `months` months on
/// `cluster` under `heuristic`, for k = 1..max_scenarios.
[[nodiscard]] sched::PerformanceVector performance_vector(
    const platform::Cluster& cluster, Count max_scenarios, Count months,
    sched::Heuristic heuristic);

}  // namespace oagrid::sim
