#include "sim/exporters.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <stdexcept>

namespace oagrid::sim {
namespace {

/// Color-blind-friendly categorical palette (Okabe-Ito), cycled by scenario.
const char* scenario_color(ScenarioId scenario) {
  static const char* kPalette[] = {"#0072B2", "#E69F00", "#009E73", "#CC79A7",
                                   "#56B4E9", "#D55E00", "#F0E442", "#999999"};
  return kPalette[static_cast<std::size_t>(scenario) % 8];
}

std::string xml_escape(const std::string& text) {
  std::string out;
  for (const char ch : text) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += ch;
    }
  }
  return out;
}

}  // namespace

void write_svg_gantt(std::ostream& out, const Trace& trace,
                     const SvgOptions& options) {
  OAGRID_REQUIRE(!trace.empty(), "cannot render an empty trace");
  OAGRID_REQUIRE(options.width >= 100 && options.row_height >= 8,
                 "SVG dimensions too small");

  Seconds horizon = 0.0;
  // Stable row order: groups first then post workers, by unit index.
  std::map<std::pair<int, int>, int> row_of;
  for (const auto& e : trace.entries()) {
    horizon = std::max(horizon, e.end);
    row_of.try_emplace({e.unit_kind == UnitKind::kGroup ? 0 : 1, e.unit}, 0);
  }
  int next_row = 0;
  for (auto& [key, row] : row_of) row = next_row++;
  if (horizon <= 0.0) horizon = 1.0;

  const int margin_left = 60;
  const int margin_top = options.title.empty() ? 20 : 44;
  const int height = margin_top + next_row * options.row_height + 40;
  const int total_width = margin_left + options.width + 20;

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total_width
      << "\" height=\"" << height << "\" font-family=\"sans-serif\" "
      << "font-size=\"11\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty())
    out << "<text x=\"" << margin_left << "\" y=\"24\" font-size=\"15\">"
        << xml_escape(options.title) << "</text>\n";

  // Row labels and lanes.
  for (const auto& [key, row] : row_of) {
    const int y = margin_top + row * options.row_height;
    out << "<text x=\"6\" y=\"" << y + options.row_height - 5 << "\">"
        << (key.first == 0 ? "G" : "P") << key.second << "</text>\n";
    out << "<line x1=\"" << margin_left << "\" y1=\"" << y + options.row_height
        << "\" x2=\"" << margin_left + options.width << "\" y2=\""
        << y + options.row_height
        << "\" stroke=\"#eeeeee\" stroke-width=\"1\"/>\n";
  }

  // Execution rectangles.
  auto x_of = [&](Seconds t) {
    return margin_left +
           static_cast<double>(options.width) * (t / horizon);
  };
  for (const auto& e : trace.entries()) {
    const int row = row_of.at({e.unit_kind == UnitKind::kGroup ? 0 : 1, e.unit});
    const double x = x_of(e.start);
    const double w = std::max(0.5, x_of(e.end) - x);
    const int y = margin_top + row * options.row_height + 1;
    out << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
        << "\" height=\"" << options.row_height - 3 << "\" fill=\""
        << scenario_color(e.scenario) << "\""
        << (e.unit_kind == UnitKind::kPostWorker ? " opacity=\"0.55\"" : "")
        << "><title>scenario " << e.scenario << " month " << e.month << " ["
        << e.start << ", " << e.end << "]</title></rect>\n";
  }

  // Time axis.
  const int axis_y = margin_top + next_row * options.row_height + 14;
  out << "<line x1=\"" << margin_left << "\" y1=\"" << axis_y - 10
      << "\" x2=\"" << margin_left + options.width << "\" y2=\"" << axis_y - 10
      << "\" stroke=\"black\"/>\n";
  for (int tick = 0; tick <= 5; ++tick) {
    const double frac = tick / 5.0;
    const double x = margin_left + options.width * frac;
    out << "<line x1=\"" << x << "\" y1=\"" << axis_y - 13 << "\" x2=\"" << x
        << "\" y2=\"" << axis_y - 7 << "\" stroke=\"black\"/>\n";
    out << "<text x=\"" << x - 10 << "\" y=\"" << axis_y + 6 << "\">"
        << static_cast<long long>(horizon * frac) << "s</text>\n";
  }
  out << "</svg>\n";
}

void write_dot(std::ostream& out, const dag::Dag& graph,
               const std::string& name) {
  OAGRID_REQUIRE(graph.frozen(), "DAG must be frozen");
  out << "digraph \"" << name << "\" {\n";
  out << "  rankdir=LR;\n  node [fontname=\"sans-serif\"];\n";
  for (dag::NodeId v = 0; v < graph.node_count(); ++v) {
    const dag::TaskSpec& spec = graph.task(v);
    out << "  n" << v << " [label=\"" << spec.name << "\\n"
        << spec.ref_duration << " s";
    if (spec.shape == dag::TaskShape::kMoldable)
      out << "\\n[" << spec.min_procs << ".." << spec.max_procs
          << "] procs\" shape=doubleoctagon";
    else
      out << "\" shape=box";
    out << "];\n";
  }
  for (const dag::Edge& e : graph.edges()) {
    out << "  n" << e.from << " -> n" << e.to;
    if (e.data_mb > 0.0) out << " [label=\"" << e.data_mb << " MB\"]";
    out << ";\n";
  }
  out << "}\n";
}

}  // namespace oagrid::sim
