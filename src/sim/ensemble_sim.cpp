#include "sim/ensemble_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "sim/calendar.hpp"

namespace oagrid::sim {
namespace {

struct Group {
  ProcCount size = 0;
  Seconds main_time = 0.0;
  bool busy = false;
  bool retired = false;
  Seconds busy_seconds = 0.0;
};

struct Scenario {
  MonthIndex months_done = 0;       ///< completed months
  MonthIndex months_dispatched = 0; ///< started (or completed) months
  bool running = false;
};

struct PostTask {
  ScenarioId scenario = 0;
  MonthIndex month = 0;
};

/// FIFO queue over a growable flat buffer: O(1) amortized push/pop with no
/// per-element allocation (std::deque allocates a fresh chunk every ~128
/// elements, which shows up at per-month frequency). The consumed prefix is
/// reclaimed lazily once it dominates the buffer.
template <typename T>
class FlatQueue {
 public:
  void reserve(std::size_t n) { buf_.reserve(n); }
  [[nodiscard]] bool empty() const noexcept { return head_ == buf_.size(); }
  void push(T value) { buf_.push_back(std::move(value)); }
  T pop() {
    T value = std::move(buf_[head_++]);
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 1024 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return value;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
};

/// The simulator's entire event vocabulary: a main task or a post task
/// finishing. Plain struct — scheduling one is a push into the calendar's
/// flat heap, not a std::function allocation.
struct SimEvent {
  enum class Kind : std::uint8_t { kMainDone, kPostDone };
  Kind kind = Kind::kMainDone;
  bool failed = false;
  int unit = 0;  ///< group index (kMainDone) or post worker id (kPostDone)
  ScenarioId scenario = 0;
  MonthIndex month = 0;
};

class EnsembleSimulation {
 public:
  EnsembleSimulation(const platform::Cluster& cluster,
                     const sched::GroupSchedule& schedule,
                     std::vector<MonthIndex> months_per_scenario,
                     const SimOptions& options)
      : cluster_(cluster),
        schedule_(schedule),
        months_limit_(std::move(months_per_scenario)),
        options_(options),
        rng_(options.perturbation.seed) {
    OAGRID_REQUIRE(!months_limit_.empty(), "need at least one scenario");
    OAGRID_REQUIRE(options.restart_handoff >= 0.0,
                   "restart hand-off must be >= 0");
    total_months_ = 0;
    for (const MonthIndex m : months_limit_) {
      OAGRID_REQUIRE(m >= 1, "each scenario needs at least one month");
      total_months_ += m;
    }
    schedule_.validate(cluster_);
    groups_.reserve(schedule_.group_sizes.size());
    for (const ProcCount size : schedule_.group_sizes)
      groups_.push_back(Group{size, cluster_.main_time(size), false, false, 0.0});
    scenarios_.resize(months_limit_.size());
    if (options_.dispatch == DispatchRule::kFifo)
      for (ScenarioId s = 0; s < scenario_count(); ++s) fifo_.push_back(s);
    // Pending events never exceed one per busy unit: groups plus however
    // many post workers the policy can create (bounded by the cluster).
    calendar_.reserve(groups_.size() +
                      static_cast<std::size_t>(cluster_.resources()) + 4);
    free_workers_.reserve(static_cast<std::size_t>(cluster_.resources()) + 4);
    for (ProcCount w = 0; w < schedule_.post_pool; ++w)
      free_workers_.push(next_worker_id_++);
    posts_enabled_ = schedule_.post_policy == sched::PostPolicy::kPoolThenRetired;
    if (options_.capture_trace)
      result_.trace.reserve(2 * static_cast<std::size_t>(total_months_));
    if (options_.obs_trace != nullptr) {
      const std::string prefix =
          options_.obs_label.empty() ? "" : options_.obs_label + " ";
      for (std::size_t g = 0; g < groups_.size(); ++g)
        options_.obs_trace->set_track_name(
            obs::kSimPid, options_.obs_track_base + static_cast<int>(g),
            prefix + "group " + std::to_string(g) + " (" +
                std::to_string(groups_[g].size) + "p)");
    }
  }

  SimResult run() {
    const bool observed = obs::enabled();
    const double wall_start_us =
        observed ? obs::WallClock::instance().now_us() : 0.0;
    dispatch_mains();
    std::size_t executed = 0;
    while (!calendar_.empty()) {
      const SimEvent event = calendar_.pop();
      ++executed;
      if (event.kind == SimEvent::Kind::kMainDone)
        finish_main(event.unit, event.scenario, event.month, event.failed);
      else
        finish_post(event.unit);
    }
    result_.events = executed;
    result_.makespan = std::max(result_.main_phase_end, last_post_end_);
    double busy = 0.0;
    double alloc = 0.0;
    for (const Group& g : groups_) {
      busy += g.busy_seconds * static_cast<double>(g.size);
      alloc += static_cast<double>(g.size);
    }
    result_.group_utilization =
        result_.makespan > 0.0 ? busy / (alloc * result_.makespan) : 0.0;
    // Metrics are aggregated once per run, not per event, so the simulator's
    // hot loop carries no instrumentation cost (gated by bench_sim_engine).
    if (observed) {
      const double wall_us =
          obs::WallClock::instance().now_us() - wall_start_us;
      // Registry lookups take a mutex and a string-keyed map walk; cached
      // references keep the per-run cost at a handful of relaxed atomics
      // (the registry guarantees reference stability, so this is safe).
      static obs::Counter& runs = obs::metrics().counter("sim.runs");
      static obs::Counter& events = obs::metrics().counter("sim.events");
      static obs::Counter& mains = obs::metrics().counter("sim.mains");
      static obs::Counter& posts = obs::metrics().counter("sim.posts");
      static obs::Counter& retries = obs::metrics().counter("sim.retries");
      static obs::Histogram& run_wall_us =
          obs::metrics().histogram("sim.run_wall_us");
      static obs::Histogram& events_per_sec =
          obs::metrics().histogram("sim.events_per_sec");
      static obs::Histogram& group_busy =
          obs::metrics().histogram("sim.group.busy_ratio");
      static obs::Histogram& group_idle =
          obs::metrics().histogram("sim.group.idle_seconds");
      runs.add();
      events.add(result_.events);
      mains.add(static_cast<std::uint64_t>(result_.mains_executed));
      posts.add(static_cast<std::uint64_t>(result_.posts_executed));
      retries.add(static_cast<std::uint64_t>(result_.retries));
      run_wall_us.record(wall_us);
      if (wall_us > 0.0)
        events_per_sec.record(static_cast<double>(result_.events) /
                              (wall_us * 1e-6));
      for (const Group& g : groups_) {
        const double group_busy_ratio =
            result_.makespan > 0.0 ? g.busy_seconds / result_.makespan : 0.0;
        group_busy.record(group_busy_ratio);
        group_idle.record(std::max(0.0, result_.makespan - g.busy_seconds));
      }
    }
    return std::move(result_);
  }

 private:
  Count total_months() const { return total_months_; }

  ScenarioId scenario_count() const {
    return static_cast<ScenarioId>(months_limit_.size());
  }

  bool scenario_available(ScenarioId s) const {
    const Scenario& sc = scenarios_[static_cast<std::size_t>(s)];
    return !sc.running &&
           sc.months_dispatched < months_limit_[static_cast<std::size_t>(s)];
  }

  /// Picks the next scenario per the dispatch rule; -1 when none available.
  ScenarioId pick_scenario() {
    switch (options_.dispatch) {
      case DispatchRule::kLeastAdvanced: {
        ScenarioId best = -1;
        for (ScenarioId s = 0; s < scenario_count(); ++s) {
          if (!scenario_available(s)) continue;
          if (best < 0 || scenarios_[static_cast<std::size_t>(s)].months_done <
                              scenarios_[static_cast<std::size_t>(best)].months_done)
            best = s;
        }
        return best;
      }
      case DispatchRule::kRoundRobin: {
        for (Count step = 0; step < scenario_count(); ++step) {
          const auto s = static_cast<ScenarioId>(
              (rr_cursor_ + step) % scenario_count());
          if (scenario_available(s)) {
            rr_cursor_ = static_cast<Count>(s) + 1;
            return s;
          }
        }
        return -1;
      }
      case DispatchRule::kFifo: {
        for (const ScenarioId s : fifo_)
          if (scenario_available(s)) return s;
        return -1;
      }
    }
    return -1;
  }

  /// Fastest idle non-retired group (smallest main time, then index); -1
  /// when every group is busy or retired.
  int pick_idle_group() const {
    int best = -1;
    for (int g = 0; g < static_cast<int>(groups_.size()); ++g) {
      const Group& group = groups_[static_cast<std::size_t>(g)];
      if (group.busy || group.retired) continue;
      if (best < 0 ||
          group.main_time < groups_[static_cast<std::size_t>(best)].main_time)
        best = g;
    }
    return best;
  }

  /// Pairs available scenarios with idle groups until neither remains.
  void dispatch_mains() {
    for (;;) {
      const int g = pick_idle_group();
      if (g < 0) break;
      const ScenarioId s = pick_scenario();
      if (s < 0) break;
      start_main(g, s);
    }
    maybe_retire_idle_groups();
  }

  /// Applies the multiplicative duration jitter (1.0 when inactive).
  Seconds jittered(Seconds base) {
    const double sigma = options_.perturbation.duration_jitter;
    if (sigma <= 0.0) return base;
    return base * std::exp(rng_.normal(0.0, sigma));
  }

  void start_main(int g, ScenarioId s) {
    Group& group = groups_[static_cast<std::size_t>(g)];
    Scenario& scenario = scenarios_[static_cast<std::size_t>(s)];
    const MonthIndex month = scenario.months_dispatched;
    ++scenario.months_dispatched;
    ++months_dispatched_total_;
    scenario.running = true;
    group.busy = true;
    // Months after the first stall on the restart hand-off before compute
    // starts; the group is occupied (busy, not retirable) while it waits.
    const Seconds duration = jittered(group.main_time) +
                             (month > 0 ? options_.restart_handoff : 0.0);
    const bool fails =
        options_.perturbation.failure_probability > 0.0 &&
        rng_.uniform() < options_.perturbation.failure_probability;
    group.busy_seconds += duration;
    const Seconds start = calendar_.now();
    const Seconds end = start + duration;
    // Failed attempts occupy the group but are not recorded: the trace
    // documents successful executions (its invariants assume uniqueness).
    if (options_.capture_trace && !fails)
      result_.trace.record(
          TraceEntry{UnitKind::kGroup, g, s, month, start, end});
    if (options_.obs_trace != nullptr)
      emit_sim_event("s" + std::to_string(s) + " m" + std::to_string(month),
                     fails ? "retry" : "main", options_.obs_track_base + g,
                     start, end);
    calendar_.schedule(
        end, SimEvent{SimEvent::Kind::kMainDone, fails, g, s, month});
  }

  void finish_main(int g, ScenarioId s, MonthIndex month, bool failed) {
    Group& group = groups_[static_cast<std::size_t>(g)];
    Scenario& scenario = scenarios_[static_cast<std::size_t>(s)];
    group.busy = false;
    scenario.running = false;

    if (failed) {
      // The month's output is lost; roll the dispatch state back so the
      // month re-runs (restart-file recovery).
      ++result_.retries;
      --scenario.months_dispatched;
      --months_dispatched_total_;
    } else {
      ++scenario.months_done;
      ++months_done_total_;
      ++result_.mains_executed;
      result_.main_phase_end =
          std::max(result_.main_phase_end, calendar_.now());
      post_queue_.push(PostTask{s, month});
      if (options_.progress_every > 0 && options_.on_progress &&
          months_done_total_ % options_.progress_every == 0)
        options_.on_progress(months_done_total_, calendar_.now());
    }

    // FIFO rule: the scenario re-enters the queue at the back. The queue is
    // only maintained when the rule can observe it.
    if (options_.dispatch == DispatchRule::kFifo) {
      fifo_.erase(std::find(fifo_.begin(), fifo_.end(), s));
      fifo_.push_back(s);
    }

    if (months_done_total_ == total_months()) on_all_mains_done();
    dispatch_mains();
    dispatch_posts();
  }

  void on_all_mains_done() {
    if (schedule_.post_policy == sched::PostPolicy::kAllAtEnd) {
      posts_enabled_ = true;
      // The whole cluster turns into post workers (paper's Improvement 2:
      // "leave all the post-processing at the end").
      for (ProcCount w = 0; w < cluster_.resources(); ++w)
        free_workers_.push(next_worker_id_++);
    }
  }

  void maybe_retire_idle_groups() {
    if (months_dispatched_total_ < total_months()) return;
    for (auto& group : groups_) {
      if (group.busy || group.retired) continue;
      group.retired = true;
      if (schedule_.post_policy == sched::PostPolicy::kPoolThenRetired)
        for (ProcCount w = 0; w < group.size; ++w)
          free_workers_.push(next_worker_id_++);
    }
    dispatch_posts();
  }

  void dispatch_posts() {
    if (!posts_enabled_) return;
    while (!post_queue_.empty() && !free_workers_.empty()) {
      const PostTask post = post_queue_.pop();
      const int worker = free_workers_.pop();
      const Seconds start = calendar_.now();
      const Seconds end = start + jittered(cluster_.post_time());
      if (options_.capture_trace)
        result_.trace.record(TraceEntry{UnitKind::kPostWorker, worker,
                                        post.scenario, post.month, start, end});
      if (options_.obs_trace != nullptr)
        emit_sim_event("post s" + std::to_string(post.scenario) + " m" +
                           std::to_string(post.month),
                       "post", post_track(worker), start, end);
      calendar_.schedule(
          end, SimEvent{SimEvent::Kind::kPostDone, false, worker, 0, 0});
    }
  }

  void finish_post(int worker) {
    ++result_.posts_executed;
    last_post_end_ = std::max(last_post_end_, calendar_.now());
    free_workers_.push(worker);
    dispatch_posts();
  }

  /// Simulated-time trace event: 1 trace microsecond per simulated second.
  void emit_sim_event(std::string name, const char* category, int track,
                      Seconds start, Seconds end) {
    obs::TraceEvent event;
    event.name = std::move(name);
    event.category = category;
    event.pid = obs::kSimPid;
    event.track = track;
    event.ts_us = start;
    event.dur_us = end - start;
    options_.obs_trace->emit_complete(std::move(event));
  }

  /// Post workers live on tracks above the group band; each track is named
  /// on first use.
  int post_track(int worker) {
    const int track = options_.obs_track_base +
                      static_cast<int>(groups_.size()) + worker;
    if (static_cast<std::size_t>(worker) >= post_track_named_.size())
      post_track_named_.resize(static_cast<std::size_t>(worker) + 1, false);
    if (!post_track_named_[static_cast<std::size_t>(worker)]) {
      post_track_named_[static_cast<std::size_t>(worker)] = true;
      const std::string prefix =
          options_.obs_label.empty() ? "" : options_.obs_label + " ";
      options_.obs_trace->set_track_name(
          obs::kSimPid, track, prefix + "post worker " + std::to_string(worker));
    }
    return track;
  }

  const platform::Cluster& cluster_;
  const sched::GroupSchedule& schedule_;
  std::vector<MonthIndex> months_limit_;
  Count total_months_ = 0;
  SimOptions options_;
  Rng rng_;

  Calendar<SimEvent> calendar_;
  std::vector<Group> groups_;
  std::vector<Scenario> scenarios_;
  std::deque<ScenarioId> fifo_;  ///< maintained only under DispatchRule::kFifo
  Count rr_cursor_ = 0;

  Count months_dispatched_total_ = 0;
  Count months_done_total_ = 0;

  FlatQueue<PostTask> post_queue_;
  FlatQueue<int> free_workers_;
  int next_worker_id_ = 0;
  bool posts_enabled_ = false;
  Seconds last_post_end_ = 0.0;
  std::vector<bool> post_track_named_;

  SimResult result_;
};

}  // namespace

const char* to_string(DispatchRule rule) noexcept {
  switch (rule) {
    case DispatchRule::kLeastAdvanced: return "least-advanced";
    case DispatchRule::kRoundRobin: return "round-robin";
    case DispatchRule::kFifo: return "fifo";
  }
  return "?";
}

SimResult simulate_ensemble(const platform::Cluster& cluster,
                            const sched::GroupSchedule& schedule,
                            const appmodel::Ensemble& ensemble,
                            const SimOptions& options) {
  ensemble.validate();
  const std::vector<MonthIndex> months(
      static_cast<std::size_t>(ensemble.scenarios),
      static_cast<MonthIndex>(ensemble.months));
  EnsembleSimulation simulation(cluster, schedule, months, options);
  return simulation.run();
}

SimResult simulate_ensemble(const platform::Cluster& cluster,
                            const sched::GroupSchedule& schedule,
                            const std::vector<MonthIndex>& months_per_scenario,
                            const SimOptions& options) {
  EnsembleSimulation simulation(cluster, schedule, months_per_scenario,
                                options);
  return simulation.run();
}

SimResult simulate_with_heuristic(const platform::Cluster& cluster,
                                  sched::Heuristic heuristic,
                                  const appmodel::Ensemble& ensemble,
                                  const SimOptions& options) {
  const sched::GroupSchedule schedule =
      sched::make_schedule(heuristic, cluster, ensemble);
  return simulate_ensemble(cluster, schedule, ensemble, options);
}

}  // namespace oagrid::sim
