#include "sim/ensemble_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/rng.hpp"
#include "fault/checkpoint.hpp"
#include "obs/obs.hpp"
#include "sim/calendar.hpp"

namespace oagrid::sim {
namespace {

struct Group {
  ProcCount size = 0;
  Seconds main_time = 0.0;
  bool busy = false;
  bool retired = false;
  Seconds busy_seconds = 0.0;
  // Failure-injection state; untouched (and behavior-neutral) without an
  // active FaultOptions.
  bool down = false;              ///< node set currently unavailable
  std::uint32_t epoch = 0;        ///< bumped per outage; stales kMainDone
  Seconds pending_repair = 0.0;   ///< duration of the scheduled next outage
  Seconds current_start = 0.0;    ///< in-flight main task bounds (busy only)
  Seconds current_end = 0.0;
  ScenarioId current_scenario = 0;
  MonthIndex current_month = 0;
};

struct Scenario {
  MonthIndex months_done = 0;       ///< completed months
  MonthIndex months_dispatched = 0; ///< started (or completed) months
  bool running = false;
  int pinned_group = -1;   ///< wait-for-repair: resume only on this group
  bool needs_staging = false;  ///< migrate-with-state: next month re-stages
};

struct PostTask {
  ScenarioId scenario = 0;
  MonthIndex month = 0;
};

/// FIFO queue over a growable flat buffer: O(1) amortized push/pop with no
/// per-element allocation (std::deque allocates a fresh chunk every ~128
/// elements, which shows up at per-month frequency). The consumed prefix is
/// reclaimed lazily once it dominates the buffer.
template <typename T>
class FlatQueue {
 public:
  void reserve(std::size_t n) { buf_.reserve(n); }
  [[nodiscard]] bool empty() const noexcept { return head_ == buf_.size(); }
  void push(T value) { buf_.push_back(std::move(value)); }
  T pop() {
    T value = std::move(buf_[head_++]);
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 1024 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    return value;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
};

/// The simulator's entire event vocabulary: a main/post task finishing, or a
/// node set failing / coming back. Plain struct — scheduling one is a push
/// into the calendar's flat heap, not a std::function allocation.
struct SimEvent {
  enum class Kind : std::uint8_t { kMainDone, kPostDone, kNodeDown, kNodeUp };
  Kind kind = Kind::kMainDone;
  bool failed = false;
  int unit = 0;  ///< group index (kMainDone) or post worker id (kPostDone)
  ScenarioId scenario = 0;
  MonthIndex month = 0;
  /// Group epoch at schedule time; a kMainDone whose epoch no longer matches
  /// was killed by an outage (the calendar has no removal — §fault docs).
  std::uint32_t epoch = 0;
};

class EnsembleSimulation {
 public:
  EnsembleSimulation(const platform::Cluster& cluster,
                     const sched::GroupSchedule& schedule,
                     std::vector<MonthIndex> months_per_scenario,
                     const SimOptions& options)
      : cluster_(cluster),
        schedule_(schedule),
        months_limit_(std::move(months_per_scenario)),
        options_(options),
        rng_(options.perturbation.seed),
        fault_active_(options.fault.active()) {
    OAGRID_REQUIRE(!months_limit_.empty(), "need at least one scenario");
    OAGRID_REQUIRE(options.restart_handoff >= 0.0,
                   "restart hand-off must be >= 0");
    if (fault_active_) {
      OAGRID_REQUIRE(options.fault.checkpoint_months >= 1,
                     "checkpoint cadence must be >= 1 month");
      OAGRID_REQUIRE(options.fault.migrate_staging >= 0.0,
                     "migration staging must be >= 0");
    }
    total_months_ = 0;
    for (const MonthIndex m : months_limit_) {
      OAGRID_REQUIRE(m >= 1, "each scenario needs at least one month");
      total_months_ += m;
    }
    schedule_.validate(cluster_);
    groups_.reserve(schedule_.group_sizes.size());
    for (const ProcCount size : schedule_.group_sizes)
      groups_.push_back(Group{size, cluster_.main_time(size), false, false, 0.0});
    scenarios_.resize(months_limit_.size());
    if (options_.dispatch == DispatchRule::kFifo)
      for (ScenarioId s = 0; s < scenario_count(); ++s) fifo_.push_back(s);
    // Pending events never exceed one per busy unit: groups plus however
    // many post workers the policy can create (bounded by the cluster).
    calendar_.reserve(groups_.size() +
                      static_cast<std::size_t>(cluster_.resources()) + 4);
    free_workers_.reserve(static_cast<std::size_t>(cluster_.resources()) + 4);
    for (ProcCount w = 0; w < schedule_.post_pool; ++w)
      free_workers_.push(next_worker_id_++);
    posts_enabled_ = schedule_.post_policy == sched::PostPolicy::kPoolThenRetired;
    if (options_.capture_trace)
      result_.trace.reserve(2 * static_cast<std::size_t>(total_months_));
    if (options_.obs_trace != nullptr) {
      const std::string prefix =
          options_.obs_label.empty() ? "" : options_.obs_label + " ";
      for (std::size_t g = 0; g < groups_.size(); ++g)
        options_.obs_trace->set_track_name(
            obs::kSimPid, options_.obs_track_base + static_cast<int>(g),
            prefix + "group " + std::to_string(g) + " (" +
                std::to_string(groups_[g].size) + "p)");
    }
  }

  SimResult run() {
    const bool observed = obs::enabled();
    const double wall_start_us =
        observed ? obs::WallClock::instance().now_us() : 0.0;
    if (fault_active_) {
      // Outage streams are per-unit deterministic (model seed, cluster,
      // group); their first windows go into the calendar before any main so
      // a t=0 outage beats a t=0 dispatch.
      outage_streams_.reserve(groups_.size());
      done_costs_.resize(static_cast<std::size_t>(scenario_count()));
      for (int g = 0; g < static_cast<int>(groups_.size()); ++g) {
        outage_streams_.emplace_back(*options_.fault.model,
                                     options_.fault.cluster, g);
        schedule_next_outage(g, 0.0);
      }
    }
    dispatch_mains();
    std::size_t executed = 0;
    while (!calendar_.empty()) {
      const SimEvent event = calendar_.pop();
      ++executed;
      switch (event.kind) {
        case SimEvent::Kind::kMainDone:
          finish_main(event.unit, event.scenario, event.month, event.failed,
                      event.epoch);
          break;
        case SimEvent::Kind::kPostDone:
          finish_post(event.unit);
          break;
        case SimEvent::Kind::kNodeDown:
          handle_node_down(event.unit);
          break;
        case SimEvent::Kind::kNodeUp:
          handle_node_up(event.unit);
          break;
      }
    }
    result_.events = executed;
    result_.makespan = std::max(result_.main_phase_end, last_post_end_);
    // Every node set died for good with months still pending: the campaign
    // cannot finish on this cluster. Surface the large-but-finite sentinel
    // (schedulers order by it) instead of a silently-short makespan.
    if (fault_active_ && months_done_total_ < total_months())
      result_.makespan = fault::kUnavailableTime;
    double busy = 0.0;
    double alloc = 0.0;
    for (const Group& g : groups_) {
      busy += g.busy_seconds * static_cast<double>(g.size);
      alloc += static_cast<double>(g.size);
    }
    result_.group_utilization =
        result_.makespan > 0.0 ? busy / (alloc * result_.makespan) : 0.0;
    // Metrics are aggregated once per run, not per event, so the simulator's
    // hot loop carries no instrumentation cost (gated by bench_sim_engine).
    if (observed) {
      const double wall_us =
          obs::WallClock::instance().now_us() - wall_start_us;
      // Registry lookups take a mutex and a string-keyed map walk; cached
      // references keep the per-run cost at a handful of relaxed atomics
      // (the registry guarantees reference stability, so this is safe).
      static obs::Counter& runs = obs::metrics().counter("sim.runs");
      static obs::Counter& events = obs::metrics().counter("sim.events");
      static obs::Counter& mains = obs::metrics().counter("sim.mains");
      static obs::Counter& posts = obs::metrics().counter("sim.posts");
      static obs::Counter& retries = obs::metrics().counter("sim.retries");
      static obs::Histogram& run_wall_us =
          obs::metrics().histogram("sim.run_wall_us");
      static obs::Histogram& events_per_sec =
          obs::metrics().histogram("sim.events_per_sec");
      static obs::Histogram& group_busy =
          obs::metrics().histogram("sim.group.busy_ratio");
      static obs::Histogram& group_idle =
          obs::metrics().histogram("sim.group.idle_seconds");
      runs.add();
      events.add(result_.events);
      mains.add(static_cast<std::uint64_t>(result_.mains_executed));
      posts.add(static_cast<std::uint64_t>(result_.posts_executed));
      retries.add(static_cast<std::uint64_t>(result_.retries));
      run_wall_us.record(wall_us);
      if (wall_us > 0.0)
        events_per_sec.record(static_cast<double>(result_.events) /
                              (wall_us * 1e-6));
      for (const Group& g : groups_) {
        const double group_busy_ratio =
            result_.makespan > 0.0 ? g.busy_seconds / result_.makespan : 0.0;
        group_busy.record(group_busy_ratio);
        group_idle.record(std::max(0.0, result_.makespan - g.busy_seconds));
      }
      if (fault_active_) {
        static obs::Counter& fault_outages =
            obs::metrics().counter("fault.outages");
        static obs::Counter& fault_kills = obs::metrics().counter("fault.kills");
        static obs::Counter& fault_rewound =
            obs::metrics().counter("fault.rewound_months");
        static obs::Histogram& fault_downtime =
            obs::metrics().histogram("fault.downtime_seconds");
        static obs::Histogram& fault_lost =
            obs::metrics().histogram("fault.lost_seconds");
        fault_outages.add(static_cast<std::uint64_t>(result_.fault.outages));
        fault_kills.add(static_cast<std::uint64_t>(result_.fault.kills));
        fault_rewound.add(
            static_cast<std::uint64_t>(result_.fault.rewound_months));
        fault_downtime.record(result_.fault.downtime_seconds);
        fault_lost.record(result_.fault.lost_seconds);
      }
    }
    return std::move(result_);
  }

 private:
  Count total_months() const { return total_months_; }

  ScenarioId scenario_count() const {
    return static_cast<ScenarioId>(months_limit_.size());
  }

  bool scenario_available(ScenarioId s) const {
    const Scenario& sc = scenarios_[static_cast<std::size_t>(s)];
    // A pinned scenario (wait-for-repair) is served by its own dispatch
    // pass, not the shared pool; pins only exist under fault injection.
    return !sc.running && sc.pinned_group < 0 &&
           sc.months_dispatched < months_limit_[static_cast<std::size_t>(s)];
  }

  /// Picks the next scenario per the dispatch rule; -1 when none available.
  ScenarioId pick_scenario() {
    switch (options_.dispatch) {
      case DispatchRule::kLeastAdvanced: {
        ScenarioId best = -1;
        for (ScenarioId s = 0; s < scenario_count(); ++s) {
          if (!scenario_available(s)) continue;
          if (best < 0 || scenarios_[static_cast<std::size_t>(s)].months_done <
                              scenarios_[static_cast<std::size_t>(best)].months_done)
            best = s;
        }
        return best;
      }
      case DispatchRule::kRoundRobin: {
        for (Count step = 0; step < scenario_count(); ++step) {
          const auto s = static_cast<ScenarioId>(
              (rr_cursor_ + step) % scenario_count());
          if (scenario_available(s)) {
            rr_cursor_ = static_cast<Count>(s) + 1;
            return s;
          }
        }
        return -1;
      }
      case DispatchRule::kFifo: {
        for (const ScenarioId s : fifo_)
          if (scenario_available(s)) return s;
        return -1;
      }
    }
    return -1;
  }

  /// Fastest idle non-retired non-down group (smallest main time, then
  /// index); -1 when every group is busy, retired or down.
  int pick_idle_group() const {
    int best = -1;
    for (int g = 0; g < static_cast<int>(groups_.size()); ++g) {
      const Group& group = groups_[static_cast<std::size_t>(g)];
      if (group.busy || group.retired || group.down) continue;
      if (best < 0 ||
          group.main_time < groups_[static_cast<std::size_t>(best)].main_time)
        best = g;
    }
    return best;
  }

  /// Pairs available scenarios with idle groups until neither remains.
  void dispatch_mains() {
    if (fault_active_) {
      // Pinned scenarios (wait-for-repair) resume on their own group before
      // the shared pool is served; keep alternating until a full round makes
      // no progress.
      bool progress = true;
      while (progress) {
        progress = false;
        for (ScenarioId s = 0; s < scenario_count(); ++s) {
          Scenario& sc = scenarios_[static_cast<std::size_t>(s)];
          if (sc.pinned_group < 0 || sc.running) continue;
          if (sc.months_dispatched >=
              months_limit_[static_cast<std::size_t>(s)]) {
            sc.pinned_group = -1;
            continue;
          }
          const int g = sc.pinned_group;
          const Group& group = groups_[static_cast<std::size_t>(g)];
          if (group.busy || group.retired || group.down) continue;
          sc.pinned_group = -1;  // the pin covers one resumption, not forever
          start_main(g, s);
          progress = true;
        }
        const int g = pick_idle_group();
        if (g >= 0) {
          const ScenarioId s = pick_scenario();
          if (s >= 0) {
            start_main(g, s);
            progress = true;
          }
        }
      }
      maybe_retire_idle_groups();
      return;
    }
    for (;;) {
      const int g = pick_idle_group();
      if (g < 0) break;
      const ScenarioId s = pick_scenario();
      if (s < 0) break;
      start_main(g, s);
    }
    maybe_retire_idle_groups();
  }

  /// Applies the multiplicative duration jitter (1.0 when inactive).
  Seconds jittered(Seconds base) {
    const double sigma = options_.perturbation.duration_jitter;
    if (sigma <= 0.0) return base;
    return base * std::exp(rng_.normal(0.0, sigma));
  }

  void start_main(int g, ScenarioId s) {
    Group& group = groups_[static_cast<std::size_t>(g)];
    Scenario& scenario = scenarios_[static_cast<std::size_t>(s)];
    const MonthIndex month = scenario.months_dispatched;
    ++scenario.months_dispatched;
    ++months_dispatched_total_;
    scenario.running = true;
    group.busy = true;
    // Months after the first stall on the restart hand-off before compute
    // starts; the group is occupied (busy, not retirable) while it waits.
    Seconds duration = jittered(group.main_time) +
                       (month > 0 ? options_.restart_handoff : 0.0);
    if (fault_active_ && scenario.needs_staging) {
      // Migrate-with-state: the first month after a migration re-stages the
      // scenario's restart state onto the new node set.
      duration += options_.fault.migrate_staging;
      scenario.needs_staging = false;
    }
    const bool fails =
        options_.perturbation.failure_probability > 0.0 &&
        rng_.uniform() < options_.perturbation.failure_probability;
    group.busy_seconds += duration;
    const Seconds start = calendar_.now();
    const Seconds end = start + duration;
    // Failed attempts occupy the group but are not recorded: the trace
    // documents successful executions (its invariants assume uniqueness).
    // Under fault injection the projected end may never happen (the month
    // can be killed), so recording moves to finish_main.
    if (options_.capture_trace && !fails && !fault_active_)
      result_.trace.record(
          TraceEntry{UnitKind::kGroup, g, s, month, start, end});
    if (options_.obs_trace != nullptr)
      emit_sim_event("s" + std::to_string(s) + " m" + std::to_string(month),
                     fails ? "retry" : "main", options_.obs_track_base + g,
                     start, end);
    if (fault_active_) {
      group.current_start = start;
      group.current_end = end;
      group.current_scenario = s;
      group.current_month = month;
    }
    calendar_.schedule(end, SimEvent{SimEvent::Kind::kMainDone, fails, g, s,
                                     month, group.epoch});
  }

  void finish_main(int g, ScenarioId s, MonthIndex month, bool failed,
                   std::uint32_t epoch) {
    Group& group = groups_[static_cast<std::size_t>(g)];
    Scenario& scenario = scenarios_[static_cast<std::size_t>(s)];
    // Stale completion: the month was killed by an outage after this event
    // was scheduled (the calendar has no removal; the epoch bump at kill
    // time invalidates it).
    if (fault_active_ && epoch != group.epoch) return;
    group.busy = false;
    scenario.running = false;

    if (failed) {
      // The month's output is lost; roll the dispatch state back so the
      // month re-runs (restart-file recovery).
      ++result_.retries;
      --scenario.months_dispatched;
      --months_dispatched_total_;
    } else {
      ++scenario.months_done;
      ++months_done_total_;
      ++result_.mains_executed;
      result_.main_phase_end =
          std::max(result_.main_phase_end, calendar_.now());
      if (fault_active_) {
        // Remember what the month cost so a later rewind can account the
        // thrown-away work exactly, and record the actual execution window.
        done_costs_[static_cast<std::size_t>(s)].push_back(
            calendar_.now() - group.current_start);
        if (options_.capture_trace)
          result_.trace.record(TraceEntry{UnitKind::kGroup, g, s, month,
                                          group.current_start,
                                          calendar_.now()});
      }
      post_queue_.push(PostTask{s, month});
      if (options_.progress_every > 0 && options_.on_progress &&
          months_done_total_ % options_.progress_every == 0)
        options_.on_progress(months_done_total_, calendar_.now());
    }

    // FIFO rule: the scenario re-enters the queue at the back. The queue is
    // only maintained when the rule can observe it.
    if (options_.dispatch == DispatchRule::kFifo) {
      fifo_.erase(std::find(fifo_.begin(), fifo_.end(), s));
      fifo_.push_back(s);
    }

    if (months_done_total_ == total_months()) on_all_mains_done();
    dispatch_mains();
    dispatch_posts();
  }

  void on_all_mains_done() {
    if (schedule_.post_policy == sched::PostPolicy::kAllAtEnd) {
      posts_enabled_ = true;
      // The whole cluster turns into post workers (paper's Improvement 2:
      // "leave all the post-processing at the end").
      for (ProcCount w = 0; w < cluster_.resources(); ++w)
        free_workers_.push(next_worker_id_++);
    }
  }

  void maybe_retire_idle_groups() {
    if (months_dispatched_total_ < total_months()) return;
    for (auto& group : groups_) {
      // A down group cannot retire: its processors are unavailable, not
      // idle, and a rewind may still need it after repair.
      if (group.busy || group.retired || group.down) continue;
      group.retired = true;
      if (schedule_.post_policy == sched::PostPolicy::kPoolThenRetired)
        for (ProcCount w = 0; w < group.size; ++w)
          free_workers_.push(next_worker_id_++);
    }
    dispatch_posts();
  }

  void dispatch_posts() {
    if (!posts_enabled_) return;
    while (!post_queue_.empty() && !free_workers_.empty()) {
      const PostTask post = post_queue_.pop();
      const int worker = free_workers_.pop();
      const Seconds start = calendar_.now();
      const Seconds end = start + jittered(cluster_.post_time());
      if (options_.capture_trace)
        result_.trace.record(TraceEntry{UnitKind::kPostWorker, worker,
                                        post.scenario, post.month, start, end});
      if (options_.obs_trace != nullptr)
        emit_sim_event("post s" + std::to_string(post.scenario) + " m" +
                           std::to_string(post.month),
                       "post", post_track(worker), start, end);
      calendar_.schedule(
          end, SimEvent{SimEvent::Kind::kPostDone, false, worker, 0, 0});
    }
  }

  void finish_post(int worker) {
    ++result_.posts_executed;
    last_post_end_ = std::max(last_post_end_, calendar_.now());
    free_workers_.push(worker);
    dispatch_posts();
  }

  /// Draws the group's next outage window at-or-after `t` and schedules its
  /// kNodeDown; at most one outage per group is ever pending.
  void schedule_next_outage(int g, Seconds t) {
    const auto window = outage_streams_[static_cast<std::size_t>(g)].next(t);
    if (!window.has_value()) return;
    groups_[static_cast<std::size_t>(g)].pending_repair = window->duration;
    calendar_.schedule(window->start,
                       SimEvent{SimEvent::Kind::kNodeDown, false, g, 0, 0, 0});
  }

  void handle_node_down(int g) {
    Group& group = groups_[static_cast<std::size_t>(g)];
    // Once the main phase is over (or this group has retired into post
    // workers) failures stop mattering: post tasks are minutes long and can
    // run anywhere, so the simulation ignores late outages — this also
    // guarantees the calendar drains.
    if (group.retired || months_done_total_ == total_months()) return;
    ++result_.fault.outages;
    ++group.epoch;  // invalidates any in-flight kMainDone for this group
    group.down = true;
    const Seconds repair = group.pending_repair;
    const bool permanent = repair >= kInfiniteTime;
    if (!permanent) result_.fault.downtime_seconds += repair;
    if (group.busy) kill_in_flight(g);
    if (permanent) {
      // The node set never comes back; release any scenario waiting on it
      // so wait-for-repair cannot deadlock on dead hardware.
      for (Scenario& sc : scenarios_)
        if (sc.pinned_group == g) sc.pinned_group = -1;
    } else {
      calendar_.schedule(
          calendar_.now() + repair,
          SimEvent{SimEvent::Kind::kNodeUp, false, g, 0, 0, group.epoch});
    }
    // The killed scenario may reschedule onto another idle group right now.
    dispatch_mains();
  }

  void handle_node_up(int g) {
    Group& group = groups_[static_cast<std::size_t>(g)];
    group.down = false;
    if (!group.retired && months_done_total_ < total_months())
      schedule_next_outage(g, calendar_.now());
    dispatch_mains();
  }

  /// An outage caught group g mid-month: the month's work is lost and the
  /// scenario rewinds to its last k-month restart checkpoint.
  void kill_in_flight(int g) {
    Group& group = groups_[static_cast<std::size_t>(g)];
    const ScenarioId s = group.current_scenario;
    Scenario& scenario = scenarios_[static_cast<std::size_t>(s)];
    const Seconds now = calendar_.now();
    ++result_.fault.kills;
    result_.fault.lost_seconds += now - group.current_start;
    // The start charged the whole projected duration; give back the part
    // that never ran.
    group.busy_seconds -= group.current_end - now;
    group.busy = false;
    scenario.running = false;
    --scenario.months_dispatched;
    --months_dispatched_total_;
    // Rewind completed months past the checkpoint: restart files only exist
    // every checkpoint_months months, so the in-between output is lost too.
    const MonthIndex cadence = options_.fault.checkpoint_months;
    const MonthIndex keep = (scenario.months_done / cadence) * cadence;
    const MonthIndex rewound = scenario.months_done - keep;
    if (rewound > 0) {
      result_.fault.rewound_months += rewound;
      // OAGRID_MUTATION_SKIP_REWIND is the seeded defect of the mutation
      // smoke-check (tools/CMakeLists.txt): the rewind is accounted but the
      // frontier is never rolled back, so the rewound months are not
      // re-executed. The fault-work-conservation property
      // (mains_executed == total_tasks + rewound_months) must catch it.
#ifndef OAGRID_MUTATION_SKIP_REWIND
      auto& costs = done_costs_[static_cast<std::size_t>(s)];
      for (MonthIndex i = 0; i < rewound; ++i) {
        result_.fault.lost_seconds += costs.back();
        costs.pop_back();
      }
      scenario.months_done = keep;
      months_done_total_ -= rewound;
      scenario.months_dispatched -= rewound;
      months_dispatched_total_ -= rewound;
#endif
    }
    switch (options_.fault.recovery) {
      case fault::RecoveryPolicy::kWaitForRepair:
        scenario.pinned_group = g;
        break;
      case fault::RecoveryPolicy::kRescheduleInCluster:
        break;
      case fault::RecoveryPolicy::kMigrateWithState:
        scenario.needs_staging = true;
        break;
    }
    if (options_.obs_trace != nullptr)
      emit_sim_event("s" + std::to_string(s) + " m" +
                         std::to_string(group.current_month),
                     "killed", options_.obs_track_base + g,
                     group.current_start, now);
  }

  /// Simulated-time trace event: 1 trace microsecond per simulated second.
  void emit_sim_event(std::string name, const char* category, int track,
                      Seconds start, Seconds end) {
    obs::TraceEvent event;
    event.name = std::move(name);
    event.category = category;
    event.pid = obs::kSimPid;
    event.track = track;
    event.ts_us = start;
    event.dur_us = end - start;
    options_.obs_trace->emit_complete(std::move(event));
  }

  /// Post workers live on tracks above the group band; each track is named
  /// on first use.
  int post_track(int worker) {
    const int track = options_.obs_track_base +
                      static_cast<int>(groups_.size()) + worker;
    if (static_cast<std::size_t>(worker) >= post_track_named_.size())
      post_track_named_.resize(static_cast<std::size_t>(worker) + 1, false);
    if (!post_track_named_[static_cast<std::size_t>(worker)]) {
      post_track_named_[static_cast<std::size_t>(worker)] = true;
      const std::string prefix =
          options_.obs_label.empty() ? "" : options_.obs_label + " ";
      options_.obs_trace->set_track_name(
          obs::kSimPid, track, prefix + "post worker " + std::to_string(worker));
    }
    return track;
  }

  const platform::Cluster& cluster_;
  const sched::GroupSchedule& schedule_;
  std::vector<MonthIndex> months_limit_;
  Count total_months_ = 0;
  SimOptions options_;
  Rng rng_;

  Calendar<SimEvent> calendar_;
  std::vector<Group> groups_;
  std::vector<Scenario> scenarios_;
  std::deque<ScenarioId> fifo_;  ///< maintained only under DispatchRule::kFifo
  Count rr_cursor_ = 0;

  Count months_dispatched_total_ = 0;
  Count months_done_total_ = 0;

  const bool fault_active_ = false;
  std::vector<fault::OutageStream> outage_streams_;  ///< one per group
  /// Per-scenario cost of each completed month, in completion order; popped
  /// on rewind for exact lost-work accounting. Maintained only under fault
  /// injection.
  std::vector<std::vector<Seconds>> done_costs_;

  FlatQueue<PostTask> post_queue_;
  FlatQueue<int> free_workers_;
  int next_worker_id_ = 0;
  bool posts_enabled_ = false;
  Seconds last_post_end_ = 0.0;
  std::vector<bool> post_track_named_;

  SimResult result_;
};

}  // namespace

const char* to_string(DispatchRule rule) noexcept {
  switch (rule) {
    case DispatchRule::kLeastAdvanced: return "least-advanced";
    case DispatchRule::kRoundRobin: return "round-robin";
    case DispatchRule::kFifo: return "fifo";
  }
  return "?";
}

SimResult simulate_ensemble(const platform::Cluster& cluster,
                            const sched::GroupSchedule& schedule,
                            const appmodel::Ensemble& ensemble,
                            const SimOptions& options) {
  ensemble.validate();
  const std::vector<MonthIndex> months(
      static_cast<std::size_t>(ensemble.scenarios),
      static_cast<MonthIndex>(ensemble.months));
  EnsembleSimulation simulation(cluster, schedule, months, options);
  return simulation.run();
}

SimResult simulate_ensemble(const platform::Cluster& cluster,
                            const sched::GroupSchedule& schedule,
                            const std::vector<MonthIndex>& months_per_scenario,
                            const SimOptions& options) {
  EnsembleSimulation simulation(cluster, schedule, months_per_scenario,
                                options);
  return simulation.run();
}

SimResult simulate_with_heuristic(const platform::Cluster& cluster,
                                  sched::Heuristic heuristic,
                                  const appmodel::Ensemble& ensemble,
                                  const SimOptions& options) {
  const sched::GroupSchedule schedule =
      sched::make_schedule(heuristic, cluster, ensemble);
  return simulate_ensemble(cluster, schedule, ensemble, options);
}

}  // namespace oagrid::sim
