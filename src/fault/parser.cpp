#include "fault/parser.hpp"

#include <optional>
#include <ostream>
#include <sstream>

#include "common/parse_error.hpp"

namespace oagrid::fault {
namespace {

ClusterId read_cluster(std::istringstream& in, const std::string& source,
                       int line, int count) {
  ClusterId c = -1;
  if (!(in >> c) || c < 0 || c >= count)
    throw_parse_error(source, line, "expected a cluster id in [0, " +
                                        std::to_string(count) + ")");
  return c;
}

double read_positive(std::istringstream& in, const std::string& source,
                     int line, const std::string& what) {
  double v = 0.0;
  if (!(in >> v) || v <= 0.0)
    throw_parse_error(source, line, "expected a positive " + what);
  return v;
}

double read_non_negative(std::istringstream& in, const std::string& source,
                         int line, const std::string& what) {
  double v = -1.0;
  if (!(in >> v) || v < 0.0)
    throw_parse_error(source, line, "expected a non-negative " + what);
  return v;
}

}  // namespace

FailureModel parse_failures(std::istream& in, const std::string& source) {
  std::optional<FailureModel> model;
  std::string raw;
  int line_no = 0;

  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword)) continue;  // blank / comment-only line

    if (keyword == "failures") {
      if (model)
        throw_parse_error(source, line_no, "duplicate 'failures' directive");
      int clusters = 0;
      if (!(line >> clusters) || clusters < 1)
        throw_parse_error(source, line_no,
                          "'failures' needs a positive cluster count");
      model.emplace(clusters);
      continue;
    }
    if (!model)
      throw_parse_error(source, line_no, "directive '" + keyword +
                                             "' before 'failures <count>'");

    if (keyword == "seed") {
      std::uint64_t seed = 0;
      if (!(line >> seed))
        throw_parse_error(source, line_no, "'seed' needs an unsigned integer");
      model->set_seed(seed);
    } else if (keyword == "mtbf") {
      const ClusterId c =
          read_cluster(line, source, line_no, model->cluster_count());
      const double mtbf = read_positive(line, source, line_no, "MTBF [s]");
      const double mttr =
          read_non_negative(line, source, line_no, "MTTR [s]");
      model->set_exponential(c, mtbf, mttr);
    } else if (keyword == "weibull") {
      const ClusterId c =
          read_cluster(line, source, line_no, model->cluster_count());
      const double shape =
          read_positive(line, source, line_no, "Weibull shape");
      const double mtbf = read_positive(line, source, line_no, "MTBF [s]");
      const double mttr =
          read_non_negative(line, source, line_no, "MTTR [s]");
      model->set_weibull(c, shape, mtbf, mttr);
    } else if (keyword == "outage") {
      const ClusterId c =
          read_cluster(line, source, line_no, model->cluster_count());
      const double start =
          read_non_negative(line, source, line_no, "outage start [s]");
      const double duration =
          read_positive(line, source, line_no, "outage duration [s]");
      model->add_outage(c, start, duration);
    } else if (keyword == "down") {
      model->set_down(
          read_cluster(line, source, line_no, model->cluster_count()));
    } else {
      throw_parse_error(source, line_no,
                        "unknown directive '" + keyword + "'");
    }
  }
  if (!model) throw_parse_error(source, "no 'failures <count>' line");
  return *model;
}

FailureModel parse_failures_string(const std::string& text,
                                   const std::string& source) {
  std::istringstream in(text);
  return parse_failures(in, source);
}

void write_failures(std::ostream& out, const FailureModel& model) {
  // 17 significant digits round-trip any double exactly.
  out.precision(17);
  out << "failures " << model.cluster_count() << '\n';
  out << "seed " << model.seed() << '\n';
  for (ClusterId c = 0; c < model.cluster_count(); ++c) {
    const FailureProcess& p = model.process(c);
    switch (p.kind) {
      case ProcessKind::kNone:
        break;
      case ProcessKind::kExponential:
        out << "mtbf " << c << ' ' << p.mtbf << ' ' << p.mttr << '\n';
        break;
      case ProcessKind::kWeibull:
        out << "weibull " << c << ' ' << p.shape << ' ' << p.mtbf << ' '
            << p.mttr << '\n';
        break;
      case ProcessKind::kDown:
        out << "down " << c << '\n';
        break;
    }
    for (const Outage& o : p.outages)
      out << "outage " << c << ' ' << o.start << ' ' << o.duration << '\n';
  }
}

}  // namespace oagrid::fault
