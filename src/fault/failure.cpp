#include "fault/failure.hpp"

#include <algorithm>
#include <cmath>

namespace oagrid::fault {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fnv1a {
  std::uint64_t h = kFnvOffset;

  void bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kFnvPrime;
    }
  }
  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof(v)); }
  void f64(double v) noexcept { bytes(&v, sizeof(v)); }
};

/// Inverse-CDF draws. Both distributions are parameterised so that the mean
/// interarrival equals the requested MTBF: exponential rate 1/MTBF; Weibull
/// scale lambda = MTBF / Gamma(1 + 1/shape).
double draw_exponential(Rng& rng, double mean) noexcept {
  // uniform() is in [0, 1); 1-u is in (0, 1] so the log is finite.
  return -mean * std::log(1.0 - rng.uniform());
}

double draw_weibull(Rng& rng, double shape, double mtbf) noexcept {
  const double scale = mtbf / std::tgamma(1.0 + 1.0 / shape);
  return scale * std::pow(-std::log(1.0 - rng.uniform()), 1.0 / shape);
}

/// Decorrelates the per-unit streams: same SplitMix64 finalizer used by the
/// Rng seeding path, applied to (seed, cluster, unit) mixed together.
std::uint64_t mix(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t unit_seed(std::uint64_t seed, ClusterId cluster, int unit) noexcept {
  std::uint64_t s = mix(seed);
  s = mix(s ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cluster)) << 32));
  s = mix(s ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(unit)));
  return s;
}

}  // namespace

const char* to_string(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::kWaitForRepair:
      return "wait";
    case RecoveryPolicy::kRescheduleInCluster:
      return "reschedule";
    case RecoveryPolicy::kMigrateWithState:
      return "migrate";
  }
  return "?";
}

RecoveryPolicy recovery_policy_from(const std::string& name) {
  if (name == "wait") return RecoveryPolicy::kWaitForRepair;
  if (name == "reschedule") return RecoveryPolicy::kRescheduleInCluster;
  if (name == "migrate") return RecoveryPolicy::kMigrateWithState;
  throw std::invalid_argument("oagrid: unknown recovery policy '" + name +
                              "' (expected wait|reschedule|migrate)");
}

double FailureProcess::availability() const noexcept {
  switch (kind) {
    case ProcessKind::kNone:
      return 1.0;
    case ProcessKind::kDown:
      return 0.0;
    case ProcessKind::kExponential:
    case ProcessKind::kWeibull:
      return mtbf / (mtbf + mttr);
  }
  return 1.0;
}

FailureModel::FailureModel(int clusters) {
  OAGRID_REQUIRE(clusters >= 0, "failure model needs clusters >= 0");
  processes_.resize(static_cast<std::size_t>(clusters));
}

namespace {
FailureProcess& process_at(std::vector<FailureProcess>& processes, ClusterId cluster) {
  OAGRID_REQUIRE(cluster >= 0 && cluster < static_cast<ClusterId>(processes.size()),
                 "cluster id out of range for failure model");
  return processes[static_cast<std::size_t>(cluster)];
}
}  // namespace

void FailureModel::set_exponential(ClusterId cluster, double mtbf, double mttr) {
  OAGRID_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  OAGRID_REQUIRE(mttr >= 0.0, "MTTR must be non-negative");
  auto& p = process_at(processes_, cluster);
  p.kind = ProcessKind::kExponential;
  p.mtbf = mtbf;
  p.mttr = mttr;
  p.shape = 1.0;
}

void FailureModel::set_weibull(ClusterId cluster, double shape, double mtbf,
                               double mttr) {
  OAGRID_REQUIRE(shape > 0.0, "Weibull shape must be positive");
  OAGRID_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  OAGRID_REQUIRE(mttr >= 0.0, "MTTR must be non-negative");
  auto& p = process_at(processes_, cluster);
  p.kind = ProcessKind::kWeibull;
  p.mtbf = mtbf;
  p.mttr = mttr;
  p.shape = shape;
}

void FailureModel::set_down(ClusterId cluster) {
  process_at(processes_, cluster).kind = ProcessKind::kDown;
}

void FailureModel::add_outage(ClusterId cluster, Seconds start, Seconds duration) {
  OAGRID_REQUIRE(start >= 0.0, "outage start must be non-negative");
  OAGRID_REQUIRE(duration > 0.0, "outage duration must be positive");
  auto& p = process_at(processes_, cluster);
  Outage o{start, duration};
  auto it = std::upper_bound(
      p.outages.begin(), p.outages.end(), o,
      [](const Outage& a, const Outage& b) { return a.start < b.start; });
  p.outages.insert(it, o);
}

const FailureProcess& FailureModel::process(ClusterId cluster) const {
  OAGRID_REQUIRE(cluster >= 0 && cluster < cluster_count(),
                 "cluster id out of range for failure model");
  return processes_[static_cast<std::size_t>(cluster)];
}

bool FailureModel::active() const noexcept {
  for (const auto& p : processes_) {
    if (p.active()) return true;
  }
  return false;
}

bool FailureModel::cluster_active(ClusterId cluster) const {
  if (cluster < 0 || cluster >= cluster_count()) return false;
  return processes_[static_cast<std::size_t>(cluster)].active();
}

std::uint64_t FailureModel::signature() const noexcept {
  Fnv1a f;
  f.u64(seed_);
  f.u64(static_cast<std::uint64_t>(processes_.size()));
  for (const auto& p : processes_) {
    f.u64(static_cast<std::uint64_t>(p.kind));
    f.f64(p.mtbf);
    f.f64(p.mttr);
    f.f64(p.shape);
    f.u64(static_cast<std::uint64_t>(p.outages.size()));
    for (const auto& o : p.outages) {
      f.f64(o.start);
      f.f64(o.duration);
    }
  }
  return f.h;
}

FailureModel FailureModel::uniform_exponential(int clusters, double mtbf,
                                               double mttr, std::uint64_t seed) {
  FailureModel model(clusters);
  for (ClusterId c = 0; c < clusters; ++c) {
    model.set_exponential(c, mtbf, mttr);
  }
  model.set_seed(seed);
  return model;
}

OutageStream::OutageStream(const FailureModel& model, ClusterId cluster, int unit)
    : process_(cluster >= 0 && cluster < model.cluster_count()
                   ? &model.process(cluster)
                   : nullptr),
      rng_(unit_seed(model.seed(), cluster, unit)) {
  if (process_ != nullptr && !process_->active()) process_ = nullptr;
}

void OutageStream::refill_stochastic() {
  if (pending_.has_value()) return;
  switch (process_->kind) {
    case ProcessKind::kNone:
      return;
    case ProcessKind::kDown:
      // One outage covering the rest of time: the unit never comes back.
      pending_ = Outage{clock_, kInfiniteTime};
      return;
    case ProcessKind::kExponential:
      clock_ += draw_exponential(rng_, process_->mtbf);
      break;
    case ProcessKind::kWeibull:
      clock_ += draw_weibull(rng_, process_->shape, process_->mtbf);
      break;
  }
  const Seconds repair =
      process_->mttr > 0.0 ? draw_exponential(rng_, process_->mttr) : 0.0;
  pending_ = Outage{clock_, repair};
  clock_ += repair;
}

std::optional<Outage> OutageStream::next(Seconds t) {
  if (process_ == nullptr) return std::nullopt;
  for (;;) {
    // Candidate trace window (cluster-wide) vs candidate stochastic window
    // (unit-private): deliver whichever starts first at-or-after t.
    refill_stochastic();
    const Outage* trace = trace_pos_ < process_->outages.size()
                              ? &process_->outages[trace_pos_]
                              : nullptr;
    const bool take_trace =
        trace != nullptr &&
        (!pending_.has_value() || trace->start <= pending_->start);
    if (take_trace) {
      Outage o = *trace;
      ++trace_pos_;
      if (o.start >= t) return o;
      continue;  // window opened while the unit was already down; skip it
    }
    if (!pending_.has_value()) return std::nullopt;
    Outage o = *pending_;
    pending_.reset();
    // A permanent outage covers all of time; clamp instead of skipping so a
    // query after its start still learns the unit is gone.
    if (o.duration >= kInfiniteTime) return Outage{std::max(o.start, t), kInfiniteTime};
    if (o.start >= t) return o;
  }
}

AvailabilityTracker::AvailabilityTracker(const FailureModel& model,
                                         ClusterId cluster, int unit)
    : stream_(model, cluster, unit) {}

double AvailabilityTracker::down_fraction(Seconds t0, Seconds t1) {
  if (t1 <= t0) return 0.0;
  if (permanently_down_) return 1.0;
  Seconds down = 0.0;
  // Portion of an earlier outage that spills into this window.
  if (down_until_ > t0) down += std::min(down_until_, t1) - t0;
  Seconds cursor = std::max(t0, down_until_);
  for (;;) {
    if (!pending_.has_value()) pending_ = stream_.next(cursor);
    if (!pending_.has_value()) break;
    if (pending_->start >= t1) break;  // starts after this window; keep it
    const Outage o = *pending_;
    pending_.reset();
    if (o.duration >= kInfiniteTime) {
      permanently_down_ = true;
      down += t1 - std::max(o.start, t0);
      break;
    }
    const Seconds end = o.start + o.duration;
    down += std::min(end, t1) - std::max(o.start, t0);
    down_until_ = std::max(down_until_, end);
    cursor = std::max(cursor, end);
  }
  return std::min(1.0, down / (t1 - t0));
}

}  // namespace oagrid::fault
