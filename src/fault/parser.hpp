#pragma once
/// \file parser.hpp
/// \brief Text description format for failure models, mirroring the network
/// file format so recorded grid availability traces can be replayed.
///
/// Format (line-oriented, '#' starts a comment):
///
///   failures 3                  # cluster count, must come first
///   seed 42                     # stochastic stream seed (optional)
///   mtbf 0 86400 3600           # cluster, MTBF [s], MTTR [s]: exponential
///   weibull 1 0.7 86400 3600    # cluster, shape, MTBF [s], MTTR [s]
///   outage 2 7200 1800          # cluster, start [s], duration [s]: explicit
///   down 1                      # cluster permanently unavailable
///
/// Directives after the `failures` header may appear in any order; `mtbf`,
/// `weibull` and `down` override each other per cluster (last wins), while
/// `outage` lines accumulate.

#include <iosfwd>
#include <string>

#include "fault/failure.hpp"

namespace oagrid::fault {

/// Parses a failure description. Throws oagrid::ParseError (a
/// std::invalid_argument) with a "<source>:<line>: message" diagnostic on any
/// malformed input; pass the file path as `source` for clickable errors.
[[nodiscard]] FailureModel parse_failures(
    std::istream& in, const std::string& source = "failures");

/// Convenience overload over an in-memory string.
[[nodiscard]] FailureModel parse_failures_string(
    const std::string& text, const std::string& source = "failures");

/// Serializes a model back to the same format (round-trips exactly with
/// parse_failures): seed line, one process line per failing cluster, one
/// `outage` line per explicit window.
void write_failures(std::ostream& out, const FailureModel& model);

}  // namespace oagrid::fault
