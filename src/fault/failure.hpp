#pragma once
/// \file failure.hpp
/// \brief Grid availability model: per-cluster node up/down processes.
///
/// The paper's Grid'5000 campaigns lost whole clusters mid-run — §6 reports
/// reservations dying and scenarios rewinding to their last monthly restart.
/// This module makes that a first-class, seedable platform input (the way
/// SimGrid treats host availability traces): each cluster carries a failure
/// process — exponential or Weibull interarrival times plus a repair-time
/// distribution, explicit trace outages, or a permanent `down` marker for a
/// reservation that is simply gone — and the simulators consume it through
/// deterministic per-unit outage streams.
///
/// Determinism contract: every draw is a pure function of (model seed,
/// cluster id, unit index), so a failure-injected simulation is byte-stable
/// across runs and across thread counts, and an *inactive* model (no process
/// on any cluster) injects no events at all — results are then bit-identical
/// to a run without the model.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace oagrid::fault {

/// What a killed scenario does about the failure (docs/fault.md discusses
/// the trade-offs; the DES implements all three).
enum class RecoveryPolicy : std::uint8_t {
  kWaitForRepair,        ///< stay pinned to the failed node set until repair
  kRescheduleInCluster,  ///< re-enter the dispatch pool immediately
  kMigrateWithState,     ///< reschedule, paying a restart-staging stall
};

[[nodiscard]] const char* to_string(RecoveryPolicy policy) noexcept;

/// Parses "wait" | "reschedule" | "migrate"; throws on anything else.
[[nodiscard]] RecoveryPolicy recovery_policy_from(const std::string& name);

/// One unavailability window of a node set.
struct Outage {
  Seconds start = 0.0;
  Seconds duration = 0.0;
};

/// Interarrival law of a cluster's failure process.
enum class ProcessKind : std::uint8_t {
  kNone,         ///< never fails (the default — and the paper's §4 world)
  kExponential,  ///< memoryless, the classic MTBF model
  kWeibull,      ///< shape < 1 captures the infant-mortality burstiness
                 ///< observed on real grids
  kDown,         ///< permanently unavailable (a reservation that died)
};

/// Per-cluster failure description. Stochastic interarrival/repair draws and
/// explicit trace outages compose: trace outages model cluster-wide
/// reservation losses and hit every unit simultaneously, stochastic draws
/// are independent per unit (node-level faults).
struct FailureProcess {
  ProcessKind kind = ProcessKind::kNone;
  double mtbf = 0.0;   ///< mean time between failures [s] (exp / Weibull)
  double mttr = 0.0;   ///< mean time to repair [s] (exponential repairs)
  double shape = 1.0;  ///< Weibull shape k (scale derived from the MTBF)
  std::vector<Outage> outages;  ///< explicit windows, sorted by start

  [[nodiscard]] bool active() const noexcept {
    return kind != ProcessKind::kNone || !outages.empty();
  }

  /// Steady-state fraction of time up (1 for kNone, 0 for kDown; explicit
  /// trace outages are transient and excluded).
  [[nodiscard]] double availability() const noexcept;
};

/// The grid's availability description: one FailureProcess per cluster plus
/// the seed every stochastic stream derives from. A default-constructed
/// model (0 clusters) — or one where no cluster has a process — is inactive
/// and changes nothing anywhere.
class FailureModel {
 public:
  FailureModel() = default;
  explicit FailureModel(int clusters);

  [[nodiscard]] int cluster_count() const noexcept {
    return static_cast<int>(processes_.size());
  }

  void set_exponential(ClusterId cluster, double mtbf, double mttr);
  void set_weibull(ClusterId cluster, double shape, double mtbf, double mttr);
  void set_down(ClusterId cluster);
  /// Adds an explicit cluster-wide outage window (kept sorted by start).
  void add_outage(ClusterId cluster, Seconds start, Seconds duration);

  void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  [[nodiscard]] const FailureProcess& process(ClusterId cluster) const;

  /// True when any cluster can ever fail.
  [[nodiscard]] bool active() const noexcept;
  [[nodiscard]] bool cluster_active(ClusterId cluster) const;

  /// 64-bit content signature (FNV-1a over every parameter, outage window
  /// and the seed) — the eval-cache key component that keeps failure-run
  /// makespans from aliasing clean ones.
  [[nodiscard]] std::uint64_t signature() const noexcept;

  /// Every cluster fails exponentially with the same MTBF/MTTR.
  [[nodiscard]] static FailureModel uniform_exponential(int clusters,
                                                        double mtbf,
                                                        double mttr,
                                                        std::uint64_t seed = 1);

 private:
  std::vector<FailureProcess> processes_;
  std::uint64_t seed_ = 1;
};

/// Deterministic sequence of outages for one unit (node set / group) of one
/// cluster: the merge of the cluster's explicit trace windows (shared by all
/// units) and the unit's private stochastic renewal process, seeded from
/// (model seed, cluster, unit). `next(t)` returns the first outage starting
/// at or after `t`; windows that would start in the past (the unit was
/// already down) are skipped.
class OutageStream {
 public:
  OutageStream() = default;  ///< inactive: next() always returns nullopt
  OutageStream(const FailureModel& model, ClusterId cluster, int unit);

  [[nodiscard]] std::optional<Outage> next(Seconds t);

 private:
  void refill_stochastic();

  const FailureProcess* process_ = nullptr;
  Rng rng_;
  std::optional<Outage> pending_;  ///< drawn but unconsumed stochastic window
  Seconds clock_ = 0.0;            ///< stochastic renewal position
  std::size_t trace_pos_ = 0;
};

/// Fluid view over an OutageStream: the fraction of a time window a unit
/// spends down. Used by the fluid grid to scale epoch throughput by
/// availability. Windows must be queried in non-decreasing order.
class AvailabilityTracker {
 public:
  AvailabilityTracker() = default;
  AvailabilityTracker(const FailureModel& model, ClusterId cluster, int unit);

  /// Down-time fraction within [t0, t1). Returns 0 for an inactive stream.
  [[nodiscard]] double down_fraction(Seconds t0, Seconds t1);

 private:
  OutageStream stream_;
  Seconds down_until_ = 0.0;
  std::optional<Outage> pending_;
  bool permanently_down_ = false;
};

/// What the failure machinery cost one simulation run — the lost-work
/// accountant surfaced in SimResult/GridSimResult and the fault.* metrics.
struct FaultStats {
  Count outages = 0;           ///< node-down events that hit the run
  Count kills = 0;             ///< in-flight months killed by outages
  Count rewound_months = 0;    ///< completed months rolled back to checkpoint
  Seconds downtime_seconds = 0.0;  ///< summed unavailability windows
  Seconds lost_seconds = 0.0;  ///< compute thrown away (in-flight + rewound)

  void merge(const FaultStats& other) noexcept {
    outages += other.outages;
    kills += other.kills;
    rewound_months += other.rewound_months;
    downtime_seconds += other.downtime_seconds;
    lost_seconds += other.lost_seconds;
  }
};

}  // namespace oagrid::fault
