#pragma once
/// \file checkpoint.hpp
/// \brief Checkpoint-cadence math and expected-makespan-under-failures
/// estimates.
///
/// The application's natural checkpoint is the monthly restart file (§3 of
/// the paper), so recovery granularity is k months for some k >= 1. This
/// module answers two questions analytically: how often to checkpoint
/// (Young/Daly first-order optimum) and how much a cluster's makespan
/// inflates once its failure process is accounted for — the quantity
/// Algorithm 1 and the campaign service need to stop placing work on
/// unreliable or dead clusters.

#include <span>

#include "fault/failure.hpp"
#include "sched/repartition.hpp"

namespace oagrid::fault {

/// Practically-infinite completion time for work placed on a permanently
/// down cluster. Deliberately finite (unlike kInfiniteTime) so Algorithm 1's
/// strict `<` comparisons still order candidates instead of seeing ties at
/// infinity everywhere.
inline constexpr Seconds kUnavailableTime = 1e30;

/// Young's first-order optimal checkpoint interval W = sqrt(2 * C * MTBF)
/// for checkpoint cost C. Returns kUnavailableTime when mtbf <= 0.
[[nodiscard]] Seconds young_daly_interval(Seconds mtbf, Seconds checkpoint_cost);

/// Rounds the Young/Daly interval to a whole number of months of the given
/// duration, clamped to [1, max_months]. The k to pass as checkpoint cadence
/// when the user asks for the automatic setting.
[[nodiscard]] MonthIndex optimal_checkpoint_months(Seconds month_seconds,
                                                   Seconds checkpoint_cost,
                                                   Seconds mtbf,
                                                   MonthIndex max_months);

/// First-order expected completion time of work that takes `clean` seconds
/// failure-free on a cluster with the given process, checkpointing every
/// `checkpoint_period` seconds: clean * (1 + (MTTR + period/2) / MTBF) —
/// each failure costs one repair plus half a period of redone work, and
/// clean/MTBF failures are expected. A kNone process returns `clean`
/// unchanged (exact, not approximately); kDown returns kUnavailableTime.
[[nodiscard]] Seconds expected_makespan(Seconds clean,
                                        const FailureProcess& process,
                                        Seconds checkpoint_period);

/// Failure-aware placement charge for Algorithm 1: charges cluster c with
/// the *extra* expected time failures add on top of performance[c][k-1].
/// The checkpoint period for k scenarios over `months` months is
/// checkpoint_months / (k * months) of the clean makespan — scenarios run
/// concurrently, so each group's wall time between restarts shrinks as the
/// cluster's share grows. An inactive model charges exactly 0.0, keeping
/// greedy_repartition_charged bit-identical to the uncharged algorithm.
/// The performance span must stay alive while the charge is used.
[[nodiscard]] sched::PlacementCharge make_failure_charge(
    const FailureModel& model,
    std::span<const sched::PerformanceVector> performance, Count months,
    MonthIndex checkpoint_months);

}  // namespace oagrid::fault
