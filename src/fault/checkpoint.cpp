#include "fault/checkpoint.hpp"

#include <algorithm>
#include <cmath>

namespace oagrid::fault {

Seconds young_daly_interval(Seconds mtbf, Seconds checkpoint_cost) {
  if (mtbf <= 0.0) return kUnavailableTime;
  return std::sqrt(2.0 * std::max(0.0, checkpoint_cost) * mtbf);
}

MonthIndex optimal_checkpoint_months(Seconds month_seconds,
                                     Seconds checkpoint_cost, Seconds mtbf,
                                     MonthIndex max_months) {
  OAGRID_REQUIRE(month_seconds > 0.0, "month duration must be positive");
  OAGRID_REQUIRE(max_months >= 1, "max checkpoint cadence must be >= 1");
  const Seconds interval = young_daly_interval(mtbf, checkpoint_cost);
  const auto months = static_cast<MonthIndex>(std::llround(interval / month_seconds));
  return std::clamp(months, MonthIndex{1}, max_months);
}

Seconds expected_makespan(Seconds clean, const FailureProcess& process,
                          Seconds checkpoint_period) {
  switch (process.kind) {
    case ProcessKind::kNone:
      return clean;
    case ProcessKind::kDown:
      return kUnavailableTime;
    case ProcessKind::kExponential:
    case ProcessKind::kWeibull:
      break;
  }
  if (process.mtbf <= 0.0) return kUnavailableTime;
  const Seconds lost_per_failure =
      process.mttr + 0.5 * std::max(0.0, checkpoint_period);
  return clean * (1.0 + lost_per_failure / process.mtbf);
}

sched::PlacementCharge make_failure_charge(
    const FailureModel& model,
    std::span<const sched::PerformanceVector> performance, Count months,
    MonthIndex checkpoint_months) {
  if (!model.active()) return nullptr;  // null charge is the bit-identical path
  OAGRID_REQUIRE(months > 0, "failure charge needs months > 0");
  OAGRID_REQUIRE(checkpoint_months >= 1, "checkpoint cadence must be >= 1");
  return [&model, performance, months,
          checkpoint_months](std::size_t cluster, Count k) -> Seconds {
    const auto c = static_cast<ClusterId>(cluster);
    if (!model.cluster_active(c)) return 0.0;
    const auto& perf = performance[cluster];
    const Seconds clean = perf[static_cast<std::size_t>(k) - 1];
    // Wall time between restart files: with k scenarios pipelined across the
    // cluster's groups, each of the k*months months occupies clean/(k*months)
    // of the makespan on average; a checkpoint every `checkpoint_months`
    // months spans checkpoint_months times that.
    const Seconds period = clean * static_cast<double>(checkpoint_months) /
                           (static_cast<double>(k) * static_cast<double>(months));
    const Seconds expected =
        expected_makespan(clean, model.process(c), period);
    return expected >= kUnavailableTime ? kUnavailableTime : expected - clean;
  };
}

}  // namespace oagrid::fault
