#pragma once
/// \file volumes.hpp
/// \brief Campaign data-volume accounting — the §2 storage and transfer
/// story ("Data exchanges between two consecutive monthly simulations ...
/// reaches 120 MB"; compress_diags exists "to facilitate storage and
/// transfers").
///
/// The paper quantifies only the restart volume; diagnostic sizes are
/// parameters with defaults matching the toy pipeline's measured 7-8x
/// compression (bench_pipeline_volumes) scaled to the era's grids.

#include "appmodel/ensemble.hpp"

namespace oagrid::appmodel {

struct VolumeParams {
  double restart_mb = kInterMonthDataMb;  ///< per month (paper: 120 MB)
  double raw_diag_mb = 40.0;              ///< cof output per month
  double compression_ratio = 7.5;         ///< cd's reduction factor
};

struct CampaignVolumes {
  double restart_transfer_mb = 0.0;  ///< inter-month restart traffic
  double raw_diag_mb = 0.0;          ///< diagnostics before compression
  double compressed_diag_mb = 0.0;   ///< what actually gets stored/shipped
  double archived_mb = 0.0;          ///< end state: compressed + final restarts

  /// Bytes saved by running compress_diags at all.
  [[nodiscard]] double compression_savings_mb() const noexcept {
    return raw_diag_mb - compressed_diag_mb;
  }
};

/// Totals for a whole campaign. Restart traffic counts NM-1 hand-offs per
/// scenario (the last month's restart is archived, not transferred onward).
[[nodiscard]] CampaignVolumes campaign_volumes(const Ensemble& ensemble,
                                               const VolumeParams& params = {});

}  // namespace oagrid::appmodel
