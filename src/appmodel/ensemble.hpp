#pragma once
/// \file ensemble.hpp
/// \brief The experiment workload: NS independent scenarios of NM months.

#include <vector>

#include "appmodel/month.hpp"
#include "common/types.hpp"

namespace oagrid::appmodel {

/// Workload descriptor for one experiment ("several 1D-meshes of identical
/// DAGs"). Scenarios are independent; months within a scenario are strictly
/// ordered by restart dependencies.
struct Ensemble {
  Count scenarios = 10;  ///< NS — the paper says "around 10"
  Count months = 1800;   ///< NM — 150 years x 12 months

  /// nbtasks = NS x NM, the paper's per-kind task count.
  [[nodiscard]] Count total_tasks() const noexcept { return scenarios * months; }

  /// The paper's full experiment: 10 scenarios of 150 years.
  [[nodiscard]] static Ensemble paper_full() noexcept { return {10, 1800}; }

  /// A scaled-down variant used by fast sweeps (same NS, fewer months). The
  /// grouping decisions depend on NS and R only, so shrinking NM preserves
  /// every decision while shrinking simulated horizons.
  [[nodiscard]] static Ensemble paper_scaled(Count months_) noexcept {
    return {10, months_};
  }

  /// Throws if the workload is degenerate.
  void validate() const {
    OAGRID_REQUIRE(scenarios >= 1, "need at least one scenario");
    OAGRID_REQUIRE(months >= 1, "need at least one month per scenario");
  }
};

/// Materializes every scenario chain of the ensemble in fused form. Mostly
/// useful for DAG-level analyses and the examples; the schedulers work from
/// the (NS, NM) counts directly.
[[nodiscard]] std::vector<dag::ChainedDag> build_fused_chains(const Ensemble& ensemble);

}  // namespace oagrid::appmodel
