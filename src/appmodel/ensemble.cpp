#include "appmodel/ensemble.hpp"

namespace oagrid::appmodel {

std::vector<dag::ChainedDag> build_fused_chains(const Ensemble& ensemble) {
  ensemble.validate();
  std::vector<dag::ChainedDag> chains;
  chains.reserve(static_cast<std::size_t>(ensemble.scenarios));
  for (Count s = 0; s < ensemble.scenarios; ++s)
    chains.push_back(make_fused_scenario(static_cast<int>(ensemble.months)));
  return chains;
}

}  // namespace oagrid::appmodel
