#include "appmodel/month.hpp"

#include <cmath>
#include <stdexcept>

namespace oagrid::appmodel {
namespace {

dag::TaskSpec rigid(TaskKind kind) {
  dag::TaskSpec spec;
  spec.name = std::string(short_name(kind));
  spec.shape = dag::TaskShape::kRigid;
  spec.ref_duration = reference_duration(kind);
  spec.procs = 1;
  return spec;
}

dag::TaskSpec moldable(TaskKind kind) {
  dag::TaskSpec spec;
  spec.name = std::string(short_name(kind));
  spec.shape = dag::TaskShape::kMoldable;
  spec.ref_duration = reference_duration(kind);
  spec.min_procs = kMinGroupSize;
  spec.max_procs = kMaxGroupSize;
  return spec;
}

}  // namespace

MonthDag make_month_dag() {
  MonthDag month;
  month.caif = month.graph.add_task(rigid(TaskKind::kConcatenateAtmosphericInputFiles));
  month.mp = month.graph.add_task(rigid(TaskKind::kModifyParameters));
  month.pcr = month.graph.add_task(moldable(TaskKind::kProcessCoupledRun));
  month.cof = month.graph.add_task(rigid(TaskKind::kConvertOutputFormat));
  month.emi = month.graph.add_task(rigid(TaskKind::kExtractMinimumInformation));
  month.cd = month.graph.add_task(rigid(TaskKind::kCompressDiags));
  month.graph.add_edge(month.caif, month.pcr);
  month.graph.add_edge(month.mp, month.pcr);
  month.graph.add_edge(month.pcr, month.cof);
  month.graph.add_edge(month.cof, month.emi);
  month.graph.add_edge(month.emi, month.cd);
  month.graph.freeze();
  return month;
}

FusedMonth make_fused_month() {
  FusedMonth month;
  month.main = month.graph.add_task(moldable(TaskKind::kFusedMain));
  month.post = month.graph.add_task(rigid(TaskKind::kFusedPost));
  month.graph.add_edge(month.main, month.post);
  month.graph.freeze();
  return month;
}

dag::ChainedDag make_detailed_scenario(int months) {
  const MonthDag month = make_month_dag();
  // The restart state produced by pcr feeds both pre-processing tasks of the
  // next month; the 120 MB volume is attached to the caif edge (a single
  // physical transfer in the real application).
  const std::vector<dag::CrossLink> links{
      {month.pcr, month.caif, kInterMonthDataMb},
      {month.pcr, month.mp, 0.0},
  };
  return dag::chain_of(month.graph, months, links);
}

dag::ChainedDag make_fused_scenario(int months) {
  const FusedMonth month = make_fused_month();
  const std::vector<dag::CrossLink> links{
      {month.main, month.main, kInterMonthDataMb},
  };
  return dag::chain_of(month.graph, months, links);
}

Seconds fused_model_critical_path_check(int months) {
  // Constituent sums must match the fused reference durations exactly.
  const Seconds main_sum =
      reference_duration(TaskKind::kConcatenateAtmosphericInputFiles) +
      reference_duration(TaskKind::kModifyParameters) +
      reference_duration(TaskKind::kProcessCoupledRun);
  const Seconds post_sum = reference_duration(TaskKind::kConvertOutputFormat) +
                           reference_duration(TaskKind::kExtractMinimumInformation) +
                           reference_duration(TaskKind::kCompressDiags);
  if (main_sum != reference_duration(TaskKind::kFusedMain) ||
      post_sum != reference_duration(TaskKind::kFusedPost))
    throw std::logic_error("oagrid: fused reference durations inconsistent");

  // caif/mp run in parallel in the detailed DAG but are summed by the fusion,
  // so the detailed critical path is 1 s shorter per month; compare with that
  // correction (it is the approximation the paper accepts in §4.1).
  const Seconds detailed = make_detailed_scenario(months).graph.critical_path_ref();
  const Seconds fused = make_fused_scenario(months).graph.critical_path_ref();
  const Seconds correction =
      reference_duration(TaskKind::kModifyParameters) * months;
  if (std::abs(fused - (detailed + correction)) > 1e-9)
    throw std::logic_error("oagrid: fusion changed the critical path");
  return fused;
}

}  // namespace oagrid::appmodel
