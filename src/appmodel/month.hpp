#pragma once
/// \file month.hpp
/// \brief Builders for the monthly-simulation DAG, in both the detailed
/// (Figure 1) and fused (Figure 2) forms, and for whole scenario chains.

#include "appmodel/tasks.hpp"
#include "dag/chain.hpp"
#include "dag/dag.hpp"

namespace oagrid::appmodel {

/// The six-task monthly DAG of Figure 1 (one month):
///
///   {caif, mp} --> pcr --> cof --> emi --> cd
///
/// pcr is moldable on [kMinGroupSize, kMaxGroupSize]; the five others are
/// single-processor rigid tasks.
struct MonthDag {
  dag::Dag graph;
  dag::NodeId caif = dag::kInvalidNode;
  dag::NodeId mp = dag::kInvalidNode;
  dag::NodeId pcr = dag::kInvalidNode;
  dag::NodeId cof = dag::kInvalidNode;
  dag::NodeId emi = dag::kInvalidNode;
  dag::NodeId cd = dag::kInvalidNode;
};
[[nodiscard]] MonthDag make_month_dag();

/// The fused two-task month of Figure 2: main --> post.
struct FusedMonth {
  dag::Dag graph;
  dag::NodeId main = dag::kInvalidNode;
  dag::NodeId post = dag::kInvalidNode;
};
[[nodiscard]] FusedMonth make_fused_month();

/// Chains `months` detailed month DAGs: pcr of month m feeds caif and mp of
/// month m+1 with the 120 MB restart volume (Figure 1's inter-month edges).
[[nodiscard]] dag::ChainedDag make_detailed_scenario(int months);

/// Chains `months` fused months: main_m -> main_{m+1} at 120 MB (Figure 2).
[[nodiscard]] dag::ChainedDag make_fused_scenario(int months);

/// Verifies the fusion is sound on the reference platform: the fused main /
/// post reference durations equal the sums of their constituents, and the
/// detailed and fused scenario chains have equal critical paths. Returns the
/// common critical path (used by tests and the Figure 1 bench).
[[nodiscard]] Seconds fused_model_critical_path_check(int months);

}  // namespace oagrid::appmodel
