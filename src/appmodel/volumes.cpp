#include "appmodel/volumes.hpp"

namespace oagrid::appmodel {

CampaignVolumes campaign_volumes(const Ensemble& ensemble,
                                 const VolumeParams& params) {
  ensemble.validate();
  OAGRID_REQUIRE(params.restart_mb >= 0.0 && params.raw_diag_mb >= 0.0,
                 "volumes must be >= 0");
  OAGRID_REQUIRE(params.compression_ratio >= 1.0,
                 "compression cannot inflate");
  const auto scenarios = static_cast<double>(ensemble.scenarios);
  const auto months = static_cast<double>(ensemble.months);

  CampaignVolumes volumes;
  volumes.restart_transfer_mb = scenarios * (months - 1.0) * params.restart_mb;
  volumes.raw_diag_mb = scenarios * months * params.raw_diag_mb;
  volumes.compressed_diag_mb = volumes.raw_diag_mb / params.compression_ratio;
  volumes.archived_mb = volumes.compressed_diag_mb + scenarios * params.restart_mb;
  return volumes;
}

}  // namespace oagrid::appmodel
