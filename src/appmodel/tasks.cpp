#include "appmodel/tasks.hpp"

namespace oagrid::appmodel {

std::string_view short_name(TaskKind kind) noexcept {
  switch (kind) {
    case TaskKind::kConcatenateAtmosphericInputFiles: return "caif";
    case TaskKind::kModifyParameters: return "mp";
    case TaskKind::kProcessCoupledRun: return "pcr";
    case TaskKind::kConvertOutputFormat: return "cof";
    case TaskKind::kExtractMinimumInformation: return "emi";
    case TaskKind::kCompressDiags: return "cd";
    case TaskKind::kFusedMain: return "main";
    case TaskKind::kFusedPost: return "post";
  }
  return "?";
}

std::string_view long_name(TaskKind kind) noexcept {
  switch (kind) {
    case TaskKind::kConcatenateAtmosphericInputFiles:
      return "concatenate_atmospheric_input_files";
    case TaskKind::kModifyParameters: return "modify_parameters";
    case TaskKind::kProcessCoupledRun: return "process_coupled_run";
    case TaskKind::kConvertOutputFormat: return "convert_output_format";
    case TaskKind::kExtractMinimumInformation:
      return "extract_minimum_information";
    case TaskKind::kCompressDiags: return "compress_diags";
    case TaskKind::kFusedMain: return "fused_main_processing";
    case TaskKind::kFusedPost: return "fused_post_processing";
  }
  return "?";
}

Seconds reference_duration(TaskKind kind) noexcept {
  switch (kind) {
    case TaskKind::kConcatenateAtmosphericInputFiles: return 1.0;
    case TaskKind::kModifyParameters: return 1.0;
    case TaskKind::kProcessCoupledRun: return 1260.0;
    case TaskKind::kConvertOutputFormat: return 60.0;
    case TaskKind::kExtractMinimumInformation: return 60.0;
    case TaskKind::kCompressDiags: return 60.0;
    case TaskKind::kFusedMain: return 1262.0;  // caif + mp + pcr
    case TaskKind::kFusedPost: return 180.0;   // cof + emi + cd
  }
  return 0.0;
}

bool is_moldable(TaskKind kind) noexcept {
  return kind == TaskKind::kProcessCoupledRun || kind == TaskKind::kFusedMain;
}

}  // namespace oagrid::appmodel
