#pragma once
/// \file tasks.hpp
/// \brief The seven concrete task kinds of the Ocean-Atmosphere application
/// with the paper's benchmarked durations (Figure 1).

#include <string_view>

#include "common/types.hpp"

namespace oagrid::appmodel {

/// Task kinds of one monthly simulation, plus the two fused kinds of the
/// simplified model (paper §4.1 / Figure 2).
enum class TaskKind {
  // pre-processing
  kConcatenateAtmosphericInputFiles,  ///< caif, 1 s
  kModifyParameters,                  ///< mp, 1 s
  // main-processing
  kProcessCoupledRun,                 ///< pcr, ~1260 s, moldable on [4, 11]
  // post-processing
  kConvertOutputFormat,               ///< cof, 60 s
  kExtractMinimumInformation,         ///< emi, 60 s
  kCompressDiags,                     ///< cd, 60 s
  // fused model
  kFusedMain,                         ///< caif + mp + pcr
  kFusedPost,                         ///< cof + emi + cd
};

/// Short name used in the paper's figures ("caif", "mp", "pcr", ...).
[[nodiscard]] std::string_view short_name(TaskKind kind) noexcept;

/// Full underscore name from §2 ("process_coupled_run", ...).
[[nodiscard]] std::string_view long_name(TaskKind kind) noexcept;

/// Benchmarked duration on the reference platform (Figure 1). For the
/// moldable kinds (pcr, fused main) this is the duration at the paper's
/// quoted operating point (~1260 s); platform tables refine it per group
/// size.
[[nodiscard]] Seconds reference_duration(TaskKind kind) noexcept;

/// True for the kinds whose processor allotment is chosen by the scheduler.
[[nodiscard]] bool is_moldable(TaskKind kind) noexcept;

/// Restart-state volume exchanged between two consecutive months of the same
/// scenario (paper §2: "Data exchanges ... reaches 120 MB").
inline constexpr double kInterMonthDataMb = 120.0;

}  // namespace oagrid::appmodel
