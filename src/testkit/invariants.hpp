#pragma once
/// \file invariants.hpp
/// \brief The registry of cross-subsystem properties the harness checks on
/// every generated case.
///
/// Each invariant is a differential oracle: two independent ways of
/// computing the same answer (closed form vs DES, cached vs direct, one
/// thread vs many, recovered vs uninterrupted, ...) that must agree — in
/// most cases bit for bit, because every layer of the repo promises
/// determinism. An invariant returns std::nullopt on success or a
/// human-readable violation message; throwing is also treated as a failure
/// by the runner (an oracle that crashes found a bug too).
///
/// Invariants must be *total* over the clamped spec space: any generated
/// case either checks the property or passes vacuously (e.g. the crash
/// explorer on a case with no service schedule). Vacuous passes are fine —
/// across an iteration budget the generator covers every regime.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "testkit/gen.hpp"

namespace oagrid::testkit {

struct Invariant {
  std::string name;     ///< stable CLI handle (--invariant=<name>)
  std::string summary;  ///< one line for --list
  std::function<std::optional<std::string>(const Case&)> check;
};

/// Every registered invariant, in a stable order.
[[nodiscard]] const std::vector<Invariant>& all_invariants();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const Invariant* find_invariant(const std::string& name);

}  // namespace oagrid::testkit
