#include "testkit/gen.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "platform/profiles.hpp"

namespace oagrid::testkit {
namespace {

/// Random cluster with a *divisible* table (every T[G] an exact multiple of
/// TP) so the closed-form makespan model is exact on it — the same shape the
/// sim randomized-property tests use.
platform::Cluster divisible_cluster(int index, Rng& rng) {
  const Seconds tp = rng.uniform(5.0, 50.0);
  std::vector<Seconds> tg;
  Count multiple = rng.uniform_int(20, 60);
  for (int i = 0; i < kNumGroupSizes; ++i) {
    tg.push_back(tp * static_cast<double>(multiple));
    multiple -= rng.uniform_int(0, 4);  // non-increasing, random plateaus
    multiple = std::max<Count>(multiple, 2);
  }
  const auto r = static_cast<ProcCount>(rng.uniform_int(11, 60));
  return platform::Cluster("div" + std::to_string(index), r, kMinGroupSize,
                           std::move(tg), tp);
}

platform::Grid make_grid(const CaseSpec& spec, Rng& rng) {
  if (!spec.divisible_tables)
    return platform::make_random_grid(spec.clusters, 11, 60, rng);
  std::vector<platform::Cluster> clusters;
  clusters.reserve(static_cast<std::size_t>(spec.clusters));
  for (int c = 0; c < spec.clusters; ++c)
    clusters.push_back(divisible_cluster(c, rng));
  return platform::Grid(std::move(clusters));
}

net::LinkSpec random_link(Rng& rng) {
  net::LinkSpec spec;
  spec.bandwidth_mbps =
      rng.uniform() < 0.15 ? net::kInfiniteBandwidth : rng.uniform(20.0, 800.0);
  spec.latency = rng.uniform() < 0.25 ? 0.0 : rng.uniform(0.0005, 0.05);
  return spec;
}

net::NetworkModel make_network(const CaseSpec& spec, Rng& rng) {
  const int n = spec.clusters;
  switch (spec.net_kind) {
    case 1:
      return net::free_network(n);
    case 2:
      return net::uniform_network(
          n, net::LinkSpec{rng.uniform(50.0, 500.0), rng.uniform(0.0, 0.02)},
          net::LinkSpec{rng.uniform(500.0, 2000.0), rng.uniform(0.0, 0.001)});
    case 3:
      return net::renater_network(n);
    case 4: {
      net::NetworkModel model(n);
      model.set_default_inter(random_link(rng));
      model.set_default_intra(random_link(rng));
      for (ClusterId a = 0; a < n; ++a) {
        for (ClusterId b = a + 1; b < n; ++b)
          if (rng.uniform() < 0.4) model.set_link(a, b, random_link(rng));
        if (rng.uniform() < 0.3) model.set_intra(a, random_link(rng));
      }
      return model;
    }
    default:
      return net::NetworkModel{};  // no network attached
  }
}

/// One stochastic-or-trace process on cluster `c`. Timescales are anchored
/// to the cluster's own main-task duration so failures actually land inside
/// the simulated horizon for every generated platform.
void add_process(fault::FailureModel& model, const platform::Grid& grid,
                 ClusterId c, int kind, Rng& rng) {
  const Seconds tg = grid.cluster(c).main_time(kMinGroupSize);
  switch (kind) {
    case 1:
      model.set_exponential(c, tg * rng.uniform(1.0, 20.0),
                            tg * rng.uniform(0.05, 1.0));
      break;
    case 2:
      model.set_weibull(c, rng.uniform(0.5, 1.5), tg * rng.uniform(1.0, 20.0),
                        tg * rng.uniform(0.05, 1.0));
      break;
    default: {
      const int windows = static_cast<int>(rng.uniform_int(1, 4));
      for (int w = 0; w < windows; ++w)
        model.add_outage(c, tg * rng.uniform(0.0, 30.0),
                         tg * rng.uniform(0.1, 3.0));
      break;
    }
  }
}

fault::FailureModel make_failures(const CaseSpec& spec,
                                  const platform::Grid& grid, Rng& rng) {
  if (spec.fault_kind == 0) return fault::FailureModel{};
  fault::FailureModel model(spec.clusters);
  model.set_seed(rng() | 1);
  int down_budget = spec.clusters - 1;  // never kill the whole grid
  for (ClusterId c = 0; c < spec.clusters; ++c) {
    if (spec.fault_kind == 4) {
      const int roll = static_cast<int>(rng.uniform_int(0, 4));
      if (roll == 0 && down_budget > 0) {
        model.set_down(c);
        --down_budget;
      } else if (roll <= 3) {
        add_process(model, grid, c, 1 + roll % 3, rng);
      }  // roll == 4 with no budget: cluster stays clean
    } else if (rng.uniform() < 0.8) {
      add_process(model, grid, c, spec.fault_kind, rng);
    }
  }
  return model;
}

std::vector<ServiceEntry> make_schedule(const CaseSpec& spec, Rng& rng) {
  static const char* const kOwners[] = {"alice", "bob", "carol", "dave"};
  std::vector<ServiceEntry> schedule;
  Seconds at = 0.0;
  for (int i = 0; i < spec.campaigns; ++i) {
    ServiceEntry entry;
    entry.spec.owner = kOwners[rng.uniform_int(0, 3)];
    entry.spec.weight = rng.uniform(0.5, 3.0);
    entry.spec.scenarios = rng.uniform_int(1, 4);
    entry.spec.months = rng.uniform_int(1, 6);
    at += rng.uniform() < 0.4 ? 0.0 : rng.uniform(0.0, 5000.0);
    entry.at = at;
    schedule.push_back(std::move(entry));
  }
  return schedule;
}

}  // namespace

Case materialize(const CaseSpec& raw) {
  CaseSpec spec = raw;
  spec.clamp();

  // One child stream per subsystem: shrinking the network knob must not
  // reshuffle the platform or the failure draws.
  Rng root(spec.seed);
  Rng grid_rng = root.split();
  Rng net_rng = root.split();
  Rng fault_rng = root.split();
  Rng service_rng = root.split();

  Case world;
  world.spec = spec;
  world.grid = make_grid(spec, grid_rng);
  world.ensemble = appmodel::Ensemble{spec.scenarios, spec.months};
  world.heuristic = static_cast<sched::Heuristic>(spec.heuristic);
  world.dispatch = static_cast<sim::DispatchRule>(spec.dispatch);

  world.network = make_network(spec, net_rng);
  if (world.network.cluster_count() > 0) {
    world.stage_mb = net_rng.uniform(0.0, 500.0);
    world.collect_mb = net_rng.uniform(0.0, 500.0);
  }

  world.failures = make_failures(spec, world.grid, fault_rng);
  world.recovery = static_cast<fault::RecoveryPolicy>(spec.recovery);
  world.checkpoint_months =
      std::min<MonthIndex>(spec.checkpoint_months,
                           static_cast<MonthIndex>(spec.months));
  world.checkpoint_months = std::max<MonthIndex>(world.checkpoint_months, 1);

  world.schedule = make_schedule(spec, service_rng);
  return world;
}

std::vector<net::TransferRequest> random_transfers(const CaseSpec& spec,
                                                   int clusters) {
  Rng rng(spec.seed ^ 0x7261776E73666572ull);  // distinct stream
  const long long count =
      rng.uniform_int(1, std::max<long long>(2, 4 * clusters));
  std::vector<net::TransferRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    net::TransferRequest request;
    request.src = static_cast<ClusterId>(rng.uniform_int(0, clusters - 1));
    request.dst = static_cast<ClusterId>(rng.uniform_int(0, clusters - 1));
    request.size_mb = rng.uniform(0.0, 2000.0);
    request.start = rng.uniform(0.0, 1000.0);
    requests.push_back(request);
  }
  return requests;
}

}  // namespace oagrid::testkit
