#include "testkit/spec.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "common/parse_error.hpp"
#include "common/rng.hpp"

namespace oagrid::testkit {
namespace {

/// SplitMix64 finalizer — decorrelates (root_seed, index) into a seed for an
/// independent xoshiro stream without advancing a shared generator O(index)
/// times.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename T>
void clamp_field(T& value, T lo, T hi) noexcept {
  value = std::clamp(value, lo, hi);
}

std::uint64_t parse_u64(const std::string& key, const std::string& text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw_parse_error("spec", "bad value '" + text + "' for field '" + key +
                                  "' (want an unsigned integer)");
  return value;
}

long long parse_int(const std::string& key, const std::string& text) {
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    throw_parse_error("spec", "bad value '" + text + "' for field '" + key +
                                  "' (want an integer)");
  return value;
}

bool parse_bool(const std::string& key, const std::string& text) {
  if (text == "1" || text == "true") return true;
  if (text == "0" || text == "false") return false;
  throw_parse_error(
      "spec", "bad value '" + text + "' for field '" + key + "' (want 0 or 1)");
}

}  // namespace

void CaseSpec::clamp() noexcept {
  if (seed == 0) seed = 1;
  clamp_field(clusters, 1, 4);
  clamp_field(scenarios, Count{1}, Count{8});
  clamp_field(months, Count{1}, Count{12});
  clamp_field(net_kind, 0, 4);
  clamp_field(fault_kind, 0, 4);
  clamp_field(checkpoint_months, 1, 4);
  clamp_field(recovery, 0, 2);
  clamp_field(heuristic, 0, 3);
  clamp_field(dispatch, 0, 2);
  clamp_field(campaigns, 0, 4);
  clamp_field(kills, 0, 3);
  clamp_field(snapshot_every, Count{0}, Count{8});
}

std::string CaseSpec::encode() const {
  std::ostringstream out;
  out << "seed=" << seed << ",clusters=" << clusters
      << ",scenarios=" << scenarios << ",months=" << months
      << ",divisible=" << (divisible_tables ? 1 : 0) << ",net=" << net_kind
      << ",fault=" << fault_kind << ",checkpoint=" << checkpoint_months
      << ",recovery=" << recovery << ",heuristic=" << heuristic
      << ",dispatch=" << dispatch << ",campaigns=" << campaigns
      << ",kills=" << kills << ",group_commit=" << (group_commit ? 1 : 0)
      << ",snapshot=" << snapshot_every;
  return out.str();
}

CaseSpec CaseSpec::decode(const std::string& text) {
  CaseSpec spec;
  std::istringstream in(text);
  std::string field;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos)
      throw_parse_error("spec",
                        "expected 'key=value', got '" + field + "'");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "seed")
      spec.seed = parse_u64(key, value);
    else if (key == "clusters")
      spec.clusters = static_cast<int>(parse_int(key, value));
    else if (key == "scenarios")
      spec.scenarios = parse_int(key, value);
    else if (key == "months")
      spec.months = parse_int(key, value);
    else if (key == "divisible")
      spec.divisible_tables = parse_bool(key, value);
    else if (key == "net")
      spec.net_kind = static_cast<int>(parse_int(key, value));
    else if (key == "fault")
      spec.fault_kind = static_cast<int>(parse_int(key, value));
    else if (key == "checkpoint")
      spec.checkpoint_months = static_cast<int>(parse_int(key, value));
    else if (key == "recovery")
      spec.recovery = static_cast<int>(parse_int(key, value));
    else if (key == "heuristic")
      spec.heuristic = static_cast<int>(parse_int(key, value));
    else if (key == "dispatch")
      spec.dispatch = static_cast<int>(parse_int(key, value));
    else if (key == "campaigns")
      spec.campaigns = static_cast<int>(parse_int(key, value));
    else if (key == "kills")
      spec.kills = static_cast<int>(parse_int(key, value));
    else if (key == "group_commit")
      spec.group_commit = parse_bool(key, value);
    else if (key == "snapshot")
      spec.snapshot_every = parse_int(key, value);
    else
      throw_parse_error("spec", "unknown field '" + key + "'");
  }
  spec.clamp();
  return spec;
}

CaseSpec spec_for_case(std::uint64_t root_seed, std::uint64_t index) {
  Rng rng(mix64(root_seed ^ mix64(index)));
  CaseSpec spec;
  spec.seed = rng() | 1;  // keep 0 out of every downstream seed
  spec.clusters = static_cast<int>(rng.uniform_int(1, 4));
  spec.scenarios = rng.uniform_int(1, 8);
  spec.months = rng.uniform_int(1, 12);
  spec.divisible_tables = rng.uniform() < 0.35;
  spec.net_kind = static_cast<int>(rng.uniform_int(0, 4));
  spec.fault_kind = static_cast<int>(rng.uniform_int(0, 4));
  spec.checkpoint_months = static_cast<int>(rng.uniform_int(1, 4));
  spec.recovery = static_cast<int>(rng.uniform_int(0, 2));
  spec.heuristic = static_cast<int>(rng.uniform_int(0, 3));
  spec.dispatch = static_cast<int>(rng.uniform_int(0, 2));
  spec.campaigns = static_cast<int>(rng.uniform_int(0, 4));
  spec.kills = static_cast<int>(rng.uniform_int(0, 3));
  spec.group_commit = rng.uniform() < 0.5;
  spec.snapshot_every = rng.uniform_int(0, 8);
  spec.clamp();
  return spec;
}

std::vector<CaseSpec> shrink_candidates(const CaseSpec& spec) {
  std::vector<CaseSpec> out;
  const auto push = [&](auto&& mutate) {
    CaseSpec candidate = spec;
    mutate(candidate);
    candidate.clamp();
    if (!(candidate == spec)) out.push_back(std::move(candidate));
  };
  // Aggressive first: drop whole subsystems, halve the workload...
  push([](CaseSpec& s) { s.fault_kind = 0; });
  push([](CaseSpec& s) { s.net_kind = 0; });
  push([](CaseSpec& s) { s.campaigns = 0; });
  push([](CaseSpec& s) { s.scenarios /= 2; });
  push([](CaseSpec& s) { s.months /= 2; });
  push([](CaseSpec& s) { s.clusters /= 2; });
  // ...then the fine-grained single steps.
  if (spec.net_kind >= 2)  // keep a network, make it free (never re-add one)
    push([](CaseSpec& s) { s.net_kind = 1; });
  push([](CaseSpec& s) { s.scenarios -= 1; });
  push([](CaseSpec& s) { s.months -= 1; });
  push([](CaseSpec& s) { s.clusters -= 1; });
  push([](CaseSpec& s) { s.campaigns -= 1; });
  push([](CaseSpec& s) { s.kills = 0; });
  push([](CaseSpec& s) { s.snapshot_every = 0; });
  push([](CaseSpec& s) { s.group_commit = false; });
  push([](CaseSpec& s) { s.checkpoint_months = 1; });
  push([](CaseSpec& s) { s.dispatch = 0; });
  push([](CaseSpec& s) { s.divisible_tables = true; });
  return out;
}

}  // namespace oagrid::testkit
