#include "testkit/runner.hpp"

#include <charconv>
#include <cstdlib>
#include <exception>
#include <ostream>

namespace oagrid::testkit {
namespace {

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  std::uint64_t value = 0;
  const std::string text(raw);
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    return std::nullopt;  // malformed: fall back to the default silently
  return value;
}

/// Checks one invariant against one spec, folding exceptions into failure
/// messages (an oracle that throws found a bug too — and must stay
/// shrinkable).
std::optional<std::string> check_spec(const Invariant& invariant,
                                      const CaseSpec& spec) {
  try {
    return invariant.check(materialize(spec));
  } catch (const std::exception& error) {
    return std::string("unhandled exception: ") + error.what();
  } catch (...) {
    return std::string("unhandled non-standard exception");
  }
}

std::vector<const Invariant*> select_invariants(const RunOptions& options,
                                                std::ostream& out) {
  std::vector<const Invariant*> selected;
  if (options.only_invariant.empty()) {
    for (const Invariant& invariant : all_invariants())
      selected.push_back(&invariant);
  } else if (const Invariant* found =
                 find_invariant(options.only_invariant)) {
    selected.push_back(found);
  } else {
    out << "error: unknown invariant '" << options.only_invariant
        << "' (see --list)\n";
  }
  return selected;
}

void report_failure(const PropertyFailure& failure, const RunOptions& options,
                    bool from_explicit_spec, std::ostream& out) {
  out << "[FAIL] invariant=" << failure.invariant;
  if (!from_explicit_spec)
    out << " case=" << failure.case_index << " seed=" << options.seed;
  out << "\n  " << failure.message << "\n";
  if (!from_explicit_spec)
    out << "  repro: tools/oagrid_proptest --seed=" << options.seed
        << " --case=" << failure.case_index
        << " --invariant=" << failure.invariant << "\n";
  out << "  shrunk (" << failure.shrink_steps
      << " steps): " << failure.shrunk_message << "\n"
      << "  repro: tools/oagrid_proptest --spec=" << failure.shrunk.encode()
      << " --invariant=" << failure.invariant << "\n";
}

}  // namespace

RunOptions apply_env(RunOptions options) {
  if (!options.seed_explicit)
    if (const auto seed = env_u64("OAGRID_PROPTEST_SEED")) options.seed = *seed;
  if (!options.iterations_explicit)
    if (const auto iters = env_u64("OAGRID_PROPTEST_ITERS"))
      options.iterations = static_cast<int>(*iters);
  return options;
}

ShrinkResult shrink_spec(const CaseSpec& start,
                         const std::string& start_message,
                         const SpecPredicate& predicate, int max_steps) {
  ShrinkResult result{start, start_message, 0};
  bool reduced = true;
  while (reduced && result.steps < max_steps) {
    reduced = false;
    for (const CaseSpec& candidate : shrink_candidates(result.spec)) {
      if (const auto message = predicate(candidate)) {
        result.spec = candidate;
        result.message = *message;
        ++result.steps;
        reduced = true;
        break;  // restart from the most aggressive reduction
      }
    }
  }
  return result;
}

RunReport run_properties(const RunOptions& options, std::ostream& out) {
  RunReport report;
  const std::vector<const Invariant*> selected =
      select_invariants(options, out);
  if (selected.empty()) return report;

  const bool from_explicit_spec = !options.explicit_spec.empty();
  std::vector<std::pair<std::uint64_t, CaseSpec>> cases;
  if (from_explicit_spec) {
    cases.emplace_back(0, CaseSpec::decode(options.explicit_spec));
  } else if (options.only_case >= 0) {
    const auto index = static_cast<std::uint64_t>(options.only_case);
    cases.emplace_back(index, spec_for_case(options.seed, index));
  } else {
    for (int i = 0; i < options.iterations; ++i)
      cases.emplace_back(static_cast<std::uint64_t>(i),
                         spec_for_case(options.seed,
                                       static_cast<std::uint64_t>(i)));
  }

  for (const auto& [index, spec] : cases) {
    ++report.cases_run;
    if (options.verbose)
      out << "[case " << index << "] " << spec.encode() << "\n";
    for (const Invariant* invariant : selected) {
      ++report.checks_run;
      const auto message = check_spec(*invariant, spec);
      if (!message) continue;

      PropertyFailure failure;
      failure.invariant = invariant->name;
      failure.case_index = index;
      failure.spec = spec;
      failure.message = *message;
      const ShrinkResult shrunk = shrink_spec(
          spec, *message,
          [invariant](const CaseSpec& candidate) {
            return check_spec(*invariant, candidate);
          },
          options.max_shrink_steps);
      failure.shrunk = shrunk.spec;
      failure.shrunk_message = shrunk.message;
      failure.shrink_steps = shrunk.steps;
      report_failure(failure, options, from_explicit_spec, out);
      report.failures.push_back(std::move(failure));
    }
  }

  out << "proptest: " << report.cases_run << " cases x " << selected.size()
      << " invariants = " << report.checks_run << " checks, "
      << report.failures.size() << " failed (seed " << options.seed << ")\n";
  return report;
}

}  // namespace oagrid::testkit
