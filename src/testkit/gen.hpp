#pragma once
/// \file gen.hpp
/// \brief Materializes a CaseSpec into a full simulation world.
///
/// materialize() is a pure function: the same spec always produces the same
/// grid, network, failure model and service schedule, byte for byte. All
/// entropy comes from spec.seed through split() child streams, one per
/// subsystem, so shrinking one knob (say dropping the network) does not
/// reshuffle the draws of every other subsystem — the shrunk case stays as
/// close as possible to the original failing world.
///
/// Generation guards the harness against known non-termination traps:
///  * at least one cluster always stays failure-free-or-repairable (an
///    all-down grid would never finish a campaign);
///  * permanently-down clusters only appear in the mixed failure kind, never
///    all of them, and grid placement charges keep work off them.

#include <cstdint>
#include <vector>

#include "appmodel/ensemble.hpp"
#include "fault/failure.hpp"
#include "net/fairshare.hpp"
#include "net/network.hpp"
#include "platform/grid.hpp"
#include "sched/heuristics.hpp"
#include "service/campaign.hpp"
#include "sim/ensemble_sim.hpp"
#include "testkit/spec.hpp"

namespace oagrid::testkit {

/// One scheduled service submission.
struct ServiceEntry {
  service::CampaignSpec spec;
  Seconds at = 0.0;
};

/// A fully materialized test world. Everything the invariant checkers need,
/// derived from the spec alone.
struct Case {
  CaseSpec spec;

  platform::Grid grid;
  appmodel::Ensemble ensemble;
  sched::Heuristic heuristic = sched::Heuristic::kKnapsack;
  sim::DispatchRule dispatch = sim::DispatchRule::kLeastAdvanced;

  /// cluster_count() == 0 when the spec attaches no network.
  net::NetworkModel network;
  double stage_mb = 0.0;    ///< staged home -> cluster per scenario
  double collect_mb = 0.0;  ///< shipped cluster -> home per scenario

  /// cluster_count() == 0 when the spec attaches no failures.
  fault::FailureModel failures;
  fault::RecoveryPolicy recovery = fault::RecoveryPolicy::kRescheduleInCluster;
  MonthIndex checkpoint_months = 1;

  /// Service-world schedule (empty when spec.campaigns == 0), `at` values
  /// non-decreasing as CampaignService::submit requires.
  std::vector<ServiceEntry> schedule;
};

/// Builds the world. Deterministic; never throws for a clamped spec.
[[nodiscard]] Case materialize(const CaseSpec& spec);

/// A random batch of transfers over `clusters` nodes — the net-conservation
/// invariant's workload, exposed so tests can probe it directly.
[[nodiscard]] std::vector<net::TransferRequest> random_transfers(
    const CaseSpec& spec, int clusters);

}  // namespace oagrid::testkit
