#pragma once
/// \file spec.hpp
/// \brief The reproducible identity of one property-test case.
///
/// Every generated test case is a *pure function* of a small flat CaseSpec:
/// a seed plus the structural dimensions of the world (cluster count,
/// workload size, which network/failure shapes are attached, the service
/// schedule length, ...). That purity is what buys the harness its two core
/// guarantees:
///
///  * one-line repro — a failure prints `tools/oagrid_proptest --seed=S
///    --case=N` (regenerate the spec from the campaign stream) and
///    `--spec=k=v,...` (the shrunk spec, verbatim), both of which rebuild
///    the exact failing world;
///  * cheap shrinking — the shrinker never mutates generated objects, it
///    mutates the *spec* (fewer clusters, fewer scenarios, no network, ...)
///    and regenerates, so every shrunk case is by construction a case the
///    generator could have produced.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace oagrid::testkit {

/// Flat, order-insensitive description of one generated case. Field ranges
/// are enforced by clamp(); decode() accepts any subset of fields over the
/// defaults.
struct CaseSpec {
  std::uint64_t seed = 1;  ///< entropy for everything inside the case

  // Platform / workload.
  int clusters = 3;             ///< grid size, >= 1
  Count scenarios = 6;          ///< NS, >= 1
  Count months = 8;             ///< NM, >= 1
  bool divisible_tables =
      false;  ///< T[G] exact multiples of TP (closed form is then exact)

  // Data movement. 0 none, 1 free, 2 uniform, 3 renater, 4 random.
  int net_kind = 0;

  // Availability. 0 none, 1 exponential, 2 weibull, 3 trace outages,
  // 4 mixed (stochastic + outages + at most clusters-1 down markers).
  int fault_kind = 0;
  int checkpoint_months = 1;  ///< restart cadence fed to the fault DES
  int recovery = 1;           ///< fault::RecoveryPolicy underlying value
  // Scheduling.
  int heuristic = 3;  ///< sched::Heuristic underlying value
  int dispatch = 0;   ///< sim::DispatchRule underlying value

  // Service / crash explorer.
  int campaigns = 2;       ///< service schedule length (0 = no service world)
  int kills = 1;           ///< crash generations the explorer injects
  bool group_commit = true;
  Count snapshot_every = 0;

  [[nodiscard]] bool operator==(const CaseSpec&) const = default;

  /// Clamps every field into its legal range (generation never throws).
  void clamp() noexcept;

  /// Canonical `key=value,...` form, stable field order; decode(encode(s))
  /// == s for any clamped spec.
  [[nodiscard]] std::string encode() const;

  /// Parses the encode() format (any field subset, unknown keys rejected).
  /// Throws oagrid::ParseError with source "spec".
  [[nodiscard]] static CaseSpec decode(const std::string& text);
};

/// The spec of campaign case `index` under root seed `root_seed` — the
/// deterministic stream the driver and the repro command both re-derive.
[[nodiscard]] CaseSpec spec_for_case(std::uint64_t root_seed,
                                     std::uint64_t index);

/// One-step reductions of `spec`, most aggressive first (halve the workload,
/// drop whole subsystems) down to single decrements. The greedy shrinker
/// walks this list, keeping any candidate that still fails.
[[nodiscard]] std::vector<CaseSpec> shrink_candidates(const CaseSpec& spec);

}  // namespace oagrid::testkit
