#include "testkit/invariants.hpp"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "common/rng.hpp"
#include "fault/parser.hpp"
#include "knapsack/knapsack.hpp"
#include "net/parser.hpp"
#include "sched/lower_bounds.hpp"
#include "sched/makespan_model.hpp"
#include "sched/repartition.hpp"
#include "service/journal.hpp"
#include "service/service.hpp"
#include "sim/eval_cache.hpp"
#include "sim/grid_sim.hpp"

namespace oagrid::testkit {
namespace {

namespace fs = std::filesystem;

using Verdict = std::optional<std::string>;

/// Formats a violation; returns through `out << ...` expressions.
template <typename... Parts>
Verdict fail(Parts&&... parts) {
  std::ostringstream out;
  (out << ... << parts);
  return out.str();
}

std::vector<MonthIndex> month_vector(const appmodel::Ensemble& ensemble) {
  return std::vector<MonthIndex>(static_cast<std::size_t>(ensemble.scenarios),
                                 static_cast<MonthIndex>(ensemble.months));
}

sim::GridNetworkOptions net_options_of(const Case& world) {
  sim::GridNetworkOptions options;
  if (world.network.cluster_count() > 0) {
    options.network = world.network;
    options.stage_mb_per_scenario = world.stage_mb;
    options.collect_mb_per_scenario = world.collect_mb;
  }
  return options;
}

sim::GridFaultOptions fault_options_of(const Case& world) {
  sim::GridFaultOptions options;
  if (world.failures.cluster_count() > 0) {
    options.model = world.failures;
    options.recovery = world.recovery;
    options.checkpoint_months = world.checkpoint_months;
  }
  return options;
}

// --- closed form vs discrete-event simulation ------------------------------

Verdict check_analytic_vs_des(const Case& world) {
  for (int c = 0; c < world.grid.cluster_count(); ++c) {
    const platform::Cluster& cluster = world.grid.cluster(c);
    const Seconds bound =
        sched::ensemble_lower_bounds(cluster, world.ensemble).combined();
    for (ProcCount g = cluster.min_group();
         g <= cluster.max_group() && g <= cluster.resources(); ++g) {
      const sched::MakespanEstimate analytic =
          sched::evaluate_uniform_grouping(cluster, world.ensemble, g);
      if (analytic.regime == sched::MakespanRegime::kInfeasible) continue;
      sched::GroupSchedule schedule;
      schedule.group_sizes.assign(static_cast<std::size_t>(analytic.nbmax), g);
      schedule.post_pool = analytic.r2;
      const Seconds simulated =
          sim::simulate_ensemble(cluster, schedule, world.ensemble).makespan;
      if (world.spec.divisible_tables) {
        // TP divides every T[G]: the formula is exact.
        if (std::abs(simulated - analytic.makespan) >
            1e-6 * analytic.makespan)
          return fail("cluster ", c, " G=", g, ": simulated ", simulated,
                      " != analytic ", analytic.makespan,
                      " on a divisible table (regime ",
                      to_string(analytic.regime), ")");
      } else if (simulated >
                 analytic.makespan * (1.0 + 1e-9) + 1e-6) {
        // The closed form over-approximates when TP does not divide TG;
        // it must never under-estimate the real execution.
        return fail("cluster ", c, " G=", g, ": simulated ", simulated,
                    " exceeds the analytic over-approximation ",
                    analytic.makespan);
      }
      if (simulated < bound - 1e-6)
        return fail("cluster ", c, " G=", g, ": simulated ", simulated,
                    " beats the lower bound ", bound);
    }
  }
  return std::nullopt;
}

// --- heuristics respect the absolute lower bounds ---------------------------

Verdict check_lower_bounds(const Case& world) {
  for (int c = 0; c < world.grid.cluster_count(); ++c) {
    const platform::Cluster& cluster = world.grid.cluster(c);
    const Seconds bound =
        sched::ensemble_lower_bounds(cluster, world.ensemble).combined();
    const sim::SimResult result =
        sim::simulate_with_heuristic(cluster, world.heuristic, world.ensemble);
    if (result.makespan < bound - 1e-6)
      return fail("cluster ", c, ": ", to_string(world.heuristic),
                  " makespan ", result.makespan, " beats the lower bound ",
                  bound);
    if (result.mains_executed != world.ensemble.total_tasks())
      return fail("cluster ", c, ": executed ", result.mains_executed,
                  " mains, expected ", world.ensemble.total_tasks());
  }
  const Seconds grid_bound =
      sched::grid_lower_bounds(world.grid, world.ensemble).combined();
  const sim::GridSimResult grid_result = sim::simulate_grid(
      world.grid, world.ensemble, world.heuristic, 1, net_options_of(world),
      fault_options_of(world));
  // Staging/faults only add time, so the clean bound still holds.
  if (grid_result.makespan < grid_bound - 1e-6)
    return fail("grid makespan ", grid_result.makespan,
                " beats the grid lower bound ", grid_bound);
  return std::nullopt;
}

// --- memoized evaluation is bit-identical to direct simulation --------------

Verdict check_eval_cache_identity(const Case& world) {
  sim::SimOptions options;
  options.dispatch = world.dispatch;
  const std::vector<MonthIndex> months = month_vector(world.ensemble);
  for (int c = 0; c < world.grid.cluster_count(); ++c) {
    const platform::Cluster& cluster = world.grid.cluster(c);
    const sched::GroupSchedule schedule =
        sched::make_schedule(world.heuristic, cluster, world.ensemble);
    const Seconds direct =
        sim::simulate_ensemble(cluster, schedule, months, options).makespan;
    const Seconds first =
        sim::cached_makespan(cluster, schedule, months, options);
    const Seconds second =
        sim::cached_makespan(cluster, schedule, months, options);
    if (direct != first || first != second)
      return fail("cluster ", c, ": direct ", direct, ", first cached ",
                  first, ", second cached ", second,
                  " are not bit-identical");
  }
  return std::nullopt;
}

// --- thread count never changes a result ------------------------------------

Verdict check_thread_invariance(const Case& world) {
  const sim::GridNetworkOptions net = net_options_of(world);
  const sim::GridFaultOptions faults = fault_options_of(world);
  const sim::GridSimResult serial =
      sim::simulate_grid(world.grid, world.ensemble, world.heuristic, 1, net,
                         faults);
  const sim::GridSimResult threaded =
      sim::simulate_grid(world.grid, world.ensemble, world.heuristic, 3, net,
                         faults);
  if (serial.makespan != threaded.makespan)
    return fail("grid makespan differs across thread counts: ",
                serial.makespan, " (1 thread) vs ", threaded.makespan,
                " (3 threads)");
  if (serial.cluster_makespans != threaded.cluster_makespans)
    return fail("per-cluster makespans differ across thread counts");
  if (serial.repartition.assignment != threaded.repartition.assignment)
    return fail("scenario assignment differs across thread counts");
  return std::nullopt;
}

// --- fair-share transfers conserve bytes and respect physics ----------------

Verdict check_net_conservation(const Case& world) {
  const net::NetworkModel model =
      world.network.cluster_count() > 0
          ? world.network
          : net::free_network(world.grid.cluster_count());
  const std::vector<net::TransferRequest> requests =
      random_transfers(world.spec, model.cluster_count());
  const net::TransferPlan plan = net::simulate_transfers(model, requests);
  if (plan.results.size() != requests.size())
    return fail("plan has ", plan.results.size(), " results for ",
                requests.size(), " requests");
  double total_mb = 0.0;
  Seconds latest = 0.0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const net::TransferRequest& request = requests[i];
    const Seconds finish = plan.results[i].finish;
    total_mb += request.size_mb;
    latest = std::max(latest, finish);
    // Fair sharing can only slow a transfer down relative to an
    // uncontended link.
    const Seconds floor =
        request.start +
        model.transfer_time(request.src, request.dst, request.size_mb);
    if (finish < floor - 1e-9)
      return fail("transfer ", i, " finished at ", finish,
                  ", before its uncontended floor ", floor);
    if (model.link(request.src, request.dst).is_free() &&
        finish != request.start)
      return fail("transfer ", i, " over a free link finished at ", finish,
                  " != start ", request.start);
  }
  if (std::abs(plan.total_mb - total_mb) > 1e-9 * std::max(1.0, total_mb))
    return fail("plan.total_mb ", plan.total_mb, " != injected bytes ",
                total_mb);
  if (plan.makespan != latest)
    return fail("plan.makespan ", plan.makespan, " != max finish ", latest);
  return std::nullopt;
}

// --- write -> parse round trips are exact ----------------------------------

Verdict check_parser_round_trip(const Case& world) {
  const int n = world.grid.cluster_count();
  const net::NetworkModel network = world.network.cluster_count() > 0
                                        ? world.network
                                        : net::renater_network(n);
  std::ostringstream net_out;
  net::write_network(net_out, network);
  const net::NetworkModel net_reparsed =
      net::parse_network_string(net_out.str());
  if (!(net_reparsed == network))
    return fail("network model does not round trip through its text format");
  std::ostringstream net_again;
  net::write_network(net_again, net_reparsed);
  if (net_again.str() != net_out.str())
    return fail("network writer is not a fixed point across a round trip");

  const fault::FailureModel failures =
      world.failures.cluster_count() > 0
          ? world.failures
          : fault::FailureModel::uniform_exponential(n, 86400.0, 3600.0,
                                                     world.spec.seed);
  std::ostringstream fault_out;
  fault::write_failures(fault_out, failures);
  const fault::FailureModel fault_reparsed =
      fault::parse_failures_string(fault_out.str());
  if (fault_reparsed.signature() != failures.signature())
    return fail("failure model does not round trip through its text format");
  std::ostringstream fault_again;
  fault::write_failures(fault_again, fault_reparsed);
  if (fault_again.str() != fault_out.str())
    return fail("failures writer is not a fixed point across a round trip");
  return std::nullopt;
}

// --- inactive models are bit-exact no-ops -----------------------------------

Verdict check_inactive_model_identity(const Case& world) {
  const int n = world.grid.cluster_count();
  const sim::GridSimResult bare =
      sim::simulate_grid(world.grid, world.ensemble, world.heuristic);
  sim::GridNetworkOptions free_net;
  free_net.network = net::free_network(n);
  free_net.stage_mb_per_scenario = world.stage_mb;
  free_net.collect_mb_per_scenario = world.collect_mb;
  sim::GridFaultOptions inactive_faults;
  inactive_faults.model = fault::FailureModel(n);  // clusters, no processes
  inactive_faults.recovery = world.recovery;
  inactive_faults.checkpoint_months = world.checkpoint_months;
  const sim::GridSimResult dressed = sim::simulate_grid(
      world.grid, world.ensemble, world.heuristic, 1, free_net,
      inactive_faults);
  if (bare.makespan != dressed.makespan)
    return fail("free network + inactive failures changed the makespan: ",
                bare.makespan, " vs ", dressed.makespan);
  if (bare.cluster_makespans != dressed.cluster_makespans)
    return fail("free network + inactive failures changed a cluster makespan");
  if (bare.repartition.assignment != dressed.repartition.assignment)
    return fail("free network + inactive failures changed the assignment");
  return std::nullopt;
}

// --- failure injection conserves work ----------------------------------------

Verdict conservation_of(const platform::Cluster& cluster,
                        const appmodel::Ensemble& ensemble,
                        const Case& world, const sim::FaultOptions& fault,
                        const char* label) {
  sim::SimOptions options;
  options.dispatch = world.dispatch;
  options.fault = fault;
  const sched::GroupSchedule schedule =
      sched::make_schedule(world.heuristic, cluster, ensemble);
  const sim::SimResult result =
      sim::simulate_ensemble(cluster, schedule, ensemble, options);
  // Every month completes exactly once in the final history; every rewound
  // month re-executes exactly once more — and each successful main execution
  // enqueues exactly one post.
  const Count expected_mains =
      ensemble.total_tasks() + result.fault.rewound_months;
  if (result.mains_executed != expected_mains)
    return fail(label, ": executed ", result.mains_executed,
                " mains, expected total_tasks + rewound = ",
                ensemble.total_tasks(), " + ", result.fault.rewound_months,
                " = ", expected_mains,
                " (a rewound month that is never re-executed is lost work)");
  if (result.posts_executed != result.mains_executed)
    return fail(label, ": ", result.posts_executed, " posts for ",
                result.mains_executed, " mains");
  if (result.retries != 0)
    return fail(label, ": ", result.retries,
                " perturbation retries in a perturbation-free run");
  return std::nullopt;
}

Verdict check_fault_work_conservation(const Case& world) {
  // A purpose-built aggressive process on cluster 0: MTBF a couple of main
  // tasks, cadence 3, a horizon of at least 4 months — so rewinds (the
  // mutation smoke-check's target) fire within the default budget for
  // virtually every seed.
  const platform::Cluster& cluster = world.grid.cluster(0);
  const Seconds tg = cluster.main_time(cluster.min_group());
  fault::FailureModel aggressive(world.grid.cluster_count());
  aggressive.set_exponential(0, tg * 1.5, tg * 0.2);
  aggressive.set_seed(world.spec.seed | 1);
  appmodel::Ensemble stretched = world.ensemble;
  stretched.months = std::max<Count>(stretched.months, 4);
  sim::FaultOptions fault;
  fault.model = &aggressive;
  fault.cluster = 0;
  fault.recovery = fault::RecoveryPolicy::kRescheduleInCluster;
  fault.checkpoint_months = 3;
  if (Verdict verdict = conservation_of(cluster, stretched, world, fault,
                                        "aggressive exponential"))
    return verdict;

  // The case's own model, where it is active (weibull/outage coverage).
  // Permanently-down clusters are excluded: no run on them can ever finish.
  for (int c = 0; c < world.failures.cluster_count(); ++c) {
    if (!world.failures.cluster_active(c)) continue;
    if (world.failures.process(c).kind == fault::ProcessKind::kDown) continue;
    sim::FaultOptions own;
    own.model = &world.failures;
    own.cluster = c;
    own.recovery = world.recovery;
    own.checkpoint_months = world.checkpoint_months;
    if (Verdict verdict =
            conservation_of(world.grid.cluster(c), world.ensemble, world, own,
                            "generated model"))
      return verdict;
  }
  return std::nullopt;
}

// --- repartition: greedy, charged-greedy and brute force agree ---------------

Verdict check_repartition_consistency(const Case& world) {
  Rng rng(world.spec.seed ^ 0x7265706172746974ull);
  const int n = world.grid.cluster_count();
  const Count scenarios = world.ensemble.scenarios;
  std::vector<sched::PerformanceVector> performance(
      static_cast<std::size_t>(n));
  for (auto& vector : performance) {
    Seconds makespan = rng.uniform(100.0, 2000.0);
    for (Count k = 0; k < scenarios; ++k) {
      vector.push_back(makespan);
      makespan += rng.uniform(10.0, 500.0);  // monotone in k
    }
  }
  const sched::Repartition greedy =
      sched::greedy_repartition(performance, scenarios);
  if (greedy.total_dags() != scenarios)
    return fail("greedy distributed ", greedy.total_dags(), " of ", scenarios,
                " scenarios");
  if (!sched::is_locally_optimal(performance, greedy))
    return fail("greedy repartition is not locally optimal");
  const sched::Repartition charged = sched::greedy_repartition_charged(
      performance, scenarios, [](std::size_t, Count) { return 0.0; });
  if (charged.assignment != greedy.assignment ||
      charged.makespan != greedy.makespan)
    return fail("a zero placement charge changed the greedy repartition");
  if (n <= 3 && scenarios <= 6) {
    const sched::Repartition optimal =
        sched::brute_force_repartition(performance, scenarios);
    if (optimal.makespan > greedy.makespan + 1e-9)
      return fail("brute force found ", optimal.makespan,
                  ", worse than greedy ", greedy.makespan);
  }
  return std::nullopt;
}

// --- family solve: one DP sweep == one solve per cardinality cap -------------

Verdict check_knapsack_family_identity(const Case& world) {
  Rng rng(world.spec.seed ^ 0x66616d696c796470ull);
  for (int trial = 0; trial < 8; ++trial) {
    knapsack::Problem problem;
    const int kinds = static_cast<int>(rng.uniform_int(1, 6));
    for (int i = 0; i < kinds; ++i)
      problem.items.push_back(
          knapsack::Item{static_cast<int>(rng.uniform_int(1, 11)),
                         rng.uniform(0.0, 2.0)});
    problem.capacity = static_cast<int>(rng.uniform_int(0, 60));
    problem.max_items = rng.uniform_int(1, 10);
    const std::vector<knapsack::Solution> family =
        knapsack::solve_dp_family(problem);
    if (family.size() != static_cast<std::size_t>(problem.max_items))
      return fail("trial ", trial, ": family has ", family.size(),
                  " entries for max_items ", problem.max_items);
    for (Count k = 1; k <= problem.max_items; ++k) {
      knapsack::Problem capped = problem;
      capped.max_items = k;
      const knapsack::Solution direct = knapsack::solve_dp(capped);
      const knapsack::Solution& from_family =
          family[static_cast<std::size_t>(k) - 1];
      if (from_family.counts != direct.counts ||
          from_family.value != direct.value ||
          from_family.weight_used != direct.weight_used)
        return fail("trial ", trial, " cap ", k,
                    ": family solution (value ", from_family.value,
                    ", weight ", from_family.weight_used,
                    ") is not bit-identical to a direct solve (value ",
                    direct.value, ", weight ", direct.weight_used, ")");
      if (!knapsack::is_feasible(capped, from_family))
        return fail("trial ", trial, " cap ", k,
                    ": family solution is infeasible under its own cap");
    }
  }
  return std::nullopt;
}

// --- service world -----------------------------------------------------------

/// Scratch directory under the system temp root, removed on scope exit.
/// Unique per process *and* per use so parallel ctest invocations and
/// repeated shrink re-runs never collide.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<std::uint64_t> counter{0};
    path_ = fs::temp_directory_path() /
            ("oagrid-proptest-" + std::to_string(::getpid()) + "-" + tag +
             "-" + std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);  // best effort; never throw from a dtor
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

service::ServiceOptions service_options_of(const Case& world,
                                           const std::string& journal_dir,
                                           long long kill_after = -1) {
  service::ServiceOptions options;
  options.max_active = 2;
  options.heuristic = world.heuristic;
  options.journal_dir = journal_dir;
  options.group_commit = world.spec.group_commit;
  options.snapshot_every = world.spec.snapshot_every;
  options.kill_after_records = kill_after;
  return options;
}

void submit_missing(service::CampaignService& service,
                    const std::vector<ServiceEntry>& schedule) {
  const std::size_t known = service.campaign_ids().size();
  for (std::size_t i = known; i < schedule.size(); ++i)
    (void)service.submit(schedule[i].spec, schedule[i].at);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// The crash-point explorer: run an uninterrupted reference, then kill the
/// service at generator-chosen journal offsets (mid-batch included under
/// group commit, since the kill counter ticks per append, not per commit),
/// recover into a fresh instance and byte-check the drained state.
Verdict check_crash_recovery(const Case& world) {
  if (world.schedule.empty()) return std::nullopt;  // vacuous: no service

  TempDir ref_dir("ref");
  auto reference = std::make_unique<service::CampaignService>(
      world.grid, service_options_of(world, ref_dir.str()));
  submit_missing(*reference, world.schedule);
  if (!reference->run()) return fail("reference run reported a kill");
  const std::uint64_t want_signature = reference->state_signature();
  const std::string ref_journal =
      read_file(service::CampaignService::journal_path(ref_dir.str()));
  const auto records = static_cast<long long>(
      service::read_journal(
          service::CampaignService::journal_path(ref_dir.str()))
          .events.size());
  if (records < 2 || world.spec.kills == 0) return std::nullopt;

  Rng rng(world.spec.seed ^ 0x6372617368657221ull);
  for (int k = 0; k < world.spec.kills; ++k) {
    const long long kill = rng.uniform_int(1, records - 1);
    TempDir dir("kill" + std::to_string(k));
    {
      auto victim = std::make_unique<service::CampaignService>(
          world.grid, service_options_of(world, dir.str(), kill));
      submit_missing(*victim, world.schedule);
      if (victim->run() || !victim->killed())
        return fail("kill point ", kill, ": the armed service survived ",
                    records, " reference records");
    }
    auto survivor = std::make_unique<service::CampaignService>(
        world.grid, service_options_of(world, dir.str()));
    (void)survivor->recover();
    submit_missing(*survivor, world.schedule);
    if (!survivor->run())
      return fail("kill point ", kill, ": the recovered service was killed");
    if (survivor->state_signature() != want_signature)
      return fail("kill point ", kill,
                  ": recovered state signature ", survivor->state_signature(),
                  " != uninterrupted ", want_signature);
    // Without snapshot compaction the healed journal must be the reference
    // journal, byte for byte.
    if (world.spec.snapshot_every == 0 &&
        read_file(service::CampaignService::journal_path(dir.str())) !=
            ref_journal)
      return fail("kill point ", kill,
                  ": recovered journal bytes differ from the reference");
  }
  return std::nullopt;
}

/// Incremental bookkeeping is an optimization, never a behavior change: a
/// full-recompute service and an incremental one (with the paranoid
/// cross-check armed) drain to the same state signature.
Verdict check_service_incremental_identity(const Case& world) {
  if (world.schedule.empty()) return std::nullopt;
  service::ServiceOptions full = service_options_of(world, "");
  full.incremental = false;
  service::ServiceOptions incremental = service_options_of(world, "");
  incremental.incremental = true;
  incremental.verify_incremental = true;  // throws on any divergence
  auto a = std::make_unique<service::CampaignService>(world.grid, full);
  auto b =
      std::make_unique<service::CampaignService>(world.grid, incremental);
  submit_missing(*a, world.schedule);
  submit_missing(*b, world.schedule);
  if (!a->run() || !b->run())
    return fail("a service run reported a kill with no kill armed");
  if (a->state_signature() != b->state_signature())
    return fail("incremental signature ", b->state_signature(),
                " != full-recompute signature ", a->state_signature());
  return std::nullopt;
}

}  // namespace

const std::vector<Invariant>& all_invariants() {
  static const std::vector<Invariant> registry = {
      {"analytic-vs-des",
       "closed-form makespan (Eq 1-5) agrees with the DES: exact on "
       "divisible tables, an upper bound otherwise",
       check_analytic_vs_des},
      {"lower-bounds",
       "no heuristic, on any cluster or the grid, beats the chain/area "
       "lower bounds",
       check_lower_bounds},
      {"eval-cache-identity",
       "cached makespans are bit-identical to direct simulation, misses "
       "and hits alike",
       check_eval_cache_identity},
      {"thread-invariance",
       "grid simulation results are bit-identical at any thread count",
       check_thread_invariance},
      {"net-conservation",
       "fair-share transfers conserve bytes and never beat an uncontended "
       "link",
       check_net_conservation},
      {"parser-round-trip",
       "network and failure models round trip exactly through their text "
       "formats",
       check_parser_round_trip},
      {"inactive-model-identity",
       "a free network and an inactive failure model change nothing, bit "
       "for bit",
       check_inactive_model_identity},
      {"fault-work-conservation",
       "failure injection re-executes exactly the rewound months: mains == "
       "total + rewound, one post per main",
       check_fault_work_conservation},
      {"knapsack-family-identity",
       "every solution extracted by solve_dp_family is bit-identical to an "
       "independent solve_dp at that cardinality cap",
       check_knapsack_family_identity},
      {"repartition-consistency",
       "greedy repartition is locally optimal, zero charges are identity, "
       "brute force never loses to it",
       check_repartition_consistency},
      {"crash-recovery",
       "a service killed at a random journal offset recovers to the "
       "uninterrupted run's state signature and journal bytes",
       check_crash_recovery},
      {"service-incremental-identity",
       "incremental control-plane bookkeeping drains to the same state "
       "signature as full recomputation",
       check_service_incremental_identity},
  };
  return registry;
}

const Invariant* find_invariant(const std::string& name) {
  for (const Invariant& invariant : all_invariants())
    if (invariant.name == name) return &invariant;
  return nullptr;
}

}  // namespace oagrid::testkit
