#pragma once
/// \file runner.hpp
/// \brief The property-test campaign loop: generate, check, shrink, report.
///
/// Reproducibility contract: every failure line printed by run_properties()
/// contains a command that rebuilds the exact failing world —
///
///   tools/oagrid_proptest --seed=<root> --case=<index> --invariant=<name>
///
/// for the original case, and `--spec=<encoded>` for the greedily shrunk
/// minimal case. The iteration budget and root seed resolve, in precedence
/// order: explicit RunOptions (CLI flags) > OAGRID_PROPTEST_ITERS /
/// OAGRID_PROPTEST_SEED environment variables > compiled defaults — so a CI
/// job can widen the campaign without touching any test code.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "testkit/invariants.hpp"
#include "testkit/spec.hpp"

namespace oagrid::testkit {

/// Compiled default budget: small enough that `ctest -L property` stays in
/// the tens of seconds, large enough that every invariant sees every
/// generation regime several times.
inline constexpr int kDefaultIterations = 24;
inline constexpr std::uint64_t kDefaultSeed = 0x0A6217ED5EEDull;

struct RunOptions {
  std::uint64_t seed = kDefaultSeed;
  int iterations = kDefaultIterations;
  /// Empty = check every invariant.
  std::string only_invariant;
  /// >= 0: run only that campaign index (the --case repro path).
  long long only_case = -1;
  /// Non-empty: skip generation and check exactly this encoded spec (the
  /// --spec repro path; implies a single case).
  std::string explicit_spec;
  int max_shrink_steps = 64;
  bool verbose = false;

  /// Marks which of seed/iterations were set explicitly (flags beat env).
  bool seed_explicit = false;
  bool iterations_explicit = false;
};

/// Applies OAGRID_PROPTEST_SEED / OAGRID_PROPTEST_ITERS to any field not
/// explicitly set. Malformed values are ignored (the defaults stand).
[[nodiscard]] RunOptions apply_env(RunOptions options);

struct PropertyFailure {
  std::string invariant;
  std::uint64_t case_index = 0;
  CaseSpec spec;            ///< the case as generated
  std::string message;      ///< the original violation
  CaseSpec shrunk;          ///< greedy minimum still violating
  std::string shrunk_message;
  int shrink_steps = 0;     ///< accepted reductions
};

struct RunReport {
  int cases_run = 0;
  long long checks_run = 0;
  std::vector<PropertyFailure> failures;
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// A predicate over specs: nullopt = passes, string = violation message.
using SpecPredicate =
    std::function<std::optional<std::string>(const CaseSpec&)>;

/// Greedy shrink: walks shrink_candidates() repeatedly, keeping the first
/// candidate that still fails `predicate`, until no candidate fails or the
/// step budget runs out. Returns the minimal spec, its message, and the
/// number of accepted reductions.
struct ShrinkResult {
  CaseSpec spec;
  std::string message;
  int steps = 0;
};
[[nodiscard]] ShrinkResult shrink_spec(const CaseSpec& start,
                                       const std::string& start_message,
                                       const SpecPredicate& predicate,
                                       int max_steps);

/// Runs the campaign, streaming failures (with repro lines) and a summary to
/// `out`. Exceptions escaping an invariant are failures, not crashes.
RunReport run_properties(const RunOptions& options, std::ostream& out);

}  // namespace oagrid::testkit
