#include "knapsack/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

namespace oagrid::knapsack {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Relative-epsilon comparison for objective values: 1/T sums are sums of a
/// handful of doubles, so 1e-9 relative slack cleanly separates genuine ties
/// from rounding noise.
bool value_strictly_greater(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return a > b + 1e-9 * scale;
}

bool value_equal(double a, double b) {
  return !value_strictly_greater(a, b) && !value_strictly_greater(b, a);
}

Solution make_solution(const Problem& problem, std::vector<Count> counts) {
  Solution s;
  s.counts = std::move(counts);
  for (std::size_t i = 0; i < problem.items.size(); ++i) {
    s.value += static_cast<double>(s.counts[i]) * problem.items[i].value;
    s.weight_used += static_cast<int>(s.counts[i]) * problem.items[i].weight;
    s.items_used += s.counts[i];
  }
  return s;
}

}  // namespace

void validate(const Problem& problem) {
  OAGRID_REQUIRE(!problem.items.empty(), "knapsack needs at least one item kind");
  for (const Item& item : problem.items) {
    OAGRID_REQUIRE(item.weight > 0, "item weights must be positive");
    OAGRID_REQUIRE(item.value >= 0.0, "item values must be >= 0");
  }
  OAGRID_REQUIRE(problem.capacity >= 0, "capacity must be >= 0");
  OAGRID_REQUIRE(problem.max_items >= 0, "cardinality cap must be >= 0");
}

bool is_feasible(const Problem& problem, const Solution& solution) {
  if (solution.counts.size() != problem.items.size()) return false;
  double value = 0.0;
  long long weight = 0;
  Count items = 0;
  for (std::size_t i = 0; i < problem.items.size(); ++i) {
    if (solution.counts[i] < 0) return false;
    value += static_cast<double>(solution.counts[i]) * problem.items[i].value;
    weight += solution.counts[i] * problem.items[i].weight;
    items += solution.counts[i];
  }
  return weight <= problem.capacity && items <= problem.max_items &&
         weight == solution.weight_used && items == solution.items_used &&
         value_equal(value, solution.value);
}

bool better_solution(const Solution& a, const Solution& b) {
  if (value_strictly_greater(a.value, b.value)) return true;
  if (value_strictly_greater(b.value, a.value)) return false;
  if (a.weight_used != b.weight_used) return a.weight_used < b.weight_used;
  return a.items_used < b.items_used;
}

namespace {

/// One terminal DP state, tracked with the documented tie-break scan order
/// (value desc via strict improvement, then smallest k, then smallest w —
/// which realizes "fewer processors, then fewer groups" on this table).
struct BestState {
  double value = 0.0;
  std::size_t k = 0;
  std::size_t w = 0;
};

/// The DP sweep shared by solve_dp and solve_dp_family.
///
/// dp[k*(cap+1) + w] = best value using exactly k items of total weight
/// exactly w; choice is the item index of the last item added to reach that
/// state (-1 = unreached). Both tables are single contiguous arenas with row
/// stride cap+1: the sweep touches two adjacent rows linearly instead of
/// chasing per-row heap blocks. Only two value rows are live at a time
/// (row k reads only row k-1), so `dp` holds 2 rows while `choice` — needed
/// later for backtracking — keeps all of them.
///
/// The item relaxation runs item-outer / weight-inner: for each item the
/// inner loop is a branch-light linear pass `cand = prev[w-wi] + vi; if
/// (cand > row[w]) update`, which auto-vectorizes and needs no kNegInf
/// test (-inf + vi stays -inf and never wins a strict comparison). The pass
/// is clipped to the reachable-weight frontier — row k-1 only holds finite
/// values in [(k-1)*min_w, (k-1)*max_w] — so dead cells are skipped rather
/// than relaxed. Cell update order per (k, w) is item-ascending with strict
/// `>`, exactly the historical nested-loop order, so values, choices and
/// tie-breaks are bit-identical to the textbook formulation.
///
/// `best_after_row[r]` is the best terminal state over rows 0..r under the
/// tie-break scan; solve_dp reads the last entry, solve_dp_family reads one
/// entry per cardinality cap.
struct DpSweep {
  std::size_t k_max = 0;
  std::size_t stride = 0;               ///< cap + 1
  std::vector<std::int16_t> choice;     ///< (k_max+1) x stride arena
  std::vector<BestState> best_after_row;

  [[nodiscard]] Solution extract(const Problem& problem,
                                 const BestState& best) const {
    std::vector<Count> counts(problem.items.size(), 0);
    for (std::size_t k = best.k, w = best.w; k > 0;) {
      const std::int16_t i = choice[k * stride + w];
      ++counts[static_cast<std::size_t>(i)];
      w -= static_cast<std::size_t>(
          problem.items[static_cast<std::size_t>(i)].weight);
      --k;
    }
    return make_solution(problem, std::move(counts));
  }
};

DpSweep run_dp_sweep(const Problem& problem) {
  validate(problem);
  OAGRID_REQUIRE(
      problem.items.size() <=
          static_cast<std::size_t>(std::numeric_limits<std::int16_t>::max()),
      "too many item kinds for the int16 choice arena");
  const auto n_items = problem.items.size();
  const auto cap = static_cast<std::size_t>(problem.capacity);
  // The cardinality axis never needs to exceed capacity / min weight.
  int min_weight = std::numeric_limits<int>::max();
  int max_weight = 0;
  for (const Item& item : problem.items) {
    min_weight = std::min(min_weight, item.weight);
    max_weight = std::max(max_weight, item.weight);
  }
  const auto k_max = static_cast<std::size_t>(std::min<long long>(
      problem.max_items, problem.capacity / std::max(min_weight, 1)));

  DpSweep sweep;
  sweep.k_max = k_max;
  sweep.stride = cap + 1;
  sweep.choice.assign((k_max + 1) * sweep.stride, std::int16_t{-1});
  sweep.best_after_row.reserve(k_max + 1);

  // Two-row value arena: `prev` = row k-1, `cur` = row k.
  std::vector<double> values(2 * sweep.stride, kNegInf);
  double* prev = values.data();
  double* cur = values.data() + sweep.stride;
  prev[0] = 0.0;

  BestState best;  // row 0: dp[0][0] = 0.0 never strictly beats the 0.0 seed
  sweep.best_after_row.push_back(best);

  for (std::size_t k = 1; k <= k_max; ++k) {
    // Reachable frontier of row k-1: finite cells live only where k-1 items
    // can land, so the relaxation of item i needs w in [prev_lo+wi,
    // min(cap, prev_hi+wi)] — everything else keeps kNegInf untouched.
    const std::size_t prev_lo = (k - 1) * static_cast<std::size_t>(min_weight);
    const std::size_t prev_hi = std::min(
        cap, (k - 1) * static_cast<std::size_t>(max_weight));
    std::fill(cur, cur + sweep.stride, kNegInf);
    std::int16_t* crow = sweep.choice.data() + k * sweep.stride;
    for (std::size_t i = 0; i < n_items; ++i) {
      const auto wi = static_cast<std::size_t>(problem.items[i].weight);
      if (prev_lo + wi > cap) continue;  // every target cell is off the table
      const double vi = problem.items[i].value;
      const std::size_t w_hi = std::min(cap, prev_hi + wi);
      const auto item = static_cast<std::int16_t>(i);
      for (std::size_t w = prev_lo + wi; w <= w_hi; ++w) {
        const double candidate = prev[w - wi] + vi;
        if (candidate > cur[w]) {
          cur[w] = candidate;
          crow[w] = item;
        }
      }
    }
    // Fold row k into the running best, preserving the historical full-table
    // scan order ((k, w) ascending, strict improvement only).
    const std::size_t lo = k * static_cast<std::size_t>(min_weight);
    const std::size_t hi = std::min(cap, k * static_cast<std::size_t>(max_weight));
    for (std::size_t w = lo; w <= hi; ++w)
      if (cur[w] != kNegInf && value_strictly_greater(cur[w], best.value))
        best = BestState{cur[w], k, w};
    sweep.best_after_row.push_back(best);
    std::swap(prev, cur);
  }
  return sweep;
}

}  // namespace

Solution solve_dp(const Problem& problem) {
  const DpSweep sweep = run_dp_sweep(problem);
  return sweep.extract(problem, sweep.best_after_row.back());
}

std::vector<Solution> solve_dp_family(const Problem& problem) {
  const DpSweep sweep = run_dp_sweep(problem);
  std::vector<Solution> family;
  family.reserve(static_cast<std::size_t>(problem.max_items));
  std::size_t last_k = 0, last_w = 0;
  for (Count k = 1; k <= problem.max_items; ++k) {
    // The sub-problem capped at k scans rows 0..min(k, k_max); its answer is
    // the prefix best after that row.
    const std::size_t row = std::min(static_cast<std::size_t>(k), sweep.k_max);
    const BestState& best = sweep.best_after_row[row];
    // Raising the cap often leaves the winning state unchanged (and always
    // does once the cap stops binding): reuse the previous extraction
    // instead of re-backtracking the identical state.
    if (!family.empty() && best.k == last_k && best.w == last_w) {
      family.push_back(family.back());
      continue;
    }
    last_k = best.k;
    last_w = best.w;
    family.push_back(sweep.extract(problem, best));
  }
  return family;
}

namespace {

struct BnBState {
  const Problem* problem;
  std::vector<std::size_t> order;    // item indices by density descending
  std::vector<double> best_density_from;  // max density over order[i..]
  Solution best;
  std::vector<Count> counts;
};

void bnb_recurse(BnBState& st, std::size_t pos, int cap_left, Count items_left,
                 double value) {
  const Problem& p = *st.problem;
  // Candidate completion with what is already chosen.
  {
    Solution candidate = make_solution(p, st.counts);
    if (better_solution(candidate, st.best)) st.best = std::move(candidate);
  }
  if (pos == st.order.size() || cap_left <= 0 || items_left <= 0) return;

  // Fractional bound: remaining capacity filled at the best remaining
  // density, also capped by the cardinality budget at the best remaining
  // per-item value.
  double best_item_value = 0.0;
  for (std::size_t j = pos; j < st.order.size(); ++j)
    best_item_value = std::max(best_item_value, p.items[st.order[j]].value);
  const double bound =
      value + std::min(static_cast<double>(cap_left) * st.best_density_from[pos],
                       static_cast<double>(items_left) * best_item_value);
  if (!value_strictly_greater(bound, st.best.value)) return;

  const std::size_t item = st.order[pos];
  const int w = p.items[item].weight;
  const Count max_count =
      std::min<Count>(items_left, static_cast<Count>(cap_left / w));
  // Descending count order reaches good solutions early, tightening the bound.
  for (Count c = max_count; c >= 0; --c) {
    st.counts[item] = c;
    bnb_recurse(st, pos + 1, cap_left - static_cast<int>(c) * w, items_left - c,
                value + static_cast<double>(c) * p.items[item].value);
  }
  st.counts[item] = 0;
}

}  // namespace

Solution solve_branch_bound(const Problem& problem) {
  validate(problem);
  BnBState st;
  st.problem = &problem;
  st.order.resize(problem.items.size());
  std::iota(st.order.begin(), st.order.end(), std::size_t{0});
  std::sort(st.order.begin(), st.order.end(), [&](std::size_t a, std::size_t b) {
    const double da = problem.items[a].value / problem.items[a].weight;
    const double db = problem.items[b].value / problem.items[b].weight;
    if (da != db) return da > db;
    return a < b;
  });
  st.best_density_from.assign(st.order.size() + 1, 0.0);
  for (std::size_t i = st.order.size(); i-- > 0;) {
    const Item& item = problem.items[st.order[i]];
    st.best_density_from[i] =
        std::max(st.best_density_from[i + 1], item.value / item.weight);
  }
  st.counts.assign(problem.items.size(), 0);
  st.best = make_solution(problem, st.counts);
  bnb_recurse(st, 0, problem.capacity, problem.max_items, 0.0);
  return st.best;
}

namespace {

void exhaustive_recurse(const Problem& p, std::size_t item, int cap_left,
                        Count items_left, std::vector<Count>& counts,
                        Solution& best) {
  if (item == p.items.size()) {
    Solution candidate = make_solution(p, counts);
    if (better_solution(candidate, best)) best = std::move(candidate);
    return;
  }
  const int w = p.items[item].weight;
  const Count max_count =
      std::min<Count>(items_left, static_cast<Count>(cap_left / w));
  for (Count c = 0; c <= max_count; ++c) {
    counts[item] = c;
    exhaustive_recurse(p, item + 1, cap_left - static_cast<int>(c) * w,
                       items_left - c, counts, best);
  }
  counts[item] = 0;
}

}  // namespace

Solution solve_exhaustive(const Problem& problem) {
  validate(problem);
  std::vector<Count> counts(problem.items.size(), 0);
  Solution best = make_solution(problem, counts);
  exhaustive_recurse(problem, 0, problem.capacity, problem.max_items, counts,
                     best);
  return best;
}

Solution solve_greedy(const Problem& problem) {
  validate(problem);
  std::vector<std::size_t> order(problem.items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = problem.items[a].value / problem.items[a].weight;
    const double db = problem.items[b].value / problem.items[b].weight;
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<Count> counts(problem.items.size(), 0);
  int cap_left = problem.capacity;
  Count items_left = problem.max_items;
  for (const std::size_t i : order) {
    const int w = problem.items[i].weight;
    while (cap_left >= w && items_left > 0) {
      ++counts[i];
      cap_left -= w;
      --items_left;
    }
  }
  return make_solution(problem, std::move(counts));
}

}  // namespace oagrid::knapsack
