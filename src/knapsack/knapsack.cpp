#include "knapsack/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace oagrid::knapsack {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Relative-epsilon comparison for objective values: 1/T sums are sums of a
/// handful of doubles, so 1e-9 relative slack cleanly separates genuine ties
/// from rounding noise.
bool value_strictly_greater(double a, double b) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return a > b + 1e-9 * scale;
}

bool value_equal(double a, double b) {
  return !value_strictly_greater(a, b) && !value_strictly_greater(b, a);
}

Solution make_solution(const Problem& problem, std::vector<Count> counts) {
  Solution s;
  s.counts = std::move(counts);
  for (std::size_t i = 0; i < problem.items.size(); ++i) {
    s.value += static_cast<double>(s.counts[i]) * problem.items[i].value;
    s.weight_used += static_cast<int>(s.counts[i]) * problem.items[i].weight;
    s.items_used += s.counts[i];
  }
  return s;
}

}  // namespace

void validate(const Problem& problem) {
  OAGRID_REQUIRE(!problem.items.empty(), "knapsack needs at least one item kind");
  for (const Item& item : problem.items) {
    OAGRID_REQUIRE(item.weight > 0, "item weights must be positive");
    OAGRID_REQUIRE(item.value >= 0.0, "item values must be >= 0");
  }
  OAGRID_REQUIRE(problem.capacity >= 0, "capacity must be >= 0");
  OAGRID_REQUIRE(problem.max_items >= 0, "cardinality cap must be >= 0");
}

bool is_feasible(const Problem& problem, const Solution& solution) {
  if (solution.counts.size() != problem.items.size()) return false;
  double value = 0.0;
  long long weight = 0;
  Count items = 0;
  for (std::size_t i = 0; i < problem.items.size(); ++i) {
    if (solution.counts[i] < 0) return false;
    value += static_cast<double>(solution.counts[i]) * problem.items[i].value;
    weight += solution.counts[i] * problem.items[i].weight;
    items += solution.counts[i];
  }
  return weight <= problem.capacity && items <= problem.max_items &&
         weight == solution.weight_used && items == solution.items_used &&
         value_equal(value, solution.value);
}

bool better_solution(const Solution& a, const Solution& b) {
  if (value_strictly_greater(a.value, b.value)) return true;
  if (value_strictly_greater(b.value, a.value)) return false;
  if (a.weight_used != b.weight_used) return a.weight_used < b.weight_used;
  return a.items_used < b.items_used;
}

Solution solve_dp(const Problem& problem) {
  validate(problem);
  const auto n_items = problem.items.size();
  const auto cap = static_cast<std::size_t>(problem.capacity);
  // The cardinality axis never needs to exceed capacity / min weight.
  int min_weight = std::numeric_limits<int>::max();
  for (const Item& item : problem.items) min_weight = std::min(min_weight, item.weight);
  const auto k_max = static_cast<std::size_t>(std::min<long long>(
      problem.max_items, problem.capacity / std::max(min_weight, 1)));

  // dp[k][w] = best value using exactly k items of total weight exactly w.
  // choice[k][w] = item index of the last item added to reach that state.
  std::vector<std::vector<double>> dp(k_max + 1,
                                      std::vector<double>(cap + 1, kNegInf));
  std::vector<std::vector<int>> choice(k_max + 1, std::vector<int>(cap + 1, -1));
  dp[0][0] = 0.0;

  for (std::size_t k = 1; k <= k_max; ++k) {
    for (std::size_t w = 0; w <= cap; ++w) {
      for (std::size_t i = 0; i < n_items; ++i) {
        const auto wi = static_cast<std::size_t>(problem.items[i].weight);
        if (wi > w || dp[k - 1][w - wi] == kNegInf) continue;
        const double candidate = dp[k - 1][w - wi] + problem.items[i].value;
        if (candidate > dp[k][w]) {
          dp[k][w] = candidate;
          choice[k][w] = static_cast<int>(i);
        }
      }
    }
  }

  // Best terminal state under the documented tie-break (value desc, weight
  // asc, items asc): scan in (k, w) ascending and keep strict improvements.
  std::size_t best_k = 0, best_w = 0;
  double best_value = 0.0;
  for (std::size_t k = 0; k <= k_max; ++k)
    for (std::size_t w = 0; w <= cap; ++w)
      if (dp[k][w] != kNegInf && value_strictly_greater(dp[k][w], best_value)) {
        best_value = dp[k][w];
        best_k = k;
        best_w = w;
      }

  std::vector<Count> counts(n_items, 0);
  for (std::size_t k = best_k, w = best_w; k > 0;) {
    const int i = choice[k][w];
    ++counts[static_cast<std::size_t>(i)];
    w -= static_cast<std::size_t>(problem.items[static_cast<std::size_t>(i)].weight);
    --k;
  }
  return make_solution(problem, std::move(counts));
}

namespace {

struct BnBState {
  const Problem* problem;
  std::vector<std::size_t> order;    // item indices by density descending
  std::vector<double> best_density_from;  // max density over order[i..]
  Solution best;
  std::vector<Count> counts;
};

void bnb_recurse(BnBState& st, std::size_t pos, int cap_left, Count items_left,
                 double value) {
  const Problem& p = *st.problem;
  // Candidate completion with what is already chosen.
  {
    Solution candidate = make_solution(p, st.counts);
    if (better_solution(candidate, st.best)) st.best = std::move(candidate);
  }
  if (pos == st.order.size() || cap_left <= 0 || items_left <= 0) return;

  // Fractional bound: remaining capacity filled at the best remaining
  // density, also capped by the cardinality budget at the best remaining
  // per-item value.
  double best_item_value = 0.0;
  for (std::size_t j = pos; j < st.order.size(); ++j)
    best_item_value = std::max(best_item_value, p.items[st.order[j]].value);
  const double bound =
      value + std::min(static_cast<double>(cap_left) * st.best_density_from[pos],
                       static_cast<double>(items_left) * best_item_value);
  if (!value_strictly_greater(bound, st.best.value)) return;

  const std::size_t item = st.order[pos];
  const int w = p.items[item].weight;
  const Count max_count =
      std::min<Count>(items_left, static_cast<Count>(cap_left / w));
  // Descending count order reaches good solutions early, tightening the bound.
  for (Count c = max_count; c >= 0; --c) {
    st.counts[item] = c;
    bnb_recurse(st, pos + 1, cap_left - static_cast<int>(c) * w, items_left - c,
                value + static_cast<double>(c) * p.items[item].value);
  }
  st.counts[item] = 0;
}

}  // namespace

Solution solve_branch_bound(const Problem& problem) {
  validate(problem);
  BnBState st;
  st.problem = &problem;
  st.order.resize(problem.items.size());
  std::iota(st.order.begin(), st.order.end(), std::size_t{0});
  std::sort(st.order.begin(), st.order.end(), [&](std::size_t a, std::size_t b) {
    const double da = problem.items[a].value / problem.items[a].weight;
    const double db = problem.items[b].value / problem.items[b].weight;
    if (da != db) return da > db;
    return a < b;
  });
  st.best_density_from.assign(st.order.size() + 1, 0.0);
  for (std::size_t i = st.order.size(); i-- > 0;) {
    const Item& item = problem.items[st.order[i]];
    st.best_density_from[i] =
        std::max(st.best_density_from[i + 1], item.value / item.weight);
  }
  st.counts.assign(problem.items.size(), 0);
  st.best = make_solution(problem, st.counts);
  bnb_recurse(st, 0, problem.capacity, problem.max_items, 0.0);
  return st.best;
}

namespace {

void exhaustive_recurse(const Problem& p, std::size_t item, int cap_left,
                        Count items_left, std::vector<Count>& counts,
                        Solution& best) {
  if (item == p.items.size()) {
    Solution candidate = make_solution(p, counts);
    if (better_solution(candidate, best)) best = std::move(candidate);
    return;
  }
  const int w = p.items[item].weight;
  const Count max_count =
      std::min<Count>(items_left, static_cast<Count>(cap_left / w));
  for (Count c = 0; c <= max_count; ++c) {
    counts[item] = c;
    exhaustive_recurse(p, item + 1, cap_left - static_cast<int>(c) * w,
                       items_left - c, counts, best);
  }
  counts[item] = 0;
}

}  // namespace

Solution solve_exhaustive(const Problem& problem) {
  validate(problem);
  std::vector<Count> counts(problem.items.size(), 0);
  Solution best = make_solution(problem, counts);
  exhaustive_recurse(problem, 0, problem.capacity, problem.max_items, counts,
                     best);
  return best;
}

Solution solve_greedy(const Problem& problem) {
  validate(problem);
  std::vector<std::size_t> order(problem.items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = problem.items[a].value / problem.items[a].weight;
    const double db = problem.items[b].value / problem.items[b].weight;
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<Count> counts(problem.items.size(), 0);
  int cap_left = problem.capacity;
  Count items_left = problem.max_items;
  for (const std::size_t i : order) {
    const int w = problem.items[i].weight;
    while (cap_left >= w && items_left > 0) {
      ++counts[i];
      cap_left -= w;
      --items_left;
    }
  }
  return make_solution(problem, std::move(counts));
}

}  // namespace oagrid::knapsack
