#pragma once
/// \file knapsack.hpp
/// \brief Unbounded knapsack with a cardinality constraint — the exact
/// optimization form of the paper's Improvement 3 (§4.2).
///
/// The paper phrases the grouping choice as: items are group sizes i in
/// [4, 11] with cost i (processors) and value 1/T[i] (fraction of a main task
/// completed per second by such a group); choose item multiplicities n_i
/// maximizing total value subject to  sum_i i*n_i <= R  and  sum_i n_i <= NS
/// (never more groups than runnable scenarios).
///
/// Three solvers share one Problem/Solution vocabulary:
///  * solve_dp           — O(items * capacity * max_items) dynamic program,
///                         the production solver;
///  * solve_branch_bound — best-first DFS with a fractional upper bound,
///                         exact, used to cross-check and for the ablation
///                         bench;
///  * solve_exhaustive   — full enumeration, exponential, test oracle only.
///
/// Ties on value are broken toward fewer processors used, then fewer groups,
/// then lexicographically-largest count vector, so all solvers agree exactly
/// and results are deterministic.

#include <span>
#include <vector>

#include "common/types.hpp"

namespace oagrid::knapsack {

/// One selectable item kind.
struct Item {
  int weight = 0;      ///< processors consumed by one instance (must be > 0)
  double value = 0.0;  ///< objective contribution of one instance (>= 0)
};

/// Problem instance.
struct Problem {
  std::vector<Item> items;
  int capacity = 0;        ///< total processors R
  Count max_items = 0;     ///< cardinality cap (the paper's NS)
};

/// Solver result: multiplicity per item plus the aggregates.
struct Solution {
  std::vector<Count> counts;  ///< one entry per Problem::items entry
  double value = 0.0;
  int weight_used = 0;
  Count items_used = 0;
};

/// Validates an instance; throws std::invalid_argument on nonpositive
/// weights, negative values, negative capacity or cap.
void validate(const Problem& problem);

/// Recomputes a solution's aggregates from its counts and checks feasibility
/// against the instance. Used by tests and by solver postconditions.
[[nodiscard]] bool is_feasible(const Problem& problem, const Solution& solution);

/// Exact dynamic program (production solver). The sweep runs over flat
/// contiguous arenas (row stride capacity+1) with the item relaxation as a
/// branch-light linear pass per row, restricted to the reachable-weight
/// frontier [k*min_weight, k*max_weight] — identical results to the textbook
/// nested-table formulation, tie-breaks included.
[[nodiscard]] Solution solve_dp(const Problem& problem);

/// Single-pass family solve: the optimal solution for *every* cardinality
/// cap k = 1..max_items, extracted from one DP sweep. The dp table is
/// indexed by exact item count, so the answer under cap k is the best
/// terminal state over rows 0..k — a prefix scan, not a new solve. Exact,
/// not a heuristic: result[k-1] is bit-identical (counts, value, weight,
/// tie-breaks) to solve_dp on the same problem with max_items = k. One
/// family call replaces max_items independent solve_dp calls; §5 performance
/// vectors are built this way.
[[nodiscard]] std::vector<Solution> solve_dp_family(const Problem& problem);

/// Exact branch-and-bound with fractional relaxation bound.
[[nodiscard]] Solution solve_branch_bound(const Problem& problem);

/// Exhaustive enumeration (oracle; exponential — keep instances small).
[[nodiscard]] Solution solve_exhaustive(const Problem& problem);

/// Density-greedy heuristic: repeatedly take the highest value/weight item
/// that still fits. Linear-time but NOT exact — bench_knapsack measures the
/// gap on the paper's item family, which is why the production path is the
/// DP and not this.
[[nodiscard]] Solution solve_greedy(const Problem& problem);

/// Three-way comparison implementing the tie-break policy documented above.
/// Returns true when `a` is strictly better than `b` for the same instance.
[[nodiscard]] bool better_solution(const Solution& a, const Solution& b);

}  // namespace oagrid::knapsack
