#include "sched/throughput.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/perf_vector.hpp"

namespace oagrid::sched {
namespace {

TEST(Throughput, ZeroWhenNothingFits) {
  const auto c = platform::make_builtin_cluster(1, 3);
  EXPECT_DOUBLE_EQ(best_throughput(c, 10), 0.0);
  const auto c2 = platform::make_builtin_cluster(1, 40);
  EXPECT_DOUBLE_EQ(best_throughput(c2, 0), 0.0);
}

TEST(Throughput, MonotoneInGroupsAndResources) {
  for (Count k = 1; k < 10; ++k) {
    const auto c = platform::make_builtin_cluster(1, 60);
    EXPECT_LE(best_throughput(c, k), best_throughput(c, k + 1) + 1e-15);
  }
  for (ProcCount r = 11; r < 110; r += 11) {
    EXPECT_LE(best_throughput(platform::make_builtin_cluster(1, r), 10),
              best_throughput(platform::make_builtin_cluster(1, r + 11), 10) +
                  1e-15);
  }
}

TEST(Throughput, MatchesKnapsackGroupingValue) {
  const appmodel::Ensemble e{10, 150};
  for (ProcCount r = 17; r <= 110; r += 13) {
    const auto c = platform::make_builtin_cluster(1, r);
    const GroupSchedule s = knapsack_grouping(c, e);
    double value = 0;
    for (const ProcCount g : s.group_sizes) value += 1.0 / c.main_time(g);
    EXPECT_NEAR(best_throughput(c, e.scenarios), value, 1e-12) << "R=" << r;
  }
}

TEST(ThroughputVector, MonotoneAndFinite) {
  const auto c = platform::make_builtin_cluster(2, 40);
  const PerformanceVector vec = throughput_performance_vector(c, 10, 60);
  ASSERT_EQ(vec.size(), 10u);
  for (std::size_t k = 0; k < vec.size(); ++k) {
    EXPECT_TRUE(std::isfinite(vec[k])) << k;
    if (k > 0) {
      EXPECT_GE(vec[k], vec[k - 1]);
    }
  }
}

TEST(ThroughputVector, TracksSimulatedVectorClosely) {
  // The analytic estimate should sit within a few percent of the simulated
  // performance vector (it ignores warm-up and partial-set effects).
  const Count months = 60;
  for (int profile = 0; profile < 5; profile += 2) {
    const auto c = platform::make_builtin_cluster(profile, 40);
    const PerformanceVector analytic =
        throughput_performance_vector(c, 8, months);
    const PerformanceVector simulated =
        sim::performance_vector(c, 8, months, Heuristic::kKnapsack);
    for (std::size_t k = 0; k < 8; ++k) {
      const double ratio = analytic[k] / simulated[k];
      EXPECT_GT(ratio, 0.90) << "profile " << profile << " k=" << k + 1;
      EXPECT_LT(ratio, 1.10) << "profile " << profile << " k=" << k + 1;
    }
  }
}

TEST(ThroughputVector, GreedyOnAnalyticVectorsMatchesSimulatedChoice) {
  // Using the cheap analytic vectors in Algorithm 1 should reproduce the
  // simulated repartition (or at least its makespan) on the builtin grid.
  const Count ns = 10, months = 60;
  const auto grid = platform::make_builtin_grid(35);
  std::vector<PerformanceVector> analytic, simulated;
  for (const auto& c : grid.clusters()) {
    analytic.push_back(throughput_performance_vector(c, ns, months));
    simulated.push_back(
        sim::performance_vector(c, ns, months, Heuristic::kKnapsack));
  }
  const Repartition ra = greedy_repartition(analytic, ns);
  const Repartition rs = greedy_repartition(simulated, ns);
  // Evaluate the analytic-derived distribution under the *simulated* truth.
  const Seconds cost_of_analytic_choice =
      repartition_makespan(simulated, ra.dags_per_cluster);
  EXPECT_LT(cost_of_analytic_choice / rs.makespan, 1.05);
}

TEST(ThroughputVector, BitIdenticalToPerCapBestThroughput) {
  // The family-solve fast path must reproduce the old per-k loop exactly —
  // same doubles, clamp included (EXPECT_EQ, not NEAR).
  const Count months = 60;
  for (int profile = 0; profile < 5; ++profile) {
    for (const ProcCount r : {7, 23, 40, 61, 110}) {
      const auto c = platform::make_builtin_cluster(profile, r);
      const Count ns = 12;
      const PerformanceVector vec =
          throughput_performance_vector(c, ns, months);
      ASSERT_EQ(vec.size(), static_cast<std::size_t>(ns));
      Seconds prev = 0.0;
      for (Count k = 1; k <= ns; ++k) {
        const double throughput = best_throughput(c, k);
        Seconds expected = kInfiniteTime;
        if (throughput > 0.0)
          expected = static_cast<double>(k * months) / throughput +
                     c.post_time();
        expected = std::max(expected, prev);
        EXPECT_EQ(vec[static_cast<std::size_t>(k) - 1], expected)
            << "profile " << profile << " R=" << r << " k=" << k;
        prev = expected;
      }
    }
  }
}

TEST(ThroughputVector, TinyClusterYieldsInfiniteEstimates) {
  // Below the minimum group size no family exists; every entry must be the
  // infinite sentinel, exactly as the per-k route produced.
  const auto c = platform::make_builtin_cluster(1, 3);
  const PerformanceVector vec = throughput_performance_vector(c, 4, 12);
  for (const Seconds t : vec) EXPECT_EQ(t, kInfiniteTime);
}

TEST(ThroughputVector, Validation) {
  const auto c = platform::make_builtin_cluster(1, 40);
  EXPECT_THROW((void)throughput_performance_vector(c, 0, 10),
               std::invalid_argument);
  EXPECT_THROW((void)throughput_performance_vector(c, 5, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sched
