#include "sched/ragged_repartition.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/lower_bounds.hpp"
#include "sched/repartition.hpp"
#include "sched/throughput.hpp"
#include "sim/ensemble_sim.hpp"

namespace oagrid::sched {
namespace {

TEST(RaggedEstimate, EmptySetIsZero) {
  const auto c = platform::make_builtin_cluster(1, 30);
  EXPECT_DOUBLE_EQ(ragged_cluster_estimate(c, {}), 0.0);
}

TEST(RaggedEstimate, SingleChainIsSerialBound) {
  const auto c = platform::make_builtin_cluster(1, 30);
  const std::vector<Count> months{40};
  EXPECT_NEAR(ragged_cluster_estimate(c, months),
              40.0 * min_main_time(c) + c.post_time(), 1e-6);
}

TEST(RaggedEstimate, AggregateBoundBindsForManyShortChains) {
  const auto c = platform::make_builtin_cluster(1, 22);  // 2 groups max
  const std::vector<Count> months{10, 10, 10, 10, 10, 10};
  const double thr = best_throughput(c, 6);
  EXPECT_NEAR(ragged_cluster_estimate(c, months), 60.0 / thr + c.post_time(),
              1e-6);
}

TEST(RaggedEstimate, EstimateLowerBoundsSimulation) {
  // The estimate is built from two genuine lower bounds (plus TP), so the
  // DES can never beat it by much; check within a couple of TP.
  Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    const auto c = platform::make_builtin_cluster(
        static_cast<int>(rng.uniform_int(0, 4)),
        static_cast<ProcCount>(rng.uniform_int(12, 80)));
    std::vector<MonthIndex> months;
    std::vector<Count> months_c;
    const Count n = rng.uniform_int(1, 6);
    for (Count s = 0; s < n; ++s) {
      months.push_back(static_cast<MonthIndex>(rng.uniform_int(1, 30)));
      months_c.push_back(months.back());
    }
    const auto schedule =
        knapsack_grouping(c, appmodel::Ensemble{n, 1});
    const Seconds simulated =
        sim::simulate_ensemble(c, schedule, months).makespan;
    const Seconds estimate = ragged_cluster_estimate(c, months_c);
    EXPECT_GE(simulated, estimate - 3.0 * c.post_time() - 1e-6)
        << "trial " << trial;
  }
}

TEST(RaggedRepartition, UniformChainsMatchAlgorithm1Shape) {
  // With equal chains the LPT greedy degenerates to Algorithm 1 on the
  // analytic vectors: same per-cluster counts.
  const auto grid = platform::make_builtin_grid(30);
  const Count ns = 10, nm = 60;
  const std::vector<Count> months(static_cast<std::size_t>(ns), nm);
  const RaggedRepartition ragged = ragged_repartition(grid, months);

  std::vector<PerformanceVector> perf;
  for (const auto& c : grid.clusters())
    perf.push_back(throughput_performance_vector(c, ns, nm));
  const Repartition uniform = greedy_repartition(perf, ns);

  std::vector<Count> ragged_counts(5, 0);
  for (const ClusterId c : ragged.assignment)
    ++ragged_counts[static_cast<std::size_t>(c)];
  EXPECT_EQ(ragged_counts, uniform.dags_per_cluster);
}

TEST(RaggedRepartition, LongChainGoesToAFastCluster) {
  const auto grid = platform::make_builtin_grid(25);
  const std::vector<Count> months{200, 5, 5, 5};
  const RaggedRepartition r = ragged_repartition(grid, months);
  // The 200-month chain is the serial bottleneck: it must land on the
  // fastest cluster (profile 0).
  EXPECT_EQ(r.assignment[0], 0);
}

TEST(RaggedRepartition, GreedyNearBruteForce) {
  Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    const auto grid =
        platform::make_builtin_grid(
            static_cast<ProcCount>(rng.uniform_int(15, 50)))
            .prefix(static_cast<int>(rng.uniform_int(2, 3)));
    std::vector<Count> months;
    const Count n = rng.uniform_int(2, 7);
    for (Count s = 0; s < n; ++s) months.push_back(rng.uniform_int(2, 40));
    const RaggedRepartition greedy = ragged_repartition(grid, months);
    const RaggedRepartition best = ragged_repartition_brute_force(grid, months);
    EXPECT_LE(greedy.makespan, best.makespan * 1.25 + 1e-9)
        << "trial " << trial;
    EXPECT_GE(greedy.makespan, best.makespan - 1e-9);
  }
}

TEST(RaggedRepartition, Validation) {
  const auto grid = platform::make_builtin_grid(20);
  EXPECT_THROW((void)ragged_repartition(grid, {}), std::invalid_argument);
  const std::vector<Count> bad{5, 0};
  EXPECT_THROW((void)ragged_repartition(grid, bad), std::invalid_argument);
  const platform::Grid empty;
  const std::vector<Count> ok{5};
  EXPECT_THROW((void)ragged_repartition(empty, ok), std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sched
