#include "sched/baselines.hpp"

#include <gtest/gtest.h>

#include "appmodel/month.hpp"
#include "platform/profiles.hpp"

namespace oagrid::sched {
namespace {

/// Perfectly scaling moldable duration for synthetic DAGs.
MoldableDuration perfect_scaling(const dag::Dag& g) {
  return [&g](dag::NodeId v, ProcCount p) {
    const dag::TaskSpec& spec = g.task(v);
    if (spec.shape == dag::TaskShape::kMoldable)
      return spec.ref_duration / static_cast<double>(p);
    return spec.ref_duration;
  };
}

dag::Dag moldable_chain(int n, Seconds each, ProcCount max_p) {
  dag::Dag g;
  dag::NodeId prev = dag::kInvalidNode;
  for (int i = 0; i < n; ++i) {
    dag::TaskSpec s;
    s.name = "t" + std::to_string(i);
    s.shape = dag::TaskShape::kMoldable;
    s.ref_duration = each;
    s.min_procs = 1;
    s.max_procs = max_p;
    const dag::NodeId v = g.add_task(s);
    if (prev != dag::kInvalidNode) g.add_edge(prev, v);
    prev = v;
  }
  g.freeze();
  return g;
}

TEST(Cpa, GrowsChainTasksToReduceCriticalPath) {
  // A pure chain: the critical path IS the whole work, so CPA keeps growing
  // until saturation or balance.
  const dag::Dag g = moldable_chain(4, 8.0, 4);
  const BaselineResult r = cpa_schedule(g, 4, perfect_scaling(g));
  EXPECT_GT(r.growth_steps, 0);
  // With perfect scaling and 4 procs, every task should end up at 4.
  for (const ProcCount p : r.allotment.procs) EXPECT_EQ(p, 4);
  EXPECT_DOUBLE_EQ(r.schedule.makespan, 8.0);  // 4 x 8 / 4
}

TEST(Cpa, StopsAtAreaBalance) {
  // Two independent moldable tasks on 2 processors: CP = 8, area/R = 8:
  // already balanced, no growth.
  dag::Dag g;
  for (int i = 0; i < 2; ++i) {
    dag::TaskSpec s;
    s.name = "t" + std::to_string(i);
    s.shape = dag::TaskShape::kMoldable;
    s.ref_duration = 8;
    s.min_procs = 1;
    s.max_procs = 2;
    g.add_task(s);
  }
  g.freeze();
  const BaselineResult r = cpa_schedule(g, 2, perfect_scaling(g));
  EXPECT_EQ(r.growth_steps, 0);
  EXPECT_DOUBLE_EQ(r.schedule.makespan, 8.0);
}

TEST(Cpr, NeverWorseThanMinimalAllotment) {
  const dag::Dag g = moldable_chain(3, 6.0, 8);
  const BaselineResult minimal = minimal_schedule(g, 8, perfect_scaling(g));
  const BaselineResult cpr = cpr_schedule(g, 8, perfect_scaling(g));
  EXPECT_LE(cpr.schedule.makespan, minimal.schedule.makespan + 1e-9);
}

TEST(Cpr, MaxStepsBoundsWork) {
  const dag::Dag g = moldable_chain(3, 6.0, 8);
  const BaselineResult r = cpr_schedule(g, 8, perfect_scaling(g), 2);
  EXPECT_LE(r.growth_steps, 2);
}

TEST(Cpr, ChainReachesFullMachine) {
  const dag::Dag g = moldable_chain(2, 10.0, 4);
  const BaselineResult r = cpr_schedule(g, 4, perfect_scaling(g));
  EXPECT_DOUBLE_EQ(r.schedule.makespan, 5.0);  // both tasks at 4 procs
}

TEST(Baselines, OnOceanAtmosphereEnsembleKnapsackWins) {
  // The paper's §3 argument: CPA/CPR target a single critical path, but the
  // ensemble has NS identical ones. On the merged DAG of a small ensemble
  // they waste width; the reference comparison lives in bench_baselines —
  // here we only assert both run and respect the critical-path lower bound.
  const auto cluster = platform::make_builtin_cluster(1, 44);
  const int months = 4;
  dag::Dag merged;
  // 3 scenarios x `months` fused months, stamped manually side by side.
  std::vector<dag::NodeId> prev_main;
  for (int s = 0; s < 3; ++s) {
    dag::NodeId prev = dag::kInvalidNode;
    for (int m = 0; m < months; ++m) {
      dag::TaskSpec main;
      main.name = "main";
      main.shape = dag::TaskShape::kMoldable;
      main.ref_duration = 1262;
      main.min_procs = 4;
      main.max_procs = 11;
      const dag::NodeId v = merged.add_task(main);
      dag::TaskSpec post;
      post.name = "post";
      post.ref_duration = 180;
      const dag::NodeId w = merged.add_task(post);
      merged.add_edge(v, w);
      if (prev != dag::kInvalidNode) merged.add_edge(prev, v);
      prev = v;
    }
  }
  merged.freeze();
  const MoldableDuration duration = cluster_duration(merged, cluster);

  const BaselineResult cpa = cpa_schedule(merged, 44, duration);
  const BaselineResult cpr = cpr_schedule(merged, 44, duration, 200);
  const Seconds chain_bound =
      static_cast<double>(months) * cluster.main_time(11);
  EXPECT_GE(cpa.schedule.makespan, chain_bound - 1e-6);
  EXPECT_GE(cpr.schedule.makespan, chain_bound - 1e-6);
  EXPECT_GT(cpa.growth_steps, 0);
}

TEST(ClusterDuration, ClampsAndScales) {
  const auto cluster = platform::make_builtin_cluster(1, 40);
  dag::Dag g;
  dag::TaskSpec m;
  m.name = "m";
  m.shape = dag::TaskShape::kMoldable;
  m.ref_duration = 1262;
  m.min_procs = 1;  // wider range than the cluster table
  m.max_procs = 20;
  g.add_task(m);
  dag::TaskSpec r;
  r.name = "r";
  r.ref_duration = 60;
  g.add_task(r);
  g.freeze();
  const MoldableDuration d = cluster_duration(g, cluster);
  EXPECT_DOUBLE_EQ(d(0, 2), cluster.main_time(4));    // clamped up
  EXPECT_DOUBLE_EQ(d(0, 15), cluster.main_time(11));  // clamped down
  EXPECT_DOUBLE_EQ(d(0, 7), cluster.main_time(7));
  EXPECT_NEAR(d(1, 1), 60.0 * cluster.post_time() / 180.0, 1e-9);
}

}  // namespace
}  // namespace oagrid::sched
