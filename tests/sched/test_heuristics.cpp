#include "sched/heuristics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "platform/profiles.hpp"

namespace oagrid::sched {
namespace {

using appmodel::Ensemble;

const Ensemble kPaper{10, 150};

std::map<ProcCount, int> histogram(const GroupSchedule& s) {
  std::map<ProcCount, int> h;
  for (const ProcCount g : s.group_sizes) ++h[g];
  return h;
}

TEST(Basic, PaperExampleR53) {
  // §4.2: R = 53, NS = 10 -> 7 groups of 7 and 4 processors left for posts.
  const auto c = platform::make_builtin_cluster(1, 53);
  const GroupSchedule s = basic_grouping(c, kPaper);
  EXPECT_EQ(s.group_count(), 7);
  EXPECT_EQ(histogram(s), (std::map<ProcCount, int>{{7, 7}}));
  EXPECT_EQ(s.post_pool, 4);
  EXPECT_EQ(s.post_policy, PostPolicy::kPoolThenRetired);
}

TEST(Redistribute, PaperExampleR53) {
  // §4.2 Improvement 1: "3 groups with 8 resources and 4 groups with 7
  // resources and 1 resource for the post processing tasks".
  const auto c = platform::make_builtin_cluster(1, 53);
  const GroupSchedule s = redistribute_grouping(c, kPaper);
  EXPECT_EQ(histogram(s), (std::map<ProcCount, int>{{8, 3}, {7, 4}}));
  EXPECT_EQ(s.post_pool, 1);
  EXPECT_EQ(s.total_resources(), 53);
}

TEST(AllForMain, UsesEverythingForGroups) {
  const auto c = platform::make_builtin_cluster(1, 53);
  const GroupSchedule s = all_for_main_grouping(c, kPaper);
  EXPECT_EQ(s.post_pool, 0);
  EXPECT_EQ(s.post_policy, PostPolicy::kAllAtEnd);
  // All 53 fit: base 7x7 = 49 plus 4 spread -> 4 groups of 8, 3 of 7.
  EXPECT_EQ(histogram(s), (std::map<ProcCount, int>{{8, 4}, {7, 3}}));
  EXPECT_EQ(s.main_resources(), 53);
}

TEST(AllForMain, SaturationLeavesProcessorsUnused) {
  // R = 115, NS = 10: basic gives 10 groups of 11 = 110; the 5 spare cannot
  // grow any group past 11, so they stay unused (not in the pool — posts run
  // at the end on the whole cluster anyway).
  const auto c = platform::make_builtin_cluster(1, 115);
  const GroupSchedule s = all_for_main_grouping(c, kPaper);
  EXPECT_EQ(histogram(s), (std::map<ProcCount, int>{{11, 10}}));
  EXPECT_EQ(s.post_pool, 0);
}

TEST(Knapsack, UsesAllProcessorsAtR53) {
  const auto c = platform::make_builtin_cluster(1, 53);
  const GroupSchedule s = knapsack_grouping(c, kPaper);
  s.validate(c);
  EXPECT_LE(s.group_count(), 10);
  // The knapsack objective strictly improves on the basic 7x7 grouping.
  double value = 0;
  for (const ProcCount g : s.group_sizes) value += 1.0 / c.main_time(g);
  EXPECT_GT(value, 7.0 / c.main_time(7));
}

TEST(Knapsack, AbundantResourcesGiveTenElevens) {
  const auto c = platform::make_builtin_cluster(1, 120);
  const GroupSchedule s = knapsack_grouping(c, kPaper);
  EXPECT_EQ(histogram(s), (std::map<ProcCount, int>{{11, 10}}));
  EXPECT_EQ(s.post_pool, 120 - 110);
}

TEST(Knapsack, GroupSizesSortedDescending) {
  const auto c = platform::make_builtin_cluster(1, 47);
  const GroupSchedule s = knapsack_grouping(c, kPaper);
  EXPECT_TRUE(std::is_sorted(s.group_sizes.rbegin(), s.group_sizes.rend()));
}

class HeuristicInvariants
    : public ::testing::TestWithParam<std::tuple<Heuristic, ProcCount>> {};

TEST_P(HeuristicInvariants, ScheduleIsValidAndBounded) {
  const auto [heuristic, resources] = GetParam();
  const auto c = platform::make_builtin_cluster(2, resources);
  const GroupSchedule s = make_schedule(heuristic, c, kPaper);
  EXPECT_NO_THROW(s.validate(c));
  EXPECT_GE(s.group_count(), 1);
  EXPECT_LE(s.group_count(), static_cast<int>(kPaper.scenarios));
  EXPECT_LE(s.total_resources(), resources);
  for (const ProcCount g : s.group_sizes) {
    EXPECT_GE(g, 4);
    EXPECT_LE(g, 11);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeuristicInvariants,
    ::testing::Combine(::testing::Values(Heuristic::kBasic,
                                         Heuristic::kRedistribute,
                                         Heuristic::kAllForMain,
                                         Heuristic::kKnapsack),
                       ::testing::Values<ProcCount>(11, 17, 23, 31, 40, 53, 64,
                                                    77, 90, 101, 120)));

TEST(Heuristics, TooSmallClusterThrows) {
  const auto c = platform::make_builtin_cluster(0, 3);
  for (const Heuristic h :
       {Heuristic::kBasic, Heuristic::kRedistribute, Heuristic::kAllForMain,
        Heuristic::kKnapsack})
    EXPECT_THROW((void)make_schedule(h, c, kPaper), std::invalid_argument) << to_string(h);
}

TEST(Heuristics, Names) {
  EXPECT_STREQ(to_string(Heuristic::kBasic), "basic");
  EXPECT_STREQ(to_string(Heuristic::kKnapsack), "knapsack (imp.3)");
}

TEST(GroupSchedule, DescribeReadsLikeThePaper) {
  const auto c = platform::make_builtin_cluster(1, 53);
  const GroupSchedule s = redistribute_grouping(c, kPaper);
  EXPECT_EQ(s.describe(), "3x8 + 4x7 | pool=1 (pool+retired)");
}

TEST(GroupSchedule, ValidateCatchesOversubscription) {
  const auto c = platform::make_builtin_cluster(1, 20);
  GroupSchedule s;
  s.group_sizes = {11, 11};  // 22 > 20
  EXPECT_THROW(s.validate(c), std::invalid_argument);
  s.group_sizes = {3};  // below min group
  EXPECT_THROW(s.validate(c), std::invalid_argument);
  s.group_sizes = {};
  EXPECT_THROW(s.validate(c), std::invalid_argument);
  s.group_sizes = {11};
  s.post_pool = -1;
  EXPECT_THROW(s.validate(c), std::invalid_argument);
}

TEST(Redistribute, NeverExceedsMaxGroupSize) {
  for (ProcCount r = 11; r <= 130; r += 7) {
    const auto c = platform::make_builtin_cluster(3, r);
    const GroupSchedule s = redistribute_grouping(c, kPaper);
    for (const ProcCount g : s.group_sizes) EXPECT_LE(g, 11) << "R=" << r;
  }
}

TEST(Redistribute, PoolNeverLargerThanBasic) {
  for (ProcCount r = 11; r <= 130; r += 3) {
    const auto c = platform::make_builtin_cluster(1, r);
    const GroupSchedule basic = basic_grouping(c, kPaper);
    const GroupSchedule redist = redistribute_grouping(c, kPaper);
    EXPECT_LE(redist.post_pool, basic.post_pool) << "R=" << r;
    EXPECT_GE(redist.main_resources(), basic.main_resources()) << "R=" << r;
  }
}

}  // namespace
}  // namespace oagrid::sched
