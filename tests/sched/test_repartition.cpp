#include "sched/repartition.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace oagrid::sched {
namespace {

/// Linear performance vectors: cluster c runs k scenarios in k * unit[c]
/// (what a cluster with perfect scaling and fixed per-scenario cost gives).
std::vector<PerformanceVector> linear_perf(std::vector<Seconds> units,
                                           Count ns) {
  std::vector<PerformanceVector> perf;
  for (const Seconds u : units) {
    PerformanceVector v;
    for (Count k = 1; k <= ns; ++k) v.push_back(u * static_cast<double>(k));
    perf.push_back(std::move(v));
  }
  return perf;
}

TEST(Repartition, ValidationErrors) {
  EXPECT_THROW((void)greedy_repartition({}, 3), std::invalid_argument);
  const auto perf = linear_perf({1.0}, 2);
  EXPECT_THROW((void)greedy_repartition(perf, 0), std::invalid_argument);
  EXPECT_THROW((void)greedy_repartition(perf, 5), std::invalid_argument);
}

TEST(Repartition, SingleClusterTakesEverything) {
  const auto perf = linear_perf({10.0}, 4);
  const Repartition r = greedy_repartition(perf, 4);
  EXPECT_EQ(r.dags_per_cluster, std::vector<Count>{4});
  EXPECT_DOUBLE_EQ(r.makespan, 40.0);
  EXPECT_EQ(r.assignment.size(), 4u);
}

TEST(Repartition, EqualClustersSplitEvenly) {
  const auto perf = linear_perf({10.0, 10.0}, 6);
  const Repartition r = greedy_repartition(perf, 6);
  EXPECT_EQ(r.dags_per_cluster, (std::vector<Count>{3, 3}));
  EXPECT_DOUBLE_EQ(r.makespan, 30.0);
}

TEST(Repartition, FasterClusterGetsMoreDags) {
  // Paper §7: "The faster, the more DAGs it has to execute."
  const auto perf = linear_perf({10.0, 20.0}, 6);
  const Repartition r = greedy_repartition(perf, 6);
  EXPECT_GT(r.dags_per_cluster[0], r.dags_per_cluster[1]);
  EXPECT_EQ(r.total_dags(), 6);
}

TEST(Repartition, TiesGoToLowestClusterId) {
  const auto perf = linear_perf({10.0, 10.0}, 1);
  const Repartition r = greedy_repartition(perf, 1);
  EXPECT_EQ(r.dags_per_cluster, (std::vector<Count>{1, 0}));
  EXPECT_EQ(r.assignment, std::vector<ClusterId>{0});
}

TEST(Repartition, MakespanHelperIgnoresEmptyClusters) {
  const auto perf = linear_perf({10.0, 99.0}, 3);
  const std::vector<Count> dist{3, 0};
  EXPECT_DOUBLE_EQ(repartition_makespan(perf, dist), 30.0);
}

TEST(Repartition, MakespanHelperValidates) {
  const auto perf = linear_perf({10.0}, 2);
  const std::vector<Count> too_many{5};
  EXPECT_THROW((void)repartition_makespan(perf, too_many),
               std::invalid_argument);
  const std::vector<Count> wrong_width{1, 1};
  EXPECT_THROW((void)repartition_makespan(perf, wrong_width),
               std::invalid_argument);
}

TEST(Repartition, GreedyOptimalOnLinearVectors) {
  // With monotone "linear" vectors the greedy matches the brute force.
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Seconds> units;
    const int n = static_cast<int>(rng.uniform_int(1, 4));
    for (int c = 0; c < n; ++c) units.push_back(rng.uniform(1.0, 30.0));
    const Count ns = rng.uniform_int(1, 8);
    const auto perf = linear_perf(units, ns);
    const Repartition greedy = greedy_repartition(perf, ns);
    const Repartition best = brute_force_repartition(perf, ns);
    EXPECT_NEAR(greedy.makespan, best.makespan, 1e-9) << "trial " << trial;
  }
}

TEST(Repartition, GreedyLocallyOptimalOnMonotoneVectors) {
  // The paper's claim: once placed, moving one scenario cannot help. Verify
  // on random *monotone* vectors (the shape real simulations produce).
  Rng rng(6);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 5));
    const Count ns = rng.uniform_int(2, 8);
    std::vector<PerformanceVector> perf(static_cast<std::size_t>(n));
    for (auto& v : perf) {
      Seconds t = rng.uniform(5.0, 50.0);
      for (Count k = 0; k < ns; ++k) {
        v.push_back(t);
        t += rng.uniform(1.0, 20.0);  // strictly increasing
      }
    }
    const Repartition greedy = greedy_repartition(perf, ns);
    EXPECT_TRUE(is_locally_optimal(perf, greedy)) << "trial " << trial;
  }
}

TEST(Repartition, GreedyGloballyOptimalOnRandomMonotoneVectors) {
  // Stronger than the paper's local-optimality claim: with non-decreasing
  // performance vectors (the shape real simulations produce) the greedy is
  // globally optimal — a threshold/exchange argument shows any distribution
  // below the greedy's makespan would need more capacity than exists.
  Rng rng(8);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    const Count ns = rng.uniform_int(2, 7);
    std::vector<PerformanceVector> perf(static_cast<std::size_t>(n));
    for (auto& v : perf) {
      Seconds t = rng.uniform(5.0, 50.0);
      for (Count k = 0; k < ns; ++k) {
        v.push_back(t);
        t += rng.uniform(0.0, 20.0);  // non-decreasing
      }
    }
    const Repartition greedy = greedy_repartition(perf, ns);
    const Repartition best = brute_force_repartition(perf, ns);
    EXPECT_NEAR(greedy.makespan, best.makespan, 1e-9) << "trial " << trial;
  }
}

TEST(Repartition, GreedyCanMissOptimumOnNonMonotoneVectors) {
  // The optimality argument needs monotone vectors. A (pathological)
  // decreasing vector defeats the greedy: cluster 0 runs two scenarios
  // faster than one (imagine a grouping that only clicks at k = 2).
  std::vector<PerformanceVector> perf{
      {10.0, 5.0},  // cluster 0 — non-monotone
      {6.0, 100.0}, // cluster 1
  };
  const Repartition greedy = greedy_repartition(perf, 2);
  const Repartition best = brute_force_repartition(perf, 2);
  EXPECT_DOUBLE_EQ(greedy.makespan, 10.0);  // d1 -> c1 (6), d2 -> c0 (10)
  EXPECT_DOUBLE_EQ(best.makespan, 5.0);     // both on c0
  EXPECT_LT(best.makespan, greedy.makespan);
}

TEST(ChargedRepartition, NullChargeIsBitIdentical) {
  const auto perf = linear_perf({10.0, 13.0, 17.0}, 7);
  const Repartition plain = greedy_repartition(perf, 7);
  const Repartition charged = greedy_repartition_charged(perf, 7, nullptr);
  EXPECT_EQ(charged.dags_per_cluster, plain.dags_per_cluster);
  EXPECT_EQ(charged.assignment, plain.assignment);
  EXPECT_EQ(charged.makespan, plain.makespan);  // exact, not NEAR
}

TEST(ChargedRepartition, ZeroChargeIsBitIdentical) {
  // 0.0 + x == x in IEEE arithmetic, so even tie-breaks are preserved.
  const auto perf = linear_perf({10.0, 10.0, 25.0}, 6);
  const Repartition plain = greedy_repartition(perf, 6);
  const Repartition charged = greedy_repartition_charged(
      perf, 6, [](std::size_t, Count) { return 0.0; });
  EXPECT_EQ(charged.dags_per_cluster, plain.dags_per_cluster);
  EXPECT_EQ(charged.assignment, plain.assignment);
  EXPECT_EQ(charged.makespan, plain.makespan);
}

TEST(ChargedRepartition, ChargeSteersPlacementAwayFromExpensiveCluster) {
  // Two equal clusters; without charges the scenarios split evenly. Make
  // placing anything on cluster 1 cost more than the whole campaign and the
  // greedy keeps everything at cluster 0.
  const auto perf = linear_perf({10.0, 10.0}, 4);
  const Repartition plain = greedy_repartition(perf, 4);
  EXPECT_EQ(plain.dags_per_cluster, (std::vector<Count>{2, 2}));

  const Repartition charged = greedy_repartition_charged(
      perf, 4, [](std::size_t cluster, Count k) {
        return cluster == 1 ? 1000.0 * static_cast<double>(k) : 0.0;
      });
  EXPECT_EQ(charged.dags_per_cluster, (std::vector<Count>{4, 0}));
  EXPECT_DOUBLE_EQ(charged.makespan, 40.0);
}

TEST(ChargedRepartition, MakespanIncludesTheCharge) {
  const auto perf = linear_perf({10.0}, 3);
  const Repartition charged = greedy_repartition_charged(
      perf, 3, [](std::size_t, Count k) { return 5.0 * static_cast<double>(k); });
  EXPECT_EQ(charged.dags_per_cluster, std::vector<Count>{3});
  EXPECT_DOUBLE_EQ(charged.makespan, 30.0 + 15.0);
}

TEST(ChargedRepartition, ModerateChargeShiftsTheSplit) {
  // A per-file shipping cost on the remote cluster shifts load toward the
  // home cluster without emptying the remote one — the break-even behavior
  // the network-aware scheduler relies on.
  const auto perf = linear_perf({10.0, 10.0}, 8);
  const Repartition charged = greedy_repartition_charged(
      perf, 8, [](std::size_t cluster, Count k) {
        return cluster == 1 ? 8.0 * static_cast<double>(k) : 0.0;
      });
  EXPECT_EQ(charged.total_dags(), 8);
  EXPECT_GT(charged.dags_per_cluster[0], charged.dags_per_cluster[1]);
  EXPECT_GT(charged.dags_per_cluster[1], 0);
}

/// The pre-heap Algorithm 1: a full-cluster strict-'<' scan per scenario.
/// Kept as the reference oracle for the heap implementation's byte-for-byte
/// equivalence claim.
Repartition reference_scan_repartition(
    std::span<const PerformanceVector> performance, Count scenarios,
    const PlacementCharge& charge) {
  Repartition result;
  result.dags_per_cluster.assign(performance.size(), 0);
  for (Count dag = 0; dag < scenarios; ++dag) {
    Seconds best = std::numeric_limits<Seconds>::infinity();
    std::size_t best_cluster = 0;
    for (std::size_t c = 0; c < performance.size(); ++c) {
      const auto next = static_cast<std::size_t>(result.dags_per_cluster[c]);
      Seconds candidate = performance[c][next];
      if (charge) candidate += charge(c, static_cast<Count>(next) + 1);
      if (candidate < best) {
        best = candidate;
        best_cluster = c;
      }
    }
    ++result.dags_per_cluster[best_cluster];
    result.assignment.push_back(static_cast<ClusterId>(best_cluster));
  }
  for (std::size_t c = 0; c < performance.size(); ++c) {
    const Count k = result.dags_per_cluster[c];
    if (k > 0) {
      Seconds load = performance[c][static_cast<std::size_t>(k) - 1];
      if (charge) load += charge(c, k);
      result.makespan = std::max(result.makespan, load);
    }
  }
  return result;
}

TEST(Repartition, HeapMatchesReferenceScanOnRandomVectors) {
  // The heap rewrite must reproduce the scan's assignments byte for byte on
  // arbitrary monotone vectors — same dag order, same cluster ids, same
  // makespan (EXPECT_EQ, not NEAR).
  Rng rng(0x48454150);  // "HEAP"
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    const Count ns = rng.uniform_int(1, 20);
    std::vector<PerformanceVector> perf(static_cast<std::size_t>(n));
    for (auto& v : perf) {
      Seconds t = rng.uniform(5.0, 50.0);
      for (Count k = 0; k < ns; ++k) {
        v.push_back(t);
        t += rng.uniform(0.0, 20.0);  // non-decreasing
      }
    }
    const Repartition heap = greedy_repartition(perf, ns);
    const Repartition ref = reference_scan_repartition(perf, ns, nullptr);
    EXPECT_EQ(heap.assignment, ref.assignment) << "trial " << trial;
    EXPECT_EQ(heap.dags_per_cluster, ref.dags_per_cluster) << "trial " << trial;
    EXPECT_EQ(heap.makespan, ref.makespan) << "trial " << trial;
  }
}

TEST(Repartition, HeapMatchesReferenceScanUnderExactTies) {
  // Values drawn from a tiny discrete set force frequent exact double ties;
  // the heap's (value, cluster id) order must still pick the same first
  // argmin the scan does.
  Rng rng(0x54494553);  // "TIES"
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    const Count ns = rng.uniform_int(2, 16);
    std::vector<PerformanceVector> perf(static_cast<std::size_t>(n));
    for (auto& v : perf) {
      Seconds t = static_cast<double>(rng.uniform_int(1, 3));
      for (Count k = 0; k < ns; ++k) {
        v.push_back(t);
        t += static_cast<double>(rng.uniform_int(0, 2));  // many plateaus
      }
    }
    const Repartition heap = greedy_repartition(perf, ns);
    const Repartition ref = reference_scan_repartition(perf, ns, nullptr);
    EXPECT_EQ(heap.assignment, ref.assignment) << "trial " << trial;
    EXPECT_EQ(heap.makespan, ref.makespan) << "trial " << trial;
  }
}

TEST(ChargedRepartition, HeapMatchesReferenceScanWithCharges) {
  Rng rng(0x43484752);  // "CHGR"
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    const Count ns = rng.uniform_int(2, 16);
    std::vector<PerformanceVector> perf(static_cast<std::size_t>(n));
    for (auto& v : perf) {
      Seconds t = rng.uniform(5.0, 50.0);
      for (Count k = 0; k < ns; ++k) {
        v.push_back(t);
        t += rng.uniform(0.0, 20.0);
      }
    }
    const double rate = rng.uniform(0.0, 10.0);
    const PlacementCharge charge = [rate](std::size_t cluster, Count k) {
      return rate * static_cast<double>(cluster) * static_cast<double>(k);
    };
    const Repartition heap = greedy_repartition_charged(perf, ns, charge);
    const Repartition ref = reference_scan_repartition(perf, ns, charge);
    EXPECT_EQ(heap.assignment, ref.assignment) << "trial " << trial;
    EXPECT_EQ(heap.dags_per_cluster, ref.dags_per_cluster) << "trial " << trial;
    EXPECT_EQ(heap.makespan, ref.makespan) << "trial " << trial;
  }
}

TEST(Repartition, BruteForceAssignmentConsistent) {
  const auto perf = linear_perf({10.0, 15.0}, 5);
  const Repartition best = brute_force_repartition(perf, 5);
  EXPECT_EQ(best.assignment.size(), 5u);
  std::vector<Count> counted(2, 0);
  for (const ClusterId c : best.assignment)
    ++counted[static_cast<std::size_t>(c)];
  EXPECT_EQ(counted, best.dags_per_cluster);
}

}  // namespace
}  // namespace oagrid::sched
