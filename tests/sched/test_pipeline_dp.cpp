#include "sched/pipeline_dp.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oagrid::sched {
namespace {

PipelineStage stage(const std::string& name, Seconds base, ProcCount lo,
                    ProcCount hi) {
  PipelineStage s;
  s.name = name;
  s.time = [base](ProcCount p) { return base / static_cast<double>(p); };
  s.min_procs = lo;
  s.max_procs = hi;
  return s;
}

TEST(PipelineStage, ClampingRules) {
  const PipelineStage s = stage("s", 12, 2, 4);
  EXPECT_EQ(s.time_clamped(1), kInfiniteTime);
  EXPECT_DOUBLE_EQ(s.time_clamped(2), 6);
  EXPECT_DOUBLE_EQ(s.time_clamped(4), 3);
  EXPECT_DOUBLE_EQ(s.time_clamped(10), 3);  // extra procs idle
}

TEST(Pipeline, SingleStageUsesWholeMachine) {
  const std::vector<PipelineStage> stages{stage("a", 12, 1, 8)};
  const PipelinePlan plan = max_throughput_partition(stages, 4);
  ASSERT_TRUE(plan.feasible());
  ASSERT_EQ(plan.modules.size(), 1u);
  EXPECT_EQ(plan.modules[0].procs, 4);
  EXPECT_DOUBLE_EQ(plan.period, 3.0);
  EXPECT_DOUBLE_EQ(plan.latency, 3.0);
}

TEST(Pipeline, InfeasibleWhenStageNeedsMoreThanMachine) {
  const std::vector<PipelineStage> stages{stage("a", 12, 8, 8)};
  const PipelinePlan plan = max_throughput_partition(stages, 4);
  EXPECT_FALSE(plan.feasible());
  EXPECT_EQ(plan.makespan_for(10), kInfiniteTime);
}

TEST(Pipeline, TwoEqualStagesSplitEvenly) {
  const std::vector<PipelineStage> stages{stage("a", 10, 1, 8),
                                          stage("b", 10, 1, 8)};
  const PipelinePlan plan = max_throughput_partition(stages, 4);
  ASSERT_TRUE(plan.feasible());
  // Either one module of 4 (period 5) or two modules of 2 (period 5): the
  // bottleneck period is 5 in both splits.
  EXPECT_DOUBLE_EQ(plan.period, 5.0);
}

TEST(Pipeline, UnevenStagesGetProportionalShares) {
  // Stage a is 3x heavier. Splitting 4 procs as 3 + 1 gives periods (10, 10);
  // a single fused module of 4 also reaches (30+10)/4 = 10. The optimal
  // bottleneck is 10 either way — the DP must find it, and with 5 procs the
  // split 3 + 2 strictly wins (period 10 vs fused 8 ... fused (40/5)=8 wins
  // there, so check 10 at 4 procs and 8 at 5).
  const std::vector<PipelineStage> stages{stage("a", 30, 1, 8),
                                          stage("b", 10, 1, 8)};
  EXPECT_DOUBLE_EQ(max_throughput_partition(stages, 4).period, 10.0);
  EXPECT_DOUBLE_EQ(max_throughput_partition(stages, 5).period, 8.0);
}

TEST(Pipeline, ClusteringWinsWhenProcessorsScarce) {
  // 1 processor: both stages must share it (one module), period 20.
  const std::vector<PipelineStage> stages{stage("a", 10, 1, 8),
                                          stage("b", 10, 1, 8)};
  const PipelinePlan plan = max_throughput_partition(stages, 1);
  ASSERT_TRUE(plan.feasible());
  EXPECT_EQ(plan.modules.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.period, 20.0);
}

TEST(Pipeline, MakespanFormula) {
  const std::vector<PipelineStage> stages{stage("a", 10, 1, 8),
                                          stage("b", 10, 1, 8)};
  const PipelinePlan plan = max_throughput_partition(stages, 2);
  // Two modules of 1 proc each: period 10, latency 20.
  EXPECT_DOUBLE_EQ(plan.makespan_for(1), plan.latency);
  EXPECT_DOUBLE_EQ(plan.makespan_for(5), plan.latency + 4 * plan.period);
}

TEST(Pipeline, MinLatencyRespectsPeriodBound) {
  const std::vector<PipelineStage> stages{stage("a", 10, 1, 8),
                                          stage("b", 10, 1, 8)};
  // Loose bound: one module of 2 procs gives latency 10 (sum on 2 procs).
  const PipelinePlan loose = min_latency_partition(stages, 2, 100.0);
  ASSERT_TRUE(loose.feasible());
  EXPECT_DOUBLE_EQ(loose.latency, 10.0);
  // Tight bound 10: the single module (period 10) still qualifies.
  const PipelinePlan tight = min_latency_partition(stages, 2, 10.0);
  ASSERT_TRUE(tight.feasible());
  EXPECT_LE(tight.period, 10.0 + 1e-9);
  // Impossible bound.
  const PipelinePlan none = min_latency_partition(stages, 2, 1.0);
  EXPECT_FALSE(none.feasible());
}

TEST(Pipeline, ModulesCoverAllStagesInOrder) {
  const std::vector<PipelineStage> stages{
      stage("a", 5, 1, 4), stage("b", 7, 1, 4), stage("c", 3, 1, 4)};
  const PipelinePlan plan = max_throughput_partition(stages, 6);
  ASSERT_TRUE(plan.feasible());
  int next = 0;
  for (const auto& m : plan.modules) {
    EXPECT_EQ(m.first_stage, next);
    EXPECT_LE(m.first_stage, m.last_stage);
    next = m.last_stage + 1;
  }
  EXPECT_EQ(next, 3);
}

TEST(Pipeline, EnsembleSplitWorstCase) {
  const std::vector<PipelineStage> stages{stage("a", 12, 1, 8)};
  // 5 procs over 2 scenarios: shares 3 and 2 -> worst period 6.
  const Seconds ms = pipeline_ensemble_makespan(stages, 5, 2, 10);
  EXPECT_DOUBLE_EQ(ms, 6.0 + 9 * 6.0);
  // Too many scenarios for the procs.
  EXPECT_EQ(pipeline_ensemble_makespan(stages, 1, 2, 10), kInfiniteTime);
}

TEST(Pipeline, Validation) {
  const std::vector<PipelineStage> stages{stage("a", 5, 1, 4)};
  EXPECT_THROW((void)max_throughput_partition({}, 4), std::invalid_argument);
  EXPECT_THROW((void)max_throughput_partition(stages, 0),
               std::invalid_argument);
  EXPECT_THROW((void)min_latency_partition(stages, 4, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sched
