#include "sched/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/grid_sim.hpp"

namespace oagrid::sched {
namespace {

using appmodel::Ensemble;

TEST(LowerBounds, MinHelpersOnMonotoneTable) {
  const auto c = platform::make_builtin_cluster(1, 40);
  // Monotone table: min time at the largest group. Min area sits at the
  // efficiency sweet spot — the 4-proc group pays the full sequential
  // atmosphere, larger groups amortize it until overhead wins (G = 7 here).
  EXPECT_DOUBLE_EQ(min_main_time(c), c.main_time(11));
  double expected = kInfiniteTime;
  ProcCount argmin = 0;
  for (ProcCount g = 4; g <= 11; ++g) {
    const double area = static_cast<double>(g) * c.main_time(g);
    if (area < expected) {
      expected = area;
      argmin = g;
    }
  }
  EXPECT_DOUBLE_EQ(min_main_area(c), expected);
  EXPECT_EQ(argmin, 7);
}

TEST(LowerBounds, ChainBoundDominatesWhenScenariosFew) {
  // 1 scenario, many processors: the chain is the binding constraint.
  const auto c = platform::make_builtin_cluster(1, 110);
  const Ensemble e{1, 40};
  const MakespanBounds b = ensemble_lower_bounds(c, e);
  EXPECT_GT(b.chain_bound, b.area_bound);
  EXPECT_DOUBLE_EQ(b.combined(), b.chain_bound);
}

TEST(LowerBounds, AreaBoundDominatesWhenProcessorsFew) {
  const auto c = platform::make_builtin_cluster(1, 11);
  const Ensemble e{10, 40};
  const MakespanBounds b = ensemble_lower_bounds(c, e);
  EXPECT_GT(b.area_bound, b.chain_bound);
}

TEST(LowerBounds, EveryHeuristicRespectsTheBound) {
  const Ensemble e{10, 30};
  for (ProcCount r = 11; r <= 120; r += 13) {
    for (int profile = 0; profile < 5; profile += 2) {
      const auto c = platform::make_builtin_cluster(profile, r);
      const Seconds bound = ensemble_lower_bounds(c, e).combined();
      for (const auto h :
           {Heuristic::kBasic, Heuristic::kRedistribute, Heuristic::kAllForMain,
            Heuristic::kKnapsack}) {
        const Seconds ms = sim::simulate_with_heuristic(c, h, e).makespan;
        EXPECT_GE(ms, bound - 1e-6)
            << to_string(h) << " R=" << r << " profile=" << profile;
      }
    }
  }
}

TEST(LowerBounds, KnapsackNearBoundAtAbundantResources) {
  // With NS groups of 11 the chain bound is tight up to the post tail.
  const auto c = platform::make_builtin_cluster(1, 110);
  const Ensemble e{10, 30};
  const Seconds bound = ensemble_lower_bounds(c, e).combined();
  const Seconds ms =
      sim::simulate_with_heuristic(c, Heuristic::kKnapsack, e).makespan;
  EXPECT_LT(ms / bound, 1.02);
}

TEST(LowerBounds, GridBoundsRespected) {
  const Ensemble e{10, 20};
  for (ProcCount r = 15; r <= 60; r += 15) {
    const auto grid = platform::make_builtin_grid(r);
    const Seconds bound = grid_lower_bounds(grid, e).combined();
    const Seconds ms =
        sim::simulate_grid(grid, e, Heuristic::kKnapsack).makespan;
    EXPECT_GE(ms, bound - 1e-6) << "R=" << r;
  }
}

TEST(LowerBounds, GridChainUsesFastestCluster) {
  const auto grid = platform::make_builtin_grid(200);
  const Ensemble e{1, 10};
  const MakespanBounds b = grid_lower_bounds(grid, e);
  const auto fastest = platform::make_builtin_cluster(0, 200);
  EXPECT_DOUBLE_EQ(
      b.chain_bound,
      10.0 * min_main_time(fastest) + fastest.post_time());
}

TEST(LowerBounds, Validation) {
  const auto c = platform::make_builtin_cluster(1, 20);
  EXPECT_THROW((void)ensemble_lower_bounds(c, Ensemble{0, 5}),
               std::invalid_argument);
  const platform::Grid empty;
  EXPECT_THROW((void)grid_lower_bounds(empty, Ensemble{2, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sched
