#include "sched/list_scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oagrid::sched {
namespace {

dag::TaskSpec rigid(const std::string& name, Seconds t, ProcCount p = 1) {
  dag::TaskSpec s;
  s.name = name;
  s.ref_duration = t;
  s.procs = p;
  return s;
}

dag::TaskSpec moldable(const std::string& name, Seconds t, ProcCount lo,
                       ProcCount hi) {
  dag::TaskSpec s;
  s.name = name;
  s.shape = dag::TaskShape::kMoldable;
  s.ref_duration = t;
  s.min_procs = lo;
  s.max_procs = hi;
  return s;
}

MoldableDuration ref_duration(const dag::Dag& g) {
  return [&g](dag::NodeId v, ProcCount p) {
    // Perfect scaling from the reference duration for moldable tasks.
    const dag::TaskSpec& spec = g.task(v);
    if (spec.shape == dag::TaskShape::kMoldable)
      return spec.ref_duration / static_cast<double>(p);
    return spec.ref_duration;
  };
}

TEST(Allotment, MinimalUsesMinWidths) {
  dag::Dag g;
  g.add_task(rigid("r", 1, 3));
  g.add_task(moldable("m", 10, 2, 8));
  g.freeze();
  const Allotment a = Allotment::minimal(g);
  EXPECT_EQ(a.procs, (std::vector<ProcCount>{3, 2}));
}

TEST(BottomLevels, ChainAccumulates) {
  dag::Dag g;
  const auto a = g.add_task(rigid("a", 5));
  const auto b = g.add_task(rigid("b", 3));
  const auto c = g.add_task(rigid("c", 2));
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.freeze();
  const auto levels = bottom_levels(g, Allotment::minimal(g), ref_duration(g));
  EXPECT_DOUBLE_EQ(levels[static_cast<std::size_t>(a)], 10);
  EXPECT_DOUBLE_EQ(levels[static_cast<std::size_t>(b)], 5);
  EXPECT_DOUBLE_EQ(levels[static_cast<std::size_t>(c)], 2);
}

TEST(ListSchedule, SerialChainOnOneProcessor) {
  dag::Dag g;
  const auto a = g.add_task(rigid("a", 5));
  const auto b = g.add_task(rigid("b", 3));
  g.add_edge(a, b);
  g.freeze();
  const auto result = list_schedule(g, Allotment::minimal(g), 1, ref_duration(g));
  EXPECT_DOUBLE_EQ(result.makespan, 8);
  EXPECT_DOUBLE_EQ(result.start[static_cast<std::size_t>(b)], 5);
}

TEST(ListSchedule, IndependentTasksRunInParallel) {
  dag::Dag g;
  g.add_task(rigid("a", 5));
  g.add_task(rigid("b", 5));
  g.freeze();
  EXPECT_DOUBLE_EQ(
      list_schedule(g, Allotment::minimal(g), 2, ref_duration(g)).makespan, 5);
  EXPECT_DOUBLE_EQ(
      list_schedule(g, Allotment::minimal(g), 1, ref_duration(g)).makespan, 10);
}

TEST(ListSchedule, WideTaskWaitsForEnoughProcessors) {
  dag::Dag g;
  g.add_task(rigid("narrow", 4, 1));
  g.add_task(rigid("wide", 2, 3));
  g.freeze();
  // 3 processors: "wide" (bottom level 2) < "narrow" (4): narrow first on 1
  // proc, wide needs 3 -> starts immediately too (3 free at t=0? narrow took
  // one, wide needs 3 of 3 -> waits until t=4).
  const auto result = list_schedule(g, Allotment::minimal(g), 3, ref_duration(g));
  EXPECT_DOUBLE_EQ(result.start[0], 0);
  EXPECT_DOUBLE_EQ(result.start[1], 4);
  EXPECT_DOUBLE_EQ(result.makespan, 6);
}

TEST(ListSchedule, HigherPriorityGoesFirst) {
  dag::Dag g;
  const auto small = g.add_task(rigid("small", 1));
  const auto big = g.add_task(rigid("big", 9));
  g.freeze();
  const auto result = list_schedule(g, Allotment::minimal(g), 1, ref_duration(g));
  // Bottom level of big (9) beats small (1): big runs first.
  EXPECT_DOUBLE_EQ(result.start[static_cast<std::size_t>(big)], 0);
  EXPECT_DOUBLE_EQ(result.start[static_cast<std::size_t>(small)], 9);
}

TEST(ListSchedule, MoldableAllotmentShortensTask) {
  dag::Dag g;
  g.add_task(moldable("m", 12, 1, 4));
  g.freeze();
  Allotment a = Allotment::minimal(g);
  EXPECT_DOUBLE_EQ(list_schedule(g, a, 4, ref_duration(g)).makespan, 12);
  a.procs[0] = 4;
  EXPECT_DOUBLE_EQ(list_schedule(g, a, 4, ref_duration(g)).makespan, 3);
}

TEST(ListSchedule, DependenciesRespectedUnderContention) {
  // Two chains sharing one processor: finish times must nest correctly.
  dag::Dag g;
  const auto a1 = g.add_task(rigid("a1", 2));
  const auto a2 = g.add_task(rigid("a2", 2));
  const auto b1 = g.add_task(rigid("b1", 3));
  const auto b2 = g.add_task(rigid("b2", 3));
  g.add_edge(a1, a2);
  g.add_edge(b1, b2);
  g.freeze();
  const auto result = list_schedule(g, Allotment::minimal(g), 1, ref_duration(g));
  EXPECT_DOUBLE_EQ(result.makespan, 10);
  EXPECT_GE(result.start[static_cast<std::size_t>(a2)],
            result.finish[static_cast<std::size_t>(a1)]);
  EXPECT_GE(result.start[static_cast<std::size_t>(b2)],
            result.finish[static_cast<std::size_t>(b1)]);
}

TEST(ListSchedule, Validation) {
  dag::Dag g;
  g.add_task(rigid("a", 1, 4));
  g.freeze();
  const Allotment a = Allotment::minimal(g);
  EXPECT_THROW((void)list_schedule(g, a, 3, ref_duration(g)),
               std::invalid_argument);  // allotment 4 > resources 3
  EXPECT_THROW((void)list_schedule(g, a, 0, ref_duration(g)),
               std::invalid_argument);
  Allotment wrong;
  EXPECT_THROW((void)list_schedule(g, wrong, 4, ref_duration(g)),
               std::invalid_argument);
  dag::Dag unfrozen;
  unfrozen.add_task(rigid("x", 1));
  EXPECT_THROW((void)list_schedule(unfrozen, Allotment{{1}}, 1,
                                   ref_duration(unfrozen)),
               std::invalid_argument);
}

TEST(ListSchedule, MakespanNeverBelowCriticalPathOrArea) {
  dag::Dag g;
  const auto a = g.add_task(rigid("a", 5));
  const auto b = g.add_task(rigid("b", 7));
  const auto c = g.add_task(rigid("c", 3));
  g.add_edge(a, c);
  g.add_edge(b, c);
  g.freeze();
  for (ProcCount r = 1; r <= 4; ++r) {
    const auto result =
        list_schedule(g, Allotment::minimal(g), r, ref_duration(g));
    EXPECT_GE(result.makespan, 10.0);                       // critical path
    EXPECT_GE(result.makespan, 15.0 / static_cast<double>(r) - 1e-9);  // area
  }
}

}  // namespace
}  // namespace oagrid::sched
