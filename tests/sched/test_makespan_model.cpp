#include "sched/makespan_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "platform/profiles.hpp"

namespace oagrid::sched {
namespace {

using appmodel::Ensemble;
using platform::Cluster;

/// Synthetic cluster with easy numbers: TG = 100 for every G in [4, 11],
/// TP = 10 (so floor(TG/TP) = 10 posts per processor per set).
Cluster flat_cluster(ProcCount resources) {
  return Cluster("flat", resources, 4,
                 {100, 100, 100, 100, 100, 100, 100, 100}, 10.0);
}

TEST(MakespanModel, InfeasibleWhenClusterSmallerThanGroup) {
  // resources = 5 supports G = 4 and 5 but not more. G = 5 uses the whole
  // cluster for one group: R2 = 0, nbused = 0 -> Equation 2.
  const Cluster c = flat_cluster(5);
  const auto e = evaluate_uniform_grouping(c, Ensemble{2, 3}, 5);
  EXPECT_EQ(e.regime, MakespanRegime::kNoPoolExact);
  EXPECT_THROW(
      (void)evaluate_uniform_grouping(c, Ensemble{2, 3}, 12),
      std::invalid_argument);  // outside table range
  const auto e6 = evaluate_uniform_grouping(flat_cluster(5).with_resources(4),
                                            Ensemble{2, 3}, 5);
  EXPECT_EQ(e6.regime, MakespanRegime::kInfeasible);
  EXPECT_EQ(e6.makespan, kInfiniteTime);
}

TEST(MakespanModel, Equation2NoPoolExact) {
  // R = 8, G = 4 -> nbmax = 2 groups, R2 = 0. NS = 2, NM = 4 -> nbtasks = 8,
  // nbused = 0, n = 4 sets. MSmulti = 400. Posts: ceil(8/8) = 1 wave of 10 s.
  const Cluster c = flat_cluster(8);
  const auto e = evaluate_uniform_grouping(c, Ensemble{2, 4}, 4);
  EXPECT_EQ(e.regime, MakespanRegime::kNoPoolExact);
  EXPECT_EQ(e.nbmax, 2);
  EXPECT_EQ(e.r2, 0);
  EXPECT_EQ(e.nbused, 0);
  EXPECT_EQ(e.sets, 4);
  EXPECT_DOUBLE_EQ(e.main_phase, 400.0);
  EXPECT_DOUBLE_EQ(e.makespan, 410.0);
}

TEST(MakespanModel, Equation3NoPoolPartial) {
  // R = 8, G = 4, NS = 2, NM = 3 -> nbtasks = 6... nbused = 6 mod 2 = 0;
  // use NS = 3, NM = 3 -> nbtasks = 9, nbmax = 2, nbused = 1, n = 5.
  // Rleft = 8 - 4 = 4; absorbed = floor(100/10)*4 = 40 >= 9 - 1, so
  // remPost = 1 + 0 = 1; MS = 500 + ceil(1/8)*10 = 510.
  const Cluster c = flat_cluster(8);
  const auto e = evaluate_uniform_grouping(c, Ensemble{3, 3}, 4);
  EXPECT_EQ(e.regime, MakespanRegime::kNoPoolPartial);
  EXPECT_EQ(e.nbmax, 2);
  EXPECT_EQ(e.nbused, 1);
  EXPECT_EQ(e.sets, 5);
  EXPECT_EQ(e.rem_post, 1);
  EXPECT_DOUBLE_EQ(e.makespan, 510.0);
}

TEST(MakespanModel, Equation4PoolKeepsUp) {
  // R = 9, G = 4 -> nbmax = 2, R2 = 1. Npossible = 10 >= nbmax = 2: no
  // overpass. NS = 2, NM = 4 -> 8 tasks, 4 sets, MSmulti = 400.
  // MS = 400 + ceil(2/9)*10 = 410.
  const Cluster c = flat_cluster(9);
  const auto e = evaluate_uniform_grouping(c, Ensemble{2, 4}, 4);
  EXPECT_EQ(e.regime, MakespanRegime::kPoolExact);
  EXPECT_EQ(e.r2, 1);
  EXPECT_EQ(e.overpass, 0);
  EXPECT_DOUBLE_EQ(e.makespan, 410.0);
}

TEST(MakespanModel, Equation4PoolOverpasses) {
  // Make the pool too small: TP = 60 so floor(TG/TP) = 1 post per proc per
  // set; R = 9, G = 4 -> nbmax = 2, R2 = 1, Npossible = 1 < nbmax = 2.
  // NS = 2, NM = 4: n = 4, overpass = (4-1)*(2-1) = 3, remPost = 5,
  // MS = 400 + ceil(5/9)*60 = 460.
  const Cluster c("slowpost", 9, 4, {100, 100, 100, 100, 100, 100, 100, 100},
                  60.0);
  const auto e = evaluate_uniform_grouping(c, Ensemble{2, 4}, 4);
  EXPECT_EQ(e.regime, MakespanRegime::kPoolExact);
  EXPECT_EQ(e.overpass, 3);
  EXPECT_EQ(e.rem_post, 5);
  EXPECT_DOUBLE_EQ(e.makespan, 460.0);
}

TEST(MakespanModel, Equation5PoolPartial) {
  // R = 9, G = 4, NS = 3, NM = 3 -> nbtasks = 9, nbmax = 2, nbused = 1,
  // n = 5, R2 = 1. TP = 60: Npossible = 1, overpass = (5-2)*(2-1) = 3,
  // overtot = 5. Rleft = 9 - 4 = 5, absorbed = 1*5 = 5 -> remPost = 1.
  // MS = 500 + ceil(1/9)*60 = 560.
  const Cluster c("slowpost", 9, 4, {100, 100, 100, 100, 100, 100, 100, 100},
                  60.0);
  const auto e = evaluate_uniform_grouping(c, Ensemble{3, 3}, 4);
  EXPECT_EQ(e.regime, MakespanRegime::kPoolPartial);
  EXPECT_EQ(e.overpass, 3);
  EXPECT_EQ(e.rem_post, 1);
  EXPECT_DOUBLE_EQ(e.makespan, 560.0);
}

TEST(MakespanModel, Equation5SingleSetClamp) {
  // n = 1 (fewer tasks than nbmax): the paper's (n-2) term is clamped.
  // R = 9, G = 4, NS = 3 but NM = 1 and only 1 task... use NS=1, NM=1:
  // nbmax = min(1, 2) = 1, R1 = 4, R2 = 5 != 0, nbtasks = 1, nbused = 0?
  // 1 mod 1 = 0 -> Eq 4. For nbused != 0 with n = 1: NS = 3, NM = 1,
  // nbmax = 2, nbtasks = 3 -> n = 2. Try NS=5 NM=1, R=24, G=4: nbmax = 5,
  // nbtasks = 5, nbused = 0. Hard to get n=1 with nbused!=0 since
  // nbused != 0 forces a final partial set; n = 1 means the only set is
  // partial: nbtasks < nbmax. NS = 5, NM = 1, R = 44, G = 4 -> nbmax =
  // min(5, 11) = 5, nbtasks = 5, nbused = 0... nbused = nbtasks mod nbmax =
  // 0. With nbmax > nbtasks impossible since nbmax <= NS = nbtasks/NM.
  // NM = 1 => nbtasks = NS >= nbmax, so n = 1 and nbused != 0 requires
  // NS < nbmax, impossible. The clamp is unreachable through the public
  // API — document by asserting Eq4 handles the n=1 path.
  const Cluster c = flat_cluster(44);
  const auto e = evaluate_uniform_grouping(c, Ensemble{5, 1}, 4);
  EXPECT_EQ(e.regime, MakespanRegime::kPoolExact);
  EXPECT_EQ(e.sets, 1);
  EXPECT_DOUBLE_EQ(e.makespan, 100.0 + 10.0);
}

TEST(MakespanModel, BestUniformPicksGlobalMinimum) {
  const platform::Cluster c = platform::make_builtin_cluster(1, 53);
  const UniformChoice choice = best_uniform_grouping(c, Ensemble{10, 150});
  // Exhaustive check against every G.
  for (ProcCount g = 4; g <= 11; ++g) {
    const auto e = evaluate_uniform_grouping(c, Ensemble{10, 150}, g);
    EXPECT_LE(choice.estimate.makespan, e.makespan) << "G=" << g;
  }
}

TEST(MakespanModel, PaperExampleR53BestGroupingIs7) {
  // §4.2: "for R = 53 resources, and 10 scenario simulations, the optimal
  // grouping is G = 7" (7 groups of 7 = 49 processors).
  const platform::Cluster c = platform::make_builtin_cluster(1, 53);
  const UniformChoice choice = best_uniform_grouping(c, Ensemble{10, 150});
  EXPECT_EQ(choice.group_size, 7);
  EXPECT_EQ(choice.estimate.nbmax, 7);
  EXPECT_EQ(choice.estimate.r1, 49);
  EXPECT_EQ(choice.estimate.r2, 4);
}

TEST(MakespanModel, NbmaxCappedByScenarioCount) {
  // Plenty of processors: nbmax must not exceed NS.
  const Cluster c = flat_cluster(120);
  const auto e = evaluate_uniform_grouping(c, Ensemble{3, 5}, 4);
  EXPECT_EQ(e.nbmax, 3);
  EXPECT_EQ(e.r1, 12);
  EXPECT_EQ(e.r2, 108);
}

TEST(MakespanModel, BestGroupingUsesWholeRangeWhenAbundant) {
  // With R >= 11*NS the best uniform grouping is G = 11 (fastest groups,
  // all NS of them) on a monotone table.
  const platform::Cluster c = platform::make_builtin_cluster(1, 110);
  const UniformChoice choice = best_uniform_grouping(c, Ensemble{10, 150});
  EXPECT_EQ(choice.group_size, 11);
  EXPECT_EQ(choice.estimate.nbmax, 10);
}

TEST(MakespanModel, MakespanScalesWithMonths) {
  const platform::Cluster c = platform::make_builtin_cluster(1, 53);
  const auto short_run = evaluate_uniform_grouping(c, Ensemble{10, 12}, 7);
  const auto long_run = evaluate_uniform_grouping(c, Ensemble{10, 24}, 7);
  EXPECT_GT(long_run.makespan, 1.9 * short_run.makespan);
  EXPECT_LT(long_run.makespan, 2.1 * short_run.makespan);
}

TEST(MakespanModel, ZeroPostTimeRejected) {
  const Cluster c("z", 10, 4, {5.0}, 0.0);
  EXPECT_THROW((void)evaluate_uniform_grouping(c, Ensemble{1, 1}, 4),
               std::invalid_argument);
}

TEST(MakespanModel, RegimeNames) {
  EXPECT_STREQ(to_string(MakespanRegime::kNoPoolExact), "Eq2 (R2=0, nbused=0)");
  EXPECT_STREQ(to_string(MakespanRegime::kInfeasible), "infeasible");
}

}  // namespace
}  // namespace oagrid::sched
