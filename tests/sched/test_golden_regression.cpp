/// \file test_golden_regression.cpp
/// \brief Golden pins: exact decision values the reproduction currently
/// produces on the reference profiles. These are not derived from the paper
/// (absolute tables differ); they freeze today's behavior so an accidental
/// change to the profiles, the knapsack tie-breaks or the formulas shows up
/// as a diff here rather than as a silent drift of every figure.

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/makespan_model.hpp"
#include "sim/ensemble_sim.hpp"

namespace oagrid::sched {
namespace {

using appmodel::Ensemble;

TEST(Golden, ReferenceClusterTable) {
  const auto c = platform::make_builtin_cluster(1, 53);
  const double expected[] = {4720.1, 2742.9, 2083.8, 1754.3,
                             1556.6, 1424.8, 1330.6, 1260.0};
  for (ProcCount g = 4; g <= 11; ++g)
    EXPECT_NEAR(c.main_time(g), expected[g - 4], 0.5) << "G=" << g;
  EXPECT_NEAR(c.post_time(), 180.0, 1e-9);
}

TEST(Golden, BestUniformGroupingSamples) {
  const Ensemble e{10, 150};
  const struct {
    ProcCount r;
    ProcCount best_g;
  } pins[] = {{11, 11}, {20, 10}, {31, 6}, {40, 8}, {53, 7},
              {64, 7},  {77, 8},  {90, 9}, {101, 10}, {120, 11}};
  for (const auto& pin : pins) {
    const auto c = platform::make_builtin_cluster(1, pin.r);
    EXPECT_EQ(best_uniform_grouping(c, e).group_size, pin.best_g)
        << "R=" << pin.r;
  }
}

TEST(Golden, KnapsackGroupingsAtKeyResources) {
  const Ensemble e{10, 150};
  const auto describe = [&](ProcCount r) {
    return knapsack_grouping(platform::make_builtin_cluster(1, r), e)
        .describe();
  };
  EXPECT_EQ(describe(53), "5x7 + 3x6 | pool=0 (pool+retired)");
  EXPECT_EQ(describe(64), "1x8 + 8x7 | pool=0 (pool+retired)");
  EXPECT_EQ(describe(110), "10x11 | pool=0 (pool+retired)");
}

TEST(Golden, SimulatedMakespansAtR53) {
  const auto c = platform::make_builtin_cluster(1, 53);
  const Ensemble e{10, 150};
  const struct {
    Heuristic h;
    double makespan;
  } pins[] = {
      {Heuristic::kBasic, 377355.0},
      {Heuristic::kRedistribute, 358058.4},
      {Heuristic::kAllForMain, 356081.0},
      {Heuristic::kKnapsack, 354865.7},
  };
  for (const auto& pin : pins)
    EXPECT_NEAR(sim::simulate_with_heuristic(c, pin.h, e).makespan,
                pin.makespan, 1.0)
        << to_string(pin.h);
}

}  // namespace
}  // namespace oagrid::sched
