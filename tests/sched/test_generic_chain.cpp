#include "sched/generic_chain.hpp"

#include <gtest/gtest.h>

#include "appmodel/month.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"

namespace oagrid::sched {
namespace {

/// The Ocean-Atmosphere fused template as a ChainWorkload.
ChainWorkload oa_workload(Count chains, Count instances) {
  const appmodel::FusedMonth month = appmodel::make_fused_month();
  ChainWorkload w;
  w.template_dag = month.graph;
  w.links = {dag::CrossLink{month.main, month.main, 120.0}};
  w.chains = chains;
  w.instances = instances;
  return w;
}

MoldableDuration oa_duration(const platform::Cluster& cluster) {
  return [&cluster](dag::NodeId v, ProcCount p) -> Seconds {
    // Node 0 = fused main (moldable), node 1 = fused post.
    if (v == 0) return cluster.main_time(p);
    return cluster.post_time();
  };
}

TEST(GenericChain, PeelsThePostTask) {
  const auto cluster = platform::make_builtin_cluster(1, 53);
  const GenericChainScheduler scheduler(oa_workload(10, 150),
                                        oa_duration(cluster), 4, 11);
  // The fused post is rigid, has no moldable descendant and sources no cross
  // link: it is the tail. The fused main sources the cross link: body.
  EXPECT_EQ(scheduler.tail_nodes(), std::vector<dag::NodeId>{1});
  EXPECT_DOUBLE_EQ(scheduler.tail_time(), cluster.post_time());
}

TEST(GenericChain, BodyTimeIsMainTime) {
  const auto cluster = platform::make_builtin_cluster(1, 53);
  const GenericChainScheduler scheduler(oa_workload(10, 150),
                                        oa_duration(cluster), 4, 11);
  for (ProcCount g = 4; g <= 11; ++g)
    EXPECT_DOUBLE_EQ(scheduler.body_time(g), cluster.main_time(g));
}

TEST(GenericChain, ReducesToKnapsackGroupingOnOceanAtmosphere) {
  // The future-work generalization must specialize exactly to Improvement 3
  // on the paper's own workload.
  const appmodel::Ensemble ensemble{10, 150};
  for (const ProcCount r : {17, 23, 31, 40, 53, 64, 77, 90, 110}) {
    const auto cluster = platform::make_builtin_cluster(1, r);
    const GenericChainScheduler scheduler(
        oa_workload(ensemble.scenarios, ensemble.months), oa_duration(cluster),
        4, 11);
    const GroupSchedule generic = scheduler.schedule(r);
    const GroupSchedule knapsack = knapsack_grouping(cluster, ensemble);
    EXPECT_EQ(generic.group_sizes, knapsack.group_sizes) << "R=" << r;
    EXPECT_EQ(generic.post_pool, knapsack.post_pool) << "R=" << r;
  }
}

TEST(GenericChain, VirtualClusterMatchesRealCluster) {
  const auto cluster = platform::make_builtin_cluster(2, 40);
  const GenericChainScheduler scheduler(oa_workload(10, 150),
                                        oa_duration(cluster), 4, 11);
  const platform::Cluster virt = scheduler.virtual_cluster("virt", 40);
  for (ProcCount g = 4; g <= 11; ++g)
    EXPECT_DOUBLE_EQ(virt.main_time(g), cluster.main_time(g));
  EXPECT_DOUBLE_EQ(virt.post_time(), cluster.post_time());
}

TEST(GenericChain, CrossLinkSourceStaysInBody) {
  // Template: moldable work -> rigid relay -> rigid tail, where the relay
  // sources the cross link: only the tail is peeled.
  dag::Dag tmpl;
  dag::TaskSpec work;
  work.name = "work";
  work.shape = dag::TaskShape::kMoldable;
  work.ref_duration = 100;
  work.min_procs = 1;
  work.max_procs = 8;
  const auto w = tmpl.add_task(work);
  dag::TaskSpec relay;
  relay.name = "relay";
  relay.ref_duration = 5;
  const auto rel = tmpl.add_task(relay);
  dag::TaskSpec tail;
  tail.name = "tail";
  tail.ref_duration = 7;
  const auto tl = tmpl.add_task(tail);
  tmpl.add_edge(w, rel);
  tmpl.add_edge(rel, tl);
  tmpl.freeze();

  ChainWorkload workload;
  workload.template_dag = tmpl;
  workload.links = {dag::CrossLink{rel, w, 0.0}};
  workload.chains = 4;
  workload.instances = 10;

  const MoldableDuration duration = [](dag::NodeId v, ProcCount p) -> Seconds {
    if (v == 0) return 100.0 / static_cast<double>(p);
    return v == 1 ? 5.0 : 7.0;
  };
  const GenericChainScheduler scheduler(workload, duration, 1, 8);
  EXPECT_EQ(scheduler.tail_nodes(), std::vector<dag::NodeId>{tl});
  EXPECT_DOUBLE_EQ(scheduler.tail_time(), 7.0);
  // Body = work + relay on the critical path.
  EXPECT_DOUBLE_EQ(scheduler.body_time(4), 25.0 + 5.0);
}

TEST(GenericChain, NoTailWhenEverythingIsLinked) {
  // Every node sources a cross link: nothing peels; tail time is zero and
  // the virtual cluster has a zero post task.
  dag::Dag tmpl;
  dag::TaskSpec work;
  work.name = "w";
  work.shape = dag::TaskShape::kMoldable;
  work.ref_duration = 10;
  work.min_procs = 1;
  work.max_procs = 4;
  tmpl.add_task(work);
  tmpl.freeze();
  ChainWorkload workload;
  workload.template_dag = tmpl;
  workload.links = {dag::CrossLink{0, 0, 0.0}};
  workload.chains = 2;
  workload.instances = 5;
  const GenericChainScheduler scheduler(
      workload,
      [](dag::NodeId, ProcCount p) { return 10.0 / static_cast<double>(p); }, 1,
      4);
  EXPECT_TRUE(scheduler.tail_nodes().empty());
  EXPECT_DOUBLE_EQ(scheduler.tail_time(), 0.0);
  const platform::Cluster virt = scheduler.virtual_cluster("v", 8);
  EXPECT_DOUBLE_EQ(virt.post_time(), 0.0);
}

TEST(GenericChain, MidChainRigidBetweenMoldablesNotPeeled) {
  // rigid between two moldable tasks has a moldable descendant: body.
  dag::Dag tmpl;
  dag::TaskSpec m1;
  m1.name = "m1";
  m1.shape = dag::TaskShape::kMoldable;
  m1.ref_duration = 10;
  m1.min_procs = 1;
  m1.max_procs = 4;
  const auto a = tmpl.add_task(m1);
  dag::TaskSpec r;
  r.name = "mid";
  r.ref_duration = 3;
  const auto b = tmpl.add_task(r);
  dag::TaskSpec m2 = m1;
  m2.name = "m2";
  const auto c = tmpl.add_task(m2);
  tmpl.add_edge(a, b);
  tmpl.add_edge(b, c);
  tmpl.freeze();
  ChainWorkload workload;
  workload.template_dag = tmpl;
  workload.chains = 2;
  workload.instances = 3;
  const GenericChainScheduler scheduler(
      workload,
      [](dag::NodeId v, ProcCount p) {
        return v == 1 ? 3.0 : 10.0 / static_cast<double>(p);
      },
      1, 4);
  EXPECT_TRUE(scheduler.tail_nodes().empty());  // m2 itself is moldable
  EXPECT_DOUBLE_EQ(scheduler.body_time(2), 5.0 + 3.0 + 5.0);
}

TEST(GenericChain, Validation) {
  dag::Dag unfrozen;
  ChainWorkload w;
  w.template_dag = unfrozen;
  EXPECT_THROW(GenericChainScheduler(w, {}, 1, 4), std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sched
