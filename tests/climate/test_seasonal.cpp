#include <gtest/gtest.h>

#include <cmath>

#include "climate/model.hpp"

namespace oagrid::climate {
namespace {

ModelParams seasonal_params(double amplitude) {
  ModelParams p;
  p.nlat = 12;
  p.nlon = 24;
  p.substeps = 10;
  p.seasonal_amplitude = amplitude;
  return p;
}

/// Mid-latitude northern band mean over one simulated year.
std::vector<double> north_band_year(CoupledModel& model) {
  const Region band{"north-midlat", 35, 55, -180, 180};
  std::vector<double> months;
  for (int m = 0; m < 12; ++m) {
    model.step();
    months.push_back(model.atmosphere().regional_mean(band));
  }
  return months;
}

TEST(Seasonal, ZeroAmplitudeGivesSteadyYear) {
  CoupledModel model(seasonal_params(0.0));
  for (int m = 0; m < 120; ++m) model.step();  // spin up
  const auto year = north_band_year(model);
  const double swing = *std::max_element(year.begin(), year.end()) -
                       *std::min_element(year.begin(), year.end());
  EXPECT_LT(swing, 0.5);  // only residual drift, no cycle
}

TEST(Seasonal, CycleAppearsWithAmplitude) {
  CoupledModel model(seasonal_params(0.3));
  for (int m = 0; m < 120; ++m) model.step();
  const auto year = north_band_year(model);
  const double swing = *std::max_element(year.begin(), year.end()) -
                       *std::min_element(year.begin(), year.end());
  EXPECT_GT(swing, 3.0);   // real summer/winter contrast
  EXPECT_LT(swing, 40.0);  // but bounded
}

TEST(Seasonal, HemispheresAreAntiphased) {
  CoupledModel model(seasonal_params(0.3));
  for (int m = 0; m < 120; ++m) model.step();
  const Region north{"n", 35, 55, -180, 180};
  const Region south{"s", -55, -35, -180, 180};
  // Correlate the two bands over a year: northern summer = southern winter.
  double cov = 0, nm = 0, sm = 0;
  std::vector<double> ns, ss;
  for (int m = 0; m < 12; ++m) {
    model.step();
    ns.push_back(model.atmosphere().regional_mean(north));
    ss.push_back(model.atmosphere().regional_mean(south));
    nm += ns.back();
    sm += ss.back();
  }
  nm /= 12;
  sm /= 12;
  for (std::size_t m = 0; m < 12; ++m) cov += (ns[m] - nm) * (ss[m] - sm);
  EXPECT_LT(cov, 0.0);  // anti-correlated
}

TEST(Seasonal, TwelveMonthPeriodicity) {
  CoupledModel model(seasonal_params(0.3));
  for (int m = 0; m < 120; ++m) model.step();
  const auto year1 = north_band_year(model);
  const auto year2 = north_band_year(model);
  for (int m = 0; m < 12; ++m)
    EXPECT_NEAR(year1[static_cast<std::size_t>(m)],
                year2[static_cast<std::size_t>(m)], 0.3)
        << "month " << m;
}

TEST(Seasonal, AnnualMeanBarelyShifts) {
  // The cycle is hemisphere-antisymmetric: the global annual mean must stay
  // close to the non-seasonal climate.
  CoupledModel steady(seasonal_params(0.0)), seasonal(seasonal_params(0.3));
  for (int m = 0; m < 120; ++m) {
    steady.step();
    seasonal.step();
  }
  double mean_steady = 0, mean_seasonal = 0;
  for (int m = 0; m < 12; ++m)
    mean_steady += steady.step().global_mean_atm;
  for (int m = 0; m < 12; ++m)
    mean_seasonal += seasonal.step().global_mean_atm;
  EXPECT_NEAR(mean_seasonal / 12, mean_steady / 12, 1.5);
}

}  // namespace
}  // namespace oagrid::climate
