#include "climate/field.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace oagrid::climate {
namespace {

TEST(Region, ContainsBasicBox) {
  const Region box{"box", -10, 10, 20, 40};
  EXPECT_TRUE(box.contains(0, 30));
  EXPECT_FALSE(box.contains(15, 30));
  EXPECT_FALSE(box.contains(0, 50));
}

TEST(Region, WrapsDateLine) {
  const Region pacific{"pacific", -10, 10, 160, -160};
  EXPECT_TRUE(pacific.contains(0, 170));
  EXPECT_TRUE(pacific.contains(0, -170));
  EXPECT_FALSE(pacific.contains(0, 0));
}

TEST(Region, KeyRegionsIncludePaperRelevantOnes) {
  const auto& regions = key_regions();
  EXPECT_GE(regions.size(), 4u);
  EXPECT_EQ(regions[0].name, "global");
}

TEST(Field, ConstructionAndAccess) {
  Field f(4, 8, 3.5);
  EXPECT_EQ(f.nlat(), 4);
  EXPECT_EQ(f.nlon(), 8);
  EXPECT_EQ(f.size(), 32u);
  EXPECT_DOUBLE_EQ(f.at(0, 0), 3.5);
  f.at(2, 3) = -1.0;
  EXPECT_DOUBLE_EQ(f.at(2, 3), -1.0);
  EXPECT_THROW((void)f.at(4, 0), std::invalid_argument);
  EXPECT_THROW((void)f.at(0, 8), std::invalid_argument);
  EXPECT_THROW(Field(1, 8), std::invalid_argument);
}

TEST(Field, CellCenters) {
  const Field f(4, 8);
  EXPECT_DOUBLE_EQ(f.latitude(0), -67.5);
  EXPECT_DOUBLE_EQ(f.latitude(3), 67.5);
  EXPECT_DOUBLE_EQ(f.longitude(0), -157.5);
  EXPECT_DOUBLE_EQ(f.longitude(7), 157.5);
}

TEST(Field, WeightedMeanOfConstantIsConstant) {
  Field f(12, 24, 7.25);
  EXPECT_NEAR(f.weighted_mean(), 7.25, 1e-12);
}

TEST(Field, WeightedMeanDiscountsPoles) {
  // Warm tropics, cold poles: an unweighted mean of this checkerboard would
  // be 0; the area weighting must pull it towards the tropical value.
  Field f(18, 36);
  f.fill_with([](double lat, double) { return std::abs(lat) < 30 ? 1.0 : -1.0; });
  EXPECT_GT(f.weighted_mean(), -0.35);  // cos-weighted: tropics dominate
  double unweighted = 0;
  for (const double v : f.data()) unweighted += v;
  unweighted /= static_cast<double>(f.size());
  EXPECT_GT(f.weighted_mean(), unweighted);
}

TEST(Field, RegionalMeanSelectsBox) {
  Field f(18, 36);
  f.fill_with([](double lat, double) { return lat > 60 ? 5.0 : 1.0; });
  const Region arctic{"arctic", 66.5, 90, -180, 180};
  EXPECT_NEAR(f.regional_mean(arctic), 5.0, 1e-12);
  const Region tropics{"tropics", -23.5, 23.5, -180, 180};
  EXPECT_NEAR(f.regional_mean(tropics), 1.0, 1e-12);
}

TEST(Field, RegionalMeanThrowsOnEmptyRegion) {
  const Field f(4, 8);
  const Region sliver{"sliver", 89.99, 90, 0, 0.01};
  EXPECT_THROW((void)f.regional_mean(sliver), std::invalid_argument);
}

TEST(Field, MinMax) {
  Field f(4, 8, 2.0);
  f.at(1, 1) = -5;
  f.at(3, 7) = 9;
  EXPECT_DOUBLE_EQ(f.min(), -5);
  EXPECT_DOUBLE_EQ(f.max(), 9);
}

TEST(Field, LaplacianOfConstantIsZero) {
  const Field f(8, 16, 4.0);
  Field lap(8, 16);
  f.laplacian(lap);
  for (const double v : lap.data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Field, LaplacianSumsToZeroWithInsulatedBoundaries) {
  // Insulated boundaries conserve the integral: sum of the Laplacian is 0.
  Field f(8, 16);
  f.fill_with([](double lat, double lon) { return lat * 0.1 + std::sin(lon / 30.0); });
  Field lap(8, 16);
  f.laplacian(lap);
  double sum = 0;
  for (const double v : lap.data()) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(Field, LaplacianSmoothsPeaks) {
  Field f(8, 16, 0.0);
  f.at(4, 8) = 10.0;
  Field lap(8, 16);
  f.laplacian(lap);
  EXPECT_LT(lap.at(4, 8), 0.0);   // peak decays
  EXPECT_GT(lap.at(4, 9), 0.0);   // neighbors warm
  EXPECT_GT(lap.at(3, 8), 0.0);
}

TEST(Field, LaplacianPeriodicInLongitude) {
  Field f(4, 8, 0.0);
  f.at(2, 0) = 6.0;
  Field lap(4, 8);
  f.laplacian(lap);
  EXPECT_GT(lap.at(2, 7), 0.0);  // wraps around the date line
}

TEST(Field, LaplacianDimsChecked) {
  const Field f(4, 8);
  Field wrong(4, 12);
  EXPECT_THROW(f.laplacian(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::climate
