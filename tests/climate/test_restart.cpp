#include "climate/restart.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

namespace oagrid::climate {
namespace {

ModelParams small_params() {
  ModelParams p;
  p.nlat = 8;
  p.nlon = 16;
  p.substeps = 5;
  return p;
}

CoupledModel stepped_model() {
  CoupledModel model(small_params());
  for (int m = 0; m < 3; ++m) (void)model.step();
  return model;
}

std::string restart_bytes(const CoupledModel& model) {
  std::stringstream buffer;
  write_restart(buffer, model);
  return buffer.str();
}

TEST(Restart, RoundTripsBitIdentically) {
  CoupledModel model = stepped_model();
  std::stringstream buffer(restart_bytes(model));
  CoupledModel back = read_restart(buffer);

  EXPECT_EQ(back.month(), model.month());
  EXPECT_EQ(back.atmosphere(), model.atmosphere());
  EXPECT_EQ(back.ocean(), model.ocean());
  // The resumed model continues exactly where the original stopped.
  const MonthlyState a = back.step();
  const MonthlyState b = model.step();
  EXPECT_EQ(a.global_mean_atm, b.global_mean_atm);
  EXPECT_EQ(a.global_mean_ocn, b.global_mean_ocn);
}

TEST(Restart, SizeMatchesTheStream) {
  const CoupledModel model = stepped_model();
  EXPECT_EQ(restart_bytes(model).size(), restart_size(model.params()));
}

TEST(Restart, EveryTruncationPointIsRejected) {
  const std::string full = restart_bytes(stepped_model());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_THROW((void)read_restart(truncated), std::invalid_argument)
        << "cut at byte " << cut << " of " << full.size();
  }
}

TEST(Restart, TrailingBytesAreRejected) {
  std::stringstream padded(restart_bytes(stepped_model()) + "junk");
  EXPECT_THROW((void)read_restart(padded), std::invalid_argument);
}

TEST(Restart, BadMagicIsRejected) {
  std::string bytes = restart_bytes(stepped_model());
  bytes[0] = 'X';
  std::stringstream stream(bytes);
  EXPECT_THROW((void)read_restart(stream), std::invalid_argument);
}

TEST(Restart, CorruptGridDimensionsAreRejectedBeforeAllocating) {
  // A bit-flipped nlat used to surface as a multi-gigabyte allocation (or
  // bad_alloc) inside the model constructor; it must be a clean parse error.
  const CoupledModel model = stepped_model();
  std::string bytes = restart_bytes(model);

  ModelParams corrupt = model.params();
  corrupt.nlat = std::numeric_limits<int>::max() / 2;
  bytes.replace(4, sizeof corrupt,
                std::string(reinterpret_cast<const char*>(&corrupt),
                            sizeof corrupt));
  std::stringstream stream(bytes);
  EXPECT_THROW((void)read_restart(stream), std::invalid_argument);

  corrupt = model.params();
  corrupt.nlon = 0;
  bytes.replace(4, sizeof corrupt,
                std::string(reinterpret_cast<const char*>(&corrupt),
                            sizeof corrupt));
  std::stringstream zero(bytes);
  EXPECT_THROW((void)read_restart(zero), std::invalid_argument);
}

TEST(Restart, NonFinitePhysicsParametersAreRejected) {
  const CoupledModel model = stepped_model();
  std::string bytes = restart_bytes(model);
  ModelParams corrupt = model.params();
  corrupt.exchange = std::numeric_limits<double>::quiet_NaN();
  bytes.replace(4, sizeof corrupt,
                std::string(reinterpret_cast<const char*>(&corrupt),
                            sizeof corrupt));
  std::stringstream stream(bytes);
  EXPECT_THROW((void)read_restart(stream), std::invalid_argument);
}

TEST(Restart, NegativeMonthCounterIsRejected) {
  const CoupledModel model = stepped_model();
  std::string bytes = restart_bytes(model);
  const std::int32_t month = -1;
  bytes.replace(4 + sizeof(ModelParams), sizeof month,
                std::string(reinterpret_cast<const char*>(&month),
                            sizeof month));
  std::stringstream stream(bytes);
  EXPECT_THROW((void)read_restart(stream), std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::climate
