#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "climate/calibration.hpp"
#include "climate/compress.hpp"
#include "climate/diagnostics.hpp"
#include "climate/restart.hpp"
#include "climate/scenario_runner.hpp"

namespace oagrid::climate {
namespace {

ModelParams small_params() {
  ModelParams p;
  p.nlat = 12;
  p.nlon = 24;
  p.substeps = 10;
  return p;
}

Field sample_field() {
  Field f(12, 24);
  f.fill_with([](double lat, double lon) {
    return 15.0 - 0.3 * lat + 2.0 * std::sin(lon / 40.0);
  });
  return f;
}

// --- OASF (convert_output_format) ---------------------------------------

TEST(Oasf, RoundTripsExactly) {
  DiagnosticRecord record;
  record.name = "tas";
  record.month = 42;
  record.field = sample_field();
  std::stringstream buffer;
  write_oasf(buffer, record);
  const DiagnosticRecord back = read_oasf(buffer);
  EXPECT_EQ(back.name, "tas");
  EXPECT_EQ(back.month, 42);
  EXPECT_EQ(back.field, record.field);
}

TEST(Oasf, SizeMatchesStream) {
  DiagnosticRecord record;
  record.name = "pr";
  record.month = 1;
  record.field = sample_field();
  std::stringstream buffer;
  write_oasf(buffer, record);
  EXPECT_EQ(buffer.str().size(), oasf_size(record));
}

TEST(Oasf, RejectsGarbage) {
  std::stringstream bad("this is not an OASF stream at all........");
  EXPECT_THROW((void)read_oasf(bad), std::invalid_argument);
}

TEST(Oasf, RejectsTruncation) {
  DiagnosticRecord record;
  record.name = "tas";
  record.field = sample_field();
  std::stringstream buffer;
  write_oasf(buffer, record);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW((void)read_oasf(truncated), std::invalid_argument);
}

// --- extract_minimum_information ------------------------------------------

TEST(Extract, ProducesAllKeyRegions) {
  DiagnosticRecord record;
  record.name = "tas";
  record.month = 3;
  record.field = sample_field();
  const ExtractedInfo info = extract_minimum_information(record);
  EXPECT_EQ(info.month, 3);
  EXPECT_EQ(info.means.size(), key_regions().size());
  EXPECT_EQ(info.means[0].first, "global");
  EXPECT_NEAR(info.means[0].second, record.field.weighted_mean(), 1e-12);
}

// --- compress_diags ----------------------------------------------------------

TEST(Compress, RoundTripsOnQuantizedLattice) {
  const Field f = sample_field();
  const CompressedField c = compress_field(f, 1e-3);
  const Field back = decompress_field(c);
  for (std::size_t i = 0; i < f.size(); ++i)
    EXPECT_NEAR(back.data()[i], f.data()[i], 5e-4 + 1e-12);
  // Idempotent: compressing the reconstruction reproduces it exactly.
  const Field twice = decompress_field(compress_field(back, 1e-3));
  EXPECT_EQ(twice, back);
}

TEST(Compress, DrasticallyReducesSmoothFields) {
  // The paper's cd exists because diagnostics compress well; the codec must
  // deliver at least ~4x on a smooth field.
  const Field f = sample_field();
  const CompressedField c = compress_field(f);
  EXPECT_GT(compression_ratio(f, c), 4.0);
}

TEST(Compress, HandlesConstantField) {
  const Field f(12, 24, 3.0);
  const CompressedField c = compress_field(f);
  EXPECT_EQ(decompress_field(c), decompress_field(c));
  EXPECT_GT(compression_ratio(f, c), 6.0);
}

TEST(Compress, RejectsCorruptPayload) {
  const CompressedField c = compress_field(sample_field());
  CompressedField truncated = c;
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_THROW((void)decompress_field(truncated), std::invalid_argument);
  CompressedField padded = c;
  padded.payload.push_back(0);
  EXPECT_THROW((void)decompress_field(padded), std::invalid_argument);
  EXPECT_THROW((void)compress_field(sample_field(), 0.0), std::invalid_argument);
}

// --- restart -----------------------------------------------------------------

TEST(Restart, RoundTripBitIdentical) {
  CoupledModel model(small_params());
  for (int m = 0; m < 5; ++m) model.step();
  std::stringstream buffer;
  write_restart(buffer, model);
  EXPECT_EQ(buffer.str().size(), restart_size(model.params()));
  CoupledModel resumed = read_restart(buffer);
  EXPECT_EQ(resumed.month(), 5);
  EXPECT_EQ(resumed.atmosphere(), model.atmosphere());
  EXPECT_EQ(resumed.ocean(), model.ocean());
  // And it continues identically.
  const MonthlyState a = model.step();
  const MonthlyState b = resumed.step();
  EXPECT_DOUBLE_EQ(a.global_mean_atm, b.global_mean_atm);
}

TEST(Restart, RejectsGarbage) {
  std::stringstream bad("not a restart");
  EXPECT_THROW((void)read_restart(bad), std::invalid_argument);
}

// --- scenario runner ---------------------------------------------------------

TEST(Scenario, RunsFullPipeline) {
  ScenarioConfig config;
  config.model = small_params();
  config.months = 24;
  config.verify_restart = true;
  const ScenarioResult result = run_scenario(config);
  EXPECT_EQ(result.states.size(), 24u);
  EXPECT_EQ(result.extracted.size(), 24u);
  EXPECT_GT(result.raw_diag_bytes, 0u);
  EXPECT_GT(result.compressed_diag_bytes, 0u);
  EXPECT_LT(result.compressed_diag_bytes, result.raw_diag_bytes / 3);
  EXPECT_EQ(result.restart_bytes_per_month, restart_size(config.model));
}

TEST(Scenario, RampProducesWarming) {
  ScenarioConfig config;
  config.model = small_params();
  config.months = 120;
  config.ghg_ramp = 0.05;
  const ScenarioResult result = run_scenario(config);
  EXPECT_GT(result.warming, 0.2);
}

TEST(Scenario, CloudEnsembleSpreadsWarming) {
  // The scientific payload of the paper's experiment: different cloud
  // parametrizations give different 21st-century warming.
  const double low = warming_of(0.0, 90);
  const double high = warming_of(0.9, 90);
  EXPECT_GT(high, low + 0.05);
}

TEST(Scenario, Validation) {
  ScenarioConfig config;
  config.months = 0;
  EXPECT_THROW((void)run_scenario(config), std::invalid_argument);
  config.months = 2;
  config.ghg_ramp = -1;
  EXPECT_THROW((void)run_scenario(config), std::invalid_argument);
}

// --- calibration ---------------------------------------------------------------

TEST(Calibration, ProducesSchedulerReadyCluster) {
  ModelParams p = small_params();
  p.substeps = 2;  // keep the test fast
  const CalibrationResult result = calibrate_pipeline(p, 1);
  ASSERT_EQ(result.main_times.size(), 8u);
  for (const Seconds t : result.main_times) EXPECT_GT(t, 0.0);
  EXPECT_GT(result.post_time, 0.0);
  const platform::Cluster cluster = result.to_cluster("local", 32);
  EXPECT_EQ(cluster.min_group(), 4);
  EXPECT_EQ(cluster.max_group(), 11);
  EXPECT_EQ(cluster.resources(), 32);
}

TEST(Calibration, Validation) {
  EXPECT_THROW((void)calibrate_pipeline(small_params(), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::climate
