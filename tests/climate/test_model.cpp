#include "climate/model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oagrid::climate {
namespace {

ModelParams small_params() {
  ModelParams p;
  p.nlat = 12;
  p.nlon = 24;
  p.substeps = 10;
  return p;
}

TEST(CoupledModel, ValidatesParams) {
  ModelParams p = small_params();
  p.substeps = 0;
  EXPECT_THROW(CoupledModel{p}, std::invalid_argument);
  p = small_params();
  p.cloud_feedback = p.olr_b;  // runaway
  EXPECT_THROW(CoupledModel{p}, std::invalid_argument);
  p = small_params();
  p.atm_heat_capacity = 0;
  EXPECT_THROW(CoupledModel{p}, std::invalid_argument);
}

TEST(CoupledModel, DeterministicAcrossRuns) {
  CoupledModel a(small_params()), b(small_params());
  for (int m = 0; m < 6; ++m) {
    const MonthlyState sa = a.step();
    const MonthlyState sb = b.step();
    EXPECT_DOUBLE_EQ(sa.global_mean_atm, sb.global_mean_atm);
    EXPECT_DOUBLE_EQ(sa.global_mean_ocn, sb.global_mean_ocn);
  }
  EXPECT_EQ(a.atmosphere(), b.atmosphere());
}

TEST(CoupledModel, ThreadCountDoesNotChangeResults) {
  // The parallel atmosphere update must be bitwise thread-count independent
  // (rows are independent within a substep).
  CoupledModel serial(small_params()), parallel(small_params());
  for (int m = 0; m < 4; ++m) {
    serial.step(1);
    parallel.step(4);
  }
  EXPECT_EQ(serial.atmosphere(), parallel.atmosphere());
  EXPECT_EQ(serial.ocean(), parallel.ocean());
}

TEST(CoupledModel, EquilibratesToPlausibleClimate) {
  CoupledModel model(small_params());
  MonthlyState state;
  for (int m = 0; m < 240; ++m) state = model.step();
  // Global mean surface air temperature in a habitable band.
  EXPECT_GT(state.global_mean_atm, 5.0);
  EXPECT_LT(state.global_mean_atm, 25.0);
  // Poles colder than tropics.
  const Field& atm = model.atmosphere();
  const Region tropics{"tropics", -23.5, 23.5, -180, 180};
  const Region arctic{"arctic", 66.5, 90, -180, 180};
  EXPECT_GT(atm.regional_mean(tropics), atm.regional_mean(arctic) + 10.0);
  // Some (not all) of the high-latitude ocean is frozen.
  EXPECT_GT(state.ice_fraction, 0.0);
  EXPECT_LT(state.ice_fraction, 0.5);
}

TEST(CoupledModel, GreenhouseForcingWarms) {
  CoupledModel control(small_params()), forced(small_params());
  for (int m = 0; m < 120; ++m) control.step();
  forced.set_ghg_forcing(3.7);  // ~CO2 doubling
  for (int m = 0; m < 120; ++m) forced.step();
  const double warming = forced.atmosphere().weighted_mean() -
                         control.atmosphere().weighted_mean();
  EXPECT_GT(warming, 0.5);
  EXPECT_LT(warming, 8.0);
}

TEST(CoupledModel, CloudFeedbackRaisesSensitivity) {
  // The paper's ensemble premise: cloud parametrization controls the climate
  // response to greenhouse gases.
  auto warming_with = [](double feedback) {
    ModelParams p = small_params();
    p.cloud_feedback = feedback;
    CoupledModel model(p);
    for (int m = 0; m < 120; ++m) model.step();
    const double before = model.atmosphere().weighted_mean();
    model.set_ghg_forcing(3.7);
    for (int m = 0; m < 120; ++m) model.step();
    return model.atmosphere().weighted_mean() - before;
  };
  const double low = warming_with(0.0);
  const double high = warming_with(0.9);
  EXPECT_GT(high, low * 1.3);
}

TEST(CoupledModel, OceanLagsAtmosphere) {
  CoupledModel model(small_params());
  for (int m = 0; m < 60; ++m) model.step();
  const double atm_before = model.atmosphere().weighted_mean();
  const double ocn_before = model.ocean().weighted_mean();
  model.set_ghg_forcing(5.0);
  for (int m = 0; m < 24; ++m) model.step();
  const double atm_delta = model.atmosphere().weighted_mean() - atm_before;
  const double ocn_delta = model.ocean().weighted_mean() - ocn_before;
  EXPECT_GT(atm_delta, ocn_delta);  // the slow ocean trails the fast air
}

TEST(CoupledModel, MonthCounterAdvances) {
  CoupledModel model(small_params());
  EXPECT_EQ(model.month(), 0);
  model.step();
  model.step();
  EXPECT_EQ(model.month(), 2);
  model.restore_month(17);
  EXPECT_EQ(model.month(), 17);
}

TEST(CoupledModel, TemperaturesStayBounded) {
  ModelParams p = small_params();
  p.cloud_feedback = 1.7;  // aggressive but below the runaway guard
  CoupledModel model(p);
  model.set_ghg_forcing(10.0);
  for (int m = 0; m < 240; ++m) model.step();
  EXPECT_LE(model.atmosphere().max(), 80.0);
  EXPECT_GE(model.atmosphere().min(), -80.0);
}

}  // namespace
}  // namespace oagrid::climate
