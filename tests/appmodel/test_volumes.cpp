#include "appmodel/volumes.hpp"

#include <gtest/gtest.h>

namespace oagrid::appmodel {
namespace {

TEST(Volumes, PaperScaleRestartTraffic) {
  // 10 scenarios x 1799 hand-offs x 120 MB ~ 2.16 TB over 150 years.
  const CampaignVolumes v = campaign_volumes(Ensemble::paper_full());
  EXPECT_DOUBLE_EQ(v.restart_transfer_mb, 10.0 * 1799.0 * 120.0);
}

TEST(Volumes, CompressionSavesMost) {
  const CampaignVolumes v = campaign_volumes(Ensemble{10, 1800});
  EXPECT_GT(v.compression_savings_mb(), 0.8 * v.raw_diag_mb);
  EXPECT_DOUBLE_EQ(v.compressed_diag_mb * 7.5, v.raw_diag_mb);
}

TEST(Volumes, SingleMonthHasNoRestartTraffic) {
  const CampaignVolumes v = campaign_volumes(Ensemble{4, 1});
  EXPECT_DOUBLE_EQ(v.restart_transfer_mb, 0.0);
  EXPECT_GT(v.archived_mb, 0.0);
}

TEST(Volumes, ArchiveIncludesFinalRestarts) {
  VolumeParams params;
  params.raw_diag_mb = 0.0;  // isolate the restart contribution
  const CampaignVolumes v = campaign_volumes(Ensemble{3, 5}, params);
  EXPECT_DOUBLE_EQ(v.archived_mb, 3.0 * 120.0);
}

TEST(Volumes, Validation) {
  VolumeParams bad;
  bad.compression_ratio = 0.5;
  EXPECT_THROW((void)campaign_volumes(Ensemble{2, 2}, bad),
               std::invalid_argument);
  bad = VolumeParams{};
  bad.restart_mb = -1;
  EXPECT_THROW((void)campaign_volumes(Ensemble{2, 2}, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::appmodel
