#include <gtest/gtest.h>

#include <stdexcept>

#include "appmodel/ensemble.hpp"
#include "appmodel/month.hpp"
#include "appmodel/tasks.hpp"

namespace oagrid::appmodel {
namespace {

TEST(Tasks, PaperDurations) {
  // Figure 1 of the paper.
  EXPECT_DOUBLE_EQ(reference_duration(TaskKind::kConcatenateAtmosphericInputFiles), 1.0);
  EXPECT_DOUBLE_EQ(reference_duration(TaskKind::kModifyParameters), 1.0);
  EXPECT_DOUBLE_EQ(reference_duration(TaskKind::kProcessCoupledRun), 1260.0);
  EXPECT_DOUBLE_EQ(reference_duration(TaskKind::kConvertOutputFormat), 60.0);
  EXPECT_DOUBLE_EQ(reference_duration(TaskKind::kExtractMinimumInformation), 60.0);
  EXPECT_DOUBLE_EQ(reference_duration(TaskKind::kCompressDiags), 60.0);
}

TEST(Tasks, FusedDurationsAreSums) {
  EXPECT_DOUBLE_EQ(reference_duration(TaskKind::kFusedMain), 1262.0);
  EXPECT_DOUBLE_EQ(reference_duration(TaskKind::kFusedPost), 180.0);
}

TEST(Tasks, Names) {
  EXPECT_EQ(short_name(TaskKind::kProcessCoupledRun), "pcr");
  EXPECT_EQ(long_name(TaskKind::kProcessCoupledRun), "process_coupled_run");
  EXPECT_EQ(short_name(TaskKind::kFusedPost), "post");
}

TEST(Tasks, MoldabilityFlags) {
  EXPECT_TRUE(is_moldable(TaskKind::kProcessCoupledRun));
  EXPECT_TRUE(is_moldable(TaskKind::kFusedMain));
  EXPECT_FALSE(is_moldable(TaskKind::kConvertOutputFormat));
  EXPECT_FALSE(is_moldable(TaskKind::kFusedPost));
}

TEST(MonthDag, StructureMatchesFigure1) {
  const MonthDag month = make_month_dag();
  EXPECT_EQ(month.graph.node_count(), 6);
  EXPECT_EQ(month.graph.edge_count(), 5u);
  // Entries: caif and mp; exit: cd.
  const auto entries = month.graph.entry_nodes();
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(month.graph.exit_nodes(), std::vector<dag::NodeId>{month.cd});
  // pcr is the only moldable node, bounded by the paper's [4, 11].
  const dag::TaskSpec& pcr = month.graph.task(month.pcr);
  EXPECT_EQ(pcr.shape, dag::TaskShape::kMoldable);
  EXPECT_EQ(pcr.min_procs, kMinGroupSize);
  EXPECT_EQ(pcr.max_procs, kMaxGroupSize);
}

TEST(MonthDag, CriticalPathIsPreMainPost) {
  const MonthDag month = make_month_dag();
  // 1 (caif or mp) + 1260 + 60*3 = 1441.
  EXPECT_DOUBLE_EQ(month.graph.critical_path_ref(), 1441.0);
}

TEST(FusedMonth, TwoTasksOneEdge) {
  const FusedMonth month = make_fused_month();
  EXPECT_EQ(month.graph.node_count(), 2);
  EXPECT_EQ(month.graph.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(month.graph.critical_path_ref(), 1442.0);
}

TEST(Scenario, DetailedChainCounts) {
  const dag::ChainedDag chain = make_detailed_scenario(12);
  EXPECT_EQ(chain.graph.node_count(), 72);
  // 12 x 5 intra + 11 x 2 cross.
  EXPECT_EQ(chain.graph.edge_count(), 12u * 5u + 11u * 2u);
}

TEST(Scenario, FusedChainCounts) {
  const dag::ChainedDag chain = make_fused_scenario(12);
  EXPECT_EQ(chain.graph.node_count(), 24);
  EXPECT_EQ(chain.graph.edge_count(), 12u + 11u);
}

TEST(Scenario, RestartVolumeOnCrossEdges) {
  const dag::ChainedDag chain = make_fused_scenario(3);
  int restart_edges = 0;
  for (const auto& e : chain.graph.edges())
    if (e.data_mb == kInterMonthDataMb) ++restart_edges;
  EXPECT_EQ(restart_edges, 2);
}

TEST(Scenario, FusionPreservesCriticalPath) {
  // The fused chain's critical path equals the detailed chain's plus the 1 s
  // per month the fusion serializes (caif and mp run in parallel in the
  // detailed DAG) — checked internally; the function throws on mismatch.
  const Seconds cp = fused_model_critical_path_check(24);
  // 24 months of fused main on the chain + one trailing post.
  EXPECT_DOUBLE_EQ(cp, 24.0 * 1262.0 + 180.0);
}

TEST(Ensemble, TotalsAndValidation) {
  const Ensemble e = Ensemble::paper_full();
  EXPECT_EQ(e.scenarios, 10);
  EXPECT_EQ(e.months, 1800);
  EXPECT_EQ(e.total_tasks(), 18000);
  EXPECT_NO_THROW(e.validate());
  EXPECT_THROW((Ensemble{0, 5}).validate(), std::invalid_argument);
  EXPECT_THROW((Ensemble{5, 0}).validate(), std::invalid_argument);
}

TEST(Ensemble, ScaledKeepsScenarioCount) {
  const Ensemble e = Ensemble::paper_scaled(60);
  EXPECT_EQ(e.scenarios, 10);
  EXPECT_EQ(e.months, 60);
}

TEST(Ensemble, BuildFusedChains) {
  const auto chains = build_fused_chains(Ensemble{3, 6});
  ASSERT_EQ(chains.size(), 3u);
  for (const auto& chain : chains) {
    EXPECT_EQ(chain.instances, 6);
    EXPECT_EQ(chain.graph.node_count(), 12);
  }
}

}  // namespace
}  // namespace oagrid::appmodel
