/// \file test_runner.cpp
/// \brief Greedy shrinking, environment plumbing and small campaigns.

#include "testkit/runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>

namespace oagrid::testkit {
namespace {

/// setenv/unsetenv wrapper that restores the previous state on scope exit so
/// tests cannot leak environment into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) previous_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (previous_)
      ::setenv(name_, previous_->c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

TEST(ShrinkSpec, MinimizesToTheSmallestStillFailingSpec) {
  CaseSpec start = spec_for_case(9, 2);
  start.months = 12;  // guarantee the predicate fails at the start
  start.clamp();
  const SpecPredicate predicate =
      [](const CaseSpec& spec) -> std::optional<std::string> {
    if (spec.months >= 2) return "months >= 2";
    return std::nullopt;
  };
  const ShrinkResult result = shrink_spec(start, "months >= 2", predicate, 64);
  // Everything irrelevant to the predicate collapses to its minimum; the
  // one load-bearing knob stops exactly at the failure boundary.
  EXPECT_EQ(result.spec.months, 2);
  EXPECT_EQ(result.spec.fault_kind, 0);
  EXPECT_EQ(result.spec.net_kind, 0);
  EXPECT_EQ(result.spec.campaigns, 0);
  EXPECT_EQ(result.spec.scenarios, 1);
  EXPECT_EQ(result.spec.clusters, 1);
  EXPECT_EQ(result.message, "months >= 2");
  EXPECT_GT(result.steps, 0);
}

TEST(ShrinkSpec, StopsWhenNoCandidateFails) {
  const CaseSpec start = spec_for_case(9, 4);
  const SpecPredicate predicate =
      [&start](const CaseSpec& spec) -> std::optional<std::string> {
    if (spec == start) return "only the original fails";
    return std::nullopt;
  };
  const ShrinkResult result = shrink_spec(start, "original", predicate, 64);
  EXPECT_EQ(result.spec, start);
  EXPECT_EQ(result.steps, 0);
  EXPECT_EQ(result.message, "original");
}

TEST(ShrinkSpec, RespectsTheStepBudget) {
  const CaseSpec start = spec_for_case(9, 6);
  const SpecPredicate predicate =
      [](const CaseSpec&) -> std::optional<std::string> {
    return "always fails";
  };
  const ShrinkResult result = shrink_spec(start, "always", predicate, 3);
  EXPECT_LE(result.steps, 3);
}

TEST(ApplyEnv, EnvironmentFillsUnsetFields) {
  const ScopedEnv seed("OAGRID_PROPTEST_SEED", "123");
  const ScopedEnv iters("OAGRID_PROPTEST_ITERS", "5");
  const RunOptions resolved = apply_env(RunOptions{});
  EXPECT_EQ(resolved.seed, 123u);
  EXPECT_EQ(resolved.iterations, 5);
}

TEST(ApplyEnv, ExplicitFlagsBeatTheEnvironment) {
  const ScopedEnv seed("OAGRID_PROPTEST_SEED", "123");
  const ScopedEnv iters("OAGRID_PROPTEST_ITERS", "5");
  RunOptions options;
  options.seed = 7;
  options.seed_explicit = true;
  options.iterations = 2;
  options.iterations_explicit = true;
  const RunOptions resolved = apply_env(options);
  EXPECT_EQ(resolved.seed, 7u);
  EXPECT_EQ(resolved.iterations, 2);
}

TEST(ApplyEnv, MalformedValuesAreIgnored) {
  const ScopedEnv seed("OAGRID_PROPTEST_SEED", "not-a-number");
  const ScopedEnv iters("OAGRID_PROPTEST_ITERS", "");
  const RunOptions resolved = apply_env(RunOptions{});
  EXPECT_EQ(resolved.seed, kDefaultSeed);
  EXPECT_EQ(resolved.iterations, kDefaultIterations);
}

TEST(RunProperties, SmallCleanCampaignPasses) {
  RunOptions options;
  options.seed = 404;
  options.seed_explicit = true;
  options.iterations = 3;
  options.iterations_explicit = true;
  options.only_invariant = "parser-round-trip";
  std::ostringstream out;
  const RunReport report = run_properties(options, out);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cases_run, 3);
  EXPECT_EQ(report.checks_run, 3);
  EXPECT_NE(out.str().find("proptest: 3 cases"), std::string::npos);
  EXPECT_NE(out.str().find("seed 404"), std::string::npos);
}

TEST(RunProperties, ExplicitSpecRunsExactlyOneCase) {
  RunOptions options;
  options.explicit_spec = "seed=5,clusters=2,scenarios=2,months=3";
  options.only_invariant = "lower-bounds";
  std::ostringstream out;
  const RunReport report = run_properties(options, out);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cases_run, 1);
}

TEST(RunProperties, SingleCaseReplayMatchesTheCampaignStream) {
  // --seed/--case repro contract: replaying index k alone must check the
  // same world the full campaign checked at index k.
  RunOptions options;
  options.seed = 12;
  options.seed_explicit = true;
  options.only_case = 4;
  options.only_invariant = "eval-cache-identity";
  std::ostringstream out;
  const RunReport report = run_properties(options, out);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cases_run, 1);
}

}  // namespace
}  // namespace oagrid::testkit
