/// \file test_gen.cpp
/// \brief materialize() determinism and the structural guarantees every
/// generated world must satisfy (the invariants lean on these).

#include "testkit/gen.hpp"

#include <gtest/gtest.h>

#include <span>

#include "fault/failure.hpp"
#include "testkit/invariants.hpp"
#include "testkit/spec.hpp"

namespace oagrid::testkit {
namespace {

void expect_same_grid(const platform::Grid& a, const platform::Grid& b) {
  ASSERT_EQ(a.cluster_count(), b.cluster_count());
  for (int c = 0; c < a.cluster_count(); ++c) {
    const auto& ca = a.cluster(c);
    const auto& cb = b.cluster(c);
    EXPECT_EQ(ca.resources(), cb.resources());
    EXPECT_EQ(ca.min_group(), cb.min_group());
    EXPECT_DOUBLE_EQ(ca.post_time(), cb.post_time());
    const std::span<const Seconds> ta = ca.main_times();
    const std::span<const Seconds> tb = cb.main_times();
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
  }
}

TEST(Materialize, IsAPureFunctionOfTheSpec) {
  for (std::uint64_t index = 0; index < 12; ++index) {
    const CaseSpec spec = spec_for_case(3, index);
    const Case a = materialize(spec);
    const Case b = materialize(spec);
    expect_same_grid(a.grid, b.grid);
    EXPECT_EQ(a.ensemble.scenarios, b.ensemble.scenarios);
    EXPECT_EQ(a.ensemble.months, b.ensemble.months);
    EXPECT_EQ(a.network, b.network);
    EXPECT_EQ(a.failures.signature(), b.failures.signature());
    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (std::size_t i = 0; i < a.schedule.size(); ++i) {
      EXPECT_EQ(a.schedule[i].spec.owner, b.schedule[i].spec.owner);
      EXPECT_EQ(a.schedule[i].spec.scenarios, b.schedule[i].spec.scenarios);
      EXPECT_EQ(a.schedule[i].spec.months, b.schedule[i].spec.months);
      EXPECT_DOUBLE_EQ(a.schedule[i].spec.weight, b.schedule[i].spec.weight);
      EXPECT_DOUBLE_EQ(a.schedule[i].at, b.schedule[i].at);
    }
  }
}

TEST(Materialize, HonoursEveryKnob) {
  for (std::uint64_t index = 0; index < 40; ++index) {
    const CaseSpec spec = spec_for_case(21, index);
    const Case world = materialize(spec);
    EXPECT_EQ(world.grid.cluster_count(), spec.clusters);
    EXPECT_EQ(world.ensemble.scenarios, spec.scenarios);
    EXPECT_EQ(world.ensemble.months, spec.months);
    // net_kind/fault_kind 0 mean "subsystem absent", not "default model".
    EXPECT_EQ(world.network.cluster_count() == 0, spec.net_kind == 0);
    EXPECT_EQ(world.failures.cluster_count() == 0, spec.fault_kind == 0);
    EXPECT_EQ(world.schedule.size(),
              static_cast<std::size_t>(spec.campaigns));
    EXPECT_GE(world.checkpoint_months, 1);
    EXPECT_LE(world.checkpoint_months,
              static_cast<MonthIndex>(spec.months));
  }
}

TEST(Materialize, AtLeastOneClusterSurvivesTheFailureModel) {
  // kDown clusters never run anything; if every cluster were down, every
  // simulation would stall forever. The generator budgets clusters-1 downs.
  for (std::uint64_t index = 0; index < 60; ++index) {
    const Case world = materialize(spec_for_case(77, index));
    if (world.failures.cluster_count() == 0) continue;
    int alive = 0;
    for (int c = 0; c < world.failures.cluster_count(); ++c)
      if (world.failures.process(c).kind != fault::ProcessKind::kDown)
        ++alive;
    EXPECT_GE(alive, 1) << "case " << index << " generated an all-down grid";
  }
}

TEST(Materialize, ScheduleArrivalsAreNondecreasing) {
  for (std::uint64_t index = 0; index < 40; ++index) {
    const Case world = materialize(spec_for_case(13, index));
    for (std::size_t i = 1; i < world.schedule.size(); ++i)
      EXPECT_GE(world.schedule[i].at, world.schedule[i - 1].at);
    for (const ServiceEntry& entry : world.schedule) {
      EXPECT_GE(entry.spec.scenarios, 1);
      EXPECT_GE(entry.spec.months, 1);
      EXPECT_GT(entry.spec.weight, 0.0);
    }
  }
}

TEST(Materialize, DivisibleTablesMakeTheAnalyticModelExact) {
  // The whole point of divisible_tables: T[G] are integer multiples of a
  // common period, so closed-form and DES makespans agree bit-for-bit. If
  // this drifts, the analytic-vs-des invariant silently loses its exact arm.
  const Invariant* invariant = find_invariant("analytic-vs-des");
  ASSERT_NE(invariant, nullptr);
  int divisible_cases = 0;
  for (std::uint64_t index = 0; index < 40 && divisible_cases < 8; ++index) {
    CaseSpec spec = spec_for_case(5, index);
    if (!spec.divisible_tables) continue;
    ++divisible_cases;
    const auto violation = invariant->check(materialize(spec));
    EXPECT_FALSE(violation.has_value()) << *violation;
  }
  EXPECT_GE(divisible_cases, 8) << "generator stopped producing divisible "
                                   "tables; exactness arm never runs";
}

TEST(RandomTransfers, StaysInsideTheCluster_Range) {
  for (std::uint64_t index = 0; index < 20; ++index) {
    const CaseSpec spec = spec_for_case(31, index);
    const auto transfers = random_transfers(spec, spec.clusters);
    EXPECT_FALSE(transfers.empty());
    for (const auto& transfer : transfers) {
      EXPECT_GE(transfer.src, 0);
      EXPECT_LT(transfer.src, spec.clusters);
      EXPECT_GE(transfer.dst, 0);
      EXPECT_LT(transfer.dst, spec.clusters);
      EXPECT_GE(transfer.size_mb, 0.0);
      EXPECT_GE(transfer.start, 0.0);
    }
  }
}

}  // namespace
}  // namespace oagrid::testkit
