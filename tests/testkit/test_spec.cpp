/// \file test_spec.cpp
/// \brief CaseSpec encode/decode, clamping, case derivation and shrinking.

#include "testkit/spec.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/parse_error.hpp"

namespace oagrid::testkit {
namespace {

TEST(CaseSpec, EncodeDecodeRoundTrip) {
  for (std::uint64_t index = 0; index < 50; ++index) {
    const CaseSpec spec = spec_for_case(42, index);
    const CaseSpec back = CaseSpec::decode(spec.encode());
    EXPECT_EQ(back, spec) << "case " << index << ": " << spec.encode();
  }
}

TEST(CaseSpec, DecodePartialSpecKeepsDefaults) {
  const CaseSpec spec = CaseSpec::decode("seed=9,months=2");
  CaseSpec expected;
  expected.seed = 9;
  expected.months = 2;
  EXPECT_EQ(spec, expected);
}

TEST(CaseSpec, DecodeRejectsUnknownField) {
  try {
    (void)CaseSpec::decode("seed=1,bogus=3");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.source(), "spec");
    EXPECT_NE(error.message().find("bogus"), std::string::npos);
  }
}

TEST(CaseSpec, DecodeRejectsBadValue) {
  EXPECT_THROW((void)CaseSpec::decode("months=banana"), ParseError);
  EXPECT_THROW((void)CaseSpec::decode("seed=-1"), ParseError);
  EXPECT_THROW((void)CaseSpec::decode("divisible=2"), ParseError);
}

TEST(CaseSpec, DecodeRejectsMissingEquals) {
  EXPECT_THROW((void)CaseSpec::decode("months"), ParseError);
}

TEST(CaseSpec, ClampPullsEveryKnobIntoRange) {
  CaseSpec spec;
  spec.seed = 0;
  spec.clusters = 99;
  spec.scenarios = 0;
  spec.months = 1000;
  spec.net_kind = -3;
  spec.fault_kind = 17;
  spec.checkpoint_months = 0;
  spec.recovery = 9;
  spec.heuristic = -1;
  spec.dispatch = 5;
  spec.campaigns = -2;
  spec.kills = 100;
  spec.snapshot_every = -4;
  spec.clamp();
  EXPECT_EQ(spec.seed, 1u);  // 0 would collapse every downstream stream
  EXPECT_EQ(spec.clusters, 4);
  EXPECT_EQ(spec.scenarios, 1);
  EXPECT_EQ(spec.months, 12);
  EXPECT_EQ(spec.net_kind, 0);
  EXPECT_EQ(spec.fault_kind, 4);
  EXPECT_EQ(spec.checkpoint_months, 1);
  EXPECT_EQ(spec.recovery, 2);
  EXPECT_EQ(spec.heuristic, 0);
  EXPECT_EQ(spec.dispatch, 2);
  EXPECT_EQ(spec.campaigns, 0);
  EXPECT_EQ(spec.kills, 3);
  EXPECT_EQ(spec.snapshot_every, 0);
}

TEST(CaseSpec, SpecForCaseIsDeterministicAndIndexed) {
  EXPECT_EQ(spec_for_case(7, 3), spec_for_case(7, 3));
  // Derivation is a pure function of (root, index) — no shared stream — so
  // neighbouring indices must still decorrelate.
  std::set<std::string> seen;
  for (std::uint64_t index = 0; index < 20; ++index)
    seen.insert(spec_for_case(7, index).encode());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_NE(spec_for_case(7, 0), spec_for_case(8, 0));
}

TEST(CaseSpec, ShrinkCandidatesAreDistinctAndClamped) {
  for (std::uint64_t index = 0; index < 30; ++index) {
    const CaseSpec spec = spec_for_case(11, index);
    for (const CaseSpec& candidate : shrink_candidates(spec)) {
      EXPECT_FALSE(candidate == spec);
      CaseSpec clamped = candidate;
      clamped.clamp();
      EXPECT_EQ(clamped, candidate) << "candidate escaped the valid range";
      EXPECT_EQ(candidate.seed, spec.seed)
          << "shrinking must never reshuffle the entropy";
    }
  }
}

TEST(CaseSpec, ShrinkNeverGrowsASubsystemBack) {
  CaseSpec spec;
  spec.net_kind = 0;  // no network: no candidate may re-attach one
  for (const CaseSpec& candidate : shrink_candidates(spec))
    EXPECT_EQ(candidate.net_kind, 0);
}

TEST(CaseSpec, MinimalSpecHasNoCandidates) {
  CaseSpec spec;
  spec.seed = 5;
  spec.clusters = 1;
  spec.scenarios = 1;
  spec.months = 1;
  spec.divisible_tables = true;
  spec.net_kind = 0;
  spec.fault_kind = 0;
  spec.checkpoint_months = 1;
  spec.recovery = 0;
  spec.heuristic = 0;
  spec.dispatch = 0;
  spec.campaigns = 0;
  spec.kills = 0;
  spec.group_commit = false;
  spec.snapshot_every = 0;
  EXPECT_TRUE(shrink_candidates(spec).empty())
      << "a fully minimal spec must be a shrink fixed point";
}

}  // namespace
}  // namespace oagrid::testkit
