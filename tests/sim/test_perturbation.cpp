#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sim/ensemble_sim.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

SimOptions perturbed(double jitter, double failure, std::uint64_t seed) {
  SimOptions options;
  options.perturbation.duration_jitter = jitter;
  options.perturbation.failure_probability = failure;
  options.perturbation.seed = seed;
  return options;
}

TEST(Perturbation, InactiveModelReproducesExactRun) {
  const auto c = platform::make_builtin_cluster(1, 30);
  const Ensemble e{4, 10};
  const auto schedule = sched::knapsack_grouping(c, e);
  const SimResult clean = simulate_ensemble(c, schedule, e);
  const SimResult noiseless = simulate_ensemble(c, schedule, e, perturbed(0, 0, 7));
  EXPECT_DOUBLE_EQ(clean.makespan, noiseless.makespan);
  EXPECT_EQ(noiseless.retries, 0);
}

TEST(Perturbation, DeterministicInSeed) {
  const auto c = platform::make_builtin_cluster(1, 30);
  const Ensemble e{4, 10};
  const auto schedule = sched::knapsack_grouping(c, e);
  const SimResult a = simulate_ensemble(c, schedule, e, perturbed(0.1, 0.05, 42));
  const SimResult b = simulate_ensemble(c, schedule, e, perturbed(0.1, 0.05, 42));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.retries, b.retries);
  const SimResult other = simulate_ensemble(c, schedule, e, perturbed(0.1, 0.05, 43));
  EXPECT_NE(a.makespan, other.makespan);
}

TEST(Perturbation, JitterMovesMakespanModestly) {
  const auto c = platform::make_builtin_cluster(1, 40);
  const Ensemble e{6, 12};
  const auto schedule = sched::knapsack_grouping(c, e);
  const Seconds clean = simulate_ensemble(c, schedule, e).makespan;
  const Seconds noisy =
      simulate_ensemble(c, schedule, e, perturbed(0.05, 0, 1)).makespan;
  EXPECT_GT(noisy / clean, 0.85);
  EXPECT_LT(noisy / clean, 1.20);
}

TEST(Perturbation, AllWorkStillCompletesUnderFailures) {
  const auto c = platform::make_builtin_cluster(1, 30);
  const Ensemble e{4, 10};
  const auto schedule = sched::knapsack_grouping(c, e);
  const SimResult r = simulate_ensemble(c, schedule, e, perturbed(0, 0.2, 11));
  EXPECT_EQ(r.mains_executed, 40);  // every month eventually succeeds
  EXPECT_EQ(r.posts_executed, 40);
  EXPECT_GT(r.retries, 0);
}

TEST(Perturbation, FailuresLengthenTheCampaign) {
  const auto c = platform::make_builtin_cluster(1, 30);
  const Ensemble e{4, 10};
  const auto schedule = sched::knapsack_grouping(c, e);
  const Seconds clean = simulate_ensemble(c, schedule, e).makespan;
  const Seconds failing =
      simulate_ensemble(c, schedule, e, perturbed(0, 0.25, 3)).makespan;
  EXPECT_GT(failing, clean);
}

TEST(Perturbation, TraceRecordsOnlySuccessesAndStaysConsistent) {
  const auto c = platform::make_builtin_cluster(1, 25);
  const Ensemble e{3, 6};
  auto options = perturbed(0.05, 0.15, 5);
  options.capture_trace = true;
  const auto schedule = sched::knapsack_grouping(c, e);
  const SimResult r = simulate_ensemble(c, schedule, e, options);
  EXPECT_EQ(r.trace.verify(), "");
  Count mains_in_trace = 0;
  for (const auto& entry : r.trace.entries())
    if (entry.unit_kind == UnitKind::kGroup) ++mains_in_trace;
  EXPECT_EQ(mains_in_trace, 18);
}

TEST(Perturbation, HighFailureRateStressTest) {
  const auto c = platform::make_builtin_cluster(1, 15);
  const Ensemble e{2, 5};
  const auto schedule = sched::knapsack_grouping(c, e);
  const SimResult r = simulate_ensemble(c, schedule, e, perturbed(0.1, 0.6, 9));
  EXPECT_EQ(r.mains_executed, 10);
  EXPECT_GT(r.retries, 5);
}

TEST(Perturbation, KnapsackAdvantageSurvivesNoise) {
  // The headline robustness claim: the grouping decision made on clean
  // benchmark numbers still pays off under 10% duration noise.
  const Ensemble e{10, 30};
  const auto c = platform::make_builtin_cluster(1, 26);
  double basic_sum = 0, knap_sum = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    basic_sum += simulate_ensemble(c, sched::basic_grouping(c, e), e,
                                   perturbed(0.10, 0.0, seed))
                     .makespan;
    knap_sum += simulate_ensemble(c, sched::knapsack_grouping(c, e), e,
                                  perturbed(0.10, 0.0, seed))
                    .makespan;
  }
  EXPECT_LT(knap_sum, basic_sum);
}

}  // namespace
}  // namespace oagrid::sim
