#include "sim/local_search.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/optimal_search.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

TEST(LocalSearch, NeverWorseThanKnapsack) {
  const Ensemble e{6, 10};
  for (const ProcCount r : {15, 23, 31, 40, 53}) {
    const auto c = platform::make_builtin_cluster(1, r);
    const Seconds knap =
        simulate_with_heuristic(c, sched::Heuristic::kKnapsack, e).makespan;
    const LocalSearchResult result = local_search_grouping(c, e);
    EXPECT_LE(result.makespan, knap + 1e-9) << "R=" << r;
  }
}

TEST(LocalSearch, ResultIsValidAndReproducible) {
  const auto c = platform::make_builtin_cluster(2, 34);
  const Ensemble e{5, 8};
  const LocalSearchResult a = local_search_grouping(c, e);
  EXPECT_NO_THROW(a.best.validate(c));
  EXPECT_DOUBLE_EQ(simulate_ensemble(c, a.best, e).makespan, a.makespan);
  const LocalSearchResult b = local_search_grouping(c, e);
  EXPECT_EQ(a.best.group_sizes, b.best.group_sizes);
}

TEST(LocalSearch, ReachesTheOracleOnSmallInstances) {
  const Ensemble e{4, 8};
  for (const ProcCount r : {13, 19, 26, 33}) {
    const auto c = platform::make_builtin_cluster(1, r);
    const auto oracle = optimal_grouping_search(c, e);
    const LocalSearchResult search = local_search_grouping(c, e);
    EXPECT_LE(search.makespan, oracle.makespan * 1.001 + 1e-9) << "R=" << r;
    // And with far fewer simulations than the oracle needed.
    EXPECT_LT(search.evaluations, oracle.evaluated) << "R=" << r;
  }
}

TEST(LocalSearch, RespectsEvaluationBudget) {
  const auto c = platform::make_builtin_cluster(1, 53);
  LocalSearchOptions options;
  options.max_evaluations = 5;
  const LocalSearchResult result =
      local_search_grouping(c, Ensemble{8, 10}, options);
  EXPECT_LE(result.evaluations, 5u);
}

TEST(LocalSearch, ZeroMoveBudgetPicksBestStartingPoint) {
  // With no moves allowed, the search reduces to evaluating the
  // cardinality-capped knapsack starts; the winner is at least as good as
  // the plain (uncapped) knapsack grouping, which is one of the starts.
  const auto c = platform::make_builtin_cluster(1, 40);
  const Ensemble e{6, 10};
  LocalSearchOptions options;
  options.max_accepted_moves = 0;
  const LocalSearchResult result = local_search_grouping(c, e, options);
  const Seconds knap =
      simulate_with_heuristic(c, sched::Heuristic::kKnapsack, e).makespan;
  EXPECT_LE(result.makespan, knap + 1e-9);
  EXPECT_EQ(result.accepted_moves, 0);
}

TEST(LocalSearch, PoolAccountsForAllProcessors) {
  const auto c = platform::make_builtin_cluster(3, 47);
  const LocalSearchResult result = local_search_grouping(c, Ensemble{6, 8});
  const ProcCount used = std::accumulate(result.best.group_sizes.begin(),
                                         result.best.group_sizes.end(),
                                         ProcCount{0});
  EXPECT_EQ(used + result.best.post_pool, 47);
}

}  // namespace
}  // namespace oagrid::sim
