#include "sim/fluid_grid.hpp"

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sched/throughput.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

TEST(FluidCluster, AssignAndDrain) {
  FluidCluster cluster(platform::make_builtin_cluster(1, 22), 10);
  EXPECT_TRUE(cluster.idle());
  cluster.assign(0);
  cluster.assign(1);
  EXPECT_EQ(cluster.resident(), 2);
  EXPECT_DOUBLE_EQ(cluster.months_remaining(), 20.0);
  EXPECT_TRUE(cluster.has_unstarted());

  // Drain completely with a huge epoch: used time equals the projection.
  const double projection = cluster.projected_drain(1.0);
  const double used = cluster.advance(1e12, 1.0);
  EXPECT_TRUE(cluster.idle());
  EXPECT_NEAR(used, projection, 1e-6 * projection);
}

TEST(FluidCluster, ThroughputMatchesKnapsack) {
  const auto base = platform::make_builtin_cluster(1, 30);
  FluidCluster cluster(base, 12);
  cluster.assign(0);
  cluster.assign(1);
  cluster.assign(2);
  EXPECT_DOUBLE_EQ(cluster.throughput(), sched::best_throughput(base, 3));
}

TEST(FluidCluster, SpeedScalesDrainTime) {
  const auto base = platform::make_builtin_cluster(1, 22);
  FluidCluster slow(base, 10), fast(base, 10);
  slow.assign(0);
  fast.assign(0);
  EXPECT_NEAR(slow.projected_drain(0.5), 2.0 * fast.projected_drain(1.0),
              1e-9);
}

TEST(FluidCluster, PartialAdvanceTracksProgress) {
  FluidCluster cluster(platform::make_builtin_cluster(1, 22), 10);
  cluster.assign(0);
  const double half = cluster.projected_drain(1.0) / 2.0;
  EXPECT_DOUBLE_EQ(cluster.advance(half, 1.0), half);
  EXPECT_NEAR(cluster.months_remaining(), 5.0, 1e-9);
  EXPECT_FALSE(cluster.has_unstarted());
}

TEST(FluidCluster, RemoveUnstartedOnlyRemovesFresh) {
  FluidCluster cluster(platform::make_builtin_cluster(1, 22), 10);
  cluster.assign(0);
  cluster.advance(10.0, 1.0);  // starts it
  EXPECT_FALSE(cluster.has_unstarted());
  EXPECT_THROW(cluster.remove_unstarted(), std::invalid_argument);
  cluster.assign(1);
  EXPECT_TRUE(cluster.has_unstarted());
  cluster.remove_unstarted();
  EXPECT_EQ(cluster.resident(), 1);
}

TEST(DynamicGrid, NoDriftMatchesAnalyticRepartition) {
  const auto grid = platform::make_builtin_grid(30);
  const Ensemble ensemble{10, 60};
  DriftModel drift;
  drift.sigma = 0.0;
  drift.epoch_length = 3600.0;
  const auto result =
      simulate_dynamic_grid(grid, ensemble, GridPolicy::kStatic, drift);

  // Fluid makespan must match the analytic performance-vector makespan (both
  // are steady-state throughput models) within the post-tail slack.
  std::vector<sched::PerformanceVector> perf;
  for (const auto& c : grid.clusters())
    perf.push_back(sched::throughput_performance_vector(c, 10, 60));
  const auto repartition = sched::greedy_repartition(perf, 10);
  EXPECT_NEAR(result.makespan, repartition.makespan,
              0.02 * repartition.makespan);
  EXPECT_EQ(result.migrations, 0);
}

TEST(DynamicGrid, NoDriftPoliciesAgree) {
  const auto grid = platform::make_builtin_grid(25).prefix(3);
  const Ensemble ensemble{8, 24};
  DriftModel drift;
  drift.sigma = 0.0;
  const auto fixed =
      simulate_dynamic_grid(grid, ensemble, GridPolicy::kStatic, drift);
  const auto dynamic = simulate_dynamic_grid(
      grid, ensemble, GridPolicy::kRebalanceUnstarted, drift);
  // With Algorithm 1's optimal initial placement and no drift, migration
  // never helps meaningfully.
  EXPECT_NEAR(fixed.makespan, dynamic.makespan, 0.02 * fixed.makespan);
}

TEST(DynamicGrid, UnstartedRebalanceNeverHurtsOnAggregate) {
  // The free relaxation only acts before the first month starts, so its
  // effect is small — but must not be negative in aggregate.
  const auto grid = platform::make_builtin_grid(25);
  const Ensemble ensemble{10, 120};
  double static_total = 0.0, dynamic_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DriftModel drift;
    drift.sigma = 0.25;
    drift.epoch_length = 4.0 * 3600.0;
    drift.seed = seed;
    static_total +=
        simulate_dynamic_grid(grid, ensemble, GridPolicy::kStatic, drift)
            .makespan;
    dynamic_total += simulate_dynamic_grid(
                         grid, ensemble, GridPolicy::kRebalanceUnstarted, drift)
                         .makespan;
  }
  EXPECT_LE(dynamic_total, static_total * 1.01);
}

TEST(DynamicGrid, StatefulMigrationHelpsUnderDrift) {
  // With restart-file migration the whole run is correctable: the dynamic
  // policy must beat the paper's static placement on aggregate and on most
  // seeds.
  const auto grid = platform::make_builtin_grid(25);
  const Ensemble ensemble{10, 120};
  double static_total = 0.0, dynamic_total = 0.0;
  int helped = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    DriftModel drift;
    drift.sigma = 0.25;
    drift.epoch_length = 4.0 * 3600.0;
    drift.seed = seed;
    const auto fixed =
        simulate_dynamic_grid(grid, ensemble, GridPolicy::kStatic, drift);
    const auto dynamic = simulate_dynamic_grid(
        grid, ensemble, GridPolicy::kMigrateWithState, drift);
    static_total += fixed.makespan;
    dynamic_total += dynamic.makespan;
    helped += dynamic.makespan < fixed.makespan - 1.0;
  }
  EXPECT_LT(dynamic_total, 0.97 * static_total);
  EXPECT_GE(helped, 6);
}

TEST(DynamicGrid, MigrationsOnlyWithDynamicPolicies) {
  const auto grid = platform::make_builtin_grid(25);
  const Ensemble ensemble{10, 120};
  DriftModel drift;
  drift.sigma = 0.3;
  drift.seed = 3;
  const auto fixed =
      simulate_dynamic_grid(grid, ensemble, GridPolicy::kStatic, drift);
  EXPECT_EQ(fixed.migrations, 0);
  const auto stateful = simulate_dynamic_grid(
      grid, ensemble, GridPolicy::kMigrateWithState, drift);
  EXPECT_GT(stateful.migrations, 0);
}

TEST(DynamicGrid, HigherMigrationCostMeansFewerMigrations) {
  const auto grid = platform::make_builtin_grid(25);
  const Ensemble ensemble{10, 120};
  DriftModel cheap;
  cheap.sigma = 0.25;
  cheap.seed = 5;
  cheap.migration_cost_override = 60.0;
  DriftModel expensive = cheap;
  expensive.migration_cost_override = 4.0 * 3600.0;
  const auto many = simulate_dynamic_grid(
      grid, ensemble, GridPolicy::kMigrateWithState, cheap);
  const auto few = simulate_dynamic_grid(
      grid, ensemble, GridPolicy::kMigrateWithState, expensive);
  EXPECT_GE(many.migrations, few.migrations);
}

TEST(DynamicGrid, NetworkPricesMigrationCost) {
  // With a network attached the per-pair cost is deploy + transfer_time.
  DriftModel drift;
  drift.network = net::renater_network(3);
  drift.migration_state_mb = 120.0;
  drift.migration_deploy_seconds = 10.0;
  EXPECT_DOUBLE_EQ(drift.migration_cost(0, 1),
                   10.0 + drift.network.transfer_time(0, 1, 120.0));
  // The scalar override wins even with a network attached.
  drift.migration_cost_override = 42.0;
  EXPECT_DOUBLE_EQ(drift.migration_cost(0, 1), 42.0);
  // No network, no override: the legacy flat stall.
  DriftModel legacy;
  EXPECT_DOUBLE_EQ(legacy.migration_cost(0, 2), kLegacyMigrationCost);
}

TEST(DynamicGrid, BandwidthMovesTheMigrationBreakEven) {
  // The ISSUE's acceptance scenario: the same drifting campaign migrates
  // freely over a fat network and falls back toward static behavior when
  // the restart file must crawl over a skinny link.
  const auto grid = platform::make_builtin_grid(25);
  const Ensemble ensemble{10, 120};

  int fat_migrations = 0, skinny_migrations = 0;
  double fat_total = 0.0, skinny_total = 0.0, static_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    DriftModel fat;
    fat.sigma = 0.25;
    fat.epoch_length = 4.0 * 3600.0;
    fat.seed = seed;
    fat.network = net::uniform_network(
        static_cast<int>(grid.cluster_count()), net::LinkSpec{1000.0, 0.001});
    DriftModel skinny = fat;
    // ~0.01 MB/s: shipping 120 MB stalls the scenario for ~3.3 hours.
    skinny.network = net::uniform_network(
        static_cast<int>(grid.cluster_count()), net::LinkSpec{0.01, 0.1});

    const auto fat_run = simulate_dynamic_grid(
        grid, ensemble, GridPolicy::kMigrateWithState, fat);
    const auto skinny_run = simulate_dynamic_grid(
        grid, ensemble, GridPolicy::kMigrateWithState, skinny);
    const auto static_run =
        simulate_dynamic_grid(grid, ensemble, GridPolicy::kStatic, fat);
    fat_migrations += fat_run.migrations;
    skinny_migrations += skinny_run.migrations;
    fat_total += fat_run.makespan;
    skinny_total += skinny_run.makespan;
    static_total += static_run.makespan;
    // Stall accounting is consistent with the migration count.
    if (fat_run.migrations > 0) EXPECT_GT(fat_run.migration_seconds, 0.0);
    if (skinny_run.migrations == 0)
      EXPECT_EQ(skinny_run.migration_seconds, 0.0);
  }
  // Cheap state shipping -> migrate more; expensive -> migrate less.
  EXPECT_GT(fat_migrations, skinny_migrations);
  // And the fat network actually converts those migrations into makespan.
  EXPECT_LT(fat_total, 0.99 * static_total);
  // The skinny network never does worse than ~static (the policy only
  // migrates when the priced move still wins).
  EXPECT_LE(skinny_total, 1.02 * static_total);
}

TEST(DynamicGrid, NetworkClusterCountValidated) {
  const auto grid = platform::make_builtin_grid(20);  // 5 clusters
  DriftModel drift;
  drift.network = net::renater_network(2);
  EXPECT_THROW((void)simulate_dynamic_grid(grid, Ensemble{4, 12},
                                           GridPolicy::kMigrateWithState,
                                           drift),
               std::invalid_argument);
}

TEST(DynamicGrid, DeterministicInSeed) {
  const auto grid = platform::make_builtin_grid(20).prefix(3);
  const Ensemble ensemble{6, 36};
  DriftModel drift;
  drift.sigma = 0.2;
  drift.seed = 11;
  const auto a = simulate_dynamic_grid(grid, ensemble,
                                       GridPolicy::kRebalanceUnstarted, drift);
  const auto b = simulate_dynamic_grid(grid, ensemble,
                                       GridPolicy::kRebalanceUnstarted, drift);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(DynamicGrid, Validation) {
  const auto grid = platform::make_builtin_grid(20);
  DriftModel bad;
  bad.epoch_length = 0.0;
  EXPECT_THROW((void)simulate_dynamic_grid(grid, Ensemble{2, 2},
                                           GridPolicy::kStatic, bad),
               std::invalid_argument);
  const platform::Grid empty;
  EXPECT_THROW((void)simulate_dynamic_grid(empty, Ensemble{2, 2},
                                           GridPolicy::kStatic, DriftModel{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sim
