#include "sim/perf_vector.hpp"

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sim/eval_cache.hpp"
#include "sim/grid_sim.hpp"

namespace oagrid::sim {
namespace {

/// The pre-family reference: one independent schedule + DES evaluation per
/// scenario count, serially. The family-solve fast path must reproduce these
/// doubles exactly.
sched::PerformanceVector reference_vector(const platform::Cluster& cluster,
                                          Count max_scenarios, Count months,
                                          sched::Heuristic heuristic) {
  sched::PerformanceVector vec;
  for (Count k = 1; k <= max_scenarios; ++k) {
    const appmodel::Ensemble ensemble{k, months};
    const sched::GroupSchedule schedule =
        sched::make_schedule(heuristic, cluster, ensemble);
    vec.push_back(cached_makespan(cluster, schedule, ensemble));
  }
  return vec;
}

TEST(PerfVector, KnapsackFamilyPathBitIdenticalToPerKSchedules) {
  // EXPECT_EQ on doubles, deliberately: the shared-DP schedules must be the
  // very same groupings, so the simulated makespans cannot drift at all.
  for (const ProcCount r : {11, 40, 53, 77}) {
    const auto cluster = platform::make_builtin_cluster(1, r);
    eval_cache().clear();  // cold: the DES runs really execute
    const sched::PerformanceVector fast =
        performance_vector(cluster, 10, 60, sched::Heuristic::kKnapsack);
    const sched::PerformanceVector ref =
        reference_vector(cluster, 10, 60, sched::Heuristic::kKnapsack);
    ASSERT_EQ(fast.size(), ref.size()) << "R=" << r;
    for (std::size_t k = 0; k < ref.size(); ++k)
      EXPECT_EQ(fast[k], ref[k]) << "R=" << r << " k=" << k + 1;
  }
}

TEST(PerfVector, WarmCacheReturnsTheSameVector) {
  const auto cluster = platform::make_builtin_cluster(2, 40);
  eval_cache().clear();
  const sched::PerformanceVector cold =
      performance_vector(cluster, 8, 24, sched::Heuristic::kKnapsack);
  const sched::PerformanceVector warm =
      performance_vector(cluster, 8, 24, sched::Heuristic::kKnapsack);
  EXPECT_EQ(cold, warm);
}

TEST(PerfVector, NonKnapsackHeuristicsUnaffectedByFamilyPath) {
  const auto cluster = platform::make_builtin_cluster(0, 53);
  for (const auto h : {sched::Heuristic::kBasic, sched::Heuristic::kRedistribute,
                       sched::Heuristic::kAllForMain}) {
    eval_cache().clear();
    const sched::PerformanceVector fast = performance_vector(cluster, 6, 60, h);
    const sched::PerformanceVector ref = reference_vector(cluster, 6, 60, h);
    EXPECT_EQ(fast, ref) << to_string(h);
  }
}

TEST(PerfVector, GridSimulationInvariantInThreadCount) {
  // The family solve happens per cluster before the parallel DES fan-out, so
  // the worker count must not leak into any result.
  const auto grid = platform::make_builtin_grid(35);
  const appmodel::Ensemble ensemble{10, 60};
  eval_cache().clear();
  const GridSimResult one =
      simulate_grid(grid, ensemble, sched::Heuristic::kKnapsack, 1);
  eval_cache().clear();
  const GridSimResult three =
      simulate_grid(grid, ensemble, sched::Heuristic::kKnapsack, 3);
  EXPECT_EQ(one.repartition.dags_per_cluster,
            three.repartition.dags_per_cluster);
  EXPECT_EQ(one.repartition.assignment, three.repartition.assignment);
  EXPECT_EQ(one.makespan, three.makespan);
  EXPECT_EQ(one.cluster_makespans, three.cluster_makespans);
  EXPECT_EQ(one.performance, three.performance);
}

}  // namespace
}  // namespace oagrid::sim
