#include "sim/trace_stats.hpp"

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"

namespace oagrid::sim {
namespace {

TEST(TraceStats, HandBuiltTrace) {
  Trace trace;
  trace.record(TraceEntry{UnitKind::kGroup, 0, 0, 0, 0.0, 100.0});
  trace.record(TraceEntry{UnitKind::kGroup, 0, 0, 1, 100.0, 200.0});
  trace.record(TraceEntry{UnitKind::kPostWorker, 0, 0, 0, 130.0, 140.0});
  trace.record(TraceEntry{UnitKind::kPostWorker, 0, 0, 1, 200.0, 210.0});
  const TraceStats stats = analyze_trace(trace);
  EXPECT_DOUBLE_EQ(stats.makespan, 210.0);
  ASSERT_EQ(stats.units.size(), 2u);
  // Group unit: busy 200 of 210.
  EXPECT_EQ(stats.units[0].kind, UnitKind::kGroup);
  EXPECT_EQ(stats.units[0].tasks, 2);
  EXPECT_NEAR(stats.units[0].utilization, 200.0 / 210.0, 1e-12);
  // Post latency: month 0 waited 30 s, month 1 waited 0 s.
  EXPECT_EQ(stats.posts_measured, 2);
  EXPECT_DOUBLE_EQ(stats.mean_post_latency, 15.0);
  EXPECT_DOUBLE_EQ(stats.max_post_latency, 30.0);
}

TEST(TraceStats, RejectsEmptyAndInvalid) {
  EXPECT_THROW((void)analyze_trace(Trace{}), std::invalid_argument);
  Trace overlapping;
  overlapping.record(TraceEntry{UnitKind::kGroup, 0, 0, 0, 0.0, 10.0});
  overlapping.record(TraceEntry{UnitKind::kGroup, 0, 1, 0, 5.0, 15.0});
  EXPECT_THROW((void)analyze_trace(overlapping), std::invalid_argument);
}

TEST(TraceStats, UtilizationMatchesSimulatorAccounting) {
  const auto c = platform::make_builtin_cluster(1, 30);
  const appmodel::Ensemble e{4, 8};
  SimOptions options;
  options.capture_trace = true;
  const SimResult r =
      simulate_with_heuristic(c, sched::Heuristic::kKnapsack, e, options);
  const TraceStats stats = analyze_trace(r.trace);
  EXPECT_NEAR(stats.makespan, r.makespan, 1e-9);
  // The simulator weights utilization by group size; the trace statistic is
  // unweighted per-unit — they agree when all groups are equal, and must be
  // in the same ballpark generally.
  EXPECT_NEAR(stats.group_utilization, r.group_utilization, 0.15);
}

TEST(TraceStats, AllAtEndPolicyShowsLargePostLatency) {
  const auto c = platform::make_builtin_cluster(1, 30);
  const appmodel::Ensemble e{3, 6};
  SimOptions options;
  options.capture_trace = true;
  // An explicitly pooled schedule (an adequate dedicated pool) vs the same
  // groups with every post deferred to the end.
  sched::GroupSchedule pooled_schedule;
  pooled_schedule.group_sizes = {8, 8, 8};
  pooled_schedule.post_pool = 6;
  sched::GroupSchedule deferred_schedule = pooled_schedule;
  deferred_schedule.post_pool = 0;
  deferred_schedule.post_policy = sched::PostPolicy::kAllAtEnd;
  const TraceStats pooled_stats =
      analyze_trace(simulate_ensemble(c, pooled_schedule, e, options).trace);
  const TraceStats deferred_stats =
      analyze_trace(simulate_ensemble(c, deferred_schedule, e, options).trace);
  // With the pool keeping up, posts start almost immediately; deferring
  // makes early months wait nearly the whole main phase.
  EXPECT_LT(pooled_stats.max_post_latency, c.main_time(8));
  EXPECT_GT(deferred_stats.max_post_latency,
            4.0 * c.main_time(8));
  EXPECT_GT(deferred_stats.mean_post_latency, pooled_stats.mean_post_latency);
}

TEST(TraceStats, OverpassBacklogVisibleAsLatencyGrowth) {
  // A deliberately undersized pool (one post per 120 s window against two
  // arrivals): the overpass of Figures 4-5 appears as post latency growing
  // across sets.
  const platform::Cluster c("tight", 9, 4, {120, 110, 100, 90, 80, 70, 60, 50},
                            90.0);
  sched::GroupSchedule schedule;
  schedule.group_sizes = {4, 4};
  schedule.post_pool = 1;
  SimOptions options;
  options.capture_trace = true;
  const SimResult r =
      simulate_ensemble(c, schedule, appmodel::Ensemble{2, 6}, options);
  const TraceStats stats = analyze_trace(r.trace);
  EXPECT_GT(stats.max_post_latency, stats.mean_post_latency);
  EXPECT_GT(stats.max_post_latency, 90.0);  // more than one TP of backlog
}

}  // namespace
}  // namespace oagrid::sim
