#include "sim/ensemble_sim.hpp"

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sched/makespan_model.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;
using platform::Cluster;
using sched::GroupSchedule;
using sched::PostPolicy;

/// Cluster whose TG is an exact multiple of TP for every G, so the paper's
/// closed-form model is exact (no set-boundary rounding).
Cluster divisible_cluster(ProcCount resources, Seconds tp = 10.0) {
  // TG: decreasing multiples of tp.
  std::vector<Seconds> tg;
  for (int i = 0; i < 8; ++i) tg.push_back(tp * static_cast<double>(40 - 3 * i));
  return Cluster("divisible", resources, 4, std::move(tg), tp);
}

GroupSchedule uniform_schedule(const Cluster& c, const Ensemble& e,
                               ProcCount g) {
  const auto est = sched::evaluate_uniform_grouping(c, e, g);
  GroupSchedule s;
  s.group_sizes.assign(static_cast<std::size_t>(est.nbmax), g);
  s.post_pool = est.r2;
  s.post_policy = PostPolicy::kPoolThenRetired;
  return s;
}

TEST(EnsembleSim, SingleScenarioSingleMonth) {
  const Cluster c = divisible_cluster(15);
  GroupSchedule s;
  s.group_sizes = {4};
  s.post_pool = 1;
  const SimResult r = simulate_ensemble(c, s, Ensemble{1, 1});
  EXPECT_EQ(r.mains_executed, 1);
  EXPECT_EQ(r.posts_executed, 1);
  EXPECT_DOUBLE_EQ(r.main_phase_end, c.main_time(4));
  EXPECT_DOUBLE_EQ(r.makespan, c.main_time(4) + c.post_time());
}

TEST(EnsembleSim, TaskConservation) {
  const Cluster c = divisible_cluster(30);
  const Ensemble e{4, 7};
  const SimResult r =
      simulate_ensemble(c, uniform_schedule(c, e, 5), e);
  EXPECT_EQ(r.mains_executed, 28);
  EXPECT_EQ(r.posts_executed, 28);
}

TEST(EnsembleSim, TraceInvariantsHold) {
  const Cluster c = divisible_cluster(23);
  const Ensemble e{3, 5};
  SimOptions opt;
  opt.capture_trace = true;
  for (const auto policy : {PostPolicy::kPoolThenRetired, PostPolicy::kAllAtEnd}) {
    GroupSchedule s = uniform_schedule(c, e, 5);
    s.post_policy = policy;
    if (policy == PostPolicy::kAllAtEnd) s.post_pool = 0;
    const SimResult r = simulate_ensemble(c, s, e, opt);
    EXPECT_EQ(r.trace.verify(), "") << sched::to_string(policy);
    EXPECT_EQ(r.trace.entries().size(), 30u);
  }
}

TEST(EnsembleSim, ChainOrderWithinScenario) {
  const Cluster c = divisible_cluster(8);
  const Ensemble e{2, 6};
  SimOptions opt;
  opt.capture_trace = true;
  const SimResult r = simulate_ensemble(c, uniform_schedule(c, e, 4), e, opt);
  EXPECT_EQ(r.trace.verify(), "");
}

TEST(EnsembleSim, AllAtEndDefersEveryPost) {
  const Cluster c = divisible_cluster(16);
  const Ensemble e{2, 4};
  GroupSchedule s = uniform_schedule(c, e, 4);
  s.post_policy = PostPolicy::kAllAtEnd;
  s.post_pool = 0;
  SimOptions opt;
  opt.capture_trace = true;
  const SimResult r = simulate_ensemble(c, s, e, opt);
  for (const auto& entry : r.trace.entries()) {
    if (entry.unit_kind == UnitKind::kPostWorker) {
      EXPECT_GE(entry.start, r.main_phase_end - 1e-9);
    }
  }
}

TEST(EnsembleSim, PoolRunsPostsConcurrently) {
  const Cluster c = divisible_cluster(20);
  const Ensemble e{2, 4};
  GroupSchedule s;
  s.group_sizes = {4, 4};
  s.post_pool = 2;
  SimOptions opt;
  opt.capture_trace = true;
  const SimResult r = simulate_ensemble(c, s, e, opt);
  bool post_during_mains = false;
  for (const auto& entry : r.trace.entries())
    if (entry.unit_kind == UnitKind::kPostWorker &&
        entry.end < r.main_phase_end)
      post_during_mains = true;
  EXPECT_TRUE(post_during_mains);
}

TEST(EnsembleSim, UtilizationWithinBounds) {
  const Cluster c = divisible_cluster(31);
  const Ensemble e{4, 8};
  const SimResult r = simulate_ensemble(c, uniform_schedule(c, e, 6), e);
  EXPECT_GT(r.group_utilization, 0.0);
  EXPECT_LE(r.group_utilization, 1.0 + 1e-9);
}

TEST(EnsembleSim, FasterGroupsDoMoreMonths) {
  // Heterogeneous groups: an 11-group is faster than a 4-group, so it should
  // complete more months of the workload.
  const auto c = platform::make_builtin_cluster(1, 15);
  GroupSchedule s;
  s.group_sizes = {11, 4};
  s.post_pool = 0;
  const Ensemble e{4, 10};
  SimOptions opt;
  opt.capture_trace = true;
  const SimResult r = simulate_ensemble(c, s, e, opt);
  int fast = 0, slow = 0;
  for (const auto& entry : r.trace.entries()) {
    if (entry.unit_kind != UnitKind::kGroup) continue;
    (entry.unit == 0 ? fast : slow) += 1;
  }
  EXPECT_GT(fast, slow);
  EXPECT_EQ(fast + slow, 40);
}

// ---------------------------------------------------------------------------
// Closed-form (Equations 1-5) vs discrete-event cross-validation.
// ---------------------------------------------------------------------------

struct FormulaCase {
  ProcCount resources;
  ProcCount group;
  Count scenarios;
  Count months;
};

class FormulaVsSimulationExact : public ::testing::TestWithParam<FormulaCase> {};

TEST_P(FormulaVsSimulationExact, AgreeWhenTpDividesTg) {
  const auto [resources, group, scenarios, months] = GetParam();
  const Cluster c = divisible_cluster(resources);
  const Ensemble e{scenarios, months};
  const auto analytic = sched::evaluate_uniform_grouping(c, e, group);
  ASSERT_NE(analytic.regime, sched::MakespanRegime::kInfeasible);
  const SimResult simulated =
      simulate_ensemble(c, uniform_schedule(c, e, group), e);
  EXPECT_NEAR(simulated.main_phase_end, analytic.main_phase, 1e-6)
      << to_string(analytic.regime);
  EXPECT_NEAR(simulated.makespan, analytic.makespan, 1e-6)
      << to_string(analytic.regime);
}

INSTANTIATE_TEST_SUITE_P(
    AllFourRegimes, FormulaVsSimulationExact,
    ::testing::Values(
        // R2 = 0, nbused = 0 (Eq 2): R = G * nbmax, tasks divisible.
        FormulaCase{8, 4, 2, 4}, FormulaCase{20, 5, 4, 6},
        FormulaCase{44, 11, 4, 10},
        // R2 = 0, nbused != 0 (Eq 3).
        FormulaCase{8, 4, 3, 3}, FormulaCase{20, 5, 4, 3},
        // R2 != 0, nbused = 0 (Eq 4).
        FormulaCase{9, 4, 2, 4}, FormulaCase{23, 5, 4, 5},
        FormulaCase{30, 7, 4, 7},
        // R2 != 0, nbused != 0 (Eq 5).
        FormulaCase{9, 4, 3, 3}, FormulaCase{23, 5, 3, 4},
        FormulaCase{38, 6, 5, 7}));

class FormulaVsSimulationSweep
    : public ::testing::TestWithParam<std::tuple<ProcCount, Count, Count>> {};

TEST_P(FormulaVsSimulationSweep, ExactAgreementAcrossGroupSizes) {
  const auto [resources, scenarios, months] = GetParam();
  const Cluster c = divisible_cluster(resources);
  const Ensemble e{scenarios, months};
  for (ProcCount g = 4; g <= 11 && g <= resources; ++g) {
    const auto analytic = sched::evaluate_uniform_grouping(c, e, g);
    if (analytic.regime == sched::MakespanRegime::kInfeasible) continue;
    const SimResult simulated =
        simulate_ensemble(c, uniform_schedule(c, e, g), e);
    EXPECT_NEAR(simulated.makespan, analytic.makespan, 1e-6)
        << "R=" << resources << " G=" << g << " regime "
        << to_string(analytic.regime);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DenseSweep, FormulaVsSimulationSweep,
    ::testing::Combine(::testing::Values<ProcCount>(11, 16, 21, 27, 34, 41, 53,
                                                    68, 87, 104, 120),
                       ::testing::Values<Count>(2, 3, 5, 10),
                       ::testing::Values<Count>(4, 9, 16)));

TEST(FormulaVsSimulation, AnalyticUpperBoundsSimulationOnRealTables) {
  // With the real (non-divisible) benchmark tables the closed form may only
  // over-approximate: the DES can start a post inside the final set window
  // where the formula re-buckets it. Never the other way around.
  const Ensemble e{10, 30};
  for (int profile = 0; profile < 5; ++profile) {
    for (ProcCount r = 11; r <= 120; r += 7) {
      const auto c = platform::make_builtin_cluster(profile, r);
      for (ProcCount g = 4; g <= 11 && g <= r; ++g) {
        const auto analytic = sched::evaluate_uniform_grouping(c, e, g);
        if (analytic.regime == sched::MakespanRegime::kInfeasible) continue;
        const SimResult simulated =
            simulate_ensemble(c, uniform_schedule(c, e, g), e);
        EXPECT_LE(simulated.makespan, analytic.makespan + 1e-6)
            << "profile=" << profile << " R=" << r << " G=" << g;
        // And the bound is tight to within a couple of post tasks.
        EXPECT_GE(simulated.makespan,
                  analytic.makespan - 3.0 * c.post_time() - 1e-6)
            << "profile=" << profile << " R=" << r << " G=" << g;
      }
    }
  }
}

TEST(DispatchRules, LeastAdvancedKeepsScenariosBalanced) {
  const Cluster c = divisible_cluster(12);
  const Ensemble e{4, 6};
  SimOptions opt;
  opt.capture_trace = true;
  opt.dispatch = DispatchRule::kLeastAdvanced;
  GroupSchedule s;
  s.group_sizes = {4, 4, 4};
  s.post_pool = 0;
  const SimResult r = simulate_ensemble(c, s, e, opt);
  // After each "era" of the run, completed months across scenarios differ by
  // at most 1 — check the final trace supports full completion.
  EXPECT_EQ(r.trace.verify(), "");
  EXPECT_EQ(r.mains_executed, 24);
}

TEST(DispatchRules, AllRulesCompleteTheWorkload) {
  const Cluster c = divisible_cluster(17);
  const Ensemble e{3, 5};
  for (const auto rule : {DispatchRule::kLeastAdvanced, DispatchRule::kRoundRobin,
                          DispatchRule::kFifo}) {
    SimOptions opt;
    opt.dispatch = rule;
    opt.capture_trace = true;
    const SimResult r = simulate_ensemble(c, uniform_schedule(c, e, 5), e, opt);
    EXPECT_EQ(r.mains_executed, 15) << to_string(rule);
    EXPECT_EQ(r.posts_executed, 15) << to_string(rule);
    EXPECT_EQ(r.trace.verify(), "") << to_string(rule);
  }
}

TEST(DispatchRules, UniformGroupsMakeRulesEquivalent) {
  // With identical groups and synchronized sets, all three rules produce the
  // same makespan (they only permute scenario identities).
  const Cluster c = divisible_cluster(26);
  const Ensemble e{5, 8};
  Seconds makespans[3];
  int i = 0;
  for (const auto rule : {DispatchRule::kLeastAdvanced, DispatchRule::kRoundRobin,
                          DispatchRule::kFifo}) {
    SimOptions opt;
    opt.dispatch = rule;
    makespans[i++] =
        simulate_ensemble(c, uniform_schedule(c, e, 5), e, opt).makespan;
  }
  EXPECT_DOUBLE_EQ(makespans[0], makespans[1]);
  EXPECT_DOUBLE_EQ(makespans[0], makespans[2]);
}

TEST(EnsembleSim, InvalidScheduleRejected) {
  const Cluster c = divisible_cluster(10);
  GroupSchedule s;  // empty groups
  EXPECT_THROW((void)simulate_ensemble(c, s, Ensemble{1, 1}),
               std::invalid_argument);
  s.group_sizes = {20};  // bigger than table range
  EXPECT_THROW((void)simulate_ensemble(c, s, Ensemble{1, 1}),
               std::invalid_argument);
}

TEST(EnsembleSim, HeuristicConvenienceWrapper) {
  const auto c = platform::make_builtin_cluster(1, 53);
  const Ensemble e{10, 12};
  const SimResult r =
      simulate_with_heuristic(c, sched::Heuristic::kKnapsack, e);
  EXPECT_EQ(r.mains_executed, 120);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(EnsembleSim, MoreResourcesNeverHurtKnapsack) {
  const Ensemble e{10, 12};
  Seconds prev = kInfiniteTime;
  for (ProcCount r = 11; r <= 120; r += 11) {
    const auto c = platform::make_builtin_cluster(1, r);
    const SimResult result =
        simulate_with_heuristic(c, sched::Heuristic::kKnapsack, e);
    EXPECT_LE(result.makespan, prev + 1e-6) << "R=" << r;
    prev = result.makespan;
  }
}

TEST(EnsembleSim, ZeroRestartHandoffIsBitIdentical) {
  const Cluster c = divisible_cluster(25);
  const Ensemble e{4, 8};
  SimOptions plain;
  SimOptions explicit_zero;
  explicit_zero.restart_handoff = 0.0;
  const SimResult a = simulate_ensemble(c, uniform_schedule(c, e, 5), e, plain);
  const SimResult b =
      simulate_ensemble(c, uniform_schedule(c, e, 5), e, explicit_zero);
  EXPECT_EQ(a.makespan, b.makespan);  // exact, not NEAR
  EXPECT_EQ(a.main_phase_end, b.main_phase_end);
}

TEST(EnsembleSim, RestartHandoffStallsEveryLaterMonth) {
  // One scenario, one group: months run strictly in sequence, so each of
  // the NM-1 inter-month boundaries pays exactly one hand-off.
  const Cluster c = divisible_cluster(15);
  const Ensemble e{1, 6};
  GroupSchedule s;
  s.group_sizes = {4};
  s.post_pool = 1;
  const SimResult base = simulate_ensemble(c, s, e);
  SimOptions opt;
  opt.restart_handoff = 12.5;
  const SimResult stalled = simulate_ensemble(c, s, e, opt);
  EXPECT_DOUBLE_EQ(stalled.makespan, base.makespan + 5 * 12.5);
  EXPECT_EQ(stalled.mains_executed, base.mains_executed);
}

TEST(EnsembleSim, RestartHandoffRejectsNegative) {
  const Cluster c = divisible_cluster(15);
  GroupSchedule s;
  s.group_sizes = {4};
  s.post_pool = 1;
  SimOptions opt;
  opt.restart_handoff = -1.0;
  EXPECT_THROW((void)simulate_ensemble(c, s, Ensemble{1, 2}, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sim
