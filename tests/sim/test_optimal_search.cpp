#include "sim/optimal_search.hpp"

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/lower_bounds.hpp"
#include "sim/ensemble_sim.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

TEST(OptimalSearch, CandidateCountMatchesEnumeration) {
  const auto c = platform::make_builtin_cluster(1, 11);
  // Multisets from sizes 4..11 with total <= 11, <= 2 parts:
  // singles: 4..11 (8); pairs: {4,4} {4,5} {4,6} {4,7} {5,5} {5,6} -> 6.
  EXPECT_EQ(count_grouping_candidates(c, 2), 14u);
}

TEST(OptimalSearch, CapGuards) {
  const auto c = platform::make_builtin_cluster(1, 90);
  EXPECT_THROW(
      (void)optimal_grouping_search(c, Ensemble{10, 4},
                                    sched::PostPolicy::kPoolThenRetired, 10),
      std::invalid_argument);
}

TEST(OptimalSearch, FindsExactOptimumOnTinyCase) {
  // R = 11, NS = 2, NM = 4: small enough to reason about. The oracle must be
  // at least as good as every heuristic.
  const auto c = platform::make_builtin_cluster(1, 11);
  const Ensemble e{2, 4};
  const GroupingSearchResult best = optimal_grouping_search(c, e);
  EXPECT_GT(best.evaluated, 0u);
  for (const auto h :
       {sched::Heuristic::kBasic, sched::Heuristic::kRedistribute,
        sched::Heuristic::kAllForMain, sched::Heuristic::kKnapsack}) {
    const Seconds ms = simulate_with_heuristic(c, h, e).makespan;
    EXPECT_GE(ms, best.makespan - 1e-6) << to_string(h);
  }
}

TEST(OptimalSearch, RespectsLowerBound) {
  const auto c = platform::make_builtin_cluster(1, 23);
  const Ensemble e{3, 6};
  const GroupingSearchResult best = optimal_grouping_search(c, e);
  EXPECT_GE(best.makespan,
            sched::ensemble_lower_bounds(c, e).combined() - 1e-6);
}

TEST(OptimalSearch, KnapsackCloseToOracleAcrossSmallSweep) {
  // The headline optimality-gap result: knapsack within a few percent of the
  // exhaustive optimum of the model.
  const Ensemble e{4, 8};
  for (const ProcCount r : {13, 19, 26, 33}) {
    const auto c = platform::make_builtin_cluster(1, r);
    const GroupingSearchResult best = optimal_grouping_search(c, e);
    const Seconds knap =
        simulate_with_heuristic(c, sched::Heuristic::kKnapsack, e).makespan;
    EXPECT_LE(knap / best.makespan, 1.08) << "R=" << r;
  }
}

TEST(OptimalSearch, BestScheduleIsValid) {
  const auto c = platform::make_builtin_cluster(2, 20);
  const Ensemble e{3, 5};
  const GroupingSearchResult best = optimal_grouping_search(c, e);
  EXPECT_NO_THROW(best.best.validate(c));
  // Re-simulating the reported schedule reproduces the reported makespan.
  EXPECT_DOUBLE_EQ(simulate_ensemble(c, best.best, e).makespan, best.makespan);
}

}  // namespace
}  // namespace oagrid::sim
