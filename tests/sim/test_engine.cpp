#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace oagrid::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(5.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(9.0, [&] { order.push_back(3); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    engine.schedule_at(7.0, [&order, i] { order.push_back(i); });
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, CallbacksMayScheduleMoreEvents) {
  Engine engine;
  int count = 0;
  std::function<void()> reschedule = [&] {
    ++count;
    if (count < 5) engine.schedule_after(1.0, reschedule);
  };
  engine.schedule_at(0.0, reschedule);
  EXPECT_EQ(engine.run(), 5u);
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

TEST(Engine, ZeroDelayEventsRunAtCurrentTime) {
  Engine engine;
  bool ran = false;
  engine.schedule_at(3.0, [&] {
    engine.schedule_after(0.0, [&] { ran = true; });
  });
  engine.run();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, RejectsPastAndNegative) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_at(6.0, nullptr), std::invalid_argument);
}

TEST(Engine, StopHaltsProcessing) {
  Engine engine;
  int executed = 0;
  for (int i = 0; i < 10; ++i)
    engine.schedule_at(static_cast<double>(i), [&] {
      ++executed;
      if (executed == 3) engine.stop();
    });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(engine.pending(), 7u);
  // run() again resumes the calendar.
  EXPECT_EQ(engine.run(), 7u);
  EXPECT_EQ(executed, 10);
}

TEST(Engine, EmptyRunReturnsZero) {
  Engine engine;
  EXPECT_EQ(engine.run(), 0u);
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

}  // namespace
}  // namespace oagrid::sim
