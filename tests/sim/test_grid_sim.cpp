#include "sim/grid_sim.hpp"

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sim/perf_vector.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

TEST(PerfVector, MonotoneNonDecreasing) {
  // More scenarios on the same cluster can never finish sooner.
  for (int profile = 0; profile < 5; ++profile) {
    const auto c = platform::make_builtin_cluster(profile, 40);
    const auto vec =
        performance_vector(c, 10, 12, sched::Heuristic::kKnapsack);
    ASSERT_EQ(vec.size(), 10u);
    for (std::size_t k = 1; k < vec.size(); ++k)
      EXPECT_GE(vec[k], vec[k - 1] - 1e-6) << "profile " << profile << " k=" << k;
  }
}

TEST(PerfVector, FasterClusterDominates) {
  const auto fast = platform::make_builtin_cluster(0, 40);
  const auto slow = platform::make_builtin_cluster(4, 40);
  const auto vf = performance_vector(fast, 6, 12, sched::Heuristic::kBasic);
  const auto vs = performance_vector(slow, 6, 12, sched::Heuristic::kBasic);
  for (std::size_t k = 0; k < vf.size(); ++k) EXPECT_LT(vf[k], vs[k]);
}

TEST(GridSim, AllScenariosPlaced) {
  const auto grid = platform::make_builtin_grid(30);
  const GridSimResult r =
      simulate_grid(grid, Ensemble{10, 12}, sched::Heuristic::kKnapsack);
  EXPECT_EQ(r.repartition.total_dags(), 10);
  EXPECT_EQ(r.performance.size(), 5u);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(GridSim, MakespanIsWorstClusterMakespan) {
  const auto grid = platform::make_builtin_grid(25);
  const GridSimResult r =
      simulate_grid(grid, Ensemble{10, 12}, sched::Heuristic::kBasic);
  Seconds worst = 0.0;
  for (const Seconds ms : r.cluster_makespans) worst = std::max(worst, ms);
  EXPECT_DOUBLE_EQ(r.makespan, worst);
}

TEST(GridSim, FasterClustersGetAtLeastAsManyDags) {
  // Built-in profiles are ordered fastest -> slowest with equal resources.
  const auto grid = platform::make_builtin_grid(35);
  const GridSimResult r =
      simulate_grid(grid, Ensemble{10, 12}, sched::Heuristic::kKnapsack);
  for (std::size_t c = 0; c + 1 < r.repartition.dags_per_cluster.size(); ++c)
    EXPECT_GE(r.repartition.dags_per_cluster[c],
              r.repartition.dags_per_cluster[c + 1]);
}

TEST(GridSim, RepartitionLocallyOptimal) {
  const auto grid = platform::make_builtin_grid(20);
  const GridSimResult r =
      simulate_grid(grid, Ensemble{8, 10}, sched::Heuristic::kKnapsack);
  EXPECT_TRUE(sched::is_locally_optimal(r.performance, r.repartition));
}

TEST(GridSim, TwoClustersBeatOne) {
  // Adding a second cluster can only help (the greedy can ignore it).
  const auto grid = platform::make_builtin_grid(25);
  const auto one = simulate_grid(grid.prefix(1), Ensemble{10, 12},
                                 sched::Heuristic::kKnapsack);
  const auto two = simulate_grid(grid.prefix(2), Ensemble{10, 12},
                                 sched::Heuristic::kKnapsack);
  EXPECT_LE(two.makespan, one.makespan + 1e-6);
}

TEST(GridSim, ParallelAndSerialVectorsMatch) {
  const auto grid = platform::make_builtin_grid(30);
  const auto serial =
      simulate_grid(grid, Ensemble{6, 10}, sched::Heuristic::kKnapsack, 1);
  const auto parallel =
      simulate_grid(grid, Ensemble{6, 10}, sched::Heuristic::kKnapsack, 4);
  EXPECT_EQ(serial.repartition.dags_per_cluster,
            parallel.repartition.dags_per_cluster);
  EXPECT_DOUBLE_EQ(serial.makespan, parallel.makespan);
}

TEST(GridSim, Validation) {
  const platform::Grid empty;
  EXPECT_THROW(
      (void)simulate_grid(empty, Ensemble{2, 2}, sched::Heuristic::kBasic),
      std::invalid_argument);
}

TEST(GridSimNetwork, FreeNetworkIsBitIdentical) {
  // Acceptance gate: attaching a free network must reproduce the netless
  // run exactly — same repartition, same makespans, to the last bit.
  const auto grid = platform::make_builtin_grid(30);
  const Ensemble ensemble{10, 12};
  const auto heuristic = sched::Heuristic::kKnapsack;

  const GridSimResult netless = simulate_grid(grid, ensemble, heuristic);
  const GridNetworkOptions free_options = campaign_network_options(
      net::free_network(static_cast<int>(grid.cluster_count())), ensemble);
  const GridSimResult with_free =
      simulate_grid(grid, ensemble, heuristic, 1, free_options);

  EXPECT_EQ(with_free.repartition.dags_per_cluster,
            netless.repartition.dags_per_cluster);
  EXPECT_EQ(with_free.repartition.assignment, netless.repartition.assignment);
  EXPECT_EQ(with_free.makespan, netless.makespan);  // bitwise
  for (std::size_t c = 0; c < netless.cluster_makespans.size(); ++c) {
    EXPECT_EQ(with_free.cluster_makespans[c], netless.cluster_makespans[c]);
    EXPECT_EQ(with_free.staging_seconds[c], 0.0);
    EXPECT_EQ(with_free.collection_seconds[c], 0.0);
  }
  // Volumes were still accounted (the transfers ran, at zero cost).
  EXPECT_GT(with_free.transfer_mb, 0.0);
  EXPECT_EQ(netless.transfer_mb, 0.0);
}

TEST(GridSimNetwork, RenaterNetworkAddsTransferTime) {
  const auto grid = platform::make_builtin_grid(30).prefix(3);
  const Ensemble ensemble{8, 12};
  const auto heuristic = sched::Heuristic::kKnapsack;

  const GridSimResult netless = simulate_grid(grid, ensemble, heuristic);
  const GridNetworkOptions options = campaign_network_options(
      net::renater_network(static_cast<int>(grid.cluster_count())), ensemble);
  const GridSimResult priced = simulate_grid(grid, ensemble, heuristic, 1, options);

  EXPECT_GT(priced.makespan, netless.makespan);
  EXPECT_GT(priced.transfer_mb, 0.0);
  bool any_staging = false;
  for (std::size_t c = 0; c < priced.cluster_makespans.size(); ++c) {
    if (priced.repartition.dags_per_cluster[c] == 0) {
      EXPECT_EQ(priced.staging_seconds[c], 0.0);
      EXPECT_EQ(priced.collection_seconds[c], 0.0);
      continue;
    }
    // Remote clusters pay real staging and collection time; the home
    // cluster pays (cheaper) intra-fabric time.
    if (static_cast<ClusterId>(c) != options.home) {
      EXPECT_GT(priced.staging_seconds[c], 0.0);
      EXPECT_GT(priced.collection_seconds[c], 0.0);
    }
    any_staging = any_staging || priced.staging_seconds[c] > 0.0;
    EXPECT_GE(priced.cluster_makespans[c],
              priced.staging_seconds[c] + priced.collection_seconds[c]);
  }
  EXPECT_TRUE(any_staging);
}

TEST(GridSimNetwork, CampaignVolumesScaleWithMonths) {
  const Ensemble short_run{4, 6};
  const Ensemble long_run{4, 24};
  const auto net = net::renater_network(2);
  const GridNetworkOptions a = campaign_network_options(net, short_run);
  const GridNetworkOptions b = campaign_network_options(net, long_run);
  // Staging ships the initial restart (month-count independent); collection
  // grows with the diagnostics the extra months produce.
  EXPECT_DOUBLE_EQ(a.stage_mb_per_scenario, b.stage_mb_per_scenario);
  EXPECT_GT(b.collect_mb_per_scenario, a.collect_mb_per_scenario);
  EXPECT_GT(a.stage_mb_per_scenario, 0.0);
  EXPECT_GT(a.collect_mb_per_scenario, 0.0);
}

TEST(GridSimNetwork, RejectsMismatchedClusterCount) {
  const auto grid = platform::make_builtin_grid(25).prefix(3);
  GridNetworkOptions options;
  options.network = net::renater_network(2);  // grid has 3
  EXPECT_THROW((void)simulate_grid(grid, Ensemble{4, 6},
                                   sched::Heuristic::kBasic, 1, options),
               std::invalid_argument);
}

TEST(GridSimNetwork, SlowNetworkConcentratesLoadAtHome) {
  // When shipping data dwarfs computing, the charged Algorithm 1 keeps
  // scenarios at the home cluster even though remote capacity is idle.
  const auto grid = platform::make_builtin_grid(30).prefix(3);
  const Ensemble ensemble{6, 12};

  GridNetworkOptions crippled = campaign_network_options(
      net::uniform_network(3, net::LinkSpec{0.001, 1.0}), ensemble);
  const GridSimResult r =
      simulate_grid(grid, ensemble, sched::Heuristic::kKnapsack, 1, crippled);
  EXPECT_EQ(r.repartition.dags_per_cluster[0], 6);
  EXPECT_EQ(r.repartition.dags_per_cluster[1], 0);
  EXPECT_EQ(r.repartition.dags_per_cluster[2], 0);
}

}  // namespace
}  // namespace oagrid::sim
