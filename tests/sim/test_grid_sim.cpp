#include "sim/grid_sim.hpp"

#include <gtest/gtest.h>

#include "platform/profiles.hpp"
#include "sim/perf_vector.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

TEST(PerfVector, MonotoneNonDecreasing) {
  // More scenarios on the same cluster can never finish sooner.
  for (int profile = 0; profile < 5; ++profile) {
    const auto c = platform::make_builtin_cluster(profile, 40);
    const auto vec =
        performance_vector(c, 10, 12, sched::Heuristic::kKnapsack);
    ASSERT_EQ(vec.size(), 10u);
    for (std::size_t k = 1; k < vec.size(); ++k)
      EXPECT_GE(vec[k], vec[k - 1] - 1e-6) << "profile " << profile << " k=" << k;
  }
}

TEST(PerfVector, FasterClusterDominates) {
  const auto fast = platform::make_builtin_cluster(0, 40);
  const auto slow = platform::make_builtin_cluster(4, 40);
  const auto vf = performance_vector(fast, 6, 12, sched::Heuristic::kBasic);
  const auto vs = performance_vector(slow, 6, 12, sched::Heuristic::kBasic);
  for (std::size_t k = 0; k < vf.size(); ++k) EXPECT_LT(vf[k], vs[k]);
}

TEST(GridSim, AllScenariosPlaced) {
  const auto grid = platform::make_builtin_grid(30);
  const GridSimResult r =
      simulate_grid(grid, Ensemble{10, 12}, sched::Heuristic::kKnapsack);
  EXPECT_EQ(r.repartition.total_dags(), 10);
  EXPECT_EQ(r.performance.size(), 5u);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(GridSim, MakespanIsWorstClusterMakespan) {
  const auto grid = platform::make_builtin_grid(25);
  const GridSimResult r =
      simulate_grid(grid, Ensemble{10, 12}, sched::Heuristic::kBasic);
  Seconds worst = 0.0;
  for (const Seconds ms : r.cluster_makespans) worst = std::max(worst, ms);
  EXPECT_DOUBLE_EQ(r.makespan, worst);
}

TEST(GridSim, FasterClustersGetAtLeastAsManyDags) {
  // Built-in profiles are ordered fastest -> slowest with equal resources.
  const auto grid = platform::make_builtin_grid(35);
  const GridSimResult r =
      simulate_grid(grid, Ensemble{10, 12}, sched::Heuristic::kKnapsack);
  for (std::size_t c = 0; c + 1 < r.repartition.dags_per_cluster.size(); ++c)
    EXPECT_GE(r.repartition.dags_per_cluster[c],
              r.repartition.dags_per_cluster[c + 1]);
}

TEST(GridSim, RepartitionLocallyOptimal) {
  const auto grid = platform::make_builtin_grid(20);
  const GridSimResult r =
      simulate_grid(grid, Ensemble{8, 10}, sched::Heuristic::kKnapsack);
  EXPECT_TRUE(sched::is_locally_optimal(r.performance, r.repartition));
}

TEST(GridSim, TwoClustersBeatOne) {
  // Adding a second cluster can only help (the greedy can ignore it).
  const auto grid = platform::make_builtin_grid(25);
  const auto one = simulate_grid(grid.prefix(1), Ensemble{10, 12},
                                 sched::Heuristic::kKnapsack);
  const auto two = simulate_grid(grid.prefix(2), Ensemble{10, 12},
                                 sched::Heuristic::kKnapsack);
  EXPECT_LE(two.makespan, one.makespan + 1e-6);
}

TEST(GridSim, ParallelAndSerialVectorsMatch) {
  const auto grid = platform::make_builtin_grid(30);
  const auto serial =
      simulate_grid(grid, Ensemble{6, 10}, sched::Heuristic::kKnapsack, 1);
  const auto parallel =
      simulate_grid(grid, Ensemble{6, 10}, sched::Heuristic::kKnapsack, 4);
  EXPECT_EQ(serial.repartition.dags_per_cluster,
            parallel.repartition.dags_per_cluster);
  EXPECT_DOUBLE_EQ(serial.makespan, parallel.makespan);
}

TEST(GridSim, Validation) {
  const platform::Grid empty;
  EXPECT_THROW(
      (void)simulate_grid(empty, Ensemble{2, 2}, sched::Heuristic::kBasic),
      std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sim
