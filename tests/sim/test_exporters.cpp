#include "sim/exporters.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "appmodel/month.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"

namespace oagrid::sim {
namespace {

Trace sample_trace() {
  Trace trace;
  trace.record(TraceEntry{UnitKind::kGroup, 0, 0, 0, 0.0, 100.0});
  trace.record(TraceEntry{UnitKind::kGroup, 1, 1, 0, 0.0, 120.0});
  trace.record(TraceEntry{UnitKind::kPostWorker, 0, 0, 0, 100.0, 110.0});
  return trace;
}

TEST(SvgGantt, EmitsWellFormedSvg) {
  std::ostringstream out;
  SvgOptions options;
  options.title = "two groups & a post";
  write_svg_gantt(out, sample_trace(), options);
  const std::string svg = out.str();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("two groups &amp; a post"), std::string::npos);
  // One rect per entry plus the background.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, 4u);
  // Row labels for both kinds.
  EXPECT_NE(svg.find(">G0<"), std::string::npos);
  EXPECT_NE(svg.find(">P0<"), std::string::npos);
}

TEST(SvgGantt, RejectsEmptyTraceAndTinyCanvas) {
  std::ostringstream out;
  EXPECT_THROW(write_svg_gantt(out, Trace{}), std::invalid_argument);
  SvgOptions tiny;
  tiny.width = 10;
  EXPECT_THROW(write_svg_gantt(out, sample_trace(), tiny),
               std::invalid_argument);
}

TEST(SvgGantt, RealSimulationTraceRenders) {
  const auto cluster = platform::make_builtin_cluster(1, 30);
  const appmodel::Ensemble ensemble{4, 6};
  SimOptions options;
  options.capture_trace = true;
  const SimResult result = simulate_with_heuristic(
      cluster, sched::Heuristic::kKnapsack, ensemble, options);
  std::ostringstream out;
  write_svg_gantt(out, result.trace);
  EXPECT_GT(out.str().size(), 1000u);
}

TEST(Dot, EmitsMonthDag) {
  const appmodel::MonthDag month = appmodel::make_month_dag();
  std::ostringstream out;
  write_dot(out, month.graph, "month");
  const std::string dot = out.str();
  EXPECT_EQ(dot.rfind("digraph \"month\"", 0), 0u);
  EXPECT_NE(dot.find("pcr"), std::string::npos);
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);  // moldable pcr
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // rigid tasks
  // 6 nodes, 5 edges.
  std::size_t arrows = 0, pos = 0;
  while ((pos = dot.find("->", pos)) != std::string::npos) {
    ++arrows;
    ++pos;
  }
  EXPECT_EQ(arrows, 5u);
}

TEST(Dot, LabelsDataVolumes) {
  const auto chain = appmodel::make_fused_scenario(3);
  std::ostringstream out;
  write_dot(out, chain.graph, "scenario");
  EXPECT_NE(out.str().find("120 MB"), std::string::npos);
}

TEST(Dot, RequiresFrozenDag) {
  dag::Dag unfrozen;
  std::ostringstream out;
  EXPECT_THROW(write_dot(out, unfrozen), std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sim
