#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace oagrid::sim {
namespace {

TraceEntry main_entry(int group, ScenarioId s, MonthIndex m, Seconds start,
                      Seconds end) {
  return TraceEntry{UnitKind::kGroup, group, s, m, start, end};
}

TraceEntry post_entry(int worker, ScenarioId s, MonthIndex m, Seconds start,
                      Seconds end) {
  return TraceEntry{UnitKind::kPostWorker, worker, s, m, start, end};
}

TEST(Trace, CleanTraceVerifies) {
  Trace trace;
  trace.record(main_entry(0, 0, 0, 0, 10));
  trace.record(main_entry(0, 0, 1, 10, 20));
  trace.record(post_entry(0, 0, 0, 10, 12));
  trace.record(post_entry(0, 0, 1, 20, 22));
  EXPECT_EQ(trace.verify(), "");
}

TEST(Trace, DetectsUnitOverlap) {
  Trace trace;
  trace.record(main_entry(0, 0, 0, 0, 10));
  trace.record(main_entry(0, 1, 0, 5, 15));
  EXPECT_NE(trace.verify().find("overlap"), std::string::npos);
}

TEST(Trace, DistinctUnitsMayOverlap) {
  Trace trace;
  trace.record(main_entry(0, 0, 0, 0, 10));
  trace.record(main_entry(1, 1, 0, 5, 15));
  EXPECT_EQ(trace.verify(), "");
}

TEST(Trace, DetectsOutOfOrderMonths) {
  Trace trace;
  trace.record(main_entry(0, 0, 0, 10, 20));
  trace.record(main_entry(1, 0, 1, 0, 9));  // month 1 before month 0 ends
  EXPECT_NE(trace.verify().find("before its predecessor"), std::string::npos);
}

TEST(Trace, DetectsEarlyPost) {
  Trace trace;
  trace.record(main_entry(0, 0, 0, 0, 10));
  trace.record(post_entry(0, 0, 0, 5, 7));
  EXPECT_NE(trace.verify().find("before its main"), std::string::npos);
}

TEST(Trace, DetectsOrphanPost) {
  Trace trace;
  trace.record(post_entry(0, 0, 0, 5, 7));
  EXPECT_NE(trace.verify().find("without"), std::string::npos);
}

TEST(Trace, DetectsDuplicateExecution) {
  Trace trace;
  trace.record(main_entry(0, 0, 0, 0, 10));
  trace.record(main_entry(1, 0, 0, 20, 30));
  EXPECT_NE(trace.verify().find("duplicate"), std::string::npos);
}

TEST(Trace, DetectsNegativeDuration) {
  Trace trace;
  trace.record(main_entry(0, 0, 0, 10, 5));
  EXPECT_NE(trace.verify().find("end < start"), std::string::npos);
}

TEST(Trace, CsvExport) {
  Trace trace;
  trace.record(main_entry(2, 1, 3, 0, 10));
  std::ostringstream os;
  trace.write_csv(os);
  EXPECT_EQ(os.str(),
            "unit_kind,unit,scenario,month,start,end\ngroup,2,1,3,0,10\n");
}

TEST(Trace, GanttShowsUnitsAndScenarios) {
  Trace trace;
  trace.record(main_entry(0, 1, 0, 0, 50));
  trace.record(post_entry(0, 1, 0, 50, 100));
  const std::string gantt = trace.render_gantt(40);
  EXPECT_NE(gantt.find("G0"), std::string::npos);
  EXPECT_NE(gantt.find("P0"), std::string::npos);
  // Scenario 1 renders as '1' on both rows (uppercase rule only changes
  // letters).
  EXPECT_NE(gantt.find('1'), std::string::npos);
}

TEST(Trace, EmptyGantt) {
  const Trace trace;
  EXPECT_EQ(trace.render_gantt(), "(empty trace)\n");
}

TEST(Trace, ClearEmptiesTrace) {
  Trace trace;
  trace.record(main_entry(0, 0, 0, 0, 1));
  trace.clear();
  EXPECT_TRUE(trace.empty());
}

}  // namespace
}  // namespace oagrid::sim
