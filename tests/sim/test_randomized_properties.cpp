/// \file test_randomized_properties.cpp
/// \brief Randomized cross-validation: the closed-form model, the DES, the
/// knapsack machinery and the heuristics agree on their contracts for
/// arbitrary (not just built-in) platforms.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sched/lower_bounds.hpp"
#include "sched/makespan_model.hpp"
#include "sched/throughput.hpp"
#include "sim/ensemble_sim.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

/// Random cluster with a *divisible* table (TG multiples of TP) so the
/// closed form is exact.
platform::Cluster random_divisible_cluster(Rng& rng) {
  const Seconds tp = rng.uniform(5.0, 50.0);
  std::vector<Seconds> tg;
  Count multiple = rng.uniform_int(20, 60);
  for (int i = 0; i < 8; ++i) {
    tg.push_back(tp * static_cast<double>(multiple));
    // Non-increasing but with random plateaus and drops.
    multiple -= rng.uniform_int(0, 4);
    multiple = std::max<Count>(multiple, 2);
  }
  const auto r = static_cast<ProcCount>(rng.uniform_int(11, 120));
  return platform::Cluster("rand", r, 4, std::move(tg), tp);
}

TEST(RandomizedProperties, FormulaMatchesSimulationOnDivisibleTables) {
  Rng rng(4242);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const platform::Cluster cluster = random_divisible_cluster(rng);
    const Ensemble ensemble{rng.uniform_int(1, 10), rng.uniform_int(1, 20)};
    for (ProcCount g = 4; g <= 11 && g <= cluster.resources(); ++g) {
      const auto analytic =
          sched::evaluate_uniform_grouping(cluster, ensemble, g);
      if (analytic.regime == sched::MakespanRegime::kInfeasible) continue;
      sched::GroupSchedule schedule;
      schedule.group_sizes.assign(
          static_cast<std::size_t>(analytic.nbmax), g);
      schedule.post_pool = analytic.r2;
      const SimResult simulated =
          simulate_ensemble(cluster, schedule, ensemble);
      ASSERT_NEAR(simulated.makespan, analytic.makespan,
                  1e-6 * analytic.makespan)
          << "trial " << trial << " R=" << cluster.resources() << " G=" << g
          << " NS=" << ensemble.scenarios << " NM=" << ensemble.months
          << " regime " << to_string(analytic.regime);
      ++checked;
    }
  }
  EXPECT_GT(checked, 200);  // the sweep actually exercised many regimes
}

TEST(RandomizedProperties, HeuristicsRespectBoundsOnRandomGrids) {
  Rng rng(777);
  for (int trial = 0; trial < 25; ++trial) {
    const auto grid = platform::make_random_grid(1, 11, 120, rng);
    const auto& cluster = grid.cluster(0);
    const Ensemble ensemble{rng.uniform_int(2, 10), rng.uniform_int(2, 12)};
    const Seconds bound =
        sched::ensemble_lower_bounds(cluster, ensemble).combined();
    for (const auto h :
         {sched::Heuristic::kBasic, sched::Heuristic::kRedistribute,
          sched::Heuristic::kAllForMain, sched::Heuristic::kKnapsack}) {
      const SimResult result =
          simulate_with_heuristic(cluster, h, ensemble);
      EXPECT_GE(result.makespan, bound - 1e-6)
          << to_string(h) << " trial " << trial;
      EXPECT_EQ(result.mains_executed, ensemble.total_tasks());
      EXPECT_EQ(result.posts_executed, ensemble.total_tasks());
    }
  }
}

TEST(RandomizedProperties, KnapsackThroughputDominatesBasic) {
  // The knapsack objective is by construction >= the basic grouping's
  // throughput on every platform.
  Rng rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    const auto grid = platform::make_random_grid(1, 11, 120, rng);
    const auto& cluster = grid.cluster(0);
    const Ensemble ensemble{rng.uniform_int(1, 10), 30};
    const auto basic = sched::basic_grouping(cluster, ensemble);
    double basic_value = 0.0;
    for (const ProcCount g : basic.group_sizes)
      basic_value += 1.0 / cluster.main_time(g);
    EXPECT_GE(sched::best_throughput(cluster, ensemble.scenarios),
              basic_value - 1e-12)
        << "trial " << trial;
  }
}

TEST(RandomizedProperties, TraceInvariantsOnRandomPlatforms) {
  Rng rng(999);
  for (int trial = 0; trial < 15; ++trial) {
    const auto grid = platform::make_random_grid(1, 11, 80, rng);
    const Ensemble ensemble{rng.uniform_int(2, 6), rng.uniform_int(2, 8)};
    SimOptions options;
    options.capture_trace = true;
    options.dispatch = static_cast<DispatchRule>(rng.uniform_int(0, 2));
    const SimResult result = simulate_with_heuristic(
        grid.cluster(0), sched::Heuristic::kKnapsack, ensemble, options);
    EXPECT_EQ(result.trace.verify(), "") << "trial " << trial;
  }
}

TEST(RandomizedProperties, PerturbedRunsStillConserveWork) {
  Rng rng(555);
  for (int trial = 0; trial < 10; ++trial) {
    const auto grid = platform::make_random_grid(1, 15, 60, rng);
    const Ensemble ensemble{3, 6};
    SimOptions options;
    options.perturbation.duration_jitter = rng.uniform(0.0, 0.3);
    options.perturbation.failure_probability = rng.uniform(0.0, 0.4);
    options.perturbation.seed = static_cast<std::uint64_t>(trial) + 1;
    const SimResult result = simulate_with_heuristic(
        grid.cluster(0), sched::Heuristic::kKnapsack, ensemble, options);
    EXPECT_EQ(result.mains_executed, 18) << "trial " << trial;
    EXPECT_EQ(result.posts_executed, 18) << "trial " << trial;
  }
}

}  // namespace
}  // namespace oagrid::sim
