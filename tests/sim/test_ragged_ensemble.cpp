#include <gtest/gtest.h>

#include <numeric>

#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"

namespace oagrid::sim {
namespace {

using appmodel::Ensemble;

sched::GroupSchedule schedule_for(const platform::Cluster& c, Count scenarios) {
  return sched::knapsack_grouping(c, Ensemble{scenarios, 1});
}

TEST(RaggedEnsemble, UniformVectorMatchesEnsembleOverload) {
  const auto c = platform::make_builtin_cluster(1, 30);
  const Ensemble e{4, 9};
  const auto schedule = sched::knapsack_grouping(c, e);
  const SimResult by_ensemble = simulate_ensemble(c, schedule, e);
  const SimResult by_vector =
      simulate_ensemble(c, schedule, std::vector<MonthIndex>(4, 9));
  EXPECT_DOUBLE_EQ(by_ensemble.makespan, by_vector.makespan);
  EXPECT_EQ(by_ensemble.mains_executed, by_vector.mains_executed);
}

TEST(RaggedEnsemble, ConservesWork) {
  const auto c = platform::make_builtin_cluster(1, 30);
  const std::vector<MonthIndex> months{3, 7, 1, 12};
  const SimResult r = simulate_ensemble(c, schedule_for(c, 4), months);
  EXPECT_EQ(r.mains_executed, 23);
  EXPECT_EQ(r.posts_executed, 23);
}

TEST(RaggedEnsemble, TraceInvariantsHold) {
  const auto c = platform::make_builtin_cluster(2, 26);
  SimOptions options;
  options.capture_trace = true;
  const std::vector<MonthIndex> months{5, 2, 9};
  const SimResult r = simulate_ensemble(c, schedule_for(c, 3), months, options);
  EXPECT_EQ(r.trace.verify(), "");
  // Scenario 2 (9 months) must finish last among mains.
  Seconds last_end[3] = {0, 0, 0};
  for (const auto& e : r.trace.entries())
    if (e.unit_kind == UnitKind::kGroup)
      last_end[e.scenario] = std::max(last_end[e.scenario], e.end);
  EXPECT_GE(last_end[2], last_end[0]);
  EXPECT_GE(last_end[2], last_end[1]);
}

TEST(RaggedEnsemble, LongestChainBoundsTheMakespan) {
  const auto c = platform::make_builtin_cluster(1, 44);
  const std::vector<MonthIndex> months{2, 3, 20, 4};
  const SimResult r = simulate_ensemble(c, schedule_for(c, 4), months);
  // The 20-month chain is serialized: even on the fastest group it needs
  // 20 x T(11).
  EXPECT_GE(r.makespan, 20.0 * c.main_time(11) - 1e-6);
}

TEST(RaggedEnsemble, LeastAdvancedServesLongChainsContinuously) {
  // With one group and two chains (1 and 5 months), least-advanced
  // alternates only while balanced; the long chain then runs back to back.
  const auto c = platform::make_builtin_cluster(1, 11);
  sched::GroupSchedule s;
  s.group_sizes = {11};
  s.post_pool = 0;
  SimOptions options;
  options.capture_trace = true;
  const SimResult r =
      simulate_ensemble(c, s, std::vector<MonthIndex>{1, 5}, options);
  EXPECT_EQ(r.mains_executed, 6);
  EXPECT_NEAR(r.main_phase_end, 6.0 * c.main_time(11), 1e-6);
}

TEST(RaggedEnsemble, Validation) {
  const auto c = platform::make_builtin_cluster(1, 20);
  const auto s = schedule_for(c, 2);
  EXPECT_THROW((void)simulate_ensemble(c, s, std::vector<MonthIndex>{}),
               std::invalid_argument);
  EXPECT_THROW((void)simulate_ensemble(c, s, std::vector<MonthIndex>{3, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace oagrid::sim
