#include "sim/eval_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "platform/profiles.hpp"
#include "sched/heuristics.hpp"
#include "sim/ensemble_sim.hpp"
#include "sim/local_search.hpp"
#include "sim/optimal_search.hpp"

namespace oagrid {
namespace {

platform::Cluster test_cluster(ProcCount resources = 64) {
  return platform::make_builtin_cluster(1, resources);
}

std::vector<MonthIndex> uniform_months(Count scenarios, Count months) {
  return std::vector<MonthIndex>(static_cast<std::size_t>(scenarios),
                                 static_cast<MonthIndex>(months));
}

TEST(EvalKey, GroupOrderIsCanonicalized) {
  const auto cluster = test_cluster();
  sched::GroupSchedule a;
  a.group_sizes = {7, 8, 9};
  a.post_pool = 4;
  sched::GroupSchedule b;
  b.group_sizes = {9, 7, 8};
  b.post_pool = 4;
  const auto months = uniform_months(10, 150);
  EXPECT_EQ(sim::make_eval_key(cluster, a, months),
            sim::make_eval_key(cluster, b, months));
}

TEST(EvalKey, DistinguishesPartitionMonthsPolicyAndPool) {
  const auto cluster = test_cluster();
  sched::GroupSchedule schedule;
  schedule.group_sizes = {8, 8};
  schedule.post_pool = 4;
  const auto months = uniform_months(10, 150);
  const auto base = sim::make_eval_key(cluster, schedule, months);

  sched::GroupSchedule other = schedule;
  other.group_sizes = {8, 7};
  EXPECT_NE(base, sim::make_eval_key(cluster, other, months));

  EXPECT_NE(base, sim::make_eval_key(cluster, schedule, uniform_months(10, 151)));
  EXPECT_NE(base, sim::make_eval_key(cluster, schedule, uniform_months(9, 150)));

  other = schedule;
  other.post_pool = 5;
  EXPECT_NE(base, sim::make_eval_key(cluster, other, months));

  other = schedule;
  other.post_policy = sched::PostPolicy::kAllAtEnd;
  EXPECT_NE(base, sim::make_eval_key(cluster, other, months));

  sim::SimOptions options;
  options.dispatch = sim::DispatchRule::kRoundRobin;
  EXPECT_NE(base, sim::make_eval_key(cluster, schedule, months, options));
}

TEST(EvalKey, RestartHandoffKeys) {
  // The hand-off stall changes every makespan; caching across different
  // values would poison network-aware sweeps.
  const auto cluster = test_cluster();
  sched::GroupSchedule schedule;
  schedule.group_sizes = {8, 8};
  const auto months = uniform_months(10, 150);
  const auto base = sim::make_eval_key(cluster, schedule, months);

  sim::SimOptions stalled;
  stalled.restart_handoff = 0.96;
  EXPECT_NE(base, sim::make_eval_key(cluster, schedule, months, stalled));

  sim::SimOptions zero;
  zero.restart_handoff = 0.0;
  EXPECT_EQ(base, sim::make_eval_key(cluster, schedule, months, zero));
}

TEST(EvalKey, ClusterSignatureIgnoresNameOnly) {
  const std::vector<Seconds> times{100, 60, 45, 40};
  const platform::Cluster a("alpha", 32, 4, times, 20.0);
  const platform::Cluster b("beta", 32, 4, times, 20.0);
  EXPECT_EQ(sim::cluster_signature(a), sim::cluster_signature(b));

  const platform::Cluster fewer("alpha", 24, 4, times, 20.0);
  EXPECT_NE(sim::cluster_signature(a), sim::cluster_signature(fewer));

  const platform::Cluster slower_post("alpha", 32, 4, times, 25.0);
  EXPECT_NE(sim::cluster_signature(a), sim::cluster_signature(slower_post));
}

TEST(EvalKey, SeedIsNormalizedWhenPerturbationInactive) {
  const auto cluster = test_cluster();
  sched::GroupSchedule schedule;
  schedule.group_sizes = {8, 8};
  const auto months = uniform_months(10, 150);

  sim::SimOptions seed_one;
  seed_one.perturbation.seed = 1;
  sim::SimOptions seed_nine;
  seed_nine.perturbation.seed = 9;
  EXPECT_EQ(sim::make_eval_key(cluster, schedule, months, seed_one),
            sim::make_eval_key(cluster, schedule, months, seed_nine));

  // With the model active the seed changes the execution and must key.
  seed_one.perturbation.duration_jitter = 0.1;
  seed_nine.perturbation.duration_jitter = 0.1;
  EXPECT_NE(sim::make_eval_key(cluster, schedule, months, seed_one),
            sim::make_eval_key(cluster, schedule, months, seed_nine));
}

TEST(EvalCache, CountsHitsMissesAndInsertions) {
  sim::EvalCache cache(1024);
  const auto cluster = test_cluster();
  sched::GroupSchedule schedule;
  schedule.group_sizes = {8, 8};
  const auto key = sim::make_eval_key(cluster, schedule, uniform_months(10, 150));

  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, 42.0);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 42.0);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(EvalCache, BoundedCapacityEvicts) {
  // One entry per shard: residency can never exceed kShardCount.
  sim::EvalCache cache(sim::EvalCache::kShardCount);
  const auto cluster = test_cluster();
  sched::GroupSchedule schedule;
  schedule.group_sizes = {8, 8};
  sim::EvalKey key = sim::make_eval_key(cluster, schedule, uniform_months(10, 150));
  for (std::uint64_t i = 0; i < 500; ++i) {
    key.seed = i + 1;  // distinct keys
    cache.insert(key, static_cast<Seconds>(i));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 500u);
  EXPECT_LE(stats.entries, sim::EvalCache::kShardCount);
  EXPECT_EQ(stats.evictions, stats.insertions - stats.entries);
}

TEST(EvalCache, ClearDropsEntriesKeepsStats) {
  sim::EvalCache cache(1024);
  sim::EvalKey key;
  key.sizes = {8};
  cache.insert(key, 1.0);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_FALSE(cache.lookup(key).has_value());
}

TEST(EvalCache, ThreadedMixedTrafficStaysConsistent) {
  sim::EvalCache cache(256);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      sim::EvalKey key;
      key.sizes = {8, 8};
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        key.seed = (static_cast<std::uint64_t>(t) * kOpsPerThread + i) % 64;
        if (const auto hit = cache.lookup(key)) {
          ASSERT_EQ(*hit, static_cast<Seconds>(key.seed));
        } else {
          cache.insert(key, static_cast<Seconds>(key.seed));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_LE(stats.entries, 64u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(CachedMakespan, MatchesDirectSimulationColdAndWarm) {
  const auto cluster = test_cluster();
  const appmodel::Ensemble ensemble{10, 30};
  const auto schedule = sched::knapsack_grouping(cluster, ensemble);
  const Seconds direct =
      sim::simulate_ensemble(cluster, schedule, ensemble).makespan;
  const Seconds cold = sim::cached_makespan(cluster, schedule, ensemble);
  const Seconds warm = sim::cached_makespan(cluster, schedule, ensemble);
  EXPECT_EQ(direct, cold);
  EXPECT_EQ(direct, warm);
}

TEST(CachedMakespan, SideEffectRequestsBypassTheCache) {
  const auto cluster = test_cluster();
  const appmodel::Ensemble ensemble{4, 6};
  const auto schedule = sched::knapsack_grouping(cluster, ensemble);

  sim::SimOptions traced;
  traced.capture_trace = true;
  const auto before = sim::eval_cache().stats();
  const Seconds makespan = sim::cached_makespan(
      cluster, schedule, uniform_months(ensemble.scenarios, ensemble.months),
      traced);
  const auto after = sim::eval_cache().stats();
  EXPECT_EQ(makespan,
            sim::simulate_ensemble(cluster, schedule, ensemble).makespan);
  EXPECT_EQ(before.hits + before.misses, after.hits + after.misses);
}

TEST(CachedMakespan, MirrorsCountersIntoObsMetrics) {
  obs::set_enabled(true);
  const std::uint64_t hits_before =
      obs::metrics().counter("evalcache.hits").value();
  const std::uint64_t misses_before =
      obs::metrics().counter("evalcache.misses").value();

  sim::EvalCache cache(64);
  sim::EvalKey key;
  key.sizes = {8};
  (void)cache.lookup(key);  // miss
  cache.insert(key, 5.0);
  (void)cache.lookup(key);  // hit

  EXPECT_EQ(obs::metrics().counter("evalcache.hits").value(), hits_before + 1);
  EXPECT_EQ(obs::metrics().counter("evalcache.misses").value(),
            misses_before + 1);
  obs::set_enabled(false);
}

// ---------------------------------------------------------------------------
// Determinism regression tests: the parallel evaluation engine must produce
// byte-identical schedules and makespans at any thread count, on a cold or a
// warm cache. These are the acceptance tests of the parallel-search work —
// EXPECT_EQ on doubles is deliberate.
// ---------------------------------------------------------------------------

void expect_same_search(const sim::LocalSearchResult& a,
                        const sim::LocalSearchResult& b) {
  EXPECT_EQ(a.best.group_sizes, b.best.group_sizes);
  EXPECT_EQ(a.best.post_pool, b.best.post_pool);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.accepted_moves, b.accepted_moves);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(EvalEngineDeterminism, LocalSearchIdenticalAcrossThreadCounts) {
  const auto cluster = test_cluster(64);
  const appmodel::Ensemble ensemble{10, 20};

  sim::LocalSearchOptions serial;
  serial.threads = 1;
  const auto reference = sim::local_search_grouping(cluster, ensemble, serial);
  EXPECT_GT(reference.evaluations, 0u);

  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{8}}) {
    sim::LocalSearchOptions options;
    options.threads = threads;
    expect_same_search(reference,
                       sim::local_search_grouping(cluster, ensemble, options));
  }

  // The cache is now fully warm for this workload; results (including the
  // evaluation count, which is charged against a search-local memo) must not
  // change.
  expect_same_search(reference,
                     sim::local_search_grouping(cluster, ensemble, serial));
}

TEST(EvalEngineDeterminism, LocalSearchTightBudgetIdenticalAcrossThreadCounts) {
  // A budget that dries up mid-neighborhood exercises the truncation logic:
  // the parallel walk must charge and cut the candidate list exactly where
  // the serial scan would.
  const auto cluster = test_cluster(48);
  const appmodel::Ensemble ensemble{8, 15};

  for (const std::size_t budget : {std::size_t{1}, std::size_t{7},
                                   std::size_t{40}}) {
    sim::LocalSearchOptions serial;
    serial.threads = 1;
    serial.max_evaluations = budget;
    const auto reference =
        sim::local_search_grouping(cluster, ensemble, serial);
    for (const std::size_t threads : {std::size_t{0}, std::size_t{3},
                                      std::size_t{8}}) {
      sim::LocalSearchOptions options = serial;
      options.threads = threads;
      expect_same_search(
          reference, sim::local_search_grouping(cluster, ensemble, options));
    }
  }
}

TEST(EvalEngineDeterminism, OptimalSearchIdenticalAcrossThreadCounts) {
  const auto cluster = test_cluster(24);
  const appmodel::Ensemble ensemble{4, 8};

  const auto reference = sim::optimal_grouping_search(
      cluster, ensemble, sched::PostPolicy::kPoolThenRetired, 200000, 1);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{8}}) {
    const auto run = sim::optimal_grouping_search(
        cluster, ensemble, sched::PostPolicy::kPoolThenRetired, 200000,
        threads);
    EXPECT_EQ(reference.best.group_sizes, run.best.group_sizes);
    EXPECT_EQ(reference.best.post_pool, run.best.post_pool);
    EXPECT_EQ(reference.makespan, run.makespan);
    EXPECT_EQ(reference.evaluated, run.evaluated);
  }
}

}  // namespace
}  // namespace oagrid
