#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace oagrid {
namespace {

TEST(TableWriter, RejectsEmptyHeader) {
  EXPECT_THROW(TableWriter({}), std::invalid_argument);
}

TEST(TableWriter, RejectsRaggedRow) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableWriter, AlignsColumns) {
  TableWriter t({"x", "value"});
  t.add_row({"1", "10"});
  t.add_row({"100", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_NE(out.find("x    value"), std::string::npos);
  EXPECT_NE(out.find("1    10"), std::string::npos);
  EXPECT_NE(out.find("100  2"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableWriter, CsvPlain) {
  TableWriter t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableWriter, CsvEscapesSpecials) {
  TableWriter t({"a"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(TableWriter, RowCount) {
  TableWriter t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(FmtDuration, SecondsOnly) {
  EXPECT_EQ(fmt_duration(59.0), "00:00:59");
  EXPECT_EQ(fmt_duration(3661.0), "01:01:01");
}

TEST(FmtDuration, Days) {
  EXPECT_EQ(fmt_duration(86400.0 + 3600.0), "1d 01:00:00");
  // The paper's quoted 58-hour gain.
  EXPECT_EQ(fmt_duration(58.0 * 3600.0), "2d 10:00:00");
}

TEST(FmtDuration, Infinite) { EXPECT_EQ(fmt_duration(1.0 / 0.0), "inf"); }

}  // namespace
}  // namespace oagrid
