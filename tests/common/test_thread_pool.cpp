#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace oagrid {
namespace {

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<std::size_t> order;
  pool.parallel_for(0, 8, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);  // sequential and in order
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(3, 3, [&](std::size_t) { touched = true; });
  pool.parallel_for(5, 2, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  // The whole point of the pool: thousands of cheap regions back to back
  // (the climate model's substeps). Must not deadlock or drop work.
  ThreadPool pool(3);
  std::atomic<long long> total{0};
  for (int region = 0; region < 2000; ++region)
    pool.parallel_for(0, 16, [&](std::size_t i) {
      total += static_cast<long long>(i);
    });
  EXPECT_EQ(total.load(), 2000LL * (15 * 16 / 2));
}

TEST(ThreadPool, ActuallyRunsConcurrently) {
  if (default_parallelism() < 2)
    GTEST_SKIP() << "single hardware thread: overlap is preemption luck";
  ThreadPool pool(3);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  pool.parallel_for(0, 64, [&](std::size_t) {
    const int now = ++inside;
    int seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
    // Busy-wait briefly so overlap is observable (atomic defeats the
    // optimizer without deprecated volatile arithmetic).
    std::atomic<int> spin{0};
    while (spin.fetch_add(1, std::memory_order_relaxed) < 20000) {
    }
    --inside;
  });
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  // The pool survives the exception and keeps working.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, MoreWorkersThanWork) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(0, 2, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, DestructionWithIdleWorkersIsClean) {
  for (int i = 0; i < 50; ++i) {
    ThreadPool pool(4);
    pool.parallel_for(0, 4, [](std::size_t) {});
  }
}

TEST(ThreadPool, MaxThreadsOneIsSequentialInOrder) {
  ThreadPool pool(4);
  std::vector<std::size_t> order;
  pool.parallel_for(0, 10, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, NestedRegionsRunInlineWithoutDeadlock) {
  // Re-entering the pool from inside one of its own regions must not block
  // on the region mutex: the nested-use guard runs the inner loop inline on
  // the calling thread.
  ThreadPool pool(3);
  std::atomic<long long> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t j) {
      total += static_cast<long long>(j);
    });
  });
  EXPECT_EQ(total.load(), 8LL * 28);
}

TEST(ThreadPool, ConcurrentCallersBothComplete) {
  // Two threads driving regions on the same pool: regions serialize on the
  // region mutex and neither caller's iterations are lost or duplicated.
  ThreadPool pool(2);
  std::atomic<long long> a{0};
  std::atomic<long long> b{0};
  std::thread ta([&] {
    for (int region = 0; region < 200; ++region)
      pool.parallel_for(0, 32, [&](std::size_t i) {
        a += static_cast<long long>(i);
      });
  });
  std::thread tb([&] {
    for (int region = 0; region < 200; ++region)
      pool.parallel_for(0, 32, [&](std::size_t i) {
        b += static_cast<long long>(i);
      });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 200LL * (31 * 32 / 2));
  EXPECT_EQ(b.load(), 200LL * (31 * 32 / 2));
}

TEST(ThreadPool, ParallelTransformReturnsOrderedResults) {
  ThreadPool pool(4);
  const std::vector<std::size_t> squares =
      parallel_transform(pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, ParallelTransformEmptyAndExceptional) {
  ThreadPool pool(2);
  EXPECT_TRUE(
      parallel_transform(pool, 0, [](std::size_t i) { return i; }).empty());
  EXPECT_THROW(parallel_transform(pool, 50,
                                  [](std::size_t i) -> int {
                                    if (i == 7) throw std::runtime_error("x");
                                    return 0;
                                  }),
               std::runtime_error);
}

TEST(ThreadPool, SharedPoolIsASingleton) {
  EXPECT_EQ(&shared_pool(), &shared_pool());
}

// Shutdown stress: destroy the pool immediately after the last region
// returns, while workers may still be between "observed the generation"
// and "back on the condvar". Run under TSan in CI; a lost-wakeup or a
// notify on a destroyed condvar shows up here as a hang or a race report.
TEST(ThreadPool, ImmediateDestructionAfterBusyRegionsStress) {
  for (int i = 0; i < 100; ++i) {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    pool.parallel_for(0, 1, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 65);
    // Destructor races the workers' return-to-wait transition.
  }
}

}  // namespace
}  // namespace oagrid
