#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace oagrid {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; });
  parallel_for(7, 3, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RespectsOffsetRange) {
  std::atomic<long long> sum{0};
  parallel_for(10, 20, [&](std::size_t i) {
    sum += static_cast<long long>(i);
  });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelFor, SingleThreadFallbackIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(0, 10, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ManyMoreThreadsThanWork) {
  std::atomic<int> count{0};
  parallel_for(0, 3, [&](std::size_t) { count++; }, 64);
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, ExceptionIsFirstComeWinsWhenSerial) {
  // threads=1 runs in index order, so "first come" is exactly the lowest
  // failing index — the strictest observable form of the first-come-wins
  // propagation contract.
  try {
    parallel_for(
        0, 100,
        [](std::size_t i) {
          if (i >= 30) throw std::runtime_error("idx" + std::to_string(i));
        },
        1);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "idx30");
  }
}

TEST(ParallelFor, SingleThreadRunsAreDeterministic) {
  std::vector<std::size_t> first;
  std::vector<std::size_t> second;
  parallel_for(0, 64, [&](std::size_t i) { first.push_back(i); }, 1);
  parallel_for(0, 64, [&](std::size_t i) { second.push_back(i); }, 1);
  EXPECT_EQ(first, second);
}

TEST(ParallelFor, NestedUseRunsInlineInOrder) {
  // A body that itself calls parallel_for must get a serial, in-order inner
  // loop on the calling thread (the nested-use guard) — never a second tier
  // of threads.
  std::atomic<int> inner_total{0};
  std::atomic<bool> inner_in_order{true};
  parallel_for(0, 4, [&](std::size_t) {
    std::vector<std::size_t> inner;  // unsynchronized: inline execution only
    parallel_for(0, 5, [&](std::size_t i) { inner.push_back(i); });
    inner_total += static_cast<int>(inner.size());
    for (std::size_t i = 0; i < inner.size(); ++i)
      if (inner[i] != i) inner_in_order = false;
  });
  EXPECT_EQ(inner_total.load(), 20);
  EXPECT_TRUE(inner_in_order.load());
}

TEST(ParallelFor, NestedExceptionPropagatesThroughBothLevels) {
  EXPECT_THROW(parallel_for(0, 4,
                            [](std::size_t) {
                              parallel_for(0, 4, [](std::size_t j) {
                                if (j == 2) throw std::runtime_error("inner");
                              });
                            }),
               std::runtime_error);
}

TEST(DefaultParallelism, AtLeastOne) {
  EXPECT_GE(default_parallelism(), 1u);
}

}  // namespace
}  // namespace oagrid
