#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace oagrid {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; });
  parallel_for(7, 3, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RespectsOffsetRange) {
  std::atomic<long long> sum{0};
  parallel_for(10, 20, [&](std::size_t i) {
    sum += static_cast<long long>(i);
  });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ParallelFor, SingleThreadFallbackIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(0, 10, [&](std::size_t i) { order.push_back(i); }, 1);
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::size_t i) {
                     if (i == 42) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ManyMoreThreadsThanWork) {
  std::atomic<int> count{0};
  parallel_for(0, 3, [&](std::size_t) { count++; }, 64);
  EXPECT_EQ(count.load(), 3);
}

TEST(DefaultParallelism, AtLeastOne) {
  EXPECT_GE(default_parallelism(), 1u);
}

}  // namespace
}  // namespace oagrid
