#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "common/stats.hpp"

namespace oagrid {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanNearCenter) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

class RngIntRange : public ::testing::TestWithParam<std::pair<long long, long long>> {};

TEST_P(RngIntRange, InclusiveBoundsAndFullCoverage) {
  const auto [lo, hi] = GetParam();
  Rng rng(static_cast<std::uint64_t>(lo * 31 + hi));
  std::set<long long> seen;
  for (int i = 0; i < 5000; ++i) {
    const long long v = rng.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    seen.insert(v);
  }
  if (hi - lo < 20) {
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(hi - lo + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngIntRange,
                         ::testing::Values(std::pair{0LL, 0LL},
                                           std::pair{0LL, 1LL},
                                           std::pair{-5LL, 5LL},
                                           std::pair{1LL, 11LL},
                                           std::pair{100LL, 1000LL}));

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  // The child's stream should not be a shifted copy of the parent's.
  std::vector<std::uint64_t> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(parent());
    b.push_back(child());
  }
  EXPECT_NE(a, b);
}

TEST(Rng, SplitDeterministic) {
  Rng p1(5), p2(5);
  Rng c1 = p1.split();
  Rng c2 = p2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // 50! permutations; identity is measure-zero
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleHandlesSmallVectors) {
  Rng rng(4);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace oagrid
