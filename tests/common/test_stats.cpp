#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace oagrid {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesNaiveTwoPass) {
  Rng rng(17);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-100, 100);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(23);
  RunningStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(0, 3);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty right
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty left
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Stats, OneShotHelpers) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, PercentileEdges) {
  EXPECT_DOUBLE_EQ(percentile_of({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_of({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_of({7.0}, 100.0), 7.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 25.0), 1.75);
}

TEST(Stats, PercentileClampsOutOfRangeP) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 200.0), 2.0);
}

}  // namespace
}  // namespace oagrid
