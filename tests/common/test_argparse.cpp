#include "common/argparse.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oagrid {
namespace {

ArgParser make_parser() {
  ArgParser args("prog", "test parser");
  args.add_option("count", "a number", "7")
      .add_option("name", "a string", "default")
      .add_option("rate", "a real", "1.5")
      .add_flag("verbose", "chatty");
  return args;
}

TEST(ArgParse, DefaultsApply) {
  ArgParser args = make_parser();
  args.parse({});
  EXPECT_EQ(args.get_int("count"), 7);
  EXPECT_EQ(args.get("name"), "default");
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 1.5);
  EXPECT_FALSE(args.flag("verbose"));
}

TEST(ArgParse, SpaceSeparatedValues) {
  ArgParser args = make_parser();
  args.parse({"--count", "42", "--name", "alpha"});
  EXPECT_EQ(args.get_int("count"), 42);
  EXPECT_EQ(args.get("name"), "alpha");
}

TEST(ArgParse, EqualsSeparatedValues) {
  ArgParser args = make_parser();
  args.parse({"--count=13", "--rate=2.25"});
  EXPECT_EQ(args.get_int("count"), 13);
  EXPECT_DOUBLE_EQ(args.get_double("rate"), 2.25);
}

TEST(ArgParse, FlagsToggle) {
  ArgParser args = make_parser();
  args.parse({"--verbose"});
  EXPECT_TRUE(args.flag("verbose"));
}

TEST(ArgParse, FlagRejectsValue) {
  ArgParser args = make_parser();
  EXPECT_THROW(args.parse({"--verbose=yes"}), std::invalid_argument);
}

TEST(ArgParse, UnknownOptionRejected) {
  ArgParser args = make_parser();
  EXPECT_THROW(args.parse({"--bogus"}), std::invalid_argument);
}

TEST(ArgParse, MissingValueRejected) {
  ArgParser args = make_parser();
  EXPECT_THROW(args.parse({"--count"}), std::invalid_argument);
}

TEST(ArgParse, TypeErrorsAreDiagnosed) {
  ArgParser args = make_parser();
  args.parse({"--count", "not-a-number"});
  EXPECT_THROW((void)args.get_int("count"), std::invalid_argument);
  args.parse({"--rate", "1.5x"});
  EXPECT_THROW((void)args.get_double("rate"), std::invalid_argument);
}

TEST(ArgParse, Positionals) {
  ArgParser args("prog", "positional test");
  args.add_positional("input", "input file").add_option("n", "count", "1");
  args.parse({"data.txt", "--n", "3"});
  EXPECT_EQ(args.get("input"), "data.txt");
  EXPECT_EQ(args.get_int("n"), 3);
}

TEST(ArgParse, MissingPositionalRejected) {
  ArgParser args("prog", "positional test");
  args.add_positional("input", "input file");
  EXPECT_THROW(args.parse({}), std::invalid_argument);
}

TEST(ArgParse, ExtraPositionalRejected) {
  ArgParser args = make_parser();
  EXPECT_THROW(args.parse({"stray"}), std::invalid_argument);
}

TEST(ArgParse, DuplicateDeclarationRejected) {
  ArgParser args("prog", "dup");
  args.add_option("x", "first", "1");
  EXPECT_THROW(args.add_option("x", "second", "2"), std::invalid_argument);
  EXPECT_THROW(args.add_flag("x", "third"), std::invalid_argument);
}

TEST(ArgParse, UsageMentionsEverything) {
  ArgParser args = make_parser();
  const std::string usage = args.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
  EXPECT_NE(usage.find("test parser"), std::string::npos);
}

TEST(ArgParse, UndeclaredQueriesThrow) {
  ArgParser args = make_parser();
  args.parse({});
  EXPECT_THROW((void)args.get("nope"), std::invalid_argument);
  EXPECT_THROW((void)args.flag("nope"), std::invalid_argument);
}

TEST(ArgParse, OptionalValueAbsent) {
  ArgParser args("prog", "optional values");
  args.add_optional_value("metrics", "metrics sink", "");
  args.parse({});
  EXPECT_FALSE(args.flag("metrics"));
  EXPECT_EQ(args.get("metrics"), "");
}

TEST(ArgParse, OptionalValueBareUsesImplicit) {
  ArgParser args("prog", "optional values");
  args.add_optional_value("metrics", "metrics sink", "stdout");
  args.parse({"--metrics"});
  EXPECT_TRUE(args.flag("metrics"));
  EXPECT_EQ(args.get("metrics"), "stdout");
}

TEST(ArgParse, OptionalValueEqualsFormAttaches) {
  ArgParser args("prog", "optional values");
  args.add_optional_value("metrics", "metrics sink", "stdout");
  args.parse({"--metrics=out.prom"});
  EXPECT_TRUE(args.flag("metrics"));
  EXPECT_EQ(args.get("metrics"), "out.prom");
}

TEST(ArgParse, OptionalValueDoesNotSwallowTheNextArgument) {
  // GNU getopt semantics: only the `=` form attaches a value, so the next
  // token stays a positional.
  ArgParser args("prog", "optional values");
  args.add_optional_value("metrics", "metrics sink", "")
      .add_positional("input", "input file");
  args.parse({"--metrics", "file.txt"});
  EXPECT_TRUE(args.flag("metrics"));
  EXPECT_EQ(args.get("metrics"), "");
  EXPECT_EQ(args.get("input"), "file.txt");
}

TEST(ArgParse, OptionalValueUsageRendering) {
  ArgParser args("prog", "optional values");
  args.add_optional_value("metrics", "metrics sink", "");
  EXPECT_NE(args.usage().find("--metrics[=<value>]"), std::string::npos);
}

TEST(ArgParse, ArgcArgvForm) {
  ArgParser args = make_parser();
  const char* argv[] = {"prog", "--count", "9", "--verbose"};
  args.parse(4, argv);
  EXPECT_EQ(args.get_int("count"), 9);
  EXPECT_TRUE(args.flag("verbose"));
}

}  // namespace
}  // namespace oagrid
