#include "common/ascii_chart.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace oagrid {
namespace {

TEST(AsciiChart, RejectsTinyCanvas) {
  EXPECT_THROW(AsciiChart(4, 4), std::invalid_argument);
  EXPECT_THROW(AsciiChart(40, 2), std::invalid_argument);
}

TEST(AsciiChart, RejectsMismatchedSeries) {
  AsciiChart chart(40, 10);
  EXPECT_THROW(chart.add_series(ChartSeries{"bad", '*', {1, 2}, {1}}),
               std::invalid_argument);
}

TEST(AsciiChart, EmptyRendersPlaceholder) {
  AsciiChart chart(40, 10);
  EXPECT_EQ(chart.render(), "(empty chart)\n");
}

TEST(AsciiChart, GlyphsAppear) {
  AsciiChart chart(40, 10);
  chart.add_series(ChartSeries{"up", '*', {0, 1, 2, 3}, {0, 1, 2, 3}});
  const std::string out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = up"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesLegend) {
  AsciiChart chart(40, 10);
  chart.add_series(ChartSeries{"a", '1', {0, 1}, {0, 1}});
  chart.add_series(ChartSeries{"b", '2', {0, 1}, {1, 0}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("1 = a"), std::string::npos);
  EXPECT_NE(out.find("2 = b"), std::string::npos);
}

TEST(AsciiChart, FixedRangeValidated) {
  AsciiChart chart(40, 10);
  EXPECT_THROW(chart.set_y_range(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(chart.set_y_range(2.0, 1.0), std::invalid_argument);
  chart.set_y_range(-2.0, 14.0);
  chart.add_series(ChartSeries{"s", '*', {0, 1}, {0, 12}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("14.00"), std::string::npos);
  EXPECT_NE(out.find("-2.00"), std::string::npos);
}

TEST(AsciiChart, ExtremePointsLandOnEdges) {
  AsciiChart chart(20, 5);
  chart.add_series(ChartSeries{"s", '#', {0, 10}, {5, 5}});
  const std::string out = chart.render();
  // Flat series: both points on the same text row.
  std::size_t count = 0;
  for (const char c : out) count += (c == '#');
  EXPECT_GE(count, 2u);
}

}  // namespace
}  // namespace oagrid
