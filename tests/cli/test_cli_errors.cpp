/// \file test_cli_errors.cpp
/// \brief End-to-end error-path contract of oagrid_cli: bad flags, malformed
/// input files and conflicting options must exit non-zero with a diagnostic
/// a human (or an editor) can act on — malformed files in particular must
/// point at "<file>:<line>:".
///
/// The binary path arrives via the OAGRID_CLI_PATH compile definition (set
/// to $<TARGET_FILE:oagrid_cli> in tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct CliResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr interleaved
};

/// Runs the CLI with `args`, capturing both streams and the exit status.
CliResult run_cli(const std::string& args) {
  const std::string command = std::string(OAGRID_CLI_PATH) + " " + args +
                              " 2>&1";
  CliResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr)
    result.output += buffer;
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// Writes `text` to a unique temp file; removed in the destructor.
class TempFile {
 public:
  explicit TempFile(const std::string& tag, const std::string& text)
      : path_(fs::temp_directory_path() /
              ("oagrid-cli-errors-" + std::to_string(::getpid()) + "-" + tag)) {
    std::ofstream(path_) << text;
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path_, ec);
  }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  fs::path path_;
};

TEST(CliErrors, UnknownFlagExitsNonZeroAndNamesTheFlag) {
  const CliResult result = run_cli("simulate --no-such-flag");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("no-such-flag"), std::string::npos)
      << result.output;
}

TEST(CliErrors, UnknownCommandExitsTwoWithUsage) {
  const CliResult result = run_cli("frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown command"), std::string::npos);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST(CliErrors, MissingValueExitsNonZero) {
  const CliResult result = run_cli("simulate --months");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("months"), std::string::npos) << result.output;
}

TEST(CliErrors, MalformedNetworkFileIsLineNumbered) {
  const TempFile file("net.txt", "network 2\nbogus 1 2\n");
  const CliResult result =
      run_cli("simulate --months 2 --network=" + file.path());
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find(file.path() + ":2: "), std::string::npos)
      << result.output;
}

TEST(CliErrors, NetworkLinkOutOfRangeIsLineNumbered) {
  const TempFile file("net-range.txt",
                      "network 2\nlink 0 1 100 0.1\nlink 0 9 100 0.1\n");
  const CliResult result =
      run_cli("simulate --months 2 --network=" + file.path());
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find(file.path() + ":3: "), std::string::npos)
      << result.output;
}

TEST(CliErrors, MissingNetworkFileExitsNonZero) {
  const CliResult result =
      run_cli("simulate --months 2 --network=/nonexistent/net.txt");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("cannot open"), std::string::npos)
      << result.output;
}

TEST(CliErrors, MalformedFailuresFileIsLineNumbered) {
  const TempFile file("faults.txt", "failures 2\nbogus 1 2\n");
  const CliResult result =
      run_cli("grid --months 2 --failures=" + file.path());
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find(file.path() + ":2: "), std::string::npos)
      << result.output;
}

TEST(CliErrors, FailuresFileWithoutHeaderIsLineNumbered) {
  const TempFile file("faults-nohdr.txt", "mtbf 0 100 10\n");
  const CliResult result =
      run_cli("grid --months 2 --failures=" + file.path());
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find(file.path() + ":1: "), std::string::npos)
      << result.output;
}

TEST(CliErrors, ConflictingFailureAndClusterOptions) {
  const CliResult result =
      run_cli("simulate --months 2 --clusters 3 --failures");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("not supported"), std::string::npos)
      << result.output;
}

TEST(CliErrors, GoodPathsStillExitZero) {
  // Guard the guards: the error harness itself must not flag healthy runs.
  EXPECT_EQ(run_cli("simulate --months 2").exit_code, 0);
  const TempFile file("net-ok.txt",
                      "network 2\ninter_default 100 0.01\nintra_default 1000 "
                      "0.001\n");
  EXPECT_EQ(run_cli("simulate --months 2 --clusters 2 --network=" +
                    file.path())
                .exit_code,
            0);
}

}  // namespace
