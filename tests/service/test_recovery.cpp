#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "platform/profiles.hpp"
#include "service/journal.hpp"
#include "service/service.hpp"

namespace oagrid::service {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

platform::Grid test_grid() {
  std::vector<platform::Cluster> clusters;
  clusters.push_back(platform::make_builtin_cluster(0, 20));
  clusters.push_back(platform::make_builtin_cluster(1, 20));
  return platform::Grid(std::move(clusters));
}

struct Entry {
  CampaignSpec spec;
  Seconds at = 0.0;
};

// A workload with queueing, staggered arrivals, multiple owners and an
// owner submitting twice — enough structure that admission order, lease
// carving and fair-share accounting all matter.
std::vector<Entry> workload() {
  const auto spec = [](const std::string& owner, double weight, Count ns,
                       Count nm) {
    CampaignSpec s;
    s.owner = owner;
    s.weight = weight;
    s.scenarios = ns;
    s.months = nm;
    return s;
  };
  return {{spec("alice", 1.0, 3, 3), 0.0},
          {spec("bob", 2.0, 2, 4), 0.0},
          {spec("carol", 1.0, 2, 2), 2000.0},
          {spec("alice", 1.0, 1, 3), 6000.0}};
}

ServiceOptions make_options(const std::string& dir,
                            long long kill_after = -1,
                            Count snapshot_every = 0) {
  ServiceOptions options;
  options.policy = QueuePolicy::kWeightedFairShare;
  options.max_active = 2;
  options.journal_dir = dir;
  options.kill_after_records = kill_after;
  options.snapshot_every = snapshot_every;
  return options;
}

std::unique_ptr<CampaignService> make_service(ServiceOptions options) {
  return std::make_unique<CampaignService>(test_grid(), std::move(options));
}

/// The externally observable outcome of one campaign; what "recovers to an
/// identical per-scenario month frontier and the same final makespan" means.
struct Final {
  std::string status;
  Seconds submit_time = 0.0;
  Seconds admit_time = 0.0;
  Seconds finish_time = 0.0;
  Count months_done = 0;
  std::vector<MonthIndex> frontier;
  std::vector<ClusterId> assignment;
  bool operator==(const Final&) const = default;
};

std::map<CampaignId, Final> capture(const CampaignService& service) {
  std::map<CampaignId, Final> out;
  for (const CampaignId id : service.campaign_ids()) {
    const CampaignState& state = service.campaign(id);
    out[id] = Final{to_string(state.status), state.submit_time,
                    state.admit_time,        state.finish_time,
                    state.months_done,       state.frontier,
                    state.assignment};
  }
  return out;
}

/// Submits the workload entries this (possibly recovered) service does not
/// know about yet. Ids are arrival order, so entry i always becomes
/// campaign i + 1; everything past the highest known id is missing.
void submit_missing(CampaignService& service, const std::vector<Entry>& all) {
  const std::size_t known = service.campaign_ids().size();
  for (std::size_t i = known; i < all.size(); ++i)
    (void)service.submit(all[i].spec, all[i].at);
}

/// Reference run: uninterrupted, journaled into `dir`.
std::map<CampaignId, Final> baseline_run(const std::string& dir) {
  auto service = make_service(make_options(dir));
  submit_missing(*service, workload());
  EXPECT_TRUE(service->run());
  return capture(*service);
}

/// Recover-and-resume generations (keeping `kill_after` armed each time)
/// until a run survives to completion; returns the final outcome.
std::map<CampaignId, Final> resume_until_done(const std::string& dir,
                                              long long kill_after,
                                              Count snapshot_every = 0) {
  for (int generation = 0; generation < 128; ++generation) {
    auto service = make_service(make_options(dir, kill_after, snapshot_every));
    (void)service->recover();
    submit_missing(*service, workload());
    if (service->run()) return capture(*service);
    EXPECT_TRUE(service->killed());
  }
  ADD_FAILURE() << "service never completed within 128 resume generations";
  return {};
}

TEST(Recovery, MissingJournalIsAFreshStart) {
  const std::string dir = temp_dir("recovery-fresh");
  auto service = make_service(make_options(dir));
  const RecoveryReport report = service->recover();
  EXPECT_FALSE(report.journal_found);
  EXPECT_EQ(report.replayed_records, 0u);
  // The service is perfectly usable afterwards.
  submit_missing(*service, workload());
  EXPECT_TRUE(service->run());
  EXPECT_TRUE(fs::exists(CampaignService::journal_path(dir)));
}

TEST(Recovery, EmptyJournalReplaysToNothing) {
  const std::string dir = temp_dir("recovery-empty");
  {
    auto service = make_service(make_options(dir));
    EXPECT_TRUE(service->run());  // no submissions: header-only journal
  }
  auto service = make_service(make_options(dir));
  const RecoveryReport report = service->recover();
  EXPECT_TRUE(report.journal_found);
  EXPECT_EQ(report.replayed_records, 0u);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.resume_time, 0.0);
}

TEST(Recovery, UninterruptedJournalReplaysToIdenticalState) {
  const std::string dir = temp_dir("recovery-replay");
  const auto expected = baseline_run(dir);
  const auto before = read_journal(CampaignService::journal_path(dir));

  auto service = make_service(make_options(dir));
  const RecoveryReport report = service->recover();
  EXPECT_TRUE(report.journal_found);
  EXPECT_FALSE(report.snapshot_used);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.replayed_records, before.events.size());
  EXPECT_EQ(capture(*service), expected);
  EXPECT_TRUE(service->active_leases().empty());

  // Nothing left to do, and verified replay appended nothing new.
  EXPECT_TRUE(service->run());
  const auto after = read_journal(CampaignService::journal_path(dir));
  ASSERT_EQ(after.events.size(), before.events.size());
  for (std::size_t i = 0; i < before.events.size(); ++i)
    EXPECT_TRUE(after.events[i] == before.events[i]);
}

// The tentpole acceptance test: kill the service after EVERY possible
// journal record count and check the resumed run reaches the exact same
// per-campaign frontiers, finish times and journal bytes as the
// uninterrupted baseline.
TEST(Recovery, KillAtEveryRecordResumesToTheBaselineOutcome) {
  const std::string base_dir = temp_dir("recovery-baseline");
  const auto expected = baseline_run(base_dir);
  const auto golden = read_journal(CampaignService::journal_path(base_dir));
  ASSERT_GT(golden.events.size(), 20u);  // the workload is non-trivial

  const std::string dir = temp_dir("recovery-kill");
  const long long records = static_cast<long long>(golden.events.size());
  for (long long kill = 1; kill < records; ++kill) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
      auto victim = make_service(make_options(dir, kill));
      submit_missing(*victim, workload());
      ASSERT_FALSE(victim->run()) << "kill point " << kill;
      ASSERT_TRUE(victim->killed());
    }
    auto survivor = make_service(make_options(dir));
    const RecoveryReport report = survivor->recover();
    ASSERT_TRUE(report.journal_found) << "kill point " << kill;
    ASSERT_EQ(report.replayed_records, static_cast<std::uint64_t>(kill));
    submit_missing(*survivor, workload());
    ASSERT_TRUE(survivor->run()) << "kill point " << kill;

    ASSERT_EQ(capture(*survivor), expected) << "kill point " << kill;
    const auto replayed = read_journal(CampaignService::journal_path(dir));
    ASSERT_EQ(replayed.events.size(), golden.events.size())
        << "kill point " << kill;
    for (std::size_t i = 0; i < golden.events.size(); ++i)
      ASSERT_TRUE(replayed.events[i] == golden.events[i])
          << "kill point " << kill << " record " << i;
  }
}

TEST(Recovery, TornFinalRecordIsDroppedAndRegenerated) {
  const std::string base_dir = temp_dir("recovery-torn-baseline");
  const auto expected = baseline_run(base_dir);

  const std::string dir = temp_dir("recovery-torn");
  (void)baseline_run(dir);
  const std::string path = CampaignService::journal_path(dir);
  // Shear mid-record, as an interrupted write would.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);

  auto service = make_service(make_options(dir));
  const RecoveryReport report = service->recover();
  EXPECT_TRUE(report.torn_tail);
  EXPECT_GT(report.dropped_bytes, 0u);
  submit_missing(*service, workload());
  EXPECT_TRUE(service->run());
  EXPECT_EQ(capture(*service), expected);

  // The healed journal byte-matches the intact baseline's.
  const auto golden = read_journal(CampaignService::journal_path(base_dir));
  const auto healed = read_journal(path);
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(healed.events.size(), golden.events.size());
  for (std::size_t i = 0; i < golden.events.size(); ++i)
    EXPECT_TRUE(healed.events[i] == golden.events[i]) << "record " << i;
}

TEST(Recovery, SnapshotCompactionPreservesTheOutcome) {
  const std::string base_dir = temp_dir("recovery-snap-baseline");
  const auto expected = baseline_run(base_dir);
  const auto golden = read_journal(CampaignService::journal_path(base_dir));
  const long long records = static_cast<long long>(golden.events.size());

  const std::string dir = temp_dir("recovery-snap");
  bool snapshot_ever_used = false;
  for (const long long kill : {7ll, 13ll, 20ll, records - 2}) {
    if (kill < 1 || kill >= records) continue;
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
      auto victim = make_service(make_options(dir, kill, /*snapshot_every=*/6));
      submit_missing(*victim, workload());
      ASSERT_FALSE(victim->run());
    }
    auto survivor = make_service(make_options(dir, -1, /*snapshot_every=*/6));
    const RecoveryReport report = survivor->recover();
    snapshot_ever_used |= report.snapshot_used;
    if (report.snapshot_used) {
      EXPECT_GT(report.snapshot_seq, 0u);
      // Compaction really happened: the journal no longer starts at 0.
      EXPECT_GT(read_journal(CampaignService::journal_path(dir)).base_seq, 0u);
    }
    submit_missing(*survivor, workload());
    ASSERT_TRUE(survivor->run()) << "kill point " << kill;
    ASSERT_EQ(capture(*survivor), expected) << "kill point " << kill;
  }
  EXPECT_TRUE(snapshot_ever_used);
}

TEST(Recovery, ChainedKillsEventuallyCompleteWithTheBaselineOutcome) {
  const std::string base_dir = temp_dir("recovery-chain-baseline");
  const auto expected = baseline_run(base_dir);

  // Crash every 5 appends, forever; each generation still makes progress
  // (5 fresh records), so the campaign must land on the same outcome.
  const std::string dir = temp_dir("recovery-chain");
  {
    auto victim = make_service(make_options(dir, 5));
    submit_missing(*victim, workload());
    ASSERT_FALSE(victim->run());
  }
  EXPECT_EQ(resume_until_done(dir, 5), expected);

  // Same, with snapshotting racing the crashes.
  const std::string snap_dir = temp_dir("recovery-chain-snap");
  {
    auto victim = make_service(make_options(snap_dir, 5, /*snapshot_every=*/4));
    submit_missing(*victim, workload());
    ASSERT_FALSE(victim->run());
  }
  EXPECT_EQ(resume_until_done(snap_dir, 5, /*snapshot_every=*/4), expected);
}

TEST(Recovery, DoubleRecoveryIsIdempotent) {
  const std::string dir = temp_dir("recovery-twice");
  {
    auto victim = make_service(make_options(dir, 17));
    submit_missing(*victim, workload());
    ASSERT_FALSE(victim->run());
  }
  auto first = make_service(make_options(dir));
  const RecoveryReport report_a = first->recover();
  auto second = make_service(make_options(dir));
  const RecoveryReport report_b = second->recover();

  EXPECT_EQ(report_a.replayed_records, report_b.replayed_records);
  EXPECT_EQ(report_a.resume_time, report_b.resume_time);
  EXPECT_EQ(capture(*first), capture(*second));
  EXPECT_EQ(first->now(), second->now());
  EXPECT_EQ(first->active_leases().size(), second->active_leases().size());
}

TEST(Recovery, ConfigMismatchIsRefused) {
  const std::string dir = temp_dir("recovery-config");
  (void)baseline_run(dir);  // written under fair share
  ServiceOptions options = make_options(dir);
  options.policy = QueuePolicy::kFifo;
  auto service = make_service(std::move(options));
  EXPECT_THROW((void)service->recover(), std::invalid_argument);
}

TEST(Recovery, RecoverNeedsAJournalDirectory) {
  auto service = make_service(ServiceOptions{});  // in-memory only
  EXPECT_THROW((void)service->recover(), std::invalid_argument);
}

TEST(Recovery, RecoverMustBeTheFirstCall) {
  const std::string dir = temp_dir("recovery-order");
  auto service = make_service(make_options(dir));
  (void)service->submit(workload()[0].spec, 0.0);
  EXPECT_THROW((void)service->recover(), std::invalid_argument);
}

// --- group-commit journaling ----------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

ServiceOptions make_batch_options(const std::string& dir,
                                  long long kill_after = -1,
                                  Count snapshot_every = 0) {
  ServiceOptions options = make_options(dir, kill_after, snapshot_every);
  options.group_commit = true;
  return options;
}

TEST(GroupCommitRecovery, JournalBytesMatchThePerRecordJournal) {
  const std::string per_record_dir = temp_dir("batch-bytes-per-record");
  const auto expected = baseline_run(per_record_dir);

  const std::string batch_dir = temp_dir("batch-bytes-batched");
  auto service = make_service(make_batch_options(batch_dir));
  submit_missing(*service, workload());
  EXPECT_TRUE(service->run());
  EXPECT_EQ(capture(*service), expected);

  // Not just the same records — the same bytes: batching only changes when
  // frames reach the disk, never what they are.
  EXPECT_EQ(read_file(CampaignService::journal_path(batch_dir)),
            read_file(CampaignService::journal_path(per_record_dir)));
}

// The group-commit analogue of the kill matrix: a crash at any append now
// also forfeits whatever the current batch had buffered, so recovery sees
// the last commit boundary. The resumed run must still land on the exact
// baseline outcome and journal bytes.
TEST(GroupCommitRecovery, KillAtEveryRecordResumesToTheBaselineOutcome) {
  const std::string base_dir = temp_dir("batch-kill-baseline");
  const auto expected = baseline_run(base_dir);
  const auto golden = read_journal(CampaignService::journal_path(base_dir));

  const std::string dir = temp_dir("batch-kill");
  const long long records = static_cast<long long>(golden.events.size());
  for (long long kill = 1; kill < records; ++kill) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
      auto victim = make_service(make_batch_options(dir, kill));
      submit_missing(*victim, workload());
      ASSERT_FALSE(victim->run()) << "kill point " << kill;
      ASSERT_TRUE(victim->killed());
    }
    auto survivor = make_service(make_batch_options(dir));
    const RecoveryReport report = survivor->recover();
    ASSERT_TRUE(report.journal_found) << "kill point " << kill;
    // Only the batches committed before the kill are on disk.
    ASSERT_LE(report.replayed_records, static_cast<std::uint64_t>(kill));
    ASSERT_FALSE(report.torn_tail);  // a lost batch is a clean cut
    submit_missing(*survivor, workload());
    ASSERT_TRUE(survivor->run()) << "kill point " << kill;

    ASSERT_EQ(capture(*survivor), expected) << "kill point " << kill;
    ASSERT_EQ(read_file(CampaignService::journal_path(dir)),
              read_file(CampaignService::journal_path(base_dir)))
        << "kill point " << kill;
  }
}

TEST(GroupCommitRecovery, ChainedKillsEventuallyComplete) {
  const std::string base_dir = temp_dir("batch-chain-baseline");
  const auto expected = baseline_run(base_dir);

  // Unlike per-record mode, a generation only banks whole ticks — the kill
  // budget must exceed the largest single-tick batch or no generation would
  // ever commit anything.
  const std::string dir = temp_dir("batch-chain");
  {
    auto victim = make_service(make_batch_options(dir, 16));
    submit_missing(*victim, workload());
    ASSERT_FALSE(victim->run());
  }
  for (int generation = 0; generation < 128; ++generation) {
    auto service = make_service(make_batch_options(dir, 16));
    (void)service->recover();
    submit_missing(*service, workload());
    if (service->run()) {
      EXPECT_EQ(capture(*service), expected);
      EXPECT_EQ(read_file(CampaignService::journal_path(dir)),
                read_file(CampaignService::journal_path(base_dir)));
      return;
    }
  }
  ADD_FAILURE() << "service never completed within 128 resume generations";
}

TEST(GroupCommitRecovery, ModesInteroperateOnTheSameJournal) {
  const std::string base_dir = temp_dir("batch-mixed-baseline");
  const auto expected = baseline_run(base_dir);

  // Killed while writing per-record, resumed with group commit...
  const std::string dir_a = temp_dir("batch-mixed-a");
  {
    auto victim = make_service(make_options(dir_a, 11));
    submit_missing(*victim, workload());
    ASSERT_FALSE(victim->run());
  }
  {
    auto survivor = make_service(make_batch_options(dir_a));
    (void)survivor->recover();
    submit_missing(*survivor, workload());
    ASSERT_TRUE(survivor->run());
    EXPECT_EQ(capture(*survivor), expected);
  }

  // ...and killed while batching, resumed per-record. The bytes carry no
  // trace of the discipline, so neither direction needs a migration.
  const std::string dir_b = temp_dir("batch-mixed-b");
  {
    auto victim = make_service(make_batch_options(dir_b, 11));
    submit_missing(*victim, workload());
    ASSERT_FALSE(victim->run());
  }
  {
    auto survivor = make_service(make_options(dir_b));
    (void)survivor->recover();
    submit_missing(*survivor, workload());
    ASSERT_TRUE(survivor->run());
    EXPECT_EQ(capture(*survivor), expected);
  }
  EXPECT_EQ(read_file(CampaignService::journal_path(dir_a)),
            read_file(CampaignService::journal_path(dir_b)));
}

TEST(GroupCommitRecovery, SnapshotsNeverOutrunTheJournal) {
  const std::string base_dir = temp_dir("batch-snap-baseline");
  const auto expected = baseline_run(base_dir);
  const auto golden = read_journal(CampaignService::journal_path(base_dir));
  const long long records = static_cast<long long>(golden.events.size());

  // Snapshot cadence + batching: the pre-snapshot commit keeps snapshot.seq
  // inside the journal's durable prefix at every kill point.
  const std::string dir = temp_dir("batch-snap");
  for (const long long kill : {7ll, 13ll, 20ll, records - 2}) {
    if (kill < 1 || kill >= records) continue;
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
      auto victim =
          make_service(make_batch_options(dir, kill, /*snapshot_every=*/6));
      submit_missing(*victim, workload());
      ASSERT_FALSE(victim->run());
    }
    auto survivor =
        make_service(make_batch_options(dir, -1, /*snapshot_every=*/6));
    ASSERT_NO_THROW((void)survivor->recover()) << "kill point " << kill;
    submit_missing(*survivor, workload());
    ASSERT_TRUE(survivor->run()) << "kill point " << kill;
    ASSERT_EQ(capture(*survivor), expected) << "kill point " << kill;
  }
}

}  // namespace
}  // namespace oagrid::service
